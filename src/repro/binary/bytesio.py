"""Little-endian byte stream helpers used by all serializers."""

from __future__ import annotations

import struct

from repro.errors import ImageFormatError


class ByteWriter:
    """Append-only little-endian binary writer."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, v: int) -> "ByteWriter":
        self._buf += struct.pack("<B", v)
        return self

    def u16(self, v: int) -> "ByteWriter":
        self._buf += struct.pack("<H", v)
        return self

    def u32(self, v: int) -> "ByteWriter":
        self._buf += struct.pack("<I", v)
        return self

    def u64(self, v: int) -> "ByteWriter":
        self._buf += struct.pack("<Q", v)
        return self

    def string(self, s: str) -> "ByteWriter":
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self._buf += raw
        return self

    def blob(self, b: bytes) -> "ByteWriter":
        self.u64(len(b))
        self._buf += b
        return self

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class ByteReader:
    """Sequential little-endian binary reader with bounds checking.

    Accepts any bytes-like buffer.  Handed a :class:`memoryview`, every
    ``_take`` (and therefore every ``blob``) is a zero-copy *slice* of
    the underlying buffer — the procs backend reads whole binary images
    out of shared memory this way, so section payloads alias the
    segment instead of being copied per worker.
    """

    __slots__ = ("_buf", "_pos")

    def __init__(self, buf: bytes | bytearray | memoryview) -> None:
        self._buf = buf
        self._pos = 0

    def _take(self, n: int) -> bytes | memoryview:
        if self._pos + n > len(self._buf):
            raise ImageFormatError(
                f"truncated stream: need {n} bytes at offset {self._pos}, "
                f"have {len(self._buf) - self._pos}"
            )
        out = self._buf[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def string(self) -> str:
        n = self.u32()
        # memoryview has no .decode(); the bytes() wrap copies only the
        # (short) string payload, never a section-sized blob.
        return bytes(self._take(n)).decode("utf-8")

    def blob(self) -> bytes | memoryview:
        n = self.u64()
        return self._take(n)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._buf)
