"""Binary container substrate (the ELF analog).

A :class:`~repro.binary.format.BinaryImage` holds named sections —
``.text`` (machine code), ``.rodata`` (jump-table data), ``.symtab`` /
``.dynsym`` (symbols), ``.debug`` (DWARF-like debug information) and
``.eh_frame`` (unwind-derived function starts) — with a compact binary
serialization, so binaries can be written to disk and loaded back exactly
like the ELF files the paper analyzes.

The multi-keyed symbol table of Listing 6 lives in
:mod:`repro.binary.symtab`; the debug-information model (compilation-unit
forest, subprogram ranges, inline trees, line tables) in
:mod:`repro.binary.dwarf`.
"""

from repro.binary.format import BinaryImage, Section, SectionFlags
from repro.binary.symtab import (
    Symbol,
    SymbolKind,
    SymbolBinding,
    SymbolTable,
    IndexedSymbols,
    demangle_pretty,
    demangle_typed,
)
from repro.binary.dwarf import (
    CompilationUnit,
    DebugInfo,
    FunctionDIE,
    InlinedCall,
    LineRow,
)
from repro.binary.loader import load_image, save_image

__all__ = [
    "BinaryImage",
    "Section",
    "SectionFlags",
    "Symbol",
    "SymbolKind",
    "SymbolBinding",
    "SymbolTable",
    "IndexedSymbols",
    "demangle_pretty",
    "demangle_typed",
    "CompilationUnit",
    "DebugInfo",
    "FunctionDIE",
    "InlinedCall",
    "LineRow",
    "load_image",
    "save_image",
]
