"""Symbol tables: serial container plus the multi-keyed parallel table.

The paper's Section 6.2 replaces a Boost ``multi_index_container`` with a
set of TBB concurrent hash maps keyed by offset, mangled name, pretty name
and typed name, mediated by a master map so each symbol is inserted exactly
once.  :class:`IndexedSymbols` reproduces that structure on top of
:class:`~repro.runtime.conchash.ConcurrentHashMap`; hpcstruct builds it in
parallel when ingesting binaries with very large symbol tables.

Name mangling follows a simplified Itanium-like scheme:
``_Z<len><name><argcodes>`` — e.g. ``_Z3fooii`` is ``foo(int, int)`` with
pretty name ``foo``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.binary.bytesio import ByteReader, ByteWriter
from repro.runtime.api import Runtime
from repro.runtime.conchash import ConcurrentHashMap

_ARG_TYPES = {"i": "int", "l": "long", "d": "double", "p": "void*",
              "s": "char*", "v": "void"}


def demangle_pretty(mangled: str) -> str:
    """Human-readable name without parameters (``_Z3fooii`` -> ``foo``)."""
    name, _ = _split_mangled(mangled)
    return name


def demangle_typed(mangled: str) -> str:
    """Demangled name with parameter types (``_Z3fooii`` -> ``foo(int, int)``)."""
    name, args = _split_mangled(mangled)
    if args is None:
        return name
    return f"{name}({', '.join(args)})"


def _split_mangled(mangled: str) -> tuple[str, list[str] | None]:
    if not mangled.startswith("_Z"):
        return mangled, None
    i = 2
    n = 0
    while i < len(mangled) and mangled[i].isdigit():
        n = n * 10 + int(mangled[i])
        i += 1
    if n == 0 or i + n > len(mangled):
        return mangled, None  # not well-formed; treat as plain
    name = mangled[i:i + n]
    args = [_ARG_TYPES.get(c, "?") for c in mangled[i + n:]]
    return name, args


class SymbolKind(enum.IntEnum):
    FUNC = 0
    OBJECT = 1


class SymbolBinding(enum.IntEnum):
    GLOBAL = 0
    LOCAL = 1
    WEAK = 2


@dataclass(frozen=True, slots=True)
class Symbol:
    """One symbol-table entry."""

    name: str          #: mangled name as stored in the binary
    offset: int        #: virtual address
    size: int          #: extent in bytes (0 if unknown)
    kind: SymbolKind = SymbolKind.FUNC
    binding: SymbolBinding = SymbolBinding.GLOBAL

    @property
    def pretty_name(self) -> str:
        return demangle_pretty(self.name)

    @property
    def typed_name(self) -> str:
        return demangle_typed(self.name)


class SymbolTable:
    """Serial symbol container with the four lookup keys.

    This is the serialized form stored in ``.symtab``/``.dynsym``; the
    parallel build path is :class:`IndexedSymbols`.
    """

    def __init__(self, symbols: list[Symbol] | None = None):
        self._symbols: list[Symbol] = []
        self._by_offset: dict[int, list[Symbol]] = {}
        self._by_mangled: dict[str, list[Symbol]] = {}
        self._by_pretty: dict[str, list[Symbol]] = {}
        self._by_typed: dict[str, list[Symbol]] = {}
        for s in symbols or []:
            self.add(s)

    def add(self, sym: Symbol) -> None:
        self._symbols.append(sym)
        self._by_offset.setdefault(sym.offset, []).append(sym)
        self._by_mangled.setdefault(sym.name, []).append(sym)
        self._by_pretty.setdefault(sym.pretty_name, []).append(sym)
        self._by_typed.setdefault(sym.typed_name, []).append(sym)

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    def by_offset(self, offset: int) -> list[Symbol]:
        return list(self._by_offset.get(offset, []))

    def by_mangled_name(self, name: str) -> list[Symbol]:
        return list(self._by_mangled.get(name, []))

    def by_pretty_name(self, name: str) -> list[Symbol]:
        return list(self._by_pretty.get(name, []))

    def by_typed_name(self, name: str) -> list[Symbol]:
        return list(self._by_typed.get(name, []))

    def functions(self) -> list[Symbol]:
        """Function symbols in address order."""
        return sorted((s for s in self._symbols if s.kind is SymbolKind.FUNC),
                      key=lambda s: (s.offset, s.name))

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        w = ByteWriter()
        w.u32(len(self._symbols))
        for s in self._symbols:
            w.string(s.name)
            w.u64(s.offset)
            w.u64(s.size)
            w.u8(int(s.kind))
            w.u8(int(s.binding))
        return w.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SymbolTable":
        r = ByteReader(raw)
        n = r.u32()
        out = cls()
        for _ in range(n):
            name = r.string()
            offset = r.u64()
            size = r.u64()
            kind = SymbolKind(r.u8())
            binding = SymbolBinding(r.u8())
            out.add(Symbol(name, offset, size, kind, binding))
        return out


class IndexedSymbols:
    """Thread-safe multi-keyed symbol table (paper Listing 6).

    A master map keyed by symbol identity mediates insertion: the worker
    that wins the master insert updates the four ``by_*`` index maps while
    holding the master entry lock, so the collective entries are updated in
    a total order.  Lookups are unsynchronized and valid once no writers
    remain — the same contract as the paper's redesign.
    """

    def __init__(self, rt: Runtime):
        self._rt = rt
        self.master: ConcurrentHashMap[Symbol, int] = \
            ConcurrentHashMap(rt, name="sym.master")
        self.by_offset: ConcurrentHashMap[int, list[Symbol]] = \
            ConcurrentHashMap(rt, name="sym.by_offset")
        self.by_mangled: ConcurrentHashMap[str, list[Symbol]] = \
            ConcurrentHashMap(rt, name="sym.by_mangled")
        self.by_pretty: ConcurrentHashMap[str, list[Symbol]] = \
            ConcurrentHashMap(rt, name="sym.by_pretty")
        self.by_typed: ConcurrentHashMap[str, list[Symbol]] = \
            ConcurrentHashMap(rt, name="sym.by_typed")

    def insert(self, sym: Symbol) -> bool:
        """Insert a symbol; False if it was already present (Listing 6)."""
        rt = self._rt
        rt.charge(rt.cost.symbol_insert)
        with self.master.accessor(sym) as acc:
            if not acc.created:
                return False
            acc.value = sym.offset
            self._index_into(self.by_offset, sym.offset, sym)
            self._index_into(self.by_mangled, sym.name, sym)
            self._index_into(self.by_pretty, sym.pretty_name, sym)
            self._index_into(self.by_typed, sym.typed_name, sym)
            return True

    def _index_into(self, table: ConcurrentHashMap, key, sym: Symbol) -> None:
        with table.accessor(key) as acc:
            if acc.created:
                acc.value = [sym]
            else:
                acc.value.append(sym)

    def lookup_offset(self, offset: int) -> list[Symbol]:
        return list(self.by_offset.get(offset, []))

    def lookup_pretty(self, name: str) -> list[Symbol]:
        return list(self.by_pretty.get(name, []))

    def lookup_mangled(self, name: str) -> list[Symbol]:
        return list(self.by_mangled.get(name, []))

    def lookup_typed(self, name: str) -> list[Symbol]:
        return list(self.by_typed.get(name, []))

    def __len__(self) -> int:
        return len(self.master)
