"""DWARF-like debug information: compilation units, DIEs, line tables.

Mirrors the structure hpcstruct consumes (Section 7.1/7.2 of the paper):

- a forest of compilation units (one per source file group), each holding
  subprogram DIEs with (possibly multiple, possibly shared) address ranges —
  the ground-truth encoding for functions sharing code and non-contiguous
  functions (Section 8.1);
- inlined-subroutine trees under each subprogram (AC4);
- a line table mapping addresses to file/line (AC3).

``die_count`` and ``line_count`` drive the simulated cost of parallel DWARF
parsing (Figure 2 phase 2 / Table 2 "DWARF" column).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binary.bytesio import ByteReader, ByteWriter

Range = tuple[int, int]


@dataclass
class InlinedCall:
    """An inlined-subroutine DIE: callee inlined at a call site."""

    callee: str
    call_file: str
    call_line: int
    ranges: list[Range] = field(default_factory=list)
    children: list["InlinedCall"] = field(default_factory=list)

    def die_count(self) -> int:
        return 1 + sum(c.die_count() for c in self.children)


@dataclass
class FunctionDIE:
    """A subprogram DIE.

    ``ranges`` may contain several non-contiguous address ranges (outlined
    cold blocks), and one range may appear under multiple subprograms
    (functions sharing code) — both cases the checker exercises.
    """

    name: str
    ranges: list[Range] = field(default_factory=list)
    decl_file: str = ""
    decl_line: int = 0
    inlines: list[InlinedCall] = field(default_factory=list)

    def die_count(self) -> int:
        return 1 + sum(i.die_count() for i in self.inlines)

    @property
    def low_pc(self) -> int:
        return min(lo for lo, _ in self.ranges) if self.ranges else 0


@dataclass(frozen=True, slots=True)
class LineRow:
    """One line-table row: instructions at [addr, next row addr) map to
    file:line."""

    addr: int
    file: str
    line: int


@dataclass
class CompilationUnit:
    """One compilation unit: subprograms plus its slice of the line table.

    ``n_type_dies`` counts abstract type DIEs (structs, templates, ...)
    carried by the CU; they have no structure we analyze but dominate
    ``.debug`` size for template-heavy binaries like TensorFlow and are
    charged during the parallel DWARF parse (Figure 2, phase 2).
    """

    name: str
    functions: list[FunctionDIE] = field(default_factory=list)
    line_rows: list[LineRow] = field(default_factory=list)
    n_type_dies: int = 0

    def die_count(self) -> int:
        return 1 + self.n_type_dies + sum(f.die_count() for f in self.functions)


@dataclass
class DebugInfo:
    """The full ``.debug`` payload: a forest of compilation units."""

    cus: list[CompilationUnit] = field(default_factory=list)

    def die_count(self) -> int:
        return sum(cu.die_count() for cu in self.cus)

    def line_count(self) -> int:
        return sum(len(cu.line_rows) for cu in self.cus)

    def all_functions(self) -> list[FunctionDIE]:
        return [f for cu in self.cus for f in cu.functions]

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        w = ByteWriter()
        w.u32(len(self.cus))
        for cu in self.cus:
            w.string(cu.name)
            w.u32(cu.n_type_dies)
            w.u32(len(cu.functions))
            for f in cu.functions:
                _write_function(w, f)
            w.u32(len(cu.line_rows))
            for row in cu.line_rows:
                w.u64(row.addr)
                w.string(row.file)
                w.u32(row.line)
            # Type DIE payload: opaque filler so .debug size scales with
            # DIE count as it does in real template-heavy binaries.
            w.blob(b"\x00" * (cu.n_type_dies * 24))
        return w.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DebugInfo":
        r = ByteReader(raw)
        n_cus = r.u32()
        cus = []
        for _ in range(n_cus):
            cu = CompilationUnit(name=r.string())
            cu.n_type_dies = r.u32()
            for _ in range(r.u32()):
                cu.functions.append(_read_function(r))
            for _ in range(r.u32()):
                cu.line_rows.append(LineRow(r.u64(), r.string(), r.u32()))
            r.blob()  # skip opaque type-DIE payload
            cus.append(cu)
        return cls(cus=cus)


def _write_ranges(w: ByteWriter, ranges: list[Range]) -> None:
    w.u32(len(ranges))
    for lo, hi in ranges:
        w.u64(lo)
        w.u64(hi)


def _read_ranges(r: ByteReader) -> list[Range]:
    return [(r.u64(), r.u64()) for _ in range(r.u32())]


def _write_inline(w: ByteWriter, inl: InlinedCall) -> None:
    w.string(inl.callee)
    w.string(inl.call_file)
    w.u32(inl.call_line)
    _write_ranges(w, inl.ranges)
    w.u32(len(inl.children))
    for c in inl.children:
        _write_inline(w, c)


def _read_inline(r: ByteReader) -> InlinedCall:
    inl = InlinedCall(callee=r.string(), call_file=r.string(),
                      call_line=r.u32(), ranges=_read_ranges(r))
    for _ in range(r.u32()):
        inl.children.append(_read_inline(r))
    return inl


def _write_function(w: ByteWriter, f: FunctionDIE) -> None:
    w.string(f.name)
    _write_ranges(w, f.ranges)
    w.string(f.decl_file)
    w.u32(f.decl_line)
    w.u32(len(f.inlines))
    for inl in f.inlines:
        _write_inline(w, inl)


def _read_function(r: ByteReader) -> FunctionDIE:
    f = FunctionDIE(name=r.string(), ranges=_read_ranges(r),
                    decl_file=r.string(), decl_line=r.u32())
    for _ in range(r.u32()):
        f.inlines.append(_read_inline(r))
    return f
