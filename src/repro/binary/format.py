"""Binary image container: named sections with addresses and flags.

The on-disk format is a simple framed container (magic ``SBIN``, version,
section table), playing the role ELF plays for the paper: ``.text`` holds
machine code, ``.rodata`` holds jump tables, ``.symtab``/``.dynsym`` hold
serialized symbols, ``.debug`` holds the DWARF-like debug information and
``.eh_frame`` holds unwind-derived function entry addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.binary.bytesio import ByteReader, ByteWriter
from repro.errors import ImageFormatError, SectionNotFoundError

_MAGIC = b"SBIN"
_VERSION = 1

# Well-known section names.
TEXT = ".text"
RODATA = ".rodata"
SYMTAB = ".symtab"
DYNSYM = ".dynsym"
DEBUG = ".debug"
EH_FRAME = ".eh_frame"


class SectionFlags(enum.IntFlag):
    """Section attribute flags."""

    NONE = 0
    EXEC = 1       #: contains executable code
    DATA = 2       #: contains initialized data
    DEBUG_INFO = 4 #: debug metadata, not loaded at runtime


@dataclass
class Section:
    """One named contiguous region of the binary.

    ``data`` is any bytes-like buffer.  Images deserialized from a
    :class:`memoryview` (the procs backend's shared-memory transport)
    carry sections that *alias* the source buffer — the buffer's owner
    must outlive the section.
    """

    name: str
    addr: int
    data: bytes | memoryview
    flags: SectionFlags = SectionFlags.NONE

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def contains(self, address: int) -> bool:
        return self.addr <= address < self.end


@dataclass
class BinaryImage:
    """A loadable binary: an ordered collection of sections.

    ``name`` identifies the binary in corpora and reports.
    """

    name: str = "a.out"
    sections: dict[str, Section] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add_section(self, section: Section) -> None:
        if section.name in self.sections:
            raise ImageFormatError(f"duplicate section {section.name}")
        self.sections[section.name] = section

    # -- access ---------------------------------------------------------------

    def section(self, name: str) -> Section:
        try:
            return self.sections[name]
        except KeyError:
            raise SectionNotFoundError(name) from None

    def has_section(self, name: str) -> bool:
        return name in self.sections

    @property
    def text(self) -> Section:
        return self.section(TEXT)

    @property
    def rodata(self) -> Section:
        return self.section(RODATA)

    def section_containing(self, address: int) -> Section | None:
        for s in self.sections.values():
            if s.contains(address):
                return s
        return None

    def read_word(self, address: int) -> int:
        """Read a little-endian u64 at a virtual address (jump tables)."""
        s = self.section_containing(address)
        if s is None or address + 8 > s.end:
            raise ImageFormatError(f"unmapped word read at {address:#x}")
        off = address - s.addr
        return int.from_bytes(s.data[off:off + 8], "little")

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Reject malformed section layouts (:class:`ImageFormatError`).

        Loadable sections (``EXEC``/``DATA``) must be non-empty and
        mutually disjoint: a zero-length ``.text`` has no bytes to
        decode but would still pass ``has_section`` gates, and
        overlapping loadable sections make ``section_containing`` /
        ``read_word`` answer from whichever section happens to come
        first — silent misparses, not errors.  Metadata sections
        (``DEBUG_INFO``, unflagged) are exempt: they are keyed by name,
        never by address, and conventionally all live at address 0.
        """
        loadable = [s for s in self.sections.values()
                    if s.flags & (SectionFlags.EXEC | SectionFlags.DATA)]
        for s in loadable:
            if s.size == 0:
                raise ImageFormatError(
                    f"zero-length loadable section {s.name}")
        prev: Section | None = None
        for s in sorted(loadable, key=lambda s: s.addr):
            if prev is not None and s.addr < prev.end:
                raise ImageFormatError(
                    f"overlapping sections: {prev.name} "
                    f"[{prev.addr:#x}, {prev.end:#x}) and {s.name} "
                    f"[{s.addr:#x}, {s.end:#x})")
            prev = s

    # -- statistics (Table 1) ----------------------------------------------------

    @property
    def total_size(self) -> int:
        """Total bytes across all sections."""
        return sum(s.size for s in self.sections.values())

    @property
    def text_size(self) -> int:
        return self.sections[TEXT].size if TEXT in self.sections else 0

    @property
    def debug_size(self) -> int:
        return self.sections[DEBUG].size if DEBUG in self.sections else 0

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        w = ByteWriter()
        w._buf += _MAGIC  # noqa: SLF001 - writer owned here
        w.u16(_VERSION)
        w.string(self.name)
        w.u32(len(self.sections))
        for s in self.sections.values():
            w.string(s.name)
            w.u64(s.addr)
            w.u32(int(s.flags))
            w.blob(s.data)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes | bytearray | memoryview
                   ) -> "BinaryImage":
        """Deserialize an image from any bytes-like buffer.

        Handed a :class:`memoryview`, section payloads are zero-copy
        slices of ``raw`` (see :class:`Section`); handed ``bytes``,
        slicing copies as usual.
        """
        if bytes(raw[:4]) != _MAGIC:
            raise ImageFormatError("bad magic: not an SBIN image")
        r = ByteReader(raw[4:])
        version = r.u16()
        if version != _VERSION:
            raise ImageFormatError(f"unsupported SBIN version {version}")
        img = cls(name=r.string())
        n = r.u32()
        for _ in range(n):
            name = r.string()
            addr = r.u64()
            flags = SectionFlags(r.u32())
            data = r.blob()
            img.add_section(Section(name, addr, data, flags))
        if not r.exhausted:
            raise ImageFormatError(
                "trailing bytes after the section table")
        return img

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            f.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "BinaryImage":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())
