"""Loading and saving binary images with parsed views.

``load_image`` returns a :class:`LoadedBinary` bundling the raw image with
lazily parsed symbol table, debug info and eh_frame function starts — the
view CFG construction and the applications consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.binary import format as fmt
from repro.binary.bytesio import ByteReader, ByteWriter
from repro.binary.dwarf import DebugInfo
from repro.binary.format import BinaryImage
from repro.binary.symtab import SymbolTable
from repro.isa.decoder import Decoder


@dataclass(frozen=True)
class LoadedBinary:
    """A binary image plus parsed views of its metadata sections."""

    image: BinaryImage

    @property
    def name(self) -> str:
        return self.image.name

    @cached_property
    def decoder(self) -> Decoder:
        text = self.image.text
        return Decoder(text.data, text.addr)

    @cached_property
    def symtab(self) -> SymbolTable:
        if not self.image.has_section(fmt.SYMTAB):
            return SymbolTable()
        return SymbolTable.from_bytes(self.image.section(fmt.SYMTAB).data)

    @cached_property
    def dynsym(self) -> SymbolTable:
        if not self.image.has_section(fmt.DYNSYM):
            return SymbolTable()
        return SymbolTable.from_bytes(self.image.section(fmt.DYNSYM).data)

    @cached_property
    def debug_info(self) -> DebugInfo:
        if not self.image.has_section(fmt.DEBUG):
            return DebugInfo()
        return DebugInfo.from_bytes(self.image.section(fmt.DEBUG).data)

    @cached_property
    def eh_frame_starts(self) -> list[int]:
        """Function entry addresses recorded in unwind information."""
        if not self.image.has_section(fmt.EH_FRAME):
            return []
        r = ByteReader(self.image.section(fmt.EH_FRAME).data)
        return [r.u64() for _ in range(r.u32())]

    def entry_addresses(self) -> list[int]:
        """Candidate function entries from symtab + dynsym + eh_frame.

        This is the paper's ``F0``: "candidate function entry blocks
        discovered via the binary's symbol table and unwind information".
        """
        addrs = {s.offset for s in self.symtab.functions()}
        addrs.update(s.offset for s in self.dynsym.functions())
        addrs.update(self.eh_frame_starts)
        return sorted(addrs)

    def stripped(self) -> "LoadedBinary":
        """A copy without ``.symtab`` (stripped-binary scenario, Section 9)."""
        img = BinaryImage(name=self.image.name + " (stripped)")
        for name, sec in self.image.sections.items():
            if name != fmt.SYMTAB:
                img.add_section(sec)
        return LoadedBinary(img)


def encode_eh_frame(starts: list[int]) -> bytes:
    """Serialize function start addresses for the ``.eh_frame`` section."""
    w = ByteWriter()
    w.u32(len(starts))
    for a in sorted(starts):
        w.u64(a)
    return w.getvalue()


def load_image(source: str | bytes | bytearray | memoryview | BinaryImage
               ) -> LoadedBinary:
    """Load a binary from a path, a bytes-like buffer, or an image.

    Malformed images — truncated section payloads, trailing garbage,
    zero-length or overlapping loadable sections — raise
    :class:`~repro.errors.ImageFormatError` here rather than misparsing
    later (the procs workers rebuild binaries from shipped buffers, so
    corruption must surface at the load boundary).  A
    :class:`memoryview` source — the shared-memory transport's attach
    path — deserializes zero-copy: sections alias the buffer, which
    must stay mapped for the binary's lifetime.
    """
    if isinstance(source, BinaryImage):
        image = source
    elif isinstance(source, (bytes, bytearray, memoryview)):
        image = BinaryImage.from_bytes(source)
    else:
        image = BinaryImage.load(source)
    image.validate()
    return LoadedBinary(image)


def save_image(image: BinaryImage, path: str) -> None:
    """Write a binary image to disk."""
    image.save(path)
