"""Parallel runtime substrate.

The paper's speedups come from real hardware threads (TBB + OpenMP inside
Dyninst).  Under CPython's GIL, real threads cannot reproduce those curves,
so this package provides two interchangeable backends behind one
:class:`~repro.runtime.api.Runtime` interface:

- :class:`~repro.runtime.vtime.VirtualTimeRuntime` — a deterministic
  discrete-event scheduler over N simulated workers.  All costs come from a
  calibrated :class:`~repro.runtime.cost.CostModel`; locks model contention;
  the task queue models idleness and load imbalance.  Simulated makespans
  yield the speedup curves of the evaluation section.
- :class:`~repro.runtime.threads.ThreadRuntime` — a real thread pool running
  the *same* algorithm code, used to demonstrate that the five invariants of
  Section 5.2 are genuinely race-free under preemption.
- :class:`~repro.runtime.serial.SerialRuntime` — a single-worker fast path
  used by the serial baseline parser.
- :class:`~repro.runtime.procs.ProcsRuntime` — a ``multiprocessing``
  worker pool running sharded CFG construction: real hardware
  parallelism for the decode/traversal work, with a serial merge that
  reproduces the serial fixed point exactly.

The concurrent hash map of Listings 4–6 lives in
:mod:`repro.runtime.conchash`, built on the runtime lock abstraction so one
implementation serves every backend.
"""

from repro.runtime.api import Runtime, TaskGroup
from repro.runtime.cost import CostModel
from repro.runtime.metrics import NULL_METRICS, Histogram, MetricsRegistry
from repro.runtime.serial import SerialRuntime
from repro.runtime.vtime import VirtualTimeRuntime
from repro.runtime.threads import ThreadRuntime
from repro.runtime.procs import ProcsRuntime
from repro.runtime.conchash import ConcurrentHashMap

__all__ = [
    "Runtime",
    "TaskGroup",
    "CostModel",
    "MetricsRegistry",
    "Histogram",
    "NULL_METRICS",
    "SerialRuntime",
    "VirtualTimeRuntime",
    "ThreadRuntime",
    "ProcsRuntime",
    "ConcurrentHashMap",
]

#: Names accepted by :func:`make_runtime` (and the CLI ``--backend``).
BACKENDS = ("vtime", "threads", "serial", "procs")


def make_runtime(kind: str, n_workers: int, **kwargs) -> Runtime:
    """Factory: build a runtime backend by name.

    ``kind`` is one of ``"vtime"``, ``"threads"``, ``"serial"``,
    ``"procs"``.
    """
    if kind == "vtime":
        return VirtualTimeRuntime(n_workers, **kwargs)
    if kind == "threads":
        return ThreadRuntime(n_workers, **kwargs)
    if kind == "procs":
        return ProcsRuntime(n_workers, **kwargs)
    if kind == "serial":
        if n_workers != 1:
            raise ValueError("serial runtime has exactly one worker")
        return SerialRuntime(**kwargs)
    raise ValueError(f"unknown runtime kind: {kind!r}")
