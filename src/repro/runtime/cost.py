"""Cost model for the virtual-time runtime.

All simulated durations are expressed in abstract "cycles".  The defaults
are calibrated (see ``EXPERIMENTS.md``) so that single-worker stage
proportions match the paper's one-thread columns; speedup *curves* are never
tuned directly — they emerge from algorithm structure (task counts, lock
contention, dependencies, serial phases).

Every charge made by library code goes through a named field here, so
ablation benchmarks can vary one cost in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated costs, in cycles."""

    # --- instruction level --------------------------------------------------
    decode_insn: int = 4          #: decode one machine instruction
    lift_insn: int = 24           #: lift one instruction to IR (slicing)

    # --- concurrent data structures ------------------------------------------
    map_op: int = 10              #: one concurrent hash map operation
    lock_handoff: int = 6         #: transfer of a contended entry lock

    # --- CFG construction ----------------------------------------------------
    block_create: int = 8         #: allocate + register a basic block
    edge_create: int = 6          #: create one CFG edge
    block_split: int = 30         #: split a block and move its edges
    jump_table_base: int = 600    #: fixed overhead of one jump-table analysis
    jump_table_per_insn: int = 24 #: per sliced instruction in the analysis
    jump_table_per_target: int = 12  #: per resolved jump-table target
    func_create: int = 20         #: create a function record
    noreturn_update: int = 12     #: one return-status update / notification
    closure_per_block: int = 1    #: reachability walk, per visited block
    sweep_per_block: int = 1      #: unreachable-sweep pointer chase, per block

    # --- task system ----------------------------------------------------------
    spawn: int = 40               #: enqueue a task
    task_pop: int = 20            #: dequeue a task (scheduling overhead)

    # --- binary container -------------------------------------------------------
    symbol_insert: int = 18       #: insert into the multi-keyed symbol table
    dwarf_per_die: int = 22       #: parse one debug-info DIE
    dwarf_per_line: int = 3       #: parse one line-table row
    io_per_kib: int = 24          #: read 1 KiB of the binary from "disk"
    output_per_item: int = 10     #: serialize one structure item

    # --- analyses (applications) -------------------------------------------------
    loop_per_edge: int = 8        #: loop analysis cost per CFG edge
    liveness_per_insn: int = 6    #: liveness transfer per instruction per pass
    feature_per_insn: int = 5     #: instruction feature extraction
    feature_per_edge: int = 7     #: control-flow feature extraction
    reduce_per_item: int = 2      #: parallel reduction per feature item

    def scaled(self, **overrides: int) -> "CostModel":
        """Return a copy with some costs replaced (for ablations)."""
        return replace(self, **overrides)


#: Shared default cost model instance.
DEFAULT_COSTS = CostModel()
