"""Process-parallel runtime backend: sharded CFG construction.

The ``threads`` backend proves the algorithm race-free but cannot show
real wall-clock scaling under CPython's GIL.  This backend gets genuine
hardware parallelism from ``multiprocessing``: a pool of worker
*processes* parses disjoint shards of the binary, and the coordinator
stitches the resulting CFG *fragments* into the exact serial fixed
point with a structural merge — no work is replayed except the
cross-shard steps the workers could not perform.

Execution model
---------------
1. **Shard + claim** — the binary's candidate entry addresses (``F0``)
   are split into contiguous regions balanced by estimated byte size
   (:func:`shard_regions`), and the regions' bounds partition the whole
   address space into ownership claims: shard *i* owns
   ``[first_entry_i, first_entry_{i+1})`` (the first claim is extended
   down to 0, the last up to the address ceiling).  Contiguity keeps
   each worker's decode working set local, mirroring the paper's
   Section 6.4 cache story.
2. **Publish the image once** — the coordinator serializes the binary
   image into a POSIX shared-memory segment
   (:mod:`repro.runtime.shm`); task payloads carry only the segment's
   name and payload length, and workers deserialize the binary over a
   read-only memoryview of the mapping, so section payloads and the
   decoder's code buffer alias the segment — the image crosses the
   process boundary zero times per task instead of once per task.  The
   segment is unlinked in a ``finally`` around the dispatch loop
   (success, every fault rung, degradation, serial fallback).  If
   shared memory is unavailable — or the deterministic ``shm`` fault
   site fires — the parse downgrades to the legacy pickled-bytes
   transport (recorded as a fault event; the parse stays fully
   sharded).
3. **Fragment parse (parallel)** — shard tasks are dispatched to a
   long-lived worker pool shared by every :class:`ProcsRuntime` in the
   process (pool creation dwarfs a dispatch round, so the pool is only
   rebuilt when its start method or size changes, and is sized to the
   cores actually available).  Each worker rebuilds the binary from
   the shipped transport — cached per parse token, so only the first
   task to reach a worker pays the rebuild — then runs the ordinary
   parallel parser in
   *fragment mode*: expansion proceeds normally inside the shard's
   claim, while every step that would touch a foreign address — direct
   or conditional branches out of the region, calls to foreign callees,
   released fall-throughs into another shard, linear overrun past the
   boundary — is recorded as a flat
   :class:`~repro.core.parallel_parser.FrontierRecord` instead of
   executed.  The claim protocol is what makes fan-out cheap: a shard
   never re-parses another shard's call closure.
4. **Streaming structural merge (coordinator)** — each worker returns
   a pickle-friendly :class:`ShardDelta` carrying its
   :class:`~repro.core.shard_merge.CFGFragment` (flat block, edge,
   function, jump-table and noreturn records) plus its decode cache.
   The coordinator folds each fragment into a
   :class:`~repro.core.shard_merge.StreamingMerge` the moment its
   delta lands — rebuild and install overlap the still-running
   fan-out instead of waiting for the slowest shard.  Block starts,
   functions and noreturn records are disjoint by ownership; block
   *ends* are reconciled through the real invariant-4 split cascade
   where shards disagree.  Once every shard is in, the frontier
   records replay through the ordinary parser machinery (in parallel
   across shards — ownership makes the record sets disjoint), the
   wave fixed point runs (including the cycle rule fragments must
   skip), and the ordinary ``finalize`` correction phase completes.
   Schedule independence of the invariant machinery (battery-proven)
   makes the result equal the serial fixed point byte-for-byte.

Fault tolerance
---------------
The fan-out assumes nothing about worker health.  Every shard attempt
is dispatched as its own ``AsyncResult`` and collected under a
configurable per-shard deadline (``shard_deadline``) and overall parse
budget (``parse_budget``); every collected delta is integrity-checked
against the content digest the worker stamped on it.  A failed attempt
— worker exception, kill, hang past the deadline, corrupt or truncated
delta — walks a bounded ladder:

1. **re-dispatch** the shard to the pool (up to ``max_retries`` times),
   respawning the shared pool first when a health-check finds dead
   workers (bounded by ``max_pool_respawns``);
2. **inline re-execution** of just that shard in the coordinator
   process (the ``shard_inline`` degradation step);
3. if even that fails, the whole parse degrades to a plain **serial
   parse** on the coordinator — the ladder's last rung always yields
   the same fixed point.

Every rung records a structured fault event (``rt.fault_events``, also
exported in the run report) and a ``procs.*`` metric; the highest
degradation step taken is summarized in ``rt.degradation``.  The
deterministic fault-injection harness that proves all of this works
lives in :mod:`repro.runtime.faults`; see ``docs/ROBUSTNESS.md``.

Shared CFG state never crosses a process boundary mid-construction:
cross-shard block splits, noreturn waves and tail-call correction all
happen on the coordinator, where the five invariants hold trivially
(single writer).  What parallelizes is the dominant decode + traversal
work; what stays serial is boundary reconciliation plus the correction
phase — the same split the paper's finalization phase makes.

``makespan`` reports wall-clock seconds covering the shard fan-out and
the merge, making this the backend for real-parallelism columns in the
benchmark harness.  Worker metrics are merged into the coordinator
registry under a ``workers.`` prefix; the fan-out, merge, frontier
replay and every recovery action are observable via the ``procs.*``
metrics (catalog: ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import (
    InjectedFaultError,
    PoolBrokenError,
    RuntimeConfigError,
    ShardFailedError,
    ShardTimeoutError,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultProbe,
    corrupt_delta,
    delta_digest,
    delta_error,
    inject_inline_entry,
    inject_worker_entry,
)
from repro.runtime.serial import SerialRuntime

#: Worker-side cache of binaries rebuilt from task transports, keyed by
#: the coordinator's payload token (one token per parse).  Values are
#: ``(binary, shm_handle_or_None)`` — a binary built over a
#: shared-memory view must keep its mapping handle alive, and eviction
#: releases the handle via :func:`repro.runtime.shm.release_view`.
#: LRU-ordered: a hit moves the token to the back, and when the cache
#: is full only the *least recently used* entry is evicted — never the
#: whole cache, which would drop the binary currently being parsed
#: mid-run and force every later task of the parse to rebuild it.
_WORKER_BINARIES: "OrderedDict[int, tuple]" = OrderedDict()

#: Maximum binaries kept alive per worker process.
_WORKER_BINARY_CAP = 8

#: Coordinator-side token source: a fresh token per sharded parse keys
#: the worker caches so a reused pool never mixes up binaries.
_PAYLOAD_TOKENS = itertools.count(1)

#: The cached worker pool shared by all :class:`ProcsRuntime` instances
#: in this process.  Pool creation (fork + bootstrap) costs an order of
#: magnitude more than dispatching a round of shard tasks, so the pool
#: outlives individual parses and is only recreated when the requested
#: start method or size changes.  Any pool error discards it.
_POOL: Any | None = None
_POOL_KEY: tuple[str, int] | None = None

#: Upper bound of the last shard's ownership claim: the claims partition
#: ``[0, ADDRESS_CEILING)`` so every address has exactly one owner.
ADDRESS_CEILING = 1 << 63

#: Default per-shard deadline (seconds) for one pool attempt.  Generous
#: — it exists to bound hangs, not to race healthy workers.
DEFAULT_SHARD_DEADLINE = 60.0

#: Default bound on per-shard pool re-dispatches after the first attempt.
DEFAULT_MAX_RETRIES = 2

#: Default bound on shared-pool respawns within one parse.
DEFAULT_MAX_POOL_RESPAWNS = 2

#: The degradation ladder, least to most degraded.  ``rt.degradation``
#: reports the highest level a parse reached.
DEGRADATION_LEVELS = ("none", "shard_inline", "inline", "serial")


class PoolAdmission:
    """A resizable counting gate over concurrent shard fan-outs.

    Multi-binary drivers (the corpus driver in :mod:`repro.corpus`)
    run many parses concurrently against the one shared worker pool; an
    unbounded fan-out of fan-outs turns a single wedged binary into
    pool-wide head-of-line blocking.  Every :class:`ProcsRuntime`
    handed the same ``admission`` object must win a slot before its
    fan-out touches the pool (or the inline path — the gate bounds
    coordinator load too) and releases it when the fan-out completes on
    any ladder rung.

    ``resize`` lets a supervisor shrink the window mid-run (the corpus
    ladder's first rung): in-flight fan-outs are never preempted, but
    no new one is admitted until the active count drops below the new
    limit.  Waits are observable via ``procs.admission.*`` metrics on
    the waiting runtime.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise RuntimeConfigError("admission limit must be >= 1")
        self._cond = threading.Condition()
        self._limit = limit
        self._active = 0

    @property
    def limit(self) -> int:
        with self._cond:
            return self._limit

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    def resize(self, limit: int) -> None:
        if limit < 1:
            raise RuntimeConfigError("admission limit must be >= 1")
        with self._cond:
            self._limit = limit
            self._cond.notify_all()

    def acquire(self) -> int:
        """Block until a slot is free; returns nanoseconds waited."""
        t0 = None
        with self._cond:
            while self._active >= self._limit:
                if t0 is None:
                    t0 = time.perf_counter_ns()
                self._cond.wait()
            self._active += 1
        return 0 if t0 is None else time.perf_counter_ns() - t0

    def release(self) -> None:
        with self._cond:
            if self._active > 0:
                self._active -= 1
            self._cond.notify_all()


@dataclass(frozen=True)
class ShardTask:
    """One batched parse task: a contiguous region of entry addresses
    plus the shard's ownership claim ``[owned_lo, owned_hi)``.

    Deliberately plain data (ints only) so payloads pickle cheaply; the
    binary travels alongside as a transport descriptor (a shared-memory
    segment name, or raw image bytes on the fallback path) and is
    rebuilt at most once per worker per parse (cached by payload token).
    """

    shard_id: int
    seeds: tuple[int, ...]
    owned_lo: int = 0
    owned_hi: int = ADDRESS_CEILING

    @property
    def lo(self) -> int:
        return self.seeds[0]

    @property
    def hi(self) -> int:
        return self.seeds[-1]


@dataclass
class ShardDelta:
    """A worker's pickling-friendly contribution to the merged parse."""

    shard_id: int
    #: functions the shard's closure discovered: (addr, name, via)
    entries: list[tuple[int, str, str]] = field(default_factory=list)
    #: the worker's decode cache: addr -> decoded Instruction
    insns: dict[int, Any] = field(default_factory=dict)
    #: (functions, blocks, edges) of the worker-local fragment
    counts: tuple[int, int, int] = (0, 0, 0)
    #: worker registry snapshot (``repro.metrics/1``), or None
    metrics: dict | None = None
    #: traceback text if the shard failed (handled by the retry ladder)
    error: str | None = None
    #: the structural export the coordinator merges
    #: (:class:`repro.core.shard_merge.CFGFragment`)
    fragment: Any | None = None
    #: 1-based attempt this delta was produced on (retries re-stamp it;
    #: the coordinator keeps the highest attempt per shard)
    attempt: int = 1
    #: content digest stamped by the worker (``faults.delta_digest``);
    #: the coordinator recomputes it to detect corrupt/truncated deltas
    digest: str | None = None


def shard_regions(entries: list[int], n_shards: int
                  ) -> list[tuple[int, ...]]:
    """Split sorted entry addresses into contiguous regions balanced by
    estimated byte size.

    Each shard's parse cost tracks the bytes it decodes, not how many
    entries it was seeded with — a shard of three huge functions can
    dwarf one with fifty stubs.  The split therefore walks the sorted
    entries greedily, giving each shard an even share of the remaining
    address *span* (``hi - lo`` as the byte-size estimate) while leaving
    at least one entry per remaining shard.  Returns at most
    ``n_shards`` non-empty tuples; address order is preserved so each
    shard covers one contiguous slice of the text region (locality for
    the worker's decode cache, and the contiguity the ownership claims
    rely on).
    """
    ent = sorted(entries)
    if not ent:
        return []
    n = max(1, min(n_shards, len(ent)))
    out: list[tuple[int, ...]] = []
    idx = 0
    for i in range(n):
        remaining = n - i
        if remaining == 1:
            out.append(tuple(ent[idx:]))
            break
        # Even split of the remaining byte span across remaining shards.
        target = ent[idx] + (ent[-1] - ent[idx]) / remaining
        j = idx + 1
        max_j = len(ent) - (remaining - 1)
        while j < max_j and ent[j] < target:
            j += 1
        out.append(tuple(ent[idx:j]))
        idx = j
    return out


def _run_shard(binary, options, task: ShardTask, enable_metrics: bool,
               attempt: int = 1,
               plan: FaultPlan | None = None) -> ShardDelta:
    """Parse one shard fragment on a private serial runtime; used by
    both the pool workers and the in-process fallback.

    Stamps the delta with its attempt number and a content digest so
    the coordinator can detect corruption and deduplicate retries.
    """
    from repro.core.parallel_parser import ParallelParser
    from repro.core.shard_merge import export_fragment

    probe = (FaultProbe(plan, task.shard_id, attempt)
             if plan is not None and plan else None)
    # The decode cache is part of the delta, so force it on.
    opts = replace(options, thread_local_cache=True, fault_probe=probe)
    rt = SerialRuntime(enable_metrics=enable_metrics)
    parser = ParallelParser(binary, rt, opts,
                            seed_entries=list(task.seeds),
                            owned_range=(task.owned_lo, task.owned_hi))
    rt.run(parser.execute_fragment)
    frag = export_fragment(parser, task.shard_id, attempt)
    delta = ShardDelta(
        shard_id=task.shard_id,
        entries=[(addr, name, via)
                 for addr, name, _entry, _sym, via, _status
                 in frag.functions],
        insns=dict(parser.local_decode_cache()),
        counts=(len(frag.functions), len(frag.blocks), len(frag.edges)),
        metrics=rt.metrics.snapshot() if enable_metrics else None,
        fragment=frag,
        attempt=attempt,
    )
    delta.digest = delta_digest(delta)
    return delta


def _worker_binary(token: int, transport: tuple):
    """The worker's cached binary for ``token``, rebuilding on a miss.

    ``transport`` is ``("shm", name, size)`` — attach the coordinator's
    shared-memory segment and deserialize zero-copy over a read-only
    view — or ``("bytes", image_bytes)``, the legacy pickled-payload
    fallback.  LRU discipline: a hit refreshes the token's recency; a
    miss evicts only the least-recently-used entry once the cache is
    full, so the binary of an in-flight parse is never dropped by a
    newer parse's arrival.  Evicting a shared-memory-backed binary
    releases its mapping handle.
    """
    entry = _WORKER_BINARIES.get(token)
    if entry is not None:
        _WORKER_BINARIES.move_to_end(token)
        return entry[0]
    from repro.binary.loader import load_image
    from repro.runtime.shm import attach_view, release_view

    while len(_WORKER_BINARIES) >= _WORKER_BINARY_CAP:
        _tok, (_binary, handle) = _WORKER_BINARIES.popitem(last=False)
        if handle is not None:
            release_view(handle)
    if transport[0] == "shm":
        view, handle = attach_view(transport[1], transport[2])
        binary = load_image(view)
    else:
        binary = load_image(transport[1])
        handle = None
    _WORKER_BINARIES[token] = (binary, handle)
    return binary


def _parse_shard(payload: tuple) -> ShardDelta:
    """Pool task: run one shard in this worker process.

    The payload carries the image transport alongside the task — the
    name of the published shared-memory segment, or the pickled image
    bytes when shared memory was unavailable — so a long-lived pool
    needs no per-binary initializer; the rebuilt binary is cached per
    payload token, so only the first task of a parse to reach each
    worker pays the rebuild.

    Failures are returned as data (not raised) so one bad shard cannot
    poison the pool; the coordinator feeds them to the retry ladder.
    The payload's fault plan drives the deterministic injection sites
    (entry faults before the parse, delta faults after the digest).
    """
    token, transport, options, enable_metrics, task, attempt, plan = \
        payload
    try:
        inject_worker_entry(plan, task.shard_id, attempt)
        binary = _worker_binary(token, transport)
        delta = _run_shard(binary, options, task, enable_metrics,
                           attempt, plan)
        return corrupt_delta(plan, delta, task.shard_id, attempt)
    except Exception:
        import traceback

        return ShardDelta(shard_id=task.shard_id, attempt=attempt,
                          error=traceback.format_exc())


#: Serializes creation/teardown of the shared pool: multi-binary
#: drivers run concurrent fan-outs from supervisor threads, and an
#: unguarded create/create race would terminate a pool another fan-out
#: is mid-dispatch on.
_POOL_GUARD = threading.RLock()


def _shared_pool(ctx, processes: int):
    """Return the cached worker pool, recreating it on a config change."""
    global _POOL, _POOL_KEY
    with _POOL_GUARD:
        key = (ctx.get_start_method(), processes)
        if _POOL is not None and _POOL_KEY == key:
            return _POOL
        shutdown_pool()
        _POOL = ctx.Pool(processes=processes)
        _POOL_KEY = key
        return _POOL


def shutdown_pool() -> None:
    """Discard the cached worker pool (also safe when none exists)."""
    global _POOL, _POOL_KEY
    with _POOL_GUARD:
        if _POOL is not None:
            _POOL.terminate()
            _POOL.join()
        _POOL = None
        _POOL_KEY = None


# Tear the pool down before interpreter shutdown dismantles the modules
# its finalizer needs (a GC'd Pool tries to message its workers).
atexit.register(shutdown_pool)


class ProcsRuntime(SerialRuntime):
    """Process-pool backend: parallel shard parses + serial merge.

    The coordinator side is a single-worker serial scheduler (tasks,
    locks and charges behave exactly like :class:`SerialRuntime`), so
    any algorithm written against the Runtime API runs correctly,
    merely without in-process parallelism.  Real parallelism comes from
    :meth:`sharded_parse`, which ``parse_binary`` dispatches to
    automatically for this backend.

    Fault-tolerance knobs (see the module docstring for the ladder):

    - ``shard_deadline`` — seconds one pool attempt of one shard may
      take before it counts as hung (None disables the deadline);
    - ``parse_budget`` — overall wall-clock budget for the pool fan-out;
      once exhausted, remaining shards run inline immediately;
    - ``max_retries`` — pool re-dispatches per shard after the first
      attempt, before the shard is re-executed inline;
    - ``max_pool_respawns`` — shared-pool rebuilds per parse;
    - ``fault_plan`` — deterministic fault injection
      (:class:`~repro.runtime.faults.FaultPlan`); defaults to the plan
      named by ``REPRO_FAULT_PLAN`` if set;
    - ``admission`` — optional shared :class:`PoolAdmission` gate: the
      fan-out must win a slot before dispatching (multi-binary drivers
      bound their in-flight window with one gate across runtimes).
    """

    def __init__(self, n_workers: int, cost_model=None,
                 enable_metrics: bool = True,
                 start_method: str | None = None,
                 in_process: bool = False,
                 shard_deadline: float | None = DEFAULT_SHARD_DEADLINE,
                 parse_budget: float | None = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 max_pool_respawns: int = DEFAULT_MAX_POOL_RESPAWNS,
                 fault_plan: FaultPlan | None = None,
                 admission: PoolAdmission | None = None):
        if n_workers < 1:
            raise RuntimeConfigError("need at least one worker")
        if shard_deadline is not None and shard_deadline <= 0:
            raise RuntimeConfigError("shard_deadline must be positive")
        if parse_budget is not None and parse_budget <= 0:
            raise RuntimeConfigError("parse_budget must be positive")
        if max_retries < 0:
            raise RuntimeConfigError("max_retries must be >= 0")
        if max_pool_respawns < 0:
            raise RuntimeConfigError("max_pool_respawns must be >= 0")
        super().__init__(cost_model=cost_model,
                         enable_metrics=enable_metrics)
        self.num_workers = n_workers
        #: multiprocessing start method ("fork", "spawn", ...); None =
        #: platform default.
        self.start_method = start_method
        #: run shards inline in the coordinator process (test/debug
        #: escape hatch; also the automatic fallback when no pool can
        #: be created, e.g. in sandboxes without semaphore support).
        self.in_process = in_process
        self.shard_deadline = shard_deadline
        self.parse_budget = parse_budget
        self.max_retries = max_retries
        self.max_pool_respawns = max_pool_respawns
        self.fault_plan = (fault_plan if fault_plan is not None
                           else FaultPlan.from_env())
        #: optional shared :class:`PoolAdmission` gate bounding how many
        #: fan-outs (across runtimes) may be in flight at once.
        self.admission = admission
        self._t0: float | None = None
        self._elapsed: float | None = None
        self._budget_t0: float | None = None
        self._pool_creations = 0
        self._health_checks = 0
        #: the live StreamingMerge while a fan-out is collecting, so the
        #: dispatch loop can install fragments as deltas land.
        self._merge: Any | None = None
        #: deltas of the last sharded parse (observability/tests).
        self.shard_deltas: list[ShardDelta] | None = None
        #: structured record of every fault observed by the last parse
        #: (exported in the ``repro.run-report/1`` ``fault_events``
        #: section; see docs/ROBUSTNESS.md for the event kinds).
        self.fault_events: list[dict] = []
        #: the typed errors behind those events
        #: (:class:`~repro.errors.ShardTimeoutError` /
        #: :class:`~repro.errors.ShardFailedError` /
        #: :class:`~repro.errors.PoolBrokenError`), in occurrence order.
        self.shard_errors: list[Exception] = []
        #: highest degradation step of the last parse plus the ordered
        #: step log ({"level": ..., "steps": [...]}).
        self.degradation: dict = {"level": "none", "steps": []}

    # -- Runtime API ---------------------------------------------------------

    def run(self, fn, *args):
        if self._t0 is None:
            self._t0 = time.perf_counter()
        try:
            return super().run(fn, *args)
        finally:
            self._elapsed = time.perf_counter() - self._t0

    @property
    def makespan(self) -> float:
        """Wall-clock seconds of the last run (incl. the shard fan-out)."""
        if self._elapsed is None:
            raise RuntimeConfigError("makespan available only after run()")
        return self._elapsed

    # -- fault bookkeeping ---------------------------------------------------

    def _record_fault(self, kind: str, shard: int | None, attempt: int,
                      action: str) -> None:
        self.fault_events.append({"kind": kind, "shard": shard,
                                  "attempt": attempt, "action": action})

    def _degrade(self, level: str, reason: str) -> None:
        """Record one step down the ladder (monotone level, full log)."""
        self.degradation["steps"].append(f"{level}: {reason}")
        if (DEGRADATION_LEVELS.index(level)
                > DEGRADATION_LEVELS.index(self.degradation["level"])):
            self.degradation["level"] = level
        self.metrics.inc(f"procs.degraded_to.{level}")

    # -- sharded CFG construction ------------------------------------------------

    def sharded_parse(self, binary, options=None):
        """Parse ``binary`` with the fragment/merge pipeline (module doc).

        ``parse_binary`` calls this automatically when handed a
        :class:`ProcsRuntime`; the signature of the result is identical
        to a serial parse of the same binary.  Never hangs and never
        fails on a recoverable fault: shard attempts are bounded by
        deadlines and retries, and an unrecoverable sharded pipeline
        degrades to a plain serial parse (the fault and the degradation
        step are recorded in ``fault_events`` / ``degradation`` and the
        ``procs.*`` metrics).
        """
        from repro.core.parallel_parser import ParseOptions

        opts = options or ParseOptions()
        if opts.partial_finalize and \
                os.environ.get("REPRO_NO_PARTIAL_FINALIZE") == "1":
            # Resolve the kill switch coordinator-side, *before* fan-out:
            # long-lived forked pool workers must not read the env
            # themselves (they inherited the environment of whatever
            # parse first created the pool).
            opts = replace(opts, partial_finalize=False)
        self._t0 = time.perf_counter()
        self._budget_t0 = time.monotonic()
        self.fault_events = []
        self.shard_errors = []
        self.degradation = {"level": "none", "steps": []}
        self._pool_creations = 0
        self._health_checks = 0
        try:
            return self._sharded_parse_inner(binary, opts)
        except Exception as exc:
            # Last rung of the ladder: nothing recoverable remains in
            # the sharded pipeline, so produce the fixed point the only
            # way that cannot involve shards — a plain serial parse.
            self._record_fault(
                "sharded_parse_failed",
                getattr(exc, "shard_id", None),
                getattr(exc, "attempt", 0) or 0, "serial")
            self._degrade("serial",
                          f"{type(exc).__name__}: {exc}")
            return self._serial_fallback(binary, opts)

    def _sharded_parse_inner(self, binary, opts):
        shards = shard_regions(binary.entry_addresses(), self.num_workers)
        tasks = []
        for i, seeds in enumerate(shards):
            lo = 0 if i == 0 else seeds[0]
            hi = (shards[i + 1][0] if i + 1 < len(shards)
                  else ADDRESS_CEILING)
            tasks.append(ShardTask(i, seeds, lo, hi))
        # The whole pipeline — fan-out included — runs inside this
        # runtime's single run() so the streaming merge can install
        # fragments while the dispatch loop is still collecting.
        return self.run(
            lambda: self._fan_out_and_merge(binary, opts, tasks))

    def _fan_out_and_merge(self, binary, opts, tasks: list[ShardTask]):
        from repro.core.shard_merge import StreamingMerge

        m = self.metrics
        merge = StreamingMerge(binary, self, opts)
        self._merge = merge
        try:
            t_pool = time.perf_counter_ns()
            deltas = self._map_shards(binary, opts, tasks)
            if m.enabled:
                fanout_wall = time.perf_counter_ns() - t_pool
                m.observe("procs.fanout_wall_ns", fanout_wall)
                m.observe("procs.phase.fanout_wall_ns", fanout_wall)
            self.shard_deltas = deltas

            # Validate every delta and keep one per shard: a timed-out
            # attempt whose result straggles in after its retry can hand
            # the coordinator duplicate deltas — the highest attempt wins.
            best: dict[int, ShardDelta] = {}
            for d in deltas:
                reason = delta_error(d)
                if reason is not None:
                    raise ShardFailedError(
                        d.shard_id if d is not None else -1,
                        getattr(d, "attempt", 0) or 0, reason)
                cur = best.get(d.shard_id)
                if cur is None or d.attempt > cur.attempt:
                    best[d.shard_id] = d
            if m.enabled and len(deltas) != len(best):
                m.inc("procs.duplicate_deltas", len(deltas) - len(best))

            shard_insns_total = 0
            for d in sorted(best.values(), key=lambda d: d.shard_id):
                shard_insns_total += len(d.insns)
                if m.enabled:
                    m.inc("procs.shard_functions", d.counts[0])
                    m.inc("procs.shard_insns_decoded", len(d.insns))
                    if d.metrics is not None:
                        m.merge_snapshot(d.metrics, prefix="workers.")
                # Shards the dispatch loop already streamed in are
                # skipped by accept(); inline-rung and in-process deltas
                # install here, batch style.
                merge.accept(d.fragment, d.insns)
            if m.enabled:
                m.inc("procs.shards", len(tasks))
                m.inc("procs.merged_cache_insns", len(merge.warm))
                # Cross-shard redundancy: instructions decoded by more
                # than one worker (ownership keeps this low; it is not
                # zero, since linear overrun and frontier-adjacent code
                # decode twice).
                m.inc("procs.duplicate_insns",
                      shard_insns_total - len(merge.warm))

            return merge.finish()
        finally:
            self._merge = None

    def _serial_fallback(self, binary, opts):
        """The ladder's last rung: a plain serial parse on this runtime."""
        from repro.core.parallel_parser import ParallelParser

        # The failed merge may have consumed this runtime's single run
        # and left queued tasks behind; reset the scheduler state (the
        # clock keeps accumulating — the fallback is part of the parse).
        self._ran = False
        self._queue.clear()
        parser = ParallelParser(binary, self, opts)
        return self.run(parser.execute)

    # -- pool plumbing -------------------------------------------------------------

    def _map_shards(self, binary, opts, tasks: list[ShardTask]
                    ) -> list[ShardDelta]:
        if self.admission is None:
            return self._map_shards_gated(binary, opts, tasks)
        waited_ns = self.admission.acquire()
        m = self.metrics
        if m.enabled:
            m.inc("procs.admission.acquires")
            if waited_ns:
                m.inc("procs.admission.waits")
                m.observe("procs.admission.wait_wall_ns", waited_ns)
        try:
            return self._map_shards_gated(binary, opts, tasks)
        finally:
            self.admission.release()

    def _map_shards_gated(self, binary, opts, tasks: list[ShardTask]
                          ) -> list[ShardDelta]:
        if self.in_process or len(tasks) <= 1:
            return self._map_inline(binary, opts, tasks)
        try:
            ctx = (multiprocessing.get_context(self.start_method)
                   if self.start_method else multiprocessing.get_context())
            # More worker processes than hardware threads cannot run in
            # parallel; they only add fork, scheduling and IPC overhead,
            # so the pool is capped at the cores this process may use.
            try:
                cores = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                cores = os.cpu_count() or 1
            procs = max(1, min(self.num_workers, len(tasks), cores))
            pool = self._create_pool(ctx, procs)
        except Exception as exc:
            # No usable pool (sandboxed semaphores, missing start
            # method, injected pool fault): degrade to in-process
            # shards — same code path including the structural merge,
            # no parallelism, observable via the fallback counter.
            shutdown_pool()
            self.metrics.inc("procs.pool_fallback")
            self.shard_errors.append(PoolBrokenError(
                f"pool creation failed: {type(exc).__name__}: {exc}",
                None, self._pool_creations))
            self._record_fault("pool_create_failed", None,
                               self._pool_creations, "inline")
            self._degrade("inline",
                          f"no worker pool: {type(exc).__name__}: {exc}")
            return self._map_inline(binary, opts, tasks)
        token = next(_PAYLOAD_TOKENS)
        segment, transport = self._publish_image(binary)
        try:
            return self._dispatch(ctx, procs, pool, token, transport,
                                  opts, binary, tasks)
        finally:
            # The one unlink point: runs on success, on every ladder
            # rung and on the exception that triggers the serial
            # fallback, so no parse outcome can leak the segment.
            if segment is not None:
                segment.unlink()

    def _publish_image(self, binary):
        """Publish the image for the fan-out: ``(segment, transport)``.

        The happy path creates one shared-memory segment and returns a
        ``("shm", name, size)`` transport; the caller owns the segment
        and must unlink it when the fan-out is over.  When shared
        memory is unavailable (or the ``shm`` fault site fires) the
        transport downgrades to ``("bytes", image_bytes)`` — per-task
        pickled payloads, sharded parse otherwise unchanged — and the
        downgrade is recorded as a fault event.
        """
        from repro.runtime.shm import ImageSegment

        m = self.metrics
        payload = binary.image.to_bytes()
        fallback: Exception | None = None
        if self.fault_plan is not None and self.fault_plan.fires(
                "shm", None, 1):
            fallback = InjectedFaultError("shm", None, 1)
        else:
            try:
                segment = ImageSegment.create(payload)
            except Exception as exc:
                fallback = exc
        if fallback is not None:
            m.inc("procs.shm.fallback")
            self._record_fault("shm_unavailable", None, 1, "pickle")
            return None, ("bytes", payload)
        if m.enabled:
            m.inc("procs.shm.segments")
            m.inc("procs.shm.bytes", segment.size)
        return segment, ("shm", segment.name, segment.size)

    def _create_pool(self, ctx, procs: int):
        """One pool creation attempt (initial or respawn), counted so
        the ``pool`` fault site can fail a specific creation."""
        self._pool_creations += 1
        if self.fault_plan is not None and self.fault_plan.fires(
                "pool", None, self._pool_creations):
            raise InjectedFaultError("pool", None, self._pool_creations)
        return _shared_pool(ctx, procs)

    def _pool_healthy(self, pool) -> bool:
        """True if every pool worker process is alive.

        The ``health`` fault site can force a negative verdict to
        exercise the respawn path deterministically.
        """
        if self.fault_plan is not None and self.fault_plan.fires(
                "health", None, self._health_checks):
            return False
        workers = getattr(pool, "_pool", None)
        if workers is None:
            return True
        return bool(workers) and all(p.is_alive() for p in workers)

    def _remaining_budget(self) -> float | None:
        if self.parse_budget is None or self._budget_t0 is None:
            return None
        return self.parse_budget - (time.monotonic() - self._budget_t0)

    def _wait_timeout(self) -> float | None:
        """Timeout for one AsyncResult wait: the shard deadline capped
        by whatever remains of the overall parse budget."""
        budget = self._remaining_budget()
        if budget is None:
            return self.shard_deadline
        budget = max(budget, 0.0)
        if self.shard_deadline is None:
            return budget
        return min(self.shard_deadline, budget)

    def _dispatch(self, ctx, procs: int, pool, token: int,
                  transport: tuple, opts, binary,
                  tasks: list[ShardTask]) -> list[ShardDelta]:
        """The fault-tolerant fan-out: per-task AsyncResults with
        deadlines, bounded retries, pool self-healing, inline rung.

        Collection is *streaming*: each round prefers whichever shard
        has already finished, and a valid delta is installed into the
        live :class:`StreamingMerge` immediately, so rebuild/install
        work overlaps the still-running stragglers instead of waiting
        for the slowest shard.
        """
        m = self.metrics
        plan = self.fault_plan
        deltas: dict[int, ShardDelta] = {}
        attempt = {t.shard_id: 0 for t in tasks}
        pending = list(tasks)
        respawns = 0

        while pending and pool is not None:
            inflight = []
            for t in pending:
                attempt[t.shard_id] += 1
                if attempt[t.shard_id] > 1:
                    m.inc("procs.retry.dispatch")
                payload = (token, transport, opts, m.enabled, t,
                           attempt[t.shard_id], plan)
                inflight.append(
                    (t, pool.apply_async(_parse_shard, (payload,))))

            retry: list[ShardTask] = []
            pool_broken = False
            budget_out = False
            waiting = list(inflight)
            while waiting:
                if pool_broken or budget_out:
                    retry.extend(t for t, _ar in waiting)
                    break
                # Prefer a result that is already in: its merge work
                # runs while the stragglers keep parsing.  With none
                # ready, block on the oldest dispatch.
                i = next((i for i, (_t, ar) in enumerate(waiting)
                          if ar.ready()), 0)
                t, ar = waiting.pop(i)
                a = attempt[t.shard_id]
                try:
                    delta = ar.get(timeout=self._wait_timeout())
                except multiprocessing.TimeoutError:
                    remaining = self._remaining_budget()
                    if remaining is not None and remaining <= 0:
                        budget_out = True
                        self._record_fault("parse_budget_exceeded",
                                           t.shard_id, a, "inline")
                    else:
                        m.inc("procs.shard_timeout")
                        self.shard_errors.append(ShardTimeoutError(
                            t.shard_id, a, self.shard_deadline or 0.0))
                        self._record_fault("shard_timeout", t.shard_id,
                                           a, "retry")
                    retry.append(t)
                    continue
                except Exception as exc:
                    # The pool machinery itself failed (broken result
                    # queue, unpicklable state): everything uncollected
                    # this round needs a fresh pool.
                    pool_broken = True
                    self.shard_errors.append(PoolBrokenError(
                        f"pool error collecting shard {t.shard_id}: "
                        f"{type(exc).__name__}: {exc}",
                        t.shard_id, self._pool_creations))
                    self._record_fault("pool_error", t.shard_id, a,
                                       "respawn")
                    retry.append(t)
                    continue
                reason = delta_error(delta)
                if reason is None:
                    deltas[t.shard_id] = delta
                    if self._merge is not None:
                        self._merge.accept(delta.fragment, delta.insns,
                                           streamed=bool(waiting))
                else:
                    m.inc("procs.shard_failed")
                    self.shard_errors.append(
                        ShardFailedError(t.shard_id, a, reason))
                    self._record_fault("shard_failed", t.shard_id, a,
                                       "retry")
                    retry.append(t)

            if not retry:
                pending = []
                break

            # Something failed this round: check the pool before
            # deciding how to retry.  Dead workers (a kill can take the
            # result-queue reader down with it) mean the pool must be
            # respawned — bounded, so a persistently dying pool cannot
            # loop forever.
            self._health_checks += 1
            if not pool_broken and not self._pool_healthy(pool):
                pool_broken = True
                self.shard_errors.append(PoolBrokenError(
                    "pool health-check found dead workers",
                    None, self._pool_creations))
                self._record_fault("pool_unhealthy", None,
                                   self._health_checks, "respawn")

            if budget_out:
                self._degrade("inline", "overall parse budget exhausted")
                pool = None
            elif pool_broken:
                respawns += 1
                shutdown_pool()
                if respawns > self.max_pool_respawns:
                    self._record_fault("pool_broken", None,
                                       self._pool_creations, "inline")
                    self._degrade("inline",
                                  "pool respawn budget exhausted")
                    pool = None
                else:
                    m.inc("procs.pool_respawn")
                    self._record_fault("pool_respawn", None, respawns,
                                       "retry")
                    try:
                        pool = self._create_pool(ctx, procs)
                    except Exception as exc:
                        self._record_fault("pool_create_failed", None,
                                           self._pool_creations,
                                           "inline")
                        self._degrade(
                            "inline",
                            f"pool respawn failed: "
                            f"{type(exc).__name__}: {exc}")
                        pool = None

            pending = []
            for t in retry:
                if pool is not None and attempt[t.shard_id] <= self.max_retries:
                    pending.append(t)
                else:
                    deltas[t.shard_id] = self._run_shard_final(
                        binary, opts, t, attempt[t.shard_id] + 1)

        # Pool abandoned with shards still outstanding: inline rung.
        for t in pending:
            deltas[t.shard_id] = self._run_shard_final(
                binary, opts, t, attempt[t.shard_id] + 1)
        return [deltas[t.shard_id] for t in tasks]

    def _run_shard_final(self, binary, opts, task: ShardTask,
                         attempt_no: int) -> ShardDelta:
        """Inline re-execution of one shard — the ladder rung between
        pool retries and the whole-parse serial fallback.  A failure
        here raises :class:`ShardFailedError`, which ``sharded_parse``
        converts into the serial rung."""
        m = self.metrics
        m.inc("procs.retry.inline")
        self._record_fault("shard_inline", task.shard_id, attempt_no,
                           "inline")
        self._degrade("shard_inline",
                      f"shard {task.shard_id} re-executed inline")
        try:
            inject_inline_entry(self.fault_plan, task.shard_id,
                                attempt_no)
            delta = _run_shard(binary, opts, task, m.enabled,
                               attempt_no, self.fault_plan)
        except Exception as exc:
            raise ShardFailedError(
                task.shard_id, attempt_no,
                f"inline re-execution failed: "
                f"{type(exc).__name__}: {exc}") from exc
        delta = corrupt_delta(self.fault_plan, delta, task.shard_id,
                              attempt_no)
        reason = delta_error(delta)
        if reason is not None:
            raise ShardFailedError(task.shard_id, attempt_no, reason)
        return delta

    def _map_inline(self, binary, opts, tasks: list[ShardTask]
                    ) -> list[ShardDelta]:
        """Run every shard in the coordinator process.

        The fast path (no fault plan, no failures) is one `_run_shard`
        per task; faults — injected or real — get the same bounded
        per-shard retry as the pool path, and a shard that exhausts its
        inline attempts raises :class:`ShardFailedError` so the parse
        degrades to the serial rung.
        """
        m = self.metrics
        plan = self.fault_plan
        out: list[ShardDelta] = []
        for t in tasks:
            delta = None
            reason: str | None = None
            for a in range(1, self.max_retries + 2):
                if a > 1:
                    m.inc("procs.retry.inline")
                try:
                    inject_inline_entry(plan, t.shard_id, a)
                    d = _run_shard(binary, opts, t, m.enabled, a, plan)
                    d = corrupt_delta(plan, d, t.shard_id, a)
                    reason = delta_error(d)
                except Exception as exc:
                    reason = f"{type(exc).__name__}: {exc}"
                if reason is None:
                    delta = d
                    break
                m.inc("procs.shard_failed")
                self.shard_errors.append(
                    ShardFailedError(t.shard_id, a, reason))
                self._record_fault("shard_failed", t.shard_id, a,
                                   "retry")
            if delta is None:
                raise ShardFailedError(t.shard_id, self.max_retries + 1,
                                       reason or "unknown failure")
            out.append(delta)
        return out
