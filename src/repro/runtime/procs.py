"""Process-parallel runtime backend: sharded CFG construction.

The ``threads`` backend proves the algorithm race-free but cannot show
real wall-clock scaling under CPython's GIL.  This backend gets genuine
hardware parallelism from ``multiprocessing``: a pool of worker
*processes* parses disjoint shards of the binary, and the coordinator
stitches the resulting CFG *fragments* into the exact serial fixed
point with a structural merge — no work is replayed except the
cross-shard steps the workers could not perform.

Execution model
---------------
1. **Shard + claim** — the binary's candidate entry addresses (``F0``)
   are split into contiguous regions balanced by estimated byte size
   (:func:`shard_regions`), and the regions' bounds partition the whole
   address space into ownership claims: shard *i* owns
   ``[first_entry_i, first_entry_{i+1})`` (the first claim is extended
   down to 0, the last up to the address ceiling).  Contiguity keeps
   each worker's decode working set local, mirroring the paper's
   Section 6.4 cache story.
2. **Fragment parse (parallel)** — shard tasks are dispatched to a
   long-lived worker pool shared by every :class:`ProcsRuntime` in the
   process (pool creation dwarfs a dispatch round, so the pool is only
   rebuilt when its start method or size changes, and is sized to the
   cores actually available).  Each worker rebuilds the binary from the
   pickled image bytes shipped with the task — cached per parse token,
   so only the first task to reach a worker pays the rebuild — then
   runs the ordinary parallel parser in
   *fragment mode*: expansion proceeds normally inside the shard's
   claim, while every step that would touch a foreign address — direct
   or conditional branches out of the region, calls to foreign callees,
   released fall-throughs into another shard, linear overrun past the
   boundary — is recorded as a flat
   :class:`~repro.core.parallel_parser.FrontierRecord` instead of
   executed.  The claim protocol is what makes fan-out cheap: a shard
   never re-parses another shard's call closure.
3. **Structural merge (coordinator)** — each worker returns a
   pickle-friendly :class:`ShardDelta` carrying its
   :class:`~repro.core.shard_merge.CFGFragment` (flat block, edge,
   function, jump-table and noreturn records) plus its decode cache.
   The coordinator (:func:`repro.core.shard_merge.merge_fragments`)
   rebuilds and installs the union of the fragments — block starts,
   functions and noreturn records are disjoint by ownership; block
   *ends* are reconciled through the real invariant-4 split cascade
   where shards disagree — then replays only the frontier records
   through the ordinary parser machinery, runs the wave fixed point
   (including the cycle rule fragments must skip) and the ordinary
   ``finalize`` correction phase.  Schedule independence of the
   invariant machinery (battery-proven) makes the result equal the
   serial fixed point byte-for-byte.

Shared CFG state never crosses a process boundary mid-construction:
cross-shard block splits, noreturn waves and tail-call correction all
happen on the coordinator, where the five invariants hold trivially
(single writer).  What parallelizes is the dominant decode + traversal
work; what stays serial is boundary reconciliation plus the correction
phase — the same split the paper's finalization phase makes.

``makespan`` reports wall-clock seconds covering the shard fan-out and
the merge, making this the backend for real-parallelism columns in the
benchmark harness.  Worker metrics are merged into the coordinator
registry under a ``workers.`` prefix; the fan-out, merge and frontier
replay are observable via the ``procs.*`` metrics (catalog:
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import RuntimeConfigError
from repro.runtime.serial import SerialRuntime

#: Worker-side cache of binaries rebuilt from payload image bytes,
#: keyed by the coordinator's payload token (one token per parse).
_WORKER_BINARIES: dict[int, Any] = {}

#: Coordinator-side token source: a fresh token per sharded parse keys
#: the worker caches so a reused pool never mixes up binaries.
_PAYLOAD_TOKENS = itertools.count(1)

#: The cached worker pool shared by all :class:`ProcsRuntime` instances
#: in this process.  Pool creation (fork + bootstrap) costs an order of
#: magnitude more than dispatching a round of shard tasks, so the pool
#: outlives individual parses and is only recreated when the requested
#: start method or size changes.  Any pool error discards it.
_POOL: Any | None = None
_POOL_KEY: tuple[str, int] | None = None

#: Upper bound of the last shard's ownership claim: the claims partition
#: ``[0, ADDRESS_CEILING)`` so every address has exactly one owner.
ADDRESS_CEILING = 1 << 63


@dataclass(frozen=True)
class ShardTask:
    """One batched parse task: a contiguous region of entry addresses
    plus the shard's ownership claim ``[owned_lo, owned_hi)``.

    Deliberately plain data (ints only) so payloads pickle cheaply; the
    binary travels alongside as image bytes and is rebuilt at most once
    per worker per parse (cached by payload token).
    """

    shard_id: int
    seeds: tuple[int, ...]
    owned_lo: int = 0
    owned_hi: int = ADDRESS_CEILING

    @property
    def lo(self) -> int:
        return self.seeds[0]

    @property
    def hi(self) -> int:
        return self.seeds[-1]


@dataclass
class ShardDelta:
    """A worker's pickling-friendly contribution to the merged parse."""

    shard_id: int
    #: functions the shard's closure discovered: (addr, name, via)
    entries: list[tuple[int, str, str]] = field(default_factory=list)
    #: the worker's decode cache: addr -> decoded Instruction
    insns: dict[int, Any] = field(default_factory=dict)
    #: (functions, blocks, edges) of the worker-local fragment
    counts: tuple[int, int, int] = (0, 0, 0)
    #: worker registry snapshot (``repro.metrics/1``), or None
    metrics: dict | None = None
    #: traceback text if the shard failed (re-raised by the coordinator)
    error: str | None = None
    #: the structural export the coordinator merges
    #: (:class:`repro.core.shard_merge.CFGFragment`)
    fragment: Any | None = None


def shard_regions(entries: list[int], n_shards: int
                  ) -> list[tuple[int, ...]]:
    """Split sorted entry addresses into contiguous regions balanced by
    estimated byte size.

    Each shard's parse cost tracks the bytes it decodes, not how many
    entries it was seeded with — a shard of three huge functions can
    dwarf one with fifty stubs.  The split therefore walks the sorted
    entries greedily, giving each shard an even share of the remaining
    address *span* (``hi - lo`` as the byte-size estimate) while leaving
    at least one entry per remaining shard.  Returns at most
    ``n_shards`` non-empty tuples; address order is preserved so each
    shard covers one contiguous slice of the text region (locality for
    the worker's decode cache, and the contiguity the ownership claims
    rely on).
    """
    ent = sorted(entries)
    if not ent:
        return []
    n = max(1, min(n_shards, len(ent)))
    out: list[tuple[int, ...]] = []
    idx = 0
    for i in range(n):
        remaining = n - i
        if remaining == 1:
            out.append(tuple(ent[idx:]))
            break
        # Even split of the remaining byte span across remaining shards.
        target = ent[idx] + (ent[-1] - ent[idx]) / remaining
        j = idx + 1
        max_j = len(ent) - (remaining - 1)
        while j < max_j and ent[j] < target:
            j += 1
        out.append(tuple(ent[idx:j]))
        idx = j
    return out


def _run_shard(binary, options, task: ShardTask,
               enable_metrics: bool) -> ShardDelta:
    """Parse one shard fragment on a private serial runtime; used by
    both the pool workers and the in-process fallback."""
    from repro.core.parallel_parser import ParallelParser
    from repro.core.shard_merge import export_fragment

    # The decode cache is part of the delta, so force it on.
    opts = replace(options, thread_local_cache=True)
    rt = SerialRuntime(enable_metrics=enable_metrics)
    parser = ParallelParser(binary, rt, opts,
                            seed_entries=list(task.seeds),
                            owned_range=(task.owned_lo, task.owned_hi))
    rt.run(parser.execute_fragment)
    frag = export_fragment(parser, task.shard_id)
    return ShardDelta(
        shard_id=task.shard_id,
        entries=[(addr, name, via)
                 for addr, name, _entry, _sym, via, _status
                 in frag.functions],
        insns=dict(parser.local_decode_cache()),
        counts=(len(frag.functions), len(frag.blocks), len(frag.edges)),
        metrics=rt.metrics.snapshot() if enable_metrics else None,
        fragment=frag,
    )


def _parse_shard(payload: tuple) -> ShardDelta:
    """Pool task: run one shard in this worker process.

    The payload carries the pickled image bytes alongside the task so a
    long-lived pool needs no per-binary initializer; the rebuilt binary
    is cached per payload token, so only the first task of a parse to
    reach each worker pays the rebuild.

    Failures are returned as data (not raised) so one bad shard cannot
    poison the pool; the coordinator re-raises with context.
    """
    token, image_bytes, options, enable_metrics, task = payload
    try:
        binary = _WORKER_BINARIES.get(token)
        if binary is None:
            from repro.binary.loader import load_image

            if len(_WORKER_BINARIES) >= 8:
                _WORKER_BINARIES.clear()
            binary = _WORKER_BINARIES[token] = load_image(image_bytes)
        return _run_shard(binary, options, task, enable_metrics)
    except Exception:  # pragma: no cover - exercised via error delta test
        import traceback

        return ShardDelta(shard_id=task.shard_id,
                          error=traceback.format_exc())


def _shared_pool(ctx, processes: int):
    """Return the cached worker pool, recreating it on a config change."""
    global _POOL, _POOL_KEY
    key = (ctx.get_start_method(), processes)
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_pool()
    _POOL = ctx.Pool(processes=processes)
    _POOL_KEY = key
    return _POOL


def shutdown_pool() -> None:
    """Discard the cached worker pool (also safe when none exists)."""
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
    _POOL = None
    _POOL_KEY = None


# Tear the pool down before interpreter shutdown dismantles the modules
# its finalizer needs (a GC'd Pool tries to message its workers).
atexit.register(shutdown_pool)


class ProcsRuntime(SerialRuntime):
    """Process-pool backend: parallel shard parses + serial merge.

    The coordinator side is a single-worker serial scheduler (tasks,
    locks and charges behave exactly like :class:`SerialRuntime`), so
    any algorithm written against the Runtime API runs correctly,
    merely without in-process parallelism.  Real parallelism comes from
    :meth:`sharded_parse`, which ``parse_binary`` dispatches to
    automatically for this backend.
    """

    def __init__(self, n_workers: int, cost_model=None,
                 enable_metrics: bool = True,
                 start_method: str | None = None,
                 in_process: bool = False):
        if n_workers < 1:
            raise RuntimeConfigError("need at least one worker")
        super().__init__(cost_model=cost_model,
                         enable_metrics=enable_metrics)
        self.num_workers = n_workers
        #: multiprocessing start method ("fork", "spawn", ...); None =
        #: platform default.
        self.start_method = start_method
        #: run shards inline in the coordinator process (test/debug
        #: escape hatch; also the automatic fallback when no pool can
        #: be created, e.g. in sandboxes without semaphore support).
        self.in_process = in_process
        self._t0: float | None = None
        self._elapsed: float | None = None
        #: deltas of the last sharded parse (observability/tests).
        self.shard_deltas: list[ShardDelta] | None = None

    # -- Runtime API ---------------------------------------------------------

    def run(self, fn, *args):
        if self._t0 is None:
            self._t0 = time.perf_counter()
        try:
            return super().run(fn, *args)
        finally:
            self._elapsed = time.perf_counter() - self._t0

    @property
    def makespan(self) -> float:
        """Wall-clock seconds of the last run (incl. the shard fan-out)."""
        if self._elapsed is None:
            raise RuntimeConfigError("makespan available only after run()")
        return self._elapsed

    # -- sharded CFG construction ------------------------------------------------

    def sharded_parse(self, binary, options=None):
        """Parse ``binary`` with the fragment/merge pipeline (module doc).

        ``parse_binary`` calls this automatically when handed a
        :class:`ProcsRuntime`; the signature of the result is identical
        to a serial parse of the same binary.
        """
        from repro.core.parallel_parser import ParseOptions
        from repro.core.shard_merge import merge_fragments

        opts = options or ParseOptions()
        self._t0 = time.perf_counter()
        m = self.metrics
        shards = shard_regions(binary.entry_addresses(), self.num_workers)
        tasks = []
        for i, seeds in enumerate(shards):
            lo = 0 if i == 0 else seeds[0]
            hi = (shards[i + 1][0] if i + 1 < len(shards)
                  else ADDRESS_CEILING)
            tasks.append(ShardTask(i, seeds, lo, hi))

        t_pool = time.perf_counter_ns()
        deltas = self._map_shards(binary, opts, tasks)
        if m.enabled:
            m.observe("procs.fanout_wall_ns",
                      time.perf_counter_ns() - t_pool)
        self.shard_deltas = deltas

        warm: dict[int, Any] = {}
        fragments = []
        shard_insns_total = 0
        for d in sorted(deltas, key=lambda d: d.shard_id):
            if d.error is not None:
                raise RuntimeConfigError(
                    f"shard {d.shard_id} failed:\n{d.error}")
            shard_insns_total += len(d.insns)
            warm.update(d.insns)
            if d.fragment is not None:
                fragments.append(d.fragment)
            if m.enabled:
                m.inc("procs.shard_functions", d.counts[0])
                m.inc("procs.shard_insns_decoded", len(d.insns))
                if d.metrics is not None:
                    m.merge_snapshot(d.metrics, prefix="workers.")
        if m.enabled:
            m.inc("procs.shards", len(tasks))
            m.inc("procs.merged_cache_insns", len(warm))
            # Cross-shard redundancy: instructions decoded by more than
            # one worker (ownership keeps this low; it is not zero, since
            # linear overrun and frontier-adjacent code decode twice).
            m.inc("procs.duplicate_insns", shard_insns_total - len(warm))

        return self.run(lambda: merge_fragments(binary, self, opts,
                                                fragments, warm))

    # -- pool plumbing -------------------------------------------------------------

    def _map_shards(self, binary, opts, tasks: list[ShardTask]
                    ) -> list[ShardDelta]:
        if self.in_process or len(tasks) <= 1:
            return self._map_inline(binary, opts, tasks)
        try:
            ctx = (multiprocessing.get_context(self.start_method)
                   if self.start_method else multiprocessing.get_context())
            # More worker processes than hardware threads cannot run in
            # parallel; they only add fork, scheduling and IPC overhead,
            # so the pool is capped at the cores this process may use.
            try:
                cores = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                cores = os.cpu_count() or 1
            procs = max(1, min(self.num_workers, len(tasks), cores))
            pool = _shared_pool(ctx, procs)
            token = next(_PAYLOAD_TOKENS)
            image_bytes = binary.image.to_bytes()
            payloads = [(token, image_bytes, opts, self.metrics.enabled, t)
                        for t in tasks]
            return pool.map(_parse_shard, payloads)
        except Exception:
            # No usable pool (sandboxed semaphores, missing start
            # method, pickling restrictions): degrade to in-process
            # shards — same code path including the structural merge,
            # no parallelism, observable via the fallback counter.
            shutdown_pool()
            self.metrics.inc("procs.pool_fallback")
            return self._map_inline(binary, opts, tasks)

    def _map_inline(self, binary, opts, tasks: list[ShardTask]
                    ) -> list[ShardDelta]:
        return [_run_shard(binary, opts, t, self.metrics.enabled)
                for t in tasks]
