"""Process-parallel runtime backend: sharded CFG construction.

The ``threads`` backend proves the algorithm race-free but cannot show
real wall-clock scaling under CPython's GIL.  This backend gets genuine
hardware parallelism from ``multiprocessing``: a pool of worker
*processes* executes batched parse tasks over sharded binary regions,
and a merge step on the coordinator re-derives the exact serial fixed
point from the workers' deltas.

Execution model
---------------
1. **Shard** — the binary's candidate entry addresses (``F0``) are
   split into contiguous address regions, one batch per worker
   (:func:`shard_regions`).  Contiguity keeps each worker's decode
   working set local, mirroring the paper's Section 6.4 cache story.
2. **Speculative expansion (parallel)** — each worker process rebuilds
   the binary from the pickled image bytes (sent once per worker via
   the pool initializer), then runs the ordinary serial parser seeded
   with its shard's entries.  This performs the expansion-phase
   operations (``O_BER``/``O_DEC``/…) for the shard's call closure and
   fills a per-worker decode cache — the process analogue of the
   thread-local instruction cache of Section 6.4.
3. **Merge (coordinator)** — each worker returns a pickling-friendly
   :class:`ShardDelta`: the functions it discovered, its decode cache,
   parse statistics and a metrics snapshot.  The coordinator unions the
   decode caches and replays them through the *existing*
   expansion/correction machinery (:class:`ParallelParser` on the
   coordinator's serial scheduler, warm-started with the merged cache).
   Because the replay is exactly the deterministic serial algorithm —
   the cache only removes redundant decoding, never changes a decoded
   instruction — the final graph equals the serial fixed point
   byte-for-byte (the differential battery pins this down).

Shared CFG state never crosses a process boundary mid-construction:
cross-shard block splits, noreturn waves and tail-call correction all
happen in the merge replay, where the five invariants hold trivially
(single writer).  What parallelizes is the dominant decode + traversal
work; what stays serial is the correction phase — the same split the
paper's finalization phase makes.

``makespan`` reports wall-clock seconds covering the shard fan-out and
the merge replay, making this the backend for real-parallelism columns
in the benchmark harness.  Worker metrics are merged into the
coordinator registry under a ``workers.`` prefix; the fan-out itself is
observable via the ``procs.*`` metrics (catalog:
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import RuntimeConfigError
from repro.runtime.serial import SerialRuntime

#: Per-process worker state installed by :func:`_worker_init`.
_WORKER: dict[str, Any] | None = None


@dataclass(frozen=True)
class ShardTask:
    """One batched parse task: a contiguous region of entry addresses.

    Deliberately plain data (ints only) so payloads pickle cheaply; the
    binary itself travels once per worker via the pool initializer, not
    once per task.
    """

    shard_id: int
    seeds: tuple[int, ...]

    @property
    def lo(self) -> int:
        return self.seeds[0]

    @property
    def hi(self) -> int:
        return self.seeds[-1]


@dataclass
class ShardDelta:
    """A worker's pickling-friendly contribution to the merged parse."""

    shard_id: int
    #: functions the shard's closure discovered: (addr, name, via)
    entries: list[tuple[int, str, str]] = field(default_factory=list)
    #: the worker's decode cache: addr -> decoded Instruction
    insns: dict[int, Any] = field(default_factory=dict)
    #: (functions, blocks, edges) of the worker-local parse
    counts: tuple[int, int, int] = (0, 0, 0)
    #: worker registry snapshot (``repro.metrics/1``), or None
    metrics: dict | None = None
    #: traceback text if the shard failed (re-raised by the coordinator)
    error: str | None = None


def shard_regions(entries: list[int], n_shards: int
                  ) -> list[tuple[int, ...]]:
    """Split sorted entry addresses into contiguous, balanced regions.

    Returns at most ``n_shards`` non-empty tuples; address order is
    preserved so each shard covers one contiguous slice of the text
    region (locality for the worker's decode cache).
    """
    ent = sorted(entries)
    if not ent:
        return []
    n = max(1, min(n_shards, len(ent)))
    base, extra = divmod(len(ent), n)
    out: list[tuple[int, ...]] = []
    idx = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(tuple(ent[idx:idx + size]))
        idx += size
    return out


def _run_shard(binary, options, task: ShardTask,
               enable_metrics: bool) -> ShardDelta:
    """Parse one shard on a private serial runtime; used by both the
    pool workers and the in-process fallback."""
    from repro.core.parallel_parser import ParallelParser

    # The delta *is* the decode cache, so force it on for the shard.
    opts = replace(options, thread_local_cache=True)
    rt = SerialRuntime(enable_metrics=enable_metrics)
    parser = ParallelParser(binary, rt, opts,
                            seed_entries=list(task.seeds))
    cfg = rt.run(parser.execute)
    s = cfg.stats
    return ShardDelta(
        shard_id=task.shard_id,
        entries=[(f.addr, f.name, f.discovered_via)
                 for f in cfg.functions()],
        insns=dict(parser.local_decode_cache()),
        counts=(s.n_functions, s.n_blocks, s.n_edges),
        metrics=rt.metrics.snapshot() if enable_metrics else None,
    )


def _worker_init(image_bytes: bytes, options, enable_metrics: bool) -> None:
    """Pool initializer: rebuild the binary once per worker process."""
    from repro.binary.loader import load_image

    global _WORKER
    _WORKER = {
        "binary": load_image(image_bytes),
        "options": options,
        "enable_metrics": enable_metrics,
    }


def _parse_shard(task: ShardTask) -> ShardDelta:
    """Pool task: run one shard in this worker process.

    Failures are returned as data (not raised) so one bad shard cannot
    poison the pool; the coordinator re-raises with context.
    """
    assert _WORKER is not None, "pool initializer did not run"
    try:
        return _run_shard(_WORKER["binary"], _WORKER["options"], task,
                          _WORKER["enable_metrics"])
    except Exception:  # pragma: no cover - exercised via error delta test
        import traceback

        return ShardDelta(shard_id=task.shard_id,
                          error=traceback.format_exc())


class ProcsRuntime(SerialRuntime):
    """Process-pool backend: parallel shard parses + serial merge.

    The coordinator side is a single-worker serial scheduler (tasks,
    locks and charges behave exactly like :class:`SerialRuntime`), so
    any algorithm written against the Runtime API runs correctly,
    merely without in-process parallelism.  Real parallelism comes from
    :meth:`sharded_parse`, which ``parse_binary`` dispatches to
    automatically for this backend.
    """

    def __init__(self, n_workers: int, cost_model=None,
                 enable_metrics: bool = True,
                 start_method: str | None = None,
                 in_process: bool = False):
        if n_workers < 1:
            raise RuntimeConfigError("need at least one worker")
        super().__init__(cost_model=cost_model,
                         enable_metrics=enable_metrics)
        self.num_workers = n_workers
        #: multiprocessing start method ("fork", "spawn", ...); None =
        #: platform default.
        self.start_method = start_method
        #: run shards inline in the coordinator process (test/debug
        #: escape hatch; also the automatic fallback when no pool can
        #: be created, e.g. in sandboxes without semaphore support).
        self.in_process = in_process
        self._t0: float | None = None
        self._elapsed: float | None = None
        #: deltas of the last sharded parse (observability/tests).
        self.shard_deltas: list[ShardDelta] | None = None

    # -- Runtime API ---------------------------------------------------------

    def run(self, fn, *args):
        if self._t0 is None:
            self._t0 = time.perf_counter()
        try:
            return super().run(fn, *args)
        finally:
            self._elapsed = time.perf_counter() - self._t0

    @property
    def makespan(self) -> float:
        """Wall-clock seconds of the last run (incl. the shard fan-out)."""
        if self._elapsed is None:
            raise RuntimeConfigError("makespan available only after run()")
        return self._elapsed

    # -- sharded CFG construction ------------------------------------------------

    def sharded_parse(self, binary, options=None):
        """Parse ``binary`` with the shard/merge pipeline (module doc).

        ``parse_binary`` calls this automatically when handed a
        :class:`ProcsRuntime`; the signature of the result is identical
        to a serial parse of the same binary.
        """
        from repro.core.parallel_parser import ParallelParser, ParseOptions

        opts = options or ParseOptions()
        self._t0 = time.perf_counter()
        m = self.metrics
        shards = shard_regions(binary.entry_addresses(), self.num_workers)
        tasks = [ShardTask(i, seeds) for i, seeds in enumerate(shards)]

        t_pool = time.perf_counter_ns()
        deltas = self._map_shards(binary, opts, tasks)
        if m.enabled:
            m.observe("procs.fanout_wall_ns",
                      time.perf_counter_ns() - t_pool)
        self.shard_deltas = deltas

        warm: dict[int, Any] = {}
        for d in sorted(deltas, key=lambda d: d.shard_id):
            if d.error is not None:
                raise RuntimeConfigError(
                    f"shard {d.shard_id} failed:\n{d.error}")
            warm.update(d.insns)
            if m.enabled:
                m.inc("procs.shard_functions", d.counts[0])
                m.inc("procs.shard_insns_decoded", len(d.insns))
                if d.metrics is not None:
                    m.merge_snapshot(d.metrics, prefix="workers.")
        if m.enabled:
            m.inc("procs.shards", len(tasks))
            m.inc("procs.merged_cache_insns", len(warm))

        parser = ParallelParser(binary, self, opts, warm_cache=warm)
        return self.run(parser.execute)

    # -- pool plumbing -------------------------------------------------------------

    def _map_shards(self, binary, opts, tasks: list[ShardTask]
                    ) -> list[ShardDelta]:
        if self.in_process or len(tasks) <= 1:
            return self._map_inline(binary, opts, tasks)
        try:
            ctx = (multiprocessing.get_context(self.start_method)
                   if self.start_method else multiprocessing.get_context())
            with ctx.Pool(
                processes=min(self.num_workers, len(tasks)),
                initializer=_worker_init,
                initargs=(binary.image.to_bytes(), opts,
                          self.metrics.enabled),
            ) as pool:
                return pool.map(_parse_shard, tasks)
        except Exception:
            # No usable pool (sandboxed semaphores, missing start
            # method, pickling restrictions): degrade to in-process
            # shards — same code path, no parallelism, observable via
            # the fallback counter.
            self.metrics.inc("procs.pool_fallback")
            return self._map_inline(binary, opts, tasks)

    def _map_inline(self, binary, opts, tasks: list[ShardTask]
                    ) -> list[ShardDelta]:
        return [_run_shard(binary, opts, t, self.metrics.enabled)
                for t in tasks]
