"""Deterministic fault injection for the procs backend.

The fault-tolerance layer in :mod:`repro.runtime.procs` (per-shard
deadlines, retry ladder, pool self-healing, serial fallback) is only
trustworthy if every failure mode can be provoked *on demand and
reproducibly*.  This module is the harness: a :class:`FaultPlan` names
the faults to inject — keyed by injection **site**, **shard id** and
**attempt number**, never by wall-clock time or randomness — and the
procs runtime threads it through the coordinator, the pool payloads and
the worker processes.  Two runs with the same plan inject the same
faults at the same points.

Injection sites (grammar: ``site[@shard][xattempts][=value]``, entries
joined by commas; full format in ``docs/ROBUSTNESS.md``):

========== ============================================================
``exc``    worker raises :class:`~repro.errors.InjectedFaultError`
           before parsing its shard (``_parse_shard`` in procs.py)
``frag``   the parser raises mid-fragment-parse
           (``ParallelParser.execute_fragment`` in parallel_parser.py)
``delay``  worker sleeps ``value`` seconds before parsing (trips the
           per-shard deadline when ``value`` exceeds it)
``kill``   worker process dies via ``os._exit`` (pool workers only;
           inline execution treats it as ``exc``)
``corrupt`` the returned :class:`ShardDelta`'s fragment is mutated
           after its digest was computed (detected by the coordinator)
``truncate`` the returned delta's fragment is dropped entirely
``pool``   pool creation fails (``attempt`` counts creations: 1 is the
           initial pool, each respawn increments)
``health`` the coordinator's pool health-check reports the pool dead
           (drives the respawn path without real worker carnage)
``shm``    publishing the image to shared memory fails on the
           coordinator, forcing the legacy pickled-bytes transport
           (a transport downgrade, not a degradation-ladder rung:
           the parse stays fully sharded)
``wave``   the parser raises at the top of a noreturn-wave iteration
           (``ParallelParser._noreturn_waves``); fires in workers,
           where waves run over shard-local functions
========== ============================================================

Corpus-level sites (consumed by :mod:`repro.corpus`, where the
"shard" key is reinterpreted per site — the binary index, a flush
ordinal, or a completion ordinal):

=================== ===================================================
``binary-crash``    the corpus driver's per-binary analysis raises
                    before synthesis (``@i`` scopes it to binary *i*,
                    ``xN`` to that binary's first N attempts)
``binary-hang``     the per-binary analysis sleeps ``value`` seconds
                    before synthesis — trips the binary deadline when
                    ``value`` exceeds it
``journal-torn``    the journal flush writes only a prefix of its batch
                    (tearing the final record mid-line), fsyncs, then
                    kills the coordinator via ``os._exit`` (``@k``
                    scopes it to the k-th flush of the run, 1-based)
``coordinator-kill`` the coordinator dies via ``os._exit`` immediately
                    after recording a binary outcome, without flushing
                    the journal buffer (``@n`` scopes it to the n-th
                    outcome of the run, 1-based)
=================== ===================================================

The two process-killing sites (``journal-torn``, ``coordinator-kill``)
fire *per invocation*: their ordinals restart when ``repro corpus
--resume`` replays the journal, so a resume must be given a plan
without them (or it dies at the same point again).  The ``binary-*``
sites key on the binary index and attempt, both of which the journal
replay reconstructs — keep them in the resume's plan so a re-analyzed
binary walks the identical retry sequence.

A spec fires while ``attempt <= attempts`` (default 1), so a fault that
fires on the first attempt and not the second exercises exactly one
rung of the retry ladder; ``x99`` effectively never stops firing and
pushes execution down to the serial rung.

The plan also rides in worker payloads (it is a frozen, pickle-friendly
dataclass) and — for CLI / CI use — can come from the environment via
``REPRO_FAULT_PLAN``.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import InjectedFaultError, RuntimeConfigError

#: Every legal injection site, in ladder order.  The hyphenated tail
#: entries are corpus-level sites consumed by :mod:`repro.corpus`.
SITES = ("exc", "frag", "delay", "kill", "corrupt", "truncate",
         "pool", "health", "shm", "wave",
         "binary-crash", "binary-hang", "journal-torn",
         "coordinator-kill")

#: Environment variable consulted by :meth:`FaultPlan.from_env`.
ENV_VAR = "REPRO_FAULT_PLAN"

_SPEC = re.compile(
    r"^(?P<site>[a-z][a-z-]*)"
    r"(?:@(?P<shard>\d+|\*))?"
    r"(?:x(?P<attempts>\d+))?"
    r"(?:=(?P<value>\d+(?:\.\d+)?))?$")


@dataclass(frozen=True)
class FaultSpec:
    """One fault directive: fire at ``site`` for ``shard`` (None = any)
    while the attempt number is ``<= attempts``."""

    site: str
    shard: int | None = None
    attempts: int = 1
    value: float = 0.0

    def matches(self, site: str, shard: int | None, attempt: int) -> bool:
        return (self.site == site
                and (self.shard is None or shard is None
                     or self.shard == shard)
                and attempt <= self.attempts)

    def to_entry(self) -> str:
        """The grammar form of this spec (``from_spec`` round-trips it)."""
        out = self.site
        if self.shard is not None:
            out += f"@{self.shard}"
        if self.attempts != 1:
            out += f"x{self.attempts}"
        if self.value:
            out += f"={self.value:g}"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, deterministic set of fault directives.

    ``fires(site, shard, attempt)`` is a pure function of its arguments
    — the plan holds no mutable counters, so the same plan object can
    be consulted from the coordinator and (pickled) from every worker
    and always agree.
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse the ``site[@shard][xattempts][=value]`` grammar."""
        specs = []
        for entry in filter(None, (e.strip()
                                   for e in text.replace(";", ",")
                                   .split(","))):
            m = _SPEC.match(entry)
            if m is None:
                raise RuntimeConfigError(
                    f"bad fault spec entry {entry!r} "
                    f"(want site[@shard][xattempts][=value])")
            site = m.group("site")
            if site not in SITES:
                raise RuntimeConfigError(
                    f"unknown fault site {site!r} (one of {SITES})")
            shard = m.group("shard")
            specs.append(FaultSpec(
                site=site,
                shard=None if shard in (None, "*") else int(shard),
                attempts=int(m.group("attempts") or 1),
                value=float(m.group("value") or 0.0)))
        return cls(tuple(specs))

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULT_PLAN``, or None if unset."""
        text = (environ if environ is not None else os.environ).get(ENV_VAR)
        return cls.from_spec(text) if text else None

    def fires(self, site: str, shard: int | None = None,
              attempt: int = 1) -> FaultSpec | None:
        """The first spec matching (site, shard, attempt), or None."""
        for spec in self.specs:
            if spec.matches(site, shard, attempt):
                return spec
        return None

    def to_spec(self) -> str:
        return ",".join(s.to_entry() for s in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)


@dataclass(frozen=True)
class FaultProbe:
    """A plan bound to one (shard, attempt) — the form that travels into
    the parser so deep sites (``frag``) can consult it without the
    parser knowing about shard scheduling."""

    plan: FaultPlan
    shard_id: int
    attempt: int

    def raise_if(self, site: str) -> None:
        if self.plan.fires(site, self.shard_id, self.attempt):
            raise InjectedFaultError(site, self.shard_id, self.attempt)


# ------------------------------------------------------- injection hooks

def inject_worker_entry(plan: FaultPlan | None, shard_id: int,
                        attempt: int) -> None:
    """Worker-side entry faults: kill, delay, exc (in that order)."""
    if not plan:
        return
    if plan.fires("kill", shard_id, attempt):
        # A hard worker death: no exception, no cleanup, no delta.
        os._exit(86)
    spec = plan.fires("delay", shard_id, attempt)
    if spec is not None:
        time.sleep(spec.value)
    if plan.fires("exc", shard_id, attempt):
        raise InjectedFaultError("exc", shard_id, attempt)


def inject_inline_entry(plan: FaultPlan | None, shard_id: int,
                        attempt: int) -> None:
    """Coordinator-side entry faults for inline shard execution.

    ``kill`` must not take the coordinator down, so it degrades to an
    exception here — the ladder still sees a failed attempt.
    """
    if not plan:
        return
    spec = plan.fires("delay", shard_id, attempt)
    if spec is not None:
        time.sleep(spec.value)
    for site in ("kill", "exc"):
        if plan.fires(site, shard_id, attempt):
            raise InjectedFaultError(site, shard_id, attempt)


def inject_binary_entry(plan: FaultPlan | None, index: int,
                        attempt: int) -> None:
    """Corpus-driver per-binary entry faults: hang, then crash.

    The ``shard`` key of the spec grammar is the binary index here, and
    ``attempt`` the binary's attempt number — both reconstructed
    identically by a journal replay, so a resumed run re-injects the
    same faults for any binary it re-analyzes.  The hang is a plain
    sleep on the supervisor thread; the binary deadline is enforced by
    the corpus scheduler, which abandons the attempt and lets the
    sleeping thread die with the process.
    """
    if not plan:
        return
    spec = plan.fires("binary-hang", index, attempt)
    if spec is not None:
        time.sleep(spec.value)
    if plan.fires("binary-crash", index, attempt):
        raise InjectedFaultError("binary-crash", index, attempt)


def maybe_kill_coordinator(plan: FaultPlan | None, ordinal: int) -> None:
    """The ``coordinator-kill`` site: die hard after the ``ordinal``-th
    recorded binary outcome, before the journal buffer is flushed.

    ``os._exit`` skips atexit handlers — including the shm sweep — so
    this models a real ``kill -9``/OOM kill: buffered journal records
    are lost (the resume re-analyzes them) and any published segments
    leak until the next run's orphan sweep reaps them.
    """
    if plan and plan.fires("coordinator-kill", ordinal, 1):
        os._exit(86)


def corrupt_delta(plan: FaultPlan | None, delta: Any, shard_id: int,
                  attempt: int) -> Any:
    """Delta faults, applied *after* the digest was computed so the
    coordinator's integrity check is what catches them."""
    if not plan:
        return delta
    if plan.fires("truncate", shard_id, attempt):
        delta.fragment = None
    elif plan.fires("corrupt", shard_id, attempt) \
            and delta.fragment is not None:
        frag = delta.fragment
        frag.blocks = frag.blocks[:len(frag.blocks) // 2]
        frag.edges = frag.edges[:len(frag.edges) // 2]
    return delta


# ------------------------------------------------------- delta integrity

def delta_digest(delta: Any) -> str:
    """Deterministic content digest of a :class:`ShardDelta`.

    Covers the fragment's flat records and the decode-cache keys — the
    data the structural merge consumes.  Computed by the worker right
    after the fragment export and recomputed by the coordinator; any
    mismatch (bit rot, truncation, an injected ``corrupt`` fault) makes
    the delta invalid and sends the shard down the retry ladder.
    """
    frag = delta.fragment
    payload = repr((
        delta.shard_id,
        delta.attempt,
        sorted(delta.insns),
        delta.counts,
        frag.owned,
        frag.blocks,
        frag.ends,
        frag.edges,
        frag.functions,
        [repr(j) for j in frag.jump_tables],
        frag.noreturn,
        [repr(r) for r in frag.frontier],
        sorted(frag.reached.items()),
        frag.n_splits,
        repr(getattr(frag, "partial", None)),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def delta_error(delta: Any) -> str | None:
    """Why a delta is unusable, or None if it is intact.

    The coordinator runs this on every collected delta; a non-None
    reason counts as a failed attempt exactly like a worker exception.
    """
    if delta is None:
        return "no delta returned"
    if delta.error is not None:
        return f"worker exception:\n{delta.error}"
    if delta.fragment is None:
        return "truncated delta: fragment missing"
    if delta.digest is None:
        return "delta carries no integrity digest"
    if delta_digest(delta) != delta.digest:
        return "corrupt delta: content digest mismatch"
    return None
