"""Single-worker runtime: the serial baseline backend.

Tasks execute immediately-ish (FIFO from a local queue at group waits);
``charge`` advances a single virtual clock.  Used by the serial reference
parser and as the 1-worker sanity point of every speedup curve (the
virtual-time backend with one worker produces identical clocks — a tested
property).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any

from repro.errors import RuntimeConfigError
from repro.runtime.api import Runtime, RtLock, TaskGroup
from repro.runtime.cost import DEFAULT_COSTS, CostModel
from repro.runtime.metrics import NULL_METRICS, MetricsRegistry


class _NullLock(RtLock):
    """Uncontended lock for a single worker; detects self-deadlock."""

    __slots__ = ("_held",)

    def __init__(self) -> None:
        self._held = False

    def acquire(self) -> None:
        if self._held:
            raise RuntimeConfigError(
                "serial runtime: recursive acquisition of a non-reentrant lock"
            )
        self._held = True

    def release(self) -> None:
        if not self._held:
            raise RuntimeConfigError("serial runtime: release of unheld lock")
        self._held = False


class _SerialGroup(TaskGroup):
    __slots__ = ("_rt", "_pending")

    def __init__(self, rt: "SerialRuntime") -> None:
        self._rt = rt
        self._pending = 0

    def spawn(self, fn: Callable[..., Any], *args: Any) -> None:
        rt = self._rt
        rt.charge(rt.cost.spawn)
        rt.metrics.inc("rt.tasks_spawned")
        self._pending += 1
        rt._queue.append((self, fn, args, rt._clock))

    def wait(self) -> None:
        rt = self._rt
        while self._pending > 0:
            if not rt._queue:
                raise RuntimeConfigError(
                    "serial runtime: group wait with no runnable tasks"
                )
            group, fn, args, spawned_at = rt._queue.popleft()
            rt._note_pop(spawned_at)
            rt.charge(rt.cost.task_pop)
            try:
                fn(*args)
            finally:
                group._pending -= 1


class SerialRuntime(Runtime):
    """One worker, one clock; see module docstring."""

    def __init__(self, cost_model: CostModel | None = None,
                 enable_metrics: bool = True) -> None:
        self.num_workers = 1
        self.cost = cost_model or DEFAULT_COSTS
        self._clock = 0
        self.metrics = (MetricsRegistry("cycles", clock=lambda: self._clock)
                        if enable_metrics else NULL_METRICS)
        self._queue: deque[
            tuple[_SerialGroup, Callable[..., Any], tuple, int]] = deque()
        self._ran = False

    def _note_pop(self, spawned_at: int) -> None:
        m = self.metrics
        if m.enabled:
            m.inc("rt.tasks_executed")
            m.observe("rt.task_queue_delay", self._clock - spawned_at)

    def charge(self, units: int) -> None:
        self._clock += units

    def now(self) -> int:
        return self._clock

    def worker_id(self) -> int:
        return 0

    def make_lock(self) -> RtLock:
        return _NullLock()

    def make_internal_lock(self) -> RtLock:
        return _NullLock()

    def task_group(self) -> TaskGroup:
        return _SerialGroup(self)

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        if self._ran:
            raise RuntimeConfigError("runtime instances are single-use")
        self._ran = True
        result = fn(*args)
        # Drain detached tasks spawned outside any awaited group.
        while self._queue:
            group, f, a, spawned_at = self._queue.popleft()
            self._note_pop(spawned_at)
            self.charge(self.cost.task_pop)
            try:
                f(*a)
            finally:
                group._pending -= 1
        return result

    @property
    def makespan(self) -> int:
        return self._clock
