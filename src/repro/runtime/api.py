"""Backend-independent runtime interface.

Algorithm code (the parallel CFG parser, hpcstruct, BinFeat) is written once
against this interface and runs unchanged on the serial, real-thread and
virtual-time backends.  The interface deliberately mirrors the programming
model the paper uses: OpenMP-style tasks with groups (Section 6.3 replaces
``parallel for`` with task parallelism), dynamic parallel-for with sorted
items (Listing 7), and entry-level locks (Listings 4–6).

Shared-state discipline
-----------------------
All mutation of cross-task shared state must happen while holding a lock
obtained from :meth:`Runtime.make_lock` (or inside a
:class:`~repro.runtime.conchash.ConcurrentHashMap` accessor, which is the
same thing).  The virtual-time backend serializes execution and orders these
critical sections in virtual time; the thread backend runs them under real
locks.  Code that follows the discipline behaves identically on both.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.metrics import NULL_METRICS, MetricsRegistry


class RtLock(abc.ABC):
    """A mutual-exclusion lock usable as a context manager."""

    @abc.abstractmethod
    def acquire(self) -> None: ...

    @abc.abstractmethod
    def release(self) -> None: ...

    def __enter__(self) -> "RtLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class TaskGroup(abc.ABC):
    """A dynamic set of tasks awaited together (OpenMP taskgroup analog).

    Tasks may spawn further tasks into their own group, which is how the
    parallel parser implements "launch a new task as soon as we discover a
    new function to analyze" (Section 6.3).
    """

    @abc.abstractmethod
    def spawn(self, fn: Callable[..., Any], *args: Any) -> None:
        """Enqueue ``fn(*args)`` as a task of this group."""

    @abc.abstractmethod
    def wait(self) -> None:
        """Block until every task of the group (incl. descendants) is done.

        The waiting worker participates in executing queued tasks while it
        waits (help-first semantics), so a group wait never idles a worker
        that could be doing work.
        """


@dataclass(frozen=True, slots=True)
class TraceInterval:
    """One traced activity interval of one worker (for Figure 2)."""

    worker: int
    start: int
    end: int
    tag: str


@dataclass(frozen=True, slots=True)
class PhaseSpan:
    """Virtual-time span of a named application phase."""

    name: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Trace:
    """Execution trace collected by the virtual-time runtime."""

    n_workers: int
    intervals: list[TraceInterval] = field(default_factory=list)
    phases: list[PhaseSpan] = field(default_factory=list)

    def phase_span(self, name: str) -> PhaseSpan:
        """The first phase span with the given name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    def busy_in(self, start: int, end: int) -> int:
        """Total busy worker-cycles overlapping [start, end)."""
        total = 0
        for iv in self.intervals:
            lo = max(iv.start, start)
            hi = min(iv.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, span: PhaseSpan) -> float:
        """Fraction of worker capacity busy during a phase span."""
        cap = self.n_workers * max(span.duration, 1)
        return self.busy_in(span.start, span.end) / cap


class Runtime(abc.ABC):
    """Execution backend: workers, tasks, locks, virtual or real time."""

    # Subclasses set these in __init__.
    num_workers: int
    cost: Any  # CostModel

    #: Structured metrics registry (see :mod:`repro.runtime.metrics`).
    #: Backends replace this with a live registry unless constructed with
    #: ``enable_metrics=False``; recording is pure observation and never
    #: perturbs virtual time.
    metrics: MetricsRegistry = NULL_METRICS

    # -- accounting -----------------------------------------------------------

    @abc.abstractmethod
    def charge(self, units: int) -> None:
        """Account ``units`` cycles of work to the calling worker."""

    @abc.abstractmethod
    def now(self) -> int:
        """Current clock of the calling worker (cycles)."""

    @abc.abstractmethod
    def worker_id(self) -> int:
        """Stable id of the calling worker, in ``range(num_workers)``."""

    # -- race-detector hooks -----------------------------------------------------

    #: True only when a backend is running under a happens-before race
    #: detector (see :mod:`repro.sanity.races`).  Instrumented shared
    #: structures check this flag before paying any annotation cost.
    race_checking: bool = False

    def race_read(self, loc: tuple) -> None:
        """Report a read of the shared location ``loc`` to the detector.

        No-op unless :attr:`race_checking` is set by the backend.  ``loc``
        is an arbitrary hashable identity, conventionally a tuple like
        ``("map", <name>, <key>)``.
        """

    def race_write(self, loc: tuple) -> None:
        """Report a write of the shared location ``loc`` to the detector."""

    # -- synchronization ---------------------------------------------------------

    @abc.abstractmethod
    def make_lock(self) -> RtLock:
        """A contention-modeled lock for shared-state critical sections."""

    @abc.abstractmethod
    def make_internal_lock(self) -> RtLock:
        """A lock for brief structure-internal sections (map shards).

        On the virtual-time backend this can be a no-op (execution is
        serialized); on the thread backend it is a real lock.
        """

    # -- tasking -----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Virtual-time order point; no-op on real-time backends.

        Long-running loops that interact with shared state only through
        plain charges should call this periodically so the virtual-time
        backend can interleave workers at the right simulated instants.
        """

    @abc.abstractmethod
    def task_group(self) -> TaskGroup:
        """Create a new task group owned by the calling worker."""

    def parallel_for(
        self,
        items: Iterable[Any],
        fn: Callable[[Any], Any],
        *,
        sort_key: Callable[[Any], Any] | None = None,
        reverse: bool = False,
        grain: int = 1,
    ) -> None:
        """Run ``fn(item)`` for each item as dynamically-scheduled tasks.

        ``sort_key``/``reverse`` implement the load-balancing sort of
        Listing 7 (largest functions first).  Tasks are spawned as a
        binary splitting tree, so the spawn overhead on the critical path
        is logarithmic — a serial spawn loop would itself become the
        Amdahl bottleneck the paper's parallel InitFunctions avoids.
        Blocks until all items are processed; the calling worker
        participates.  ``grain`` items are processed per leaf task.
        """
        seq: Sequence[Any] = list(items)
        if sort_key is not None:
            seq = sorted(seq, key=sort_key, reverse=reverse)
        if not seq:
            return
        group = self.task_group()

        def run_range(lo: int, hi: int) -> None:
            while hi - lo > max(1, grain):
                mid = (lo + hi) // 2
                group.spawn(run_range, mid, hi)
                hi = mid
            for i in range(lo, hi):
                fn(seq[i])

        run_range(0, len(seq))
        group.wait()

    @abc.abstractmethod
    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Execute ``fn(*args)`` as the root of a parallel computation.

        Returns ``fn``'s result after all spawned work has completed.
        A runtime instance is single-use: ``run`` may be called once.
        """

    # -- tracing -----------------------------------------------------------------

    trace: Trace | None = None

    @contextmanager
    def phase(self, name: str):
        """Record a named phase span on the trace and a ``phase.<name>``
        duration metric (no-ops when untraced / metrics disabled)."""
        start = self.now()
        try:
            yield
        finally:
            end = self.now()
            if self.trace is not None:
                self.trace.phases.append(PhaseSpan(name, start, end))
            self.metrics.observe(f"phase.{name}", end - start)

    # -- results ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def makespan(self) -> int:
        """Completion time of the last ``run`` (cycles)."""
