"""Trace/metrics rendering and the versioned run-report JSON format.

Two halves:

- ASCII rendering (Figure 2 style): :func:`render_trace` draws a
  :class:`~repro.runtime.api.Trace` as a worker-utilization timeline —
  one row per bucketed group of workers, one column per time bucket,
  density glyphs for busyness, phase boundaries on a header rail.
  :func:`render_metrics` prints a metrics snapshot as an aligned table.
- JSON export: :func:`run_report` assembles a complete machine-readable
  record of one run — backend, makespan, the trace, and the metrics
  snapshot — under the versioned ``repro.run-report/1`` schema that
  ``docs/OBSERVABILITY.md`` documents.  :func:`validate_report` is the
  executable form of that schema (no external dependency);
  :func:`trace_from_json` round-trips traces back into objects.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.api import PhaseSpan, Trace, TraceInterval
from repro.runtime.metrics import METRICS_SCHEMA
from repro.sanity.races import RACES_SCHEMA

#: Version identifier of the exported run-report JSON document.
REPORT_SCHEMA = "repro.run-report/1"

#: Version identifier of the procs-parallelism benchmark sidecar.  Rev 2
#: added the per-row ``speedup`` column (``serial_wall_s /
#: procs_wall_s``); rev 3 added the shared-memory-transport and
#: merge-overlap columns (``shm_bytes``, ``shm_fallback``,
#: ``overlap_fragments``, ``overlap_install_wall_s``); rev 4 added the
#: per-phase breakdown columns (``install_wall_s``, ``frontier_wall_s``,
#: ``wave_wall_s``, ``finalize_wall_s``) and the top-level ``cores``
#: field recording how many CPU cores the harness machine exposed.
#: Older documents remain valid and are still accepted by
#: :func:`validate_bench_procs`.
BENCH_PROCS_SCHEMA = "repro.bench-procs/4"

#: Older sidecar revisions the validator still accepts.
_BENCH_PROCS_ACCEPTED = ("repro.bench-procs/1", "repro.bench-procs/2",
                         "repro.bench-procs/3", BENCH_PROCS_SCHEMA)

_GLYPHS = " .:-=+*#%@"


def render_trace(trace: Trace, width: int = 100,
                 worker_rows: int = 8) -> str:
    """Render the trace as text; ``width`` columns over the full span."""
    if not trace.intervals and not trace.phases:
        return "(empty trace)"
    end = max([iv.end for iv in trace.intervals] +
              [p.end for p in trace.phases] + [1])
    bucket = max(1, end // width)
    n_cols = (end + bucket - 1) // bucket
    rows = min(worker_rows, trace.n_workers)
    per_row = (trace.n_workers + rows - 1) // rows

    # busy[row][col] = busy cycles of that worker group in that bucket.
    busy = [[0] * n_cols for _ in range(rows)]
    for iv in trace.intervals:
        row = min(iv.worker // per_row, rows - 1)
        c0 = iv.start // bucket
        c1 = max(c0, (iv.end - 1) // bucket)
        for c in range(c0, min(c1 + 1, n_cols)):
            lo = max(iv.start, c * bucket)
            hi = min(iv.end, (c + 1) * bucket)
            busy[row][c] += max(0, hi - lo)

    cap = per_row * bucket
    out: list[str] = []

    # Phase rail.
    rail = [" "] * n_cols
    for i, p in enumerate(trace.phases):
        c0 = min(p.start // bucket, n_cols - 1)
        label = str((i % 9) + 1)
        rail[c0] = "|"
        if c0 + 1 < n_cols:
            rail[c0 + 1] = label
    out.append("phases  " + "".join(rail))
    for r in range(rows):
        cells = []
        for c in range(n_cols):
            frac = busy[r][c] / cap if cap else 0
            idx = min(len(_GLYPHS) - 1, int(frac * (len(_GLYPHS) - 1)
                                            + 0.5))
            cells.append(_GLYPHS[idx])
        lo = r * per_row
        hi = min(trace.n_workers, lo + per_row) - 1
        out.append(f"w{lo:02d}-{hi:02d} " + "".join(cells))
    legend = ", ".join(f"{(i % 9) + 1}={p.name}"
                       for i, p in enumerate(trace.phases))
    out.append(f"phases: {legend}")
    return "\n".join(out)


def render_phase_table(trace: Trace) -> str:
    """Per-phase duration/utilization table (the numbers behind Figure 2)."""
    if not trace.phases:
        return "(no phases)"
    lines = [f"{'phase':<24} {'start':>12} {'cycles':>12} {'util':>6}"]
    for p in trace.phases:
        lines.append(f"{p.name:<24} {p.start:>12,} {p.duration:>12,} "
                     f"{trace.utilization(p):>5.0%}")
    return "\n".join(lines)


def render_metrics(snapshot: dict) -> str:
    """Aligned text table of a :meth:`MetricsRegistry.snapshot`."""
    counters = snapshot.get("counters", {})
    hists = snapshot.get("histograms", {})
    unit = snapshot.get("time_unit", "cycles")
    lines: list[str] = []
    if counters:
        lines.append(f"{'counter':<34} {'value':>12}")
        for name in sorted(counters):
            lines.append(f"{name:<34} {counters[name]:>12,}")
    if hists:
        if lines:
            lines.append("")
        lines.append(f"{'histogram (' + unit + ')':<34} {'count':>8} "
                     f"{'sum':>12} {'min':>8} {'max':>8} {'mean':>10}")
        for name in sorted(hists):
            h = hists[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"{name:<34} {h['count']:>8,} {h['sum']:>12,} "
                f"{(h['min'] if h['min'] is not None else 0):>8,} "
                f"{(h['max'] if h['max'] is not None else 0):>8,} "
                f"{mean:>10.1f}")
    return "\n".join(lines) if lines else "(no metrics)"


# ------------------------------------------------------------------ JSON

def trace_to_json(trace: Trace) -> dict:
    """JSON-ready dict for a trace (schema in docs/OBSERVABILITY.md)."""
    return {
        "n_workers": trace.n_workers,
        "intervals": [
            {"worker": iv.worker, "start": iv.start, "end": iv.end,
             "tag": iv.tag}
            for iv in trace.intervals
        ],
        "phases": [
            {"name": p.name, "start": p.start, "end": p.end}
            for p in trace.phases
        ],
    }


def trace_from_json(obj: dict) -> Trace:
    """Rebuild a :class:`Trace` from its JSON form (export round-trip)."""
    trace = Trace(obj["n_workers"])
    trace.intervals = [
        TraceInterval(iv["worker"], iv["start"], iv["end"], iv["tag"])
        for iv in obj["intervals"]
    ]
    trace.phases = [
        PhaseSpan(p["name"], p["start"], p["end"]) for p in obj["phases"]
    ]
    return trace


_BACKEND_NAMES = {
    "VirtualTimeRuntime": "vtime",
    "ThreadRuntime": "threads",
    "SerialRuntime": "serial",
    "ProcsRuntime": "procs",
}

#: Backends whose ``makespan`` is wall-clock seconds (vs cycles).
_WALL_CLOCK_BACKENDS = ("threads", "procs")

#: Legal ``degradation.level`` values, least to most degraded (mirrors
#: ``repro.runtime.procs.DEGRADATION_LEVELS``; duplicated here so the
#: validator has no runtime import).
_DEGRADATION_LEVELS = ("none", "shard_inline", "inline", "serial")


def run_report(rt: Any, workload: str | None = None,
               races: dict | None = None) -> dict:
    """Assemble the versioned run report for a finished runtime.

    Must be called after ``rt.run`` returned (``makespan`` is read).
    ``time_unit`` describes the makespan and trace timestamps; the
    metrics snapshot carries its own unit (identical except on the
    wall-clock backends — threads and procs — where the makespan is
    wall seconds but metric timings are in the registry's own unit).
    """
    backend = _BACKEND_NAMES.get(type(rt).__name__, type(rt).__name__)
    report = {
        "schema": REPORT_SCHEMA,
        "backend": backend,
        "workload": workload,
        "n_workers": rt.num_workers,
        "time_unit": ("seconds" if backend in _WALL_CLOCK_BACKENDS
                      else "cycles"),
        "makespan": rt.makespan,
        "metrics": rt.metrics.snapshot() if rt.metrics.enabled else None,
        "trace": trace_to_json(rt.trace) if rt.trace is not None else None,
    }
    # Fault-tolerance record (procs backend): what failed and how far
    # down the degradation ladder the run went.  Optional sections —
    # only runtimes that track faults export them.
    fault_events = getattr(rt, "fault_events", None)
    if fault_events is not None:
        report["fault_events"] = [dict(ev) for ev in fault_events]
    degradation = getattr(rt, "degradation", None)
    if degradation is not None:
        report["degradation"] = {"level": degradation["level"],
                                 "steps": list(degradation["steps"])}
    # Optional race-sweep section: the ``repro.races/1`` document from
    # repro.sanity.races.run_race_sweep, attached verbatim.
    if races is not None:
        report["races"] = races
    return report


_RACE_KINDS = ("read-write", "write-read", "write-write")


def validate_races(obj: Any) -> list[str]:
    """Check a race-sweep report against the ``repro.races/1`` schema.

    Returns a list of human-readable problems; empty means valid.  The
    document is produced by :func:`repro.sanity.races.run_race_sweep`
    (also ``repro check --races``) and may appear embedded as the
    ``races`` section of a run report.
    """
    errs: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    if not expect(isinstance(obj, dict), "races report is not an object"):
        return errs
    expect(obj.get("schema") == RACES_SCHEMA,
           f"schema is {obj.get('schema')!r}, want {RACES_SCHEMA!r}")
    expect(isinstance(obj.get("workload"), str),
           "workload must be a string")
    expect(isinstance(obj.get("n_workers"), int)
           and not isinstance(obj.get("n_workers"), bool)
           and obj.get("n_workers", -1) >= 0,
           "n_workers must be an int >= 0")
    seeds = obj.get("seeds")
    if expect(isinstance(seeds, list), "seeds must be a list"):
        for i, s in enumerate(seeds):
            expect(s is None or (isinstance(s, int)
                                 and not isinstance(s, bool)),
                   f"seeds[{i}] must be int|null")
        expect(obj.get("schedules") == len(seeds),
               f"schedules is {obj.get('schedules')!r}, want len(seeds) "
               f"= {len(seeds)}")
    expect(isinstance(obj.get("events"), int)
           and not isinstance(obj.get("events"), bool)
           and obj.get("events", -1) >= 0,
           "events must be an int >= 0")
    findings = obj.get("findings")
    if not expect(isinstance(findings, list), "findings must be a list"):
        return errs
    for i, f in enumerate(findings):
        if not expect(isinstance(f, dict),
                      f"findings[{i}] must be an object"):
            continue
        expect(isinstance(f.get("location"), str),
               f"findings[{i}]: location must be a string")
        expect(f.get("kind") in _RACE_KINDS,
               f"findings[{i}]: kind is {f.get('kind')!r}, want one of "
               f"{_RACE_KINDS!r}")
        sites = f.get("sites")
        if expect(isinstance(sites, list) and len(sites) == 2,
                  f"findings[{i}]: sites must be a 2-element list"):
            for j, s in enumerate(sites):
                expect(isinstance(s, str),
                       f"findings[{i}]: sites[{j}] must be a string")
        expect(isinstance(f.get("count"), int)
               and not isinstance(f.get("count"), bool)
               and f.get("count", 0) >= 1,
               f"findings[{i}]: count must be an int >= 1")
        fs = f.get("first_seed")
        expect(fs is None or (isinstance(fs, int)
                              and not isinstance(fs, bool)),
               f"findings[{i}]: first_seed must be int|null")
    return errs


def validate_bench_procs(obj: Any) -> list[str]:
    """Check a procs-parallelism benchmark sidecar against its schema.

    Accepts ``repro.bench-procs/1`` through ``/4`` documents; the
    per-row ``speedup`` column (serial wall seconds over procs wall
    seconds) is required from rev 2 on, the shared-memory-transport and
    merge-overlap columns from rev 3 on, and the per-phase breakdown
    columns plus the top-level ``cores`` field from rev 4 on.  The
    ``speedup`` column must agree with ``serial_wall_s / procs_wall_s``
    up to the 4-decimal rounding all three columns carry — anything
    beyond that bound is a recording error, not noise.  Returns a list
    of human-readable problems; empty means valid.
    """
    errs: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    if not expect(isinstance(obj, dict), "sidecar is not an object"):
        return errs
    schema = obj.get("schema")
    if not expect(schema in _BENCH_PROCS_ACCEPTED,
                  f"schema is {schema!r}, want one of "
                  f"{_BENCH_PROCS_ACCEPTED!r}"):
        return errs
    rev = _BENCH_PROCS_ACCEPTED.index(schema) + 1
    expect(isinstance(obj.get("scale"), (int, float))
           and not isinstance(obj.get("scale"), bool)
           and obj.get("scale", 0) > 0, "scale must be a positive number")
    expect(isinstance(obj.get("workers"), int)
           and obj.get("workers", 0) >= 1, "workers must be an int >= 1")
    if rev >= 4:
        expect(isinstance(obj.get("cores"), int)
               and not isinstance(obj.get("cores"), bool)
               and obj.get("cores", 0) >= 1,
               "cores must be an int >= 1")
    rows = obj.get("rows")
    if not expect(isinstance(rows, list) and rows,
                  "rows must be a non-empty list"):
        return errs
    numeric = ["serial_wall_s", "procs_wall_s", "fanout_wall_s"]
    counters = ["shards", "pool_fallback", "merged_cache_insns"]
    if rev >= 2:
        numeric.append("speedup")
        counters.append("duplicate_insns")
    if rev >= 3:
        numeric.append("overlap_install_wall_s")
        counters.extend(["shm_bytes", "shm_fallback",
                         "overlap_fragments"])
    if rev >= 4:
        numeric.extend(["install_wall_s", "frontier_wall_s",
                        "wave_wall_s", "finalize_wall_s"])
    for i, row in enumerate(rows):
        if not expect(isinstance(row, dict), f"row[{i}] must be an object"):
            continue
        expect(isinstance(row.get("binary"), str),
               f"row[{i}]: binary must be a string")
        expect(isinstance(row.get("workers"), int)
               and row.get("workers", 0) >= 1,
               f"row[{i}]: workers must be an int >= 1")
        for col in numeric:
            v = row.get(col)
            expect(isinstance(v, (int, float)) and not isinstance(v, bool)
                   and v >= 0,
                   f"row[{i}]: {col} must be a non-negative number")
        for col in counters:
            v = row.get(col)
            expect(isinstance(v, int) and not isinstance(v, bool)
                   and v >= 0,
                   f"row[{i}]: {col} must be an int >= 0")
        if rev >= 2:
            s, p, spd = (row.get("serial_wall_s"), row.get("procs_wall_s"),
                         row.get("speedup"))
            if all(isinstance(x, (int, float)) and not isinstance(x, bool)
                   for x in (s, p, spd)) and p > 0 and spd >= 0:
                # All three columns are recorded rounded to 4 decimals,
                # so the stored speedup may differ from the ratio of the
                # stored wall times by at most the propagated half-ulp:
                # 5e-5 on speedup itself, plus (5e-5 / p) * (1 + s/p)
                # from the numerator and denominator.  Beyond that the
                # row is internally inconsistent.
                tol = 5e-5 * (1.0 + (1.0 + s / p) / p) + 1e-9
                expect(abs(spd - s / p) <= tol,
                       f"row[{i}]: speedup {spd} inconsistent with "
                       f"serial_wall_s/procs_wall_s = {s / p} "
                       f"(rounding tolerance {tol:.2e})")
    return errs


def validate_fuzz_report(obj: Any) -> list[str]:
    """Check a fuzz-campaign report against ``repro.fuzz-report/1``.

    The document is produced by :func:`repro.fuzz.driver.fuzz_run`
    (also ``repro fuzz --json``).  Returns a list of human-readable
    problems; empty means valid.
    """
    from repro.fuzz.driver import FUZZ_REPORT_SCHEMA
    from repro.fuzz.specio import CASE_SCHEMA

    errs: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    def is_int(v: Any) -> bool:
        return isinstance(v, int) and not isinstance(v, bool)

    if not expect(isinstance(obj, dict), "fuzz report is not an object"):
        return errs
    expect(obj.get("schema") == FUZZ_REPORT_SCHEMA,
           f"schema is {obj.get('schema')!r}, want {FUZZ_REPORT_SCHEMA!r}")
    expect(is_int(obj.get("seed")), "seed must be an int")
    expect(is_int(obj.get("runs")) and obj.get("runs", 0) >= 1,
           "runs must be an int >= 1")
    expect(isinstance(obj.get("minimize"), bool),
           "minimize must be a bool")
    presets = obj.get("presets")
    if expect(isinstance(presets, list) and presets,
              "presets must be a non-empty list"):
        for i, p in enumerate(presets):
            expect(isinstance(p, str), f"presets[{i}] must be a string")
    axes = obj.get("axes")
    if expect(isinstance(axes, list) and axes,
              "axes must be a non-empty list"):
        for i, a in enumerate(axes):
            expect(isinstance(a, str), f"axes[{i}] must be a string")

    cases = obj.get("cases")
    if not expect(isinstance(cases, list), "cases must be a list"):
        return errs
    expect(len(cases) == obj.get("runs"),
           f"{len(cases)} case rows for runs={obj.get('runs')!r}")
    for i, c in enumerate(cases):
        if not expect(isinstance(c, dict), f"cases[{i}] must be an object"):
            continue
        expect(c.get("index") == i, f"cases[{i}]: index must be {i}")
        expect(isinstance(presets, list) and c.get("preset") in presets,
               f"cases[{i}]: preset {c.get('preset')!r} not in presets")
        expect(is_int(c.get("case_seed")),
               f"cases[{i}]: case_seed must be an int")
        expect(isinstance(c.get("binary"), str),
               f"cases[{i}]: binary must be a string")
        expect(isinstance(c.get("reference"), str),
               f"cases[{i}]: reference must be a string")
        expect(isinstance(c.get("reference_digest"), str),
               f"cases[{i}]: reference_digest must be a string")
        digests = c.get("digests")
        if expect(isinstance(digests, dict),
                  f"cases[{i}]: digests must be an object"):
            for k, v in digests.items():
                expect(isinstance(k, str) and isinstance(v, str),
                       f"cases[{i}]: digest {k!r} must map str to str")
            ref = c.get("reference")
            expect(digests.get(ref) == c.get("reference_digest"),
                   f"cases[{i}]: digests[{ref!r}] must equal "
                   f"reference_digest")
        failing = c.get("failing")
        if expect(isinstance(failing, list),
                  f"cases[{i}]: failing must be a list"):
            for a in failing:
                expect(isinstance(axes, list) and a in axes,
                       f"cases[{i}]: failing axis {a!r} not in axes")
        findings = c.get("findings")
        if expect(isinstance(findings, dict),
                  f"cases[{i}]: findings must be an object"):
            for k, v in findings.items():
                expect(isinstance(k, str) and isinstance(v, list)
                       and all(isinstance(f, dict) for f in v),
                       f"cases[{i}]: findings[{k!r}] must be a list of "
                       f"objects")

    divs = obj.get("divergences")
    if not expect(isinstance(divs, list), "divergences must be a list"):
        return errs
    for i, d in enumerate(divs):
        if not expect(isinstance(d, dict),
                      f"divergences[{i}] must be an object"):
            continue
        expect(is_int(d.get("index")) and 0 <= d.get("index", -1)
               < len(cases),
               f"divergences[{i}]: index out of range")
        failing = d.get("failing")
        expect(isinstance(failing, list) and failing
               and all(isinstance(a, str) for a in failing),
               f"divergences[{i}]: failing must be a non-empty string "
               f"list")
        mini = d.get("minimized")
        if mini is not None:
            if expect(isinstance(mini, dict),
                      f"divergences[{i}]: minimized must be object|null"):
                expect(mini.get("schema") == CASE_SCHEMA,
                       f"divergences[{i}]: minimized schema is "
                       f"{mini.get('schema')!r}, want {CASE_SCHEMA!r}")
                spec = mini.get("spec")
                expect(isinstance(spec, dict)
                       and isinstance(spec.get("functions"), list),
                       f"divergences[{i}]: minimized.spec must hold a "
                       f"functions list")
        red = d.get("reduce")
        if red is not None:
            if expect(isinstance(red, dict),
                      f"divergences[{i}]: reduce must be object|null"):
                for k in ("attempts", "accepted"):
                    expect(is_int(red.get(k)) and red.get(k, -1) >= 0,
                           f"divergences[{i}]: reduce.{k} must be an "
                           f"int >= 0")
                for k in ("size_before", "size_after"):
                    v = red.get(k)
                    expect(isinstance(v, list) and len(v) == 2
                           and all(is_int(x) and x >= 0 for x in v),
                           f"divergences[{i}]: reduce.{k} must be a "
                           f"2-element int list")

    summary = obj.get("summary")
    if expect(isinstance(summary, dict), "summary must be an object"):
        expect(summary.get("cases") == len(cases),
               f"summary.cases is {summary.get('cases')!r}, want "
               f"{len(cases)}")
        expect(summary.get("diverged") == len(divs),
               f"summary.diverged is {summary.get('diverged')!r}, want "
               f"{len(divs)}")
        fa = summary.get("failing_axes")
        expect(isinstance(fa, list)
               and all(isinstance(a, str) for a in fa),
               "summary.failing_axes must be a string list")
        expect(is_int(summary.get("sanity_findings"))
               and summary.get("sanity_findings", -1) >= 0,
               "summary.sanity_findings must be an int >= 0")
    return errs


def validate_corpus_report(obj: Any) -> list[str]:
    """Check a corpus report against ``repro.corpus-report/1``.

    The document is produced by :func:`repro.corpus.run_corpus` (also
    ``repro corpus``) and is a pure function of the run's journal —
    the chaos tests additionally pin its *byte* form across
    kill/resume.  Returns a list of human-readable problems; empty
    means valid.
    """
    from repro.corpus.report import REPORT_SCHEMA as CORPUS_SCHEMA

    errs: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    def is_int(v: Any) -> bool:
        return isinstance(v, int) and not isinstance(v, bool)

    def is_num(v: Any) -> bool:
        return is_int(v) or isinstance(v, float)

    if not expect(isinstance(obj, dict), "corpus report is not an object"):
        return errs
    expect(obj.get("schema") == CORPUS_SCHEMA,
           f"schema is {obj.get('schema')!r}, want {CORPUS_SCHEMA!r}")

    corpus = obj.get("corpus")
    count = 0
    if expect(isinstance(corpus, dict), "corpus must be an object"):
        expect(is_int(corpus.get("seed")), "corpus.seed must be an int")
        if expect(is_int(corpus.get("count"))
                  and corpus.get("count", 0) >= 1,
                  "corpus.count must be an int >= 1"):
            count = corpus["count"]
        presets = corpus.get("presets")
        expect(isinstance(presets, list) and presets
               and all(isinstance(p, str) for p in presets),
               "corpus.presets must be a non-empty string list")
        expect(is_int(corpus.get("attempts"))
               and corpus.get("attempts", 0) >= 1,
               "corpus.attempts must be an int >= 1")
        expect(isinstance(corpus.get("verify"), bool),
               "corpus.verify must be a bool")
        expect(corpus.get("backend") in ("procs", "serial"),
               f"corpus.backend {corpus.get('backend')!r} unknown")
        expect(is_int(corpus.get("window"))
               and corpus.get("window", 0) >= 1,
               "corpus.window must be an int >= 1")

    binaries = obj.get("binaries")
    n_ok = n_quarantined = 0
    if expect(isinstance(binaries, list), "binaries must be a list"):
        expect(len(binaries) == count,
               f"{len(binaries)} binary rows for count={count}")
        for i, b in enumerate(binaries):
            if not expect(isinstance(b, dict),
                          f"binaries[{i}] must be an object"):
                continue
            expect(b.get("index") == i,
                   f"binaries[{i}]: index must be {i}")
            expect(isinstance(b.get("name"), str),
                   f"binaries[{i}]: name must be a string")
            expect(isinstance(b.get("preset"), str),
                   f"binaries[{i}]: preset must be a string")
            status = b.get("status")
            if not expect(status in ("ok", "quarantined"),
                          f"binaries[{i}]: status {status!r} unknown"):
                continue
            expect(isinstance(b.get("failures"), list),
                   f"binaries[{i}]: failures must be a list")
            if status == "ok":
                n_ok += 1
                expect(isinstance(b.get("digest"), str),
                       f"binaries[{i}]: ok row needs a digest")
                expect(b.get("backend") in ("procs", "serial"),
                       f"binaries[{i}]: backend {b.get('backend')!r} "
                       f"unknown")
                expect(is_int(b.get("attempt"))
                       and b.get("attempt", 0) >= 1,
                       f"binaries[{i}]: attempt must be an int >= 1")
                expect(is_num(b.get("latency_s"))
                       and b.get("latency_s", -1) >= 0,
                       f"binaries[{i}]: latency_s must be >= 0")
                for k in ("functions", "blocks", "edges"):
                    expect(is_int(b.get(k)) and b.get(k, -1) >= 0,
                           f"binaries[{i}]: {k} must be an int >= 0")
            else:
                n_quarantined += 1
                expect(isinstance(b.get("reason"), str),
                       f"binaries[{i}]: quarantined row needs a reason")
                expect(b.get("digest") is None,
                       f"binaries[{i}]: quarantined row must not carry "
                       f"a digest")

    summary = obj.get("summary")
    if expect(isinstance(summary, dict), "summary must be an object"):
        expect(summary.get("count") == count,
               f"summary.count is {summary.get('count')!r}, want {count}")
        expect(summary.get("completed") == n_ok,
               f"summary.completed is {summary.get('completed')!r}, "
               f"want {n_ok}")
        expect(summary.get("quarantined") == n_quarantined,
               f"summary.quarantined is {summary.get('quarantined')!r}, "
               f"want {n_quarantined}")

    lat = obj.get("latency")
    if expect(isinstance(lat, dict), "latency must be an object"):
        expect(lat.get("count") == n_ok,
               f"latency.count is {lat.get('count')!r}, want {n_ok}")
        for k in ("mean_s", "p50_s", "p90_s", "p99_s", "max_s",
                  "total_s"):
            expect(is_num(lat.get(k)) and lat.get(k, -1) >= 0,
                   f"latency.{k} must be a number >= 0")

    thr = obj.get("throughput")
    if expect(isinstance(thr, dict), "throughput must be an object"):
        for k in ("total_analysis_s", "binaries_per_second"):
            expect(is_num(thr.get(k)) and thr.get(k, -1) >= 0,
                   f"throughput.{k} must be a number >= 0")

    deg = obj.get("degradation")
    if expect(isinstance(deg, dict), "degradation must be an object"):
        for k in ("initial_window", "final_window"):
            expect(is_int(deg.get(k)) and deg.get(k, 0) >= 1,
                   f"degradation.{k} must be an int >= 1")
        for k in ("window_shrinks", "serial_binaries"):
            expect(is_int(deg.get(k)) and deg.get(k, -1) >= 0,
                   f"degradation.{k} must be an int >= 0")

    quarantine = obj.get("quarantine")
    if expect(isinstance(quarantine, dict),
              "quarantine must be an object"):
        expect(quarantine.get("count") == n_quarantined,
               f"quarantine.count is {quarantine.get('count')!r}, "
               f"want {n_quarantined}")
        reasons = quarantine.get("reasons")
        if expect(isinstance(reasons, dict),
                  "quarantine.reasons must be an object"):
            expect(sum(reasons.values()) == n_quarantined
                   if all(is_int(v) for v in reasons.values()) else False,
                   "quarantine.reasons must be int counts summing to "
                   "the quarantined total")
        entries = quarantine.get("entries")
        if expect(isinstance(entries, list),
                  "quarantine.entries must be a list"):
            expect(len(entries) == n_quarantined,
                   f"{len(entries)} quarantine entries for "
                   f"{n_quarantined} quarantined rows")
            for i, e in enumerate(entries):
                if not expect(isinstance(e, dict),
                              f"quarantine.entries[{i}] must be an "
                              f"object"):
                    continue
                expect(is_int(e.get("index")),
                       f"quarantine.entries[{i}]: index must be an int")
                expect(isinstance(e.get("reason"), str),
                       f"quarantine.entries[{i}]: reason must be a "
                       f"string")
                expect(isinstance(e.get("path"), str),
                       f"quarantine.entries[{i}]: path must be a string")
    return errs


def validate_findings(obj: Any) -> list[str]:
    """Check a findings sidecar against ``repro.findings/1``.

    The document is produced by the interprocedural checkers
    (``repro analyze --json``), the ground-truth corpus checker
    (``repro check --json``) and the static lint (``repro lint
    --json``) — one shared format, one validator.  Beyond field
    shapes, this enforces the determinism contract: findings must be
    in canonical sort order and must carry no backend/worker metadata
    (the byte form is pinned across backends).  Returns a list of
    human-readable problems; empty means valid.
    """
    from repro.analyses.findings import (
        FINDING_FIELDS,
        FINDINGS_GENERATORS,
        FINDINGS_SCHEMA,
        finding_sort_key,
    )

    errs: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    def is_int(v: Any) -> bool:
        return isinstance(v, int) and not isinstance(v, bool)

    if not expect(isinstance(obj, dict), "findings doc is not an object"):
        return errs
    expect(obj.get("schema") == FINDINGS_SCHEMA,
           f"schema is {obj.get('schema')!r}, want {FINDINGS_SCHEMA!r}")
    expect(obj.get("generator") in FINDINGS_GENERATORS,
           f"generator is {obj.get('generator')!r}, want one of "
           f"{FINDINGS_GENERATORS!r}")
    for banned in ("backend", "workers", "n_workers", "runtime"):
        expect(banned not in obj,
               f"{banned!r} must not appear in a findings doc (the "
               f"byte form is backend-independent)")
    checks = obj.get("checks")
    if expect(isinstance(checks, list) and checks
              and all(isinstance(c, str) for c in checks),
              "checks must be a non-empty string list"):
        expect(checks == sorted(checks), "checks must be sorted")
    else:
        checks = []
    expect(isinstance(obj.get("subject"), dict),
           "subject must be an object")

    findings = obj.get("findings")
    if not expect(isinstance(findings, list), "findings must be a list"):
        return errs
    by_rule: dict[str, int] = {}
    for i, f in enumerate(findings):
        if not expect(isinstance(f, dict),
                      f"findings[{i}] must be an object"):
            continue
        expect(sorted(f) == sorted(FINDING_FIELDS),
               f"findings[{i}]: fields must be exactly "
               f"{sorted(FINDING_FIELDS)}")
        rule = f.get("rule")
        if expect(isinstance(rule, str),
                  f"findings[{i}]: rule must be a string"):
            expect(rule in checks,
                   f"findings[{i}]: rule {rule!r} not in checks")
            by_rule[rule] = by_rule.get(rule, 0) + 1
        expect(isinstance(f.get("detail"), str),
               f"findings[{i}]: detail must be a string")
        for k in ("binary", "function", "path"):
            v = f.get(k)
            expect(v is None or isinstance(v, str),
                   f"findings[{i}]: {k} must be string|null")
        for k in ("address", "line"):
            v = f.get(k)
            expect(v is None or is_int(v),
                   f"findings[{i}]: {k} must be int|null")
    if all(isinstance(f, dict) for f in findings):
        try:
            ordered = all(
                finding_sort_key(findings[i]) <= finding_sort_key(
                    findings[i + 1])
                for i in range(len(findings) - 1))
        except TypeError:
            ordered = False
        expect(ordered, "findings must be in canonical sort order")

    summary = obj.get("summary")
    if expect(isinstance(summary, dict), "summary must be an object"):
        expect(summary.get("findings") == len(findings),
               f"summary.findings is {summary.get('findings')!r}, "
               f"want {len(findings)}")
        sbr = summary.get("by_rule")
        if expect(isinstance(sbr, dict),
                  "summary.by_rule must be an object"):
            expect(sbr == by_rule,
                   f"summary.by_rule {sbr!r} does not match the "
                   f"findings (want {by_rule!r})")
    return errs


def validate_report(obj: Any) -> list[str]:
    """Check a run report against the documented schema.

    Returns a list of human-readable problems; an empty list means the
    document is valid ``repro.run-report/1``.  This is the executable
    counterpart of the schema tables in ``docs/OBSERVABILITY.md`` — keep
    the two in sync.
    """
    errs: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    if not expect(isinstance(obj, dict), "report is not an object"):
        return errs
    expect(obj.get("schema") == REPORT_SCHEMA,
           f"schema is {obj.get('schema')!r}, want {REPORT_SCHEMA!r}")
    expect(obj.get("backend") in ("vtime", "threads", "serial", "procs"),
           f"unknown backend {obj.get('backend')!r}")
    expect(isinstance(obj.get("n_workers"), int)
           and obj.get("n_workers", 0) >= 1, "n_workers must be an int >= 1")
    expect(isinstance(obj.get("time_unit"), str), "time_unit must be a string")
    expect(isinstance(obj.get("makespan"), (int, float))
           and not isinstance(obj.get("makespan"), bool)
           and obj.get("makespan", -1) >= 0,
           "makespan must be a non-negative number")
    if "workload" in obj:
        expect(obj["workload"] is None or isinstance(obj["workload"], str),
               "workload must be a string or null")

    metrics = obj.get("metrics")
    if metrics is not None:
        if expect(isinstance(metrics, dict), "metrics must be an object"):
            expect(metrics.get("schema") == METRICS_SCHEMA,
                   f"metrics schema is {metrics.get('schema')!r}, "
                   f"want {METRICS_SCHEMA!r}")
            expect(isinstance(metrics.get("time_unit"), str),
                   "metrics.time_unit must be a string")
            counters = metrics.get("counters")
            if expect(isinstance(counters, dict),
                      "metrics.counters must be an object"):
                for k, v in counters.items():
                    expect(isinstance(k, str) and isinstance(v, int),
                           f"counter {k!r} must map a string to an int")
            hists = metrics.get("histograms")
            if expect(isinstance(hists, dict),
                      "metrics.histograms must be an object"):
                for k, h in hists.items():
                    if not expect(isinstance(h, dict),
                                  f"histogram {k!r} must be an object"):
                        continue
                    expect(isinstance(h.get("count"), int)
                           and h.get("count", -1) >= 0,
                           f"histogram {k!r}: count must be an int >= 0")
                    expect(isinstance(h.get("sum"), int),
                           f"histogram {k!r}: sum must be an int")
                    for bound in ("min", "max"):
                        expect(h.get(bound) is None
                               or isinstance(h.get(bound), int),
                               f"histogram {k!r}: {bound} must be int|null")
                    buckets = h.get("buckets")
                    if expect(isinstance(buckets, dict),
                              f"histogram {k!r}: buckets must be an object"):
                        expect(sum(buckets.values()) == h.get("count"),
                               f"histogram {k!r}: bucket counts must sum "
                               f"to count")
                        for bk in buckets:
                            expect(isinstance(bk, str) and bk.isdigit(),
                                   f"histogram {k!r}: bucket key {bk!r} "
                                   f"must be a decimal string")

    if "fault_events" in obj:
        events = obj["fault_events"]
        if expect(isinstance(events, list), "fault_events must be a list"):
            for i, ev in enumerate(events):
                if not expect(isinstance(ev, dict),
                              f"fault_events[{i}] must be an object"):
                    continue
                expect(isinstance(ev.get("kind"), str),
                       f"fault_events[{i}]: kind must be a string")
                shard = ev.get("shard")
                expect(shard is None or (isinstance(shard, int)
                                         and not isinstance(shard, bool)),
                       f"fault_events[{i}]: shard must be int|null")
                attempt = ev.get("attempt")
                expect(isinstance(attempt, int)
                       and not isinstance(attempt, bool) and attempt >= 0,
                       f"fault_events[{i}]: attempt must be an int >= 0")
                expect(isinstance(ev.get("action"), str),
                       f"fault_events[{i}]: action must be a string")
    if "degradation" in obj:
        deg = obj["degradation"]
        if expect(isinstance(deg, dict), "degradation must be an object"):
            expect(deg.get("level") in _DEGRADATION_LEVELS,
                   f"degradation.level is {deg.get('level')!r}, want one "
                   f"of {_DEGRADATION_LEVELS!r}")
            steps = deg.get("steps")
            if expect(isinstance(steps, list),
                      "degradation.steps must be a list"):
                for i, s in enumerate(steps):
                    expect(isinstance(s, str),
                           f"degradation.steps[{i}] must be a string")

    if "races" in obj and obj["races"] is not None:
        errs.extend(f"races: {e}" for e in validate_races(obj["races"]))

    trace = obj.get("trace")
    if trace is not None:
        if expect(isinstance(trace, dict), "trace must be an object"):
            n = trace.get("n_workers")
            expect(isinstance(n, int) and n >= 1,
                   "trace.n_workers must be an int >= 1")
            ivs = trace.get("intervals")
            if expect(isinstance(ivs, list), "trace.intervals must be a list"):
                for i, iv in enumerate(ivs):
                    if not expect(isinstance(iv, dict),
                                  f"interval[{i}] must be an object"):
                        continue
                    expect(isinstance(iv.get("worker"), int)
                           and isinstance(n, int)
                           and 0 <= iv.get("worker", -1) < n,
                           f"interval[{i}]: worker out of range")
                    expect(isinstance(iv.get("start"), int)
                           and isinstance(iv.get("end"), int)
                           and iv.get("start", 1) <= iv.get("end", 0),
                           f"interval[{i}]: need int start <= end")
                    expect(isinstance(iv.get("tag"), str),
                           f"interval[{i}]: tag must be a string")
            phases = trace.get("phases")
            if expect(isinstance(phases, list),
                      "trace.phases must be a list"):
                for i, p in enumerate(phases):
                    if not expect(isinstance(p, dict),
                                  f"phase[{i}] must be an object"):
                        continue
                    expect(isinstance(p.get("name"), str),
                           f"phase[{i}]: name must be a string")
                    expect(isinstance(p.get("start"), int)
                           and isinstance(p.get("end"), int)
                           and p.get("start", 1) <= p.get("end", 0),
                           f"phase[{i}]: need int start <= end")
    return errs
