"""ASCII rendering of execution traces (Figure 2 style).

Renders a :class:`~repro.runtime.api.Trace` as a worker-utilization
timeline: one row per bucketed group of workers, one column per time
bucket, with density glyphs showing how busy the workers were.  Phase
boundaries are marked on a header rail, so the output reads like the
paper's Figure 2: full columns during parallel phases, a single busy
worker during serial ones.
"""

from __future__ import annotations

from repro.runtime.api import Trace

_GLYPHS = " .:-=+*#%@"


def render_trace(trace: Trace, width: int = 100,
                 worker_rows: int = 8) -> str:
    """Render the trace as text; ``width`` columns over the full span."""
    if not trace.intervals and not trace.phases:
        return "(empty trace)"
    end = max([iv.end for iv in trace.intervals] +
              [p.end for p in trace.phases] + [1])
    bucket = max(1, end // width)
    n_cols = (end + bucket - 1) // bucket
    rows = min(worker_rows, trace.n_workers)
    per_row = (trace.n_workers + rows - 1) // rows

    # busy[row][col] = busy cycles of that worker group in that bucket.
    busy = [[0] * n_cols for _ in range(rows)]
    for iv in trace.intervals:
        row = min(iv.worker // per_row, rows - 1)
        c0 = iv.start // bucket
        c1 = max(c0, (iv.end - 1) // bucket)
        for c in range(c0, min(c1 + 1, n_cols)):
            lo = max(iv.start, c * bucket)
            hi = min(iv.end, (c + 1) * bucket)
            busy[row][c] += max(0, hi - lo)

    cap = per_row * bucket
    out: list[str] = []

    # Phase rail.
    rail = [" "] * n_cols
    for i, p in enumerate(trace.phases):
        c0 = min(p.start // bucket, n_cols - 1)
        label = str((i % 9) + 1)
        rail[c0] = "|"
        if c0 + 1 < n_cols:
            rail[c0 + 1] = label
    out.append("phases  " + "".join(rail))
    for r in range(rows):
        cells = []
        for c in range(n_cols):
            frac = busy[r][c] / cap if cap else 0
            idx = min(len(_GLYPHS) - 1, int(frac * (len(_GLYPHS) - 1)
                                            + 0.5))
            cells.append(_GLYPHS[idx])
        lo = r * per_row
        hi = min(trace.n_workers, lo + per_row) - 1
        out.append(f"w{lo:02d}-{hi:02d} " + "".join(cells))
    legend = ", ".join(f"{(i % 9) + 1}={p.name}"
                       for i, p in enumerate(trace.phases))
    out.append(f"phases: {legend}")
    return "\n".join(out)
