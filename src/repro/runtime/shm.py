"""Shared-memory image transport for the procs backend.

The naive way to hand a binary to pool workers is to pickle its image
bytes into every task payload — N shards ship N copies of the whole
binary through the pool's pipes.  This module is the zero-copy
replacement: the coordinator publishes the serialized image **once**
into a POSIX shared-memory segment (:class:`ImageSegment`), task
payloads carry only the segment's *name* and payload length, and each
worker attaches by name and deserializes the binary over a read-only
:class:`memoryview` of the mapping (:func:`attach_view`) — section
payloads and the decoder's code buffer alias the segment, so the image
crosses the process boundary zero times after publication.

Lifecycle guarantees (tested in ``tests/runtime/test_shm.py``):

- **Coordinator owns the name.**  Only the coordinator ever calls
  ``unlink``; :meth:`ImageSegment.unlink` runs in a ``finally`` around
  the dispatch loop, so the segment is removed on success, on every
  fault-ladder rung, on degradation and on the serial fallback.  A
  module-level registry plus an ``atexit`` sweep (:func:`sweep`)
  catches any segment a crashed parse left behind, and
  :func:`live_segments` makes the registry observable for leak tests.
  For coordinators that died without running atexit at all (SIGKILL,
  ``os._exit``), :func:`sweep_orphans` scans ``/dev/shm`` for
  ``repro-img-*`` names whose embedded owner pid no longer exists and
  unlinks them — run at corpus-driver startup and from the atexit
  sweep, never touching segments whose owner is still alive.
- **Workers never own anything.**  :func:`attach_view` suppresses
  ``multiprocessing.resource_tracker`` registration for the attach —
  Python < 3.13 has no ``track=False``, and a tracked worker-side
  attach would double-unlink the coordinator's segment at worker exit
  (bpo-38119).  :func:`release_view` closes the worker's mapping when
  the procs worker cache evicts a binary; a mapping that still has
  exported buffers (sections alias it) survives in a graveyard list
  rather than raising, and dies with the worker process.
- **Unlink is decoupled from attachment.**  POSIX keeps the segment
  alive until the last mapping closes, so the coordinator can unlink as
  soon as every shard result has been collected or abandoned — a
  straggling worker still parsing an abandoned attempt keeps its
  mapping; a worker attaching *after* the unlink fails cleanly and the
  retry ladder handles it.

When shared memory is unavailable (no ``/dev/shm``, sandboxed
``shm_open``) — or when the deterministic ``shm`` fault site fires
(:mod:`repro.runtime.faults`) — the procs backend falls back to the
legacy pickled-bytes transport and records the downgrade; see
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import atexit
import itertools
import os

#: Segment names start with this prefix so leak checks (and humans
#: inspecting ``/dev/shm``) can attribute them.
SEGMENT_PREFIX = "repro-img-"

#: Coordinator-side registry of segments published but not yet
#: unlinked, keyed by name.  The atexit sweep unlinks leftovers.
_LIVE: dict[str, "ImageSegment"] = {}

#: Name source: pid + counter keeps names unique within a process and
#: distinguishable across coordinators sharing one machine.
_COUNTER = itertools.count(1)

#: Worker-side mappings whose close raised ``BufferError`` (a cached
#: binary's sections still alias them).  Holding the handle keeps the
#: mapping valid; it is reclaimed when the worker process exits.
_GRAVEYARD: list[object] = []


class ImageSegment:
    """One published image: a named shared-memory segment, coordinator side.

    ``size`` is the payload length, not the mapping length — the kernel
    rounds mappings up to page granularity, so attachers must slice.
    """

    __slots__ = ("_shm", "name", "size")

    def __init__(self, shm, size: int):
        self._shm = shm
        self.name = shm.name
        self.size = size

    @classmethod
    def create(cls, payload: bytes) -> "ImageSegment":
        """Publish ``payload`` under a fresh ``repro-img-*`` name."""
        from multiprocessing import shared_memory

        shm = None
        for _ in range(64):
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{next(_COUNTER)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, len(payload)))
                break
            except FileExistsError:  # leftover from a recycled pid
                continue
        if shm is None:  # pragma: no cover - 64 collisions in a row
            raise FileExistsError(
                f"could not allocate a fresh {SEGMENT_PREFIX}* name")
        shm.buf[:len(payload)] = payload
        seg = cls(shm, len(payload))
        _LIVE[seg.name] = seg
        return seg

    def unlink(self) -> None:
        """Close the mapping and remove the name (idempotent)."""
        if _LIVE.pop(self.name, None) is None:
            return
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - coordinator holds no views
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def live_segments() -> list[str]:
    """Names of segments this process has published and not unlinked."""
    return sorted(_LIVE)


def sweep() -> None:
    """Unlink every still-live segment (atexit safety net)."""
    for seg in list(_LIVE.values()):
        seg.unlink()


#: Where the kernel exposes POSIX shared memory names (Linux).  Orphan
#: sweeping is a best-effort extra on platforms that have it.
_SHM_DIR = "/dev/shm"


def _owner_pid(name: str) -> int | None:
    """The pid baked into a ``repro-img-<pid>-<n>`` name, or None."""
    rest = name[len(SEGMENT_PREFIX):]
    pid, _, counter = rest.partition("-")
    if pid.isdigit() and counter.isdigit():
        return int(pid)
    return None


def sweep_orphans() -> list[str]:
    """Reap ``repro-img-*`` segments whose owner process is dead.

    The atexit :func:`sweep` only covers *this* process's registry — a
    coordinator killed with ``SIGKILL`` (or ``os._exit``, as the
    ``coordinator-kill`` fault site models) never runs it, and its
    segments outlive it in ``/dev/shm`` forever.  Segment names embed
    the publishing pid precisely so a later process can attribute them:
    this scans the kernel's view, probes each embedded pid with
    ``kill(pid, 0)``, and unlinks names whose owner no longer exists.
    Live owners (including this process) are never touched, so
    concurrent coordinators sharing the machine are safe.  Returns the
    names reaped; callers (the corpus driver at startup, the atexit
    sweep) treat it as best-effort.
    """
    reaped: list[str] = []
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - no /dev/shm on this platform
        return reaped
    for name in names:
        if not name.startswith(SEGMENT_PREFIX) or name in _LIVE:
            continue
        pid = _owner_pid(name)
        if pid is None or pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # owner is alive: its segment, not ours to reap
        except ProcessLookupError:
            pass  # owner is dead: orphan
        except PermissionError:  # pragma: no cover - pid exists, other uid
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            reaped.append(name)
        except OSError:  # pragma: no cover - raced another sweeper
            pass
    return sorted(reaped)


def _sweep_all() -> None:  # pragma: no cover - exercised via atexit
    sweep()
    sweep_orphans()


atexit.register(_sweep_all)


def attach_view(name: str, size: int) -> tuple[memoryview, tuple]:
    """Worker side: map a published segment read-only.

    Returns ``(view, handle)``: ``view`` is a read-only memoryview of
    the payload (length ``size``, not the page-rounded mapping), and
    ``handle`` must be passed to :func:`release_view` when the worker
    is done with every object built over the view.
    """
    from multiprocessing import resource_tracker, shared_memory

    # The coordinator owns the name; a worker-side attach must not
    # register with the (shared, forked) resource tracker, or the
    # tracker would unlink the coordinator's segment at worker exit and
    # double-unregisters across workers raise in the tracker process.
    # Python < 3.13 has no ``track=False``, so registration is
    # suppressed for the duration of the attach (pool workers are
    # single-threaded, so the swap cannot race another register).
    orig_register = resource_tracker.register

    def _skip_shm(name_, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            orig_register(name_, rtype)

    resource_tracker.register = _skip_shm
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register
    view = shm.buf[:size].toreadonly()
    return view, (shm, view)


def release_view(handle: tuple) -> None:
    """Worker side: drop a mapping obtained from :func:`attach_view`.

    Never raises: a mapping still aliased by live section buffers
    cannot be closed (``BufferError``) and parks in the graveyard
    instead — it is reclaimed when the worker process exits.
    """
    shm, view = handle
    try:
        view.release()
    except BufferError:
        pass
    try:
        shm.close()
    except BufferError:
        _GRAVEYARD.append(shm)
