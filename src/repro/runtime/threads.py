"""Real-thread runtime backend.

Runs the same algorithm code as the virtual-time backend on a genuine
thread pool with real locks.  Under CPython's GIL this cannot reproduce the
paper's speedups (DESIGN.md discusses the substitution), but it serves two
purposes:

- concurrency-correctness testing: the five invariants of Section 5.2 must
  hold under true preemption (tests shrink ``sys.setswitchinterval`` to
  provoke races);
- wall-clock sanity for I/O-free workloads.

``charge`` accounts work units per worker (no sleeping); ``makespan``
reports elapsed wall-clock seconds of the ``run`` call.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from typing import Any

from repro.errors import RuntimeConfigError
from repro.runtime.api import Runtime, RtLock, TaskGroup
from repro.runtime.cost import DEFAULT_COSTS, CostModel
from repro.runtime.metrics import NULL_METRICS, MetricsRegistry


class _RealLock(RtLock):
    __slots__ = ("_lock", "_m")

    def __init__(self, metrics: MetricsRegistry = NULL_METRICS) -> None:
        self._lock = threading.Lock()
        self._m = metrics

    def acquire(self) -> None:
        m = self._m
        if not m.enabled:
            self._lock.acquire()
            return
        m.inc("lock.acquires")
        if self._lock.acquire(blocking=False):
            return
        # Contended: time the park in wall nanoseconds.
        m.inc("lock.contended")
        t0 = m.clock()
        self._lock.acquire()
        m.observe("lock.park", m.clock() - t0)

    def release(self) -> None:
        self._lock.release()


class _ThreadGroup(TaskGroup):
    __slots__ = ("_rt", "_pending")

    def __init__(self, rt: "ThreadRuntime"):
        self._rt = rt
        self._pending = 0

    def spawn(self, fn: Callable[..., Any], *args: Any) -> None:
        rt = self._rt
        rt.charge(rt.cost.spawn)
        m = rt.metrics
        m.inc("rt.tasks_spawned")
        with rt._mon:
            if rt._error is not None:
                raise RuntimeConfigError("runtime aborted") from rt._error
            self._pending += 1
            rt._queue.append((self, fn, args, m.clock() if m.enabled else 0))
            rt._mon.notify_all()

    def wait(self) -> None:
        rt = self._rt
        m = rt.metrics
        while True:
            with rt._mon:
                if rt._error is not None:
                    raise RuntimeConfigError("runtime aborted") from rt._error
                if self._pending == 0:
                    return
                if rt._queue:
                    item = rt._queue.popleft()
                else:
                    if m.enabled:
                        with m.timer("rt.group_wait"):
                            rt._mon.wait()
                    else:
                        rt._mon.wait()
                    continue
            rt._execute(item)


class ThreadRuntime(Runtime):
    """A help-first thread pool behind the Runtime interface."""

    def __init__(self, n_workers: int, cost_model: CostModel | None = None,
                 enable_metrics: bool = True):
        if n_workers < 1:
            raise RuntimeConfigError("need at least one worker")
        self.num_workers = n_workers
        self.cost = cost_model or DEFAULT_COSTS
        self.trace = None
        self.metrics = (MetricsRegistry("ns", clock=time.perf_counter_ns)
                        if enable_metrics else NULL_METRICS)
        self._mon = threading.Condition()
        self._queue: deque[
            tuple[_ThreadGroup, Callable[..., Any], tuple, int]] = deque()
        self._stop = False
        self._error: BaseException | None = None
        self._busy = [0] * n_workers
        self._local = threading.local()
        self._default_group = _ThreadGroup(self)
        self._elapsed: float | None = None
        self._ran = False

    # -- accounting -----------------------------------------------------------

    def charge(self, units: int) -> None:
        self._busy[self.worker_id()] += units

    def now(self) -> int:
        return self._busy[self.worker_id()]

    def worker_id(self) -> int:
        try:
            return self._local.wid
        except AttributeError:
            raise RuntimeConfigError(
                "runtime API called from outside run()"
            ) from None

    def make_lock(self) -> RtLock:
        return _RealLock(self.metrics)

    def make_internal_lock(self) -> RtLock:
        # Internal shard locks are deliberately uncounted: the vtime
        # backend models them as free no-ops, so counting them here would
        # make `lock.*` metrics incomparable across backends.
        return _RealLock()

    def task_group(self) -> TaskGroup:
        return _ThreadGroup(self)

    def spawn(self, fn: Callable[..., Any], *args: Any) -> None:
        """Spawn into the implicit default group (awaited by run())."""
        self._default_group.spawn(fn, *args)

    # -- execution ----------------------------------------------------------------

    def _execute(self,
                 item: tuple[_ThreadGroup, Callable[..., Any], tuple, int]
                 ) -> None:
        group, fn, args, spawned_at = item
        m = self.metrics
        if m.enabled:
            m.inc("rt.tasks_executed")
            m.observe("rt.task_queue_delay", m.clock() - spawned_at)
        self.charge(self.cost.task_pop)
        try:
            fn(*args)
        except BaseException as exc:
            with self._mon:
                if self._error is None:
                    self._error = exc
                group._pending -= 1
                self._mon.notify_all()
            return
        with self._mon:
            group._pending -= 1
            self._mon.notify_all()

    def _worker_main(self, wid: int) -> None:
        self._local.wid = wid
        m = self.metrics
        while True:
            with self._mon:
                idle_from = None
                while not self._queue and not self._stop \
                        and self._error is None:
                    if m.enabled and idle_from is None:
                        idle_from = m.clock()
                    self._mon.wait()
                if idle_from is not None:
                    m.observe("rt.idle", m.clock() - idle_from)
                if (self._stop and not self._queue) or self._error is not None:
                    return
                item = self._queue.popleft()
            self._execute(item)

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        if self._ran:
            raise RuntimeConfigError("runtime instances are single-use")
        self._ran = True
        self._local.wid = 0
        threads = [
            threading.Thread(target=self._worker_main, args=(i,),
                             daemon=True, name=f"rt-worker-{i}")
            for i in range(1, self.num_workers)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        result = None
        err: BaseException | None = None
        try:
            result = fn(*args)
            self._default_group.wait()
        except BaseException as exc:
            err = exc
        with self._mon:
            if err is not None and self._error is None:
                self._error = err
            self._stop = True
            self._mon.notify_all()
        for t in threads:
            t.join()
        self._elapsed = time.perf_counter() - t0
        if self._error is not None:
            raise self._error
        return result

    @property
    def makespan(self) -> float:
        """Wall-clock seconds of the last run (real-time backend)."""
        if self._elapsed is None:
            raise RuntimeConfigError("makespan available only after run()")
        return self._elapsed

    @property
    def total_busy(self) -> int:
        return sum(self._busy)
