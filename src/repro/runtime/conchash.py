"""Concurrent hash map with entry-level accessor semantics.

This is the analog of TBB's ``concurrent_hash_map`` as used in the paper's
Listings 4–6: ``insert`` is an atomic insert-if-absent whose boolean result
tells the caller whether it created the entry (invariants 1 and 5), and an
*accessor* holds an entry-level lock for the duration of a compound
operation (invariants 2–4: block-end registration, edge creation and block
splitting are mutually exclusive per end address).

Built on the :class:`~repro.runtime.api.Runtime` abstraction so one
implementation serves all backends: entry locks come from
``rt.make_lock()`` (contention-modeled on virtual time, real locks on
threads); the brief shard-table critical sections use
``rt.make_internal_lock()``; every operation charges ``cost.map_op`` and
passes a virtual-time checkpoint so map operations are ordered correctly in
simulated time.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any, Generic, TypeVar

from repro.runtime.api import Runtime, RtLock

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class _Entry:
    __slots__ = ("lock", "value")

    def __init__(self, lock: RtLock):
        self.lock = lock
        self.value: Any = _MISSING


class Accessor(Generic[V]):
    """A held entry-level lock plus access to the entry's value.

    ``created`` is True when this accessor's acquisition created the entry
    — the concurrent analogue of TBB ``insert(accessor, key)`` returning
    true.  Reading ``value`` before it was ever set raises ``KeyError``.
    """

    __slots__ = ("_entry", "created", "_key", "_rt", "_loc")

    def __init__(self, entry: _Entry, created: bool, key: Any,
                 rt: Runtime | None = None, loc: tuple | None = None):
        self._entry = entry
        self.created = created
        self._key = key
        # Race-detector identity of this entry; None when not checking.
        self._rt = rt
        self._loc = loc

    @property
    def value(self) -> V:
        if self._rt is not None:
            self._rt.race_read(self._loc)
        v = self._entry.value
        if v is _MISSING:
            raise KeyError(self._key)
        return v

    @value.setter
    def value(self, v: V) -> None:
        if self._rt is not None:
            self._rt.race_write(self._loc)
        self._entry.value = v

    @property
    def has_value(self) -> bool:
        return self._entry.value is not _MISSING


class ConcurrentHashMap(Generic[K, V]):
    """Sharded hash map with per-entry locks.

    Thread-safety contract (as in the paper): concurrent ``insert`` /
    ``accessor`` calls are safe; unsynchronized iteration (``items`` etc.)
    is only safe once no writers remain (the CFG becomes read-only after
    construction — Section 7.2).
    """

    __slots__ = ("_rt", "_shards", "_locks", "_mask", "_m", "_mname")

    def __init__(self, rt: Runtime, n_shards: int = 64, name: str = "map"):
        n = 1
        while n < n_shards:
            n <<= 1
        self._rt = rt
        self._shards: list[dict[K, _Entry]] = [dict() for _ in range(n)]
        self._locks = [rt.make_internal_lock() for _ in range(n)]
        self._mask = n - 1
        #: metric label: this map's ops/contention appear as ``map.<name>.*``.
        self._mname = name
        self._m = rt.metrics

    def _shard_of(self, key: K) -> int:
        return hash(key) & self._mask

    def _find_or_create(self, key: K, create: bool, init: Any = _MISSING,
                        lock_on_create: bool = False
                        ) -> tuple[_Entry | None, bool]:
        """Find the entry for ``key``, creating it if requested.

        ``init`` is the initial value installed at creation, *inside* the
        shard critical section, so a losing inserter can never observe a
        half-created entry.  Returns ``(entry, created)``; charges one map
        operation and passes a virtual-time checkpoint.
        """
        rt = self._rt
        rt.charge(rt.cost.map_op)
        rt.checkpoint()
        self._m.inc(f"map.{self._mname}.ops")
        idx = self._shard_of(key)
        with self._locks[idx]:
            shard = self._shards[idx]
            entry = shard.get(key)
            if entry is not None:
                return entry, False
            if not create:
                return None, False
            entry = _Entry(rt.make_lock())
            entry.value = init
            if lock_on_create:
                # TBB ``insert(accessor)`` atomicity: the creator must
                # hold the entry lock *at publication*, or a losing
                # accessor could acquire it first and observe the entry
                # before the creator assigns its value (a real KeyError
                # race on the threads backend, found by ``repro fuzz``).
                # The lock is fresh, so this acquire can never block.
                entry.lock.acquire()
            shard[key] = entry
            if rt.race_checking and init is not _MISSING:
                # Creation installs the value inside the shard critical
                # section (insert path); report it as a shard-locked write.
                rt.race_write(("map", self._mname, key))
            self._m.inc(f"map.{self._mname}.created")
            return entry, True

    # -- TBB-style operations ------------------------------------------------

    def insert(self, key: K, value: V) -> bool:
        """Atomic insert-if-absent (Listing 4).

        Returns True iff this call created the entry.  The losing caller's
        value is discarded, exactly like ``delete b`` in Listing 4.
        """
        _, created = self._find_or_create(key, create=True, init=value)
        return created

    @contextmanager
    def accessor(self, key: K, create: bool = True) -> Iterator[Accessor[V] | None]:
        """Acquire the entry-level lock for ``key`` (Listing 5).

        Yields an :class:`Accessor`, or None when ``create=False`` and the
        key is absent.  While the accessor is held, no other worker can
        hold an accessor for the same key — on the virtual-time backend the
        wait is charged as lock contention.
        """
        entry, created = self._find_or_create(key, create,
                                              lock_on_create=True)
        if entry is None:
            yield None
            return
        m = self._m
        if created:
            # The creator already holds the entry lock (acquired at
            # publication, inside the shard critical section).
            if m.enabled:
                m.inc(f"map.{self._mname}.acquires")
        elif m.enabled:
            m.inc(f"map.{self._mname}.acquires")
            t0 = m.clock()
            entry.lock.acquire()
            parked = m.clock() - t0
            if parked > 0:
                # Entry-lock contention (the paper's Section 6.1 story).
                # Exact on vtime (uncontended acquires are free in virtual
                # time); on the threads backend the delta includes acquire
                # overhead, so `lock.contended` is the authoritative count.
                m.inc(f"map.{self._mname}.contended")
                m.observe(f"map.{self._mname}.park", parked)
        else:
            entry.lock.acquire()
        try:
            if self._rt.race_checking:
                yield Accessor(entry, created, key, self._rt,
                               ("map", self._mname, key))
            else:
                yield Accessor(entry, created, key)
        finally:
            entry.lock.release()

    def install_many(self, items: Iterator[tuple[K, V]] | list[tuple[K, V]]
                     ) -> int:
        """Bulk insert-if-absent for single-writer phases (the procs
        backend's structural merge installs whole shard fragments before
        any traversal task runs).  Skips entry-lock and shard-lock traffic
        but charges one map operation per item so accounted work matches
        per-item ``insert``.  Returns the number of entries created."""
        rt = self._rt
        check = rt.race_checking
        n_seen = 0
        n_created = 0
        for key, value in items:
            n_seen += 1
            shard = self._shards[self._shard_of(key)]
            entry = shard.get(key)
            if check:
                # Deliberately reported as *unlocked* accesses: this path
                # is only legal in single-writer phases, and the detector
                # flags any concurrent use (no lock edge exists to hide it).
                rt.race_read(("map", self._mname, key))
            if entry is not None and entry.value is not _MISSING:
                continue
            entry = _Entry(rt.make_lock())
            entry.value = value
            shard[key] = entry
            if check:
                rt.race_write(("map", self._mname, key))
            n_created += 1
        rt.charge(rt.cost.map_op * n_seen)
        rt.checkpoint()
        if self._m.enabled and n_seen:
            self._m.inc(f"map.{self._mname}.ops", n_seen)
            if n_created:
                self._m.inc(f"map.{self._mname}.created", n_created)
        return n_created

    # -- unsynchronized operations (single-writer or read-only phases) --------

    def get(self, key: K, default: Any = None) -> V | Any:
        """Read a value without locking (read-only phases).

        The race detector sees this as an *unlocked* read: it conflicts
        with any concurrent write of the same entry unless fork-join or
        lock chains order them — which is exactly the "single-writer or
        read-only phase" contract this method documents.
        """
        rt = self._rt
        if rt.race_checking:
            rt.race_read(("map", self._mname, key))
        entry = self._shards[self._shard_of(key)].get(key)
        if entry is None or entry.value is _MISSING:
            return default
        return entry.value

    def __contains__(self, key: K) -> bool:
        # Deliberately not race-annotated: a membership probe is the
        # paper's legal racy `find` — monotone (entries are never
        # removed during traversal) and structure-safe, so concurrent
        # probes carry no ordering obligation.
        entry = self._shards[self._shard_of(key)].get(key)
        return entry is not None and entry.value is not _MISSING

    def __len__(self) -> int:
        return sum(
            1
            for shard in self._shards
            for e in shard.values()
            if e.value is not _MISSING
        )

    def remove(self, key: K) -> bool:
        """Remove an entry (finalization phase); True if it existed."""
        rt = self._rt
        rt.charge(rt.cost.map_op)
        rt.checkpoint()
        self._m.inc(f"map.{self._mname}.ops")
        idx = self._shard_of(key)
        with self._locks[idx]:
            if rt.race_checking:
                rt.race_write(("map", self._mname, key))
            return self._shards[idx].pop(key, None) is not None

    def items(self) -> Iterator[tuple[K, V]]:
        """Iterate (unsynchronized; call only when no writers remain).

        Under the race detector every yielded value is an *unlocked*
        read, so iterating while writers run is reported as a race.
        Prefer :meth:`items_snapshot` / :meth:`snapshot`, which the
        accessor-discipline lint accepts.
        """
        rt = self._rt
        check = rt.race_checking
        for shard in self._shards:
            for k, e in shard.items():
                if e.value is not _MISSING:
                    if check:
                        rt.race_read(("map", self._mname, k))
                    yield k, e.value

    def keys(self) -> Iterator[K]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[V]:
        for _, v in self.items():
            yield v

    # -- snapshot API (structure-safe iteration) -------------------------------

    def items_snapshot(self) -> list[tuple[K, V]]:
        """Copy the live items shard-by-shard under the shard locks.

        Structure-safe against concurrent ``insert``/``remove`` (no
        dict-mutation-during-iteration hazard, unlike :meth:`items`).
        Deliberately charge-free, like the unsynchronized iterators it
        replaces, so migrating call sites does not perturb virtual
        time.  Visibility of entry *values* still requires the usual
        happens-before ordering — the race detector models these reads
        as shard-locked.
        """
        rt = self._rt
        check = rt.race_checking
        out: list[tuple[K, V]] = []
        for idx, shard in enumerate(self._shards):
            with self._locks[idx]:
                for k, e in shard.items():
                    v = e.value
                    if v is not _MISSING:
                        if check:
                            rt.race_read(("map", self._mname, k))
                        out.append((k, v))
        return out

    def snapshot(self) -> dict[K, V]:
        """Shard-locked copy of the map as a plain dict."""
        return dict(self.items_snapshot())

    def sorted_items(self, key: Callable[[K], Any] | None = None
                     ) -> list[tuple[K, V]]:
        """Deterministically ordered items, independent of insertion order.

        Consumers that must produce identical results regardless of worker
        count iterate through this.  Built on :meth:`items_snapshot`, so
        it is structure-safe like the rest of the snapshot API.
        """
        return sorted(self.items_snapshot(),
                      key=(lambda kv: key(kv[0])) if key else
                      (lambda kv: kv[0]))
