"""Deterministic virtual-time parallel runtime.

This backend is the reproduction's substitute for real hardware threads
(see DESIGN.md): it executes the parallel algorithms on N *simulated*
workers whose clocks advance by cost-model charges, and reports the
simulated makespan from which all speedup curves are computed.

Execution model
---------------
Workers are real OS threads, but exactly one executes at a time (token
passing), so execution is fully serialized and deterministic under the GIL.
Workers' *virtual clocks* advance independently, so the simulated timeline
is genuinely parallel.  "Events" — task spawn/pop/completion, lock
acquire/release, explicit checkpoints — are global order points: the
scheduler guarantees events execute in nondecreasing virtual-time order
(ties broken by worker id).  Between events a worker runs local code that
touches no cross-worker shared state (the discipline documented in
:mod:`repro.runtime.api`), so local code commutes with other workers'
events and the serialization is sound.

Blocking is modeled faithfully:

- a contended :class:`SimLock` parks the acquirer until the virtual release
  time (plus a configurable handoff cost) — this is how the paper's
  accessor-lock contention and non-returning dependency serialization show
  up in the measured curves;
- an empty task queue parks a worker as idle; its clock jumps forward to
  the spawn time of the next task it receives — this is load imbalance;
- a task-group wait parks the owner until the last task completes, jumping
  its clock to the completion time — this is fork-join synchronization.

Same seed + same worker count ⇒ bit-identical execution.  Different worker
counts must yield the identical final CFG (tested); only the makespan
changes.
"""

from __future__ import annotations

import enum
import random
import threading
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import RuntimeConfigError, SimDeadlockError
from repro.runtime.api import Runtime, RtLock, TaskGroup, Trace, TraceInterval
from repro.runtime.cost import DEFAULT_COSTS, CostModel
from repro.runtime.metrics import NULL_METRICS, MetricsRegistry


class _State(enum.Enum):
    RUNNING = "running"      # holds the token (at most one)
    EVENT = "event"          # parked at an order point, resumable
    IDLE = "idle"            # waiting for a task
    BLOCK_LOCK = "lock"      # waiting on a SimLock
    BLOCK_GROUP = "group"    # waiting on a TaskGroup
    NEW = "new"              # not yet started
    DONE = "done"


class _Worker:
    __slots__ = ("wid", "rank", "clock", "busy", "state", "cond", "thread")

    def __init__(self, wid: int, mon: threading.Lock):
        self.wid = wid
        self.rank = wid  # tie-break rank; permuted under a schedule seed
        self.clock = 0
        self.busy = 0
        self.state = _State.NEW
        self.cond = threading.Condition(mon)
        self.thread: threading.Thread | None = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.clock, self.rank)


@dataclass(slots=True)
class _Task:
    fn: Callable[..., Any]
    args: tuple
    group: "_VtGroup"
    spawn_clock: int
    tag: str
    race_token: Any = None


class _NoOpLock(RtLock):
    """Internal-structure lock: execution is token-serialized, so no-op."""

    def acquire(self) -> None:
        pass

    def release(self) -> None:
        pass


class _ObservedNoOpLock(RtLock):
    """Internal lock that reports acquire/release to a race detector.

    Execution stays token-serialized (no blocking needed), but the
    detector must still see the happens-before edges these sections
    create — e.g. a map shard lock ordering entry creation before a
    later lock-free ``get`` of the same shard.
    """

    __slots__ = ("_rt",)

    def __init__(self, rt: "VirtualTimeRuntime"):
        self._rt = rt

    def acquire(self) -> None:
        rt = self._rt
        w = getattr(rt._local, "worker", None)
        if w is not None:
            rt._race.on_acquire(w.wid, id(self))

    def release(self) -> None:
        rt = self._rt
        w = getattr(rt._local, "worker", None)
        if w is not None:
            rt._race.on_release(w.wid, id(self))


class SimLock(RtLock):
    """A contention-modeled mutex in virtual time."""

    __slots__ = ("_rt", "_owner", "_waiters")

    def __init__(self, rt: "VirtualTimeRuntime"):
        self._rt = rt
        self._owner: int | None = None
        self._waiters: list[_Worker] = []

    def acquire(self) -> None:
        rt = self._rt
        w = rt._me()
        with rt._mon:
            rt._event(w)
            rt.metrics.inc("lock.acquires")
            if self._owner is None:
                self._owner = w.wid
                if rt._race is not None:
                    rt._race.on_acquire(w.wid, id(self))
                return
            if self._owner == w.wid:
                raise RuntimeConfigError("recursive SimLock acquisition")
            rt.metrics.inc("lock.contended")
            parked_at = w.clock
            w.state = _State.BLOCK_LOCK
            self._waiters.append(w)
            rt._reschedule()
            rt._wait_for_token(w)
            # Resumed by release(): we are the owner now.
            assert self._owner == w.wid
            if rt._race is not None:
                rt._race.on_acquire(w.wid, id(self))
            rt.metrics.observe("lock.park", w.clock - parked_at)

    def release(self) -> None:
        rt = self._rt
        w = rt._me()
        with rt._mon:
            if self._owner != w.wid:
                raise RuntimeConfigError("SimLock released by non-owner")
            rt._event(w)
            if rt._race is not None:
                rt._race.on_release(w.wid, id(self))
            if self._waiters:
                nxt = min(self._waiters, key=lambda x: x.key)
                self._waiters.remove(nxt)
                nxt.clock = max(nxt.clock, w.clock) + rt.cost.lock_handoff
                nxt.state = _State.EVENT
                self._owner = nxt.wid
            else:
                self._owner = None


class _VtGroup(TaskGroup):
    __slots__ = ("_rt", "_pending", "_completion", "_waiters")

    def __init__(self, rt: "VirtualTimeRuntime"):
        self._rt = rt
        self._pending = 0
        self._completion = 0
        self._waiters: list[_Worker] = []

    def spawn(self, fn: Callable[..., Any], *args: Any) -> None:
        rt = self._rt
        w = rt._me()
        with rt._mon:
            rt._event(w)
            w.clock += rt.cost.spawn + rt._jitter()
            w.busy += rt.cost.spawn
            rt.metrics.inc("rt.tasks_spawned")
            self._pending += 1
            token = (rt._race.on_spawn(w.wid)
                     if rt._race is not None else None)
            rt._queue.append(_Task(fn, args, self, w.clock,
                                   getattr(fn, "__name__", "task"),
                                   token))
            rt._wake_idle(w.clock)

    def wait(self) -> None:
        rt = self._rt
        w = rt._me()
        while True:
            with rt._mon:
                rt._event(w)
                if self._pending == 0:
                    w.clock = max(w.clock, self._completion)
                    if rt._race is not None:
                        rt._race.on_group_wait(w.wid, id(self))
                    return
                if rt._queue:
                    task = rt._pop_task(w)
                else:
                    parked_at = w.clock
                    w.state = _State.BLOCK_GROUP
                    self._waiters.append(w)
                    rt._reschedule()
                    rt._wait_for_token(w)
                    rt.metrics.observe("rt.group_wait",
                                       w.clock - parked_at)
                    continue
            rt._run_task(w, task)

    # Called with the monitor held, by the worker finishing a member task.
    def _task_done(self, rt: "VirtualTimeRuntime", w: _Worker) -> None:
        if rt._race is not None:
            rt._race.on_task_done(w.wid, id(self))
        self._pending -= 1
        if self._pending == 0:
            self._completion = max(self._completion, w.clock)
            for waiter in self._waiters:
                waiter.clock = max(waiter.clock, w.clock)
                waiter.state = _State.EVENT
            self._waiters.clear()


class VirtualTimeRuntime(Runtime):
    """See module docstring."""

    def __init__(
        self,
        n_workers: int,
        cost_model: CostModel | None = None,
        enable_trace: bool = False,
        enable_metrics: bool = True,
        schedule_seed: int | None = None,
        race_detector: "Any | None" = None,
    ):
        if n_workers < 1:
            raise RuntimeConfigError("need at least one worker")
        self.num_workers = n_workers
        self.cost = cost_model or DEFAULT_COSTS
        self.trace = Trace(n_workers) if enable_trace else None
        self.metrics = (MetricsRegistry("cycles", clock=self.now)
                        if enable_metrics else NULL_METRICS)
        self._mon = threading.Lock()
        self._workers = [_Worker(i, self._mon) for i in range(n_workers)]
        # Schedule sweeping: a seed deterministically perturbs the
        # schedule (tie-break ranks + small spawn/pop clock jitter)
        # without changing any charged work, so a sweep over seeds
        # explores distinct interleavings while every individual run
        # stays bit-reproducible.  Seed None keeps the historical
        # schedule exactly (jitter 0, rank == wid).
        self.schedule_seed = schedule_seed
        self._rng: random.Random | None = None
        if schedule_seed is not None:
            self._rng = random.Random(schedule_seed)
            ranks = list(range(n_workers))
            self._rng.shuffle(ranks)
            for w, r in zip(self._workers, ranks):
                w.rank = r
        self._race = race_detector
        self.race_checking = race_detector is not None
        self._queue: deque[_Task] = deque()
        self._current: int | None = None
        self._stop = False
        self._error: BaseException | None = None
        self._max_clock = 0
        self._ran = False
        self._finished = False
        self._local = threading.local()
        self._default_group = _VtGroup(self)

    # ------------------------------------------------------------------ public

    def charge(self, units: int) -> None:
        w = self._me()
        w.clock += units
        w.busy += units

    def now(self) -> int:
        return self._me().clock

    def worker_id(self) -> int:
        return self._me().wid

    def make_lock(self) -> RtLock:
        return SimLock(self)

    def make_internal_lock(self) -> RtLock:
        if self._race is not None:
            return _ObservedNoOpLock(self)
        return _NoOpLock()

    def race_read(self, loc: tuple) -> None:
        if self._race is not None:
            w = getattr(self._local, "worker", None)
            if w is not None:
                self._race.read(w.wid, loc)

    def race_write(self, loc: tuple) -> None:
        if self._race is not None:
            w = getattr(self._local, "worker", None)
            if w is not None:
                self._race.write(w.wid, loc)

    def _jitter(self) -> int:
        """Seeded schedule perturbation (0 without a schedule seed)."""
        rng = self._rng
        return rng.randrange(0, 4) if rng is not None else 0

    def checkpoint(self) -> None:
        """Explicit virtual-time order point (see parallel_for)."""
        w = self._me()
        with self._mon:
            self._event(w)

    def task_group(self) -> TaskGroup:
        return _VtGroup(self)

    def spawn(self, fn: Callable[..., Any], *args: Any) -> None:
        """Spawn into the implicit default group (awaited by run())."""
        self._default_group.spawn(fn, *args)

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        if self._ran:
            raise RuntimeConfigError("runtime instances are single-use")
        self._ran = True
        if self._race is not None:
            self._race.begin_run(self.num_workers, self.schedule_seed)
        w0 = self._workers[0]
        self._local.worker = w0
        for w in self._workers[1:]:
            t = threading.Thread(target=self._worker_main, args=(w,),
                                 daemon=True, name=f"vt-worker-{w.wid}")
            w.thread = t
        with self._mon:
            w0.state = _State.RUNNING
            self._current = 0
        for w in self._workers[1:]:
            assert w.thread is not None
            w.thread.start()
        result = None
        try:
            result = fn(*args)
            self._default_group.wait()
        except BaseException as exc:
            with self._mon:
                self._fail(exc)
        # Orderly shutdown: retire worker 0 and let remaining events drain.
        with self._mon:
            self._max_clock = max(self._max_clock, w0.clock)
            w0.state = _State.DONE
            if self._current == 0:
                self._reschedule()
        for w in self._workers[1:]:
            assert w.thread is not None
            w.thread.join()
        self._finished = True
        if self._race is not None:
            self._race.end_run()
        if self._error is not None:
            raise self._error
        return result

    @property
    def makespan(self) -> int:
        if not self._finished:
            raise RuntimeConfigError("makespan available only after run()")
        return self._max_clock

    @property
    def total_busy(self) -> int:
        """Total charged worker-cycles (for utilization reporting)."""
        return sum(w.busy for w in self._workers)

    def utilization(self) -> float:
        """Fraction of aggregate worker capacity that did useful work."""
        if self.makespan == 0:
            return 1.0
        return self.total_busy / (self.num_workers * self.makespan)

    # --------------------------------------------------------------- scheduling

    def _me(self) -> _Worker:
        try:
            return self._local.worker
        except AttributeError:
            raise RuntimeConfigError(
                "runtime API called from outside run()"
            ) from None

    def _min_event_worker(self) -> _Worker | None:
        best: _Worker | None = None
        for w in self._workers:
            if w.state is _State.EVENT and (best is None or w.key < best.key):
                best = w
        return best

    def _event(self, w: _Worker) -> None:
        """Order point: yield to any resumable worker earlier in virtual time.

        Must be called with the monitor held; returns with ``w`` holding the
        token and no parked event earlier than ``w.key``.
        """
        if self._error is not None:
            raise RuntimeConfigError("runtime aborted") from self._error
        if w.clock > self._max_clock:
            self._max_clock = w.clock
        while True:
            best = self._min_event_worker()
            if best is None or best.key >= w.key:
                return
            w.state = _State.EVENT
            self._grant(best)
            self._wait_for_token(w)

    def _grant(self, w: _Worker) -> None:
        self._current = w.wid
        w.cond.notify()

    def _wait_for_token(self, w: _Worker) -> None:
        """Park until granted the token (monitor held)."""
        while self._current != w.wid:
            if self._error is not None:
                raise RuntimeConfigError("runtime aborted") from self._error
            w.cond.wait()
        w.state = _State.RUNNING
        if w.clock > self._max_clock:
            self._max_clock = w.clock

    def _reschedule(self) -> None:
        """Hand the token to the earliest parked event worker, if any.

        Called (monitor held) when the current worker stops being runnable.
        """
        best = self._min_event_worker()
        if best is not None:
            self._grant(best)
            return
        self._current = None
        self._check_stall()

    def _check_stall(self) -> None:
        """No runnable worker: decide between shutdown and deadlock."""
        blocked = [w for w in self._workers
                   if w.state in (_State.BLOCK_LOCK, _State.BLOCK_GROUP)]
        if blocked:
            self._fail(SimDeadlockError(
                f"workers {[w.wid for w in blocked]} blocked with no "
                f"runnable worker"
            ))
            return
        # Everyone is IDLE or DONE and the queue must be empty (pushes wake
        # idle workers); tell idle workers to exit.
        self._stop = True
        for w in self._workers:
            if w.state is _State.IDLE:
                w.cond.notify()

    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        self._stop = True
        for w in self._workers:
            w.cond.notify()

    def _wake_idle(self, push_clock: int) -> None:
        """Move idle workers to the event set after a task push."""
        for w in self._workers:
            if w.state is _State.IDLE:
                if push_clock > w.clock:
                    # The clock jump is exactly the worker's starved time.
                    self.metrics.observe("rt.idle", push_clock - w.clock)
                    w.clock = push_clock
                w.state = _State.EVENT

    def _pop_task(self, w: _Worker) -> _Task:
        task = self._queue.popleft()
        m = self.metrics
        if m.enabled:
            m.inc("rt.tasks_executed")
            m.observe("rt.task_queue_delay",
                      max(w.clock, task.spawn_clock) - task.spawn_clock)
        w.clock = max(w.clock, task.spawn_clock) + self.cost.task_pop \
            + self._jitter()
        w.busy += self.cost.task_pop
        return task

    def _run_task(self, w: _Worker, task: _Task) -> None:
        start = w.clock
        if self._race is not None:
            self._race.on_task_start(w.wid, task.race_token)
        try:
            task.fn(*task.args)
        except BaseException as exc:
            with self._mon:
                self._fail(exc)
                task.group._task_done(self, w)
            return
        with self._mon:
            self._event(w)
            if self.trace is not None:
                self.trace.intervals.append(
                    TraceInterval(w.wid, start, w.clock, task.tag)
                )
            task.group._task_done(self, w)

    def _next_task(self, w: _Worker) -> _Task | None:
        with self._mon:
            if w.state is _State.RUNNING:
                self._event(w)
            elif w.state is _State.NEW:
                # Fresh worker: work may have been queued before we came up.
                if self._queue:
                    w.state = _State.EVENT
                    if self._current is None:
                        self._reschedule()
                    self._wait_for_token(w)
                else:
                    w.state = _State.IDLE
            while True:
                if w.state is _State.RUNNING:
                    if self._stop or self._error is not None:
                        return None
                    if self._queue:
                        return self._pop_task(w)
                    w.state = _State.IDLE
                    self._reschedule()
                # Parked idle (fresh workers enter here directly): wait to
                # be woken into the event set or told to stop.
                while w.state is _State.IDLE and not self._stop \
                        and self._error is None:
                    w.cond.wait()
                if w.state is _State.EVENT:
                    self._wait_for_token(w)
                else:
                    return None

    def _worker_main(self, w: _Worker) -> None:
        self._local.worker = w
        while True:
            task = self._next_task(w)
            if task is None:
                break
            self._run_task(w, task)
        with self._mon:
            self._max_clock = max(self._max_clock, w.clock)
            w.state = _State.DONE
            if self._current == w.wid:
                self._reschedule()
