"""Structured runtime metrics: counters, histograms, timers.

The paper's evaluation depends on knowing *where parallel time goes*:
Figure 2's phase traces, Section 6.1's hash-map entry-lock contention
discussion, Table 2/3's per-phase speedups.  This module is the
collection substrate behind that visibility — every backend owns a
:class:`MetricsRegistry` (``rt.metrics``) that library code increments
as it works, and ``repro trace`` / the benchmark harness export it as
versioned JSON (schema documented in ``docs/OBSERVABILITY.md``).

Design constraints:

- **Pure observation.**  Recording a metric never charges simulated
  cycles, never takes a runtime lock, and never passes a virtual-time
  order point.  Enabling metrics therefore cannot change scheduling,
  the final CFG, or the makespan — a vtime run with metrics on is
  bit-identical to one with metrics off (tested).
- **Backend-relative time.**  Histogram values produced by timers and
  park-time measurements come from the owning backend's clock: virtual
  cycles on ``vtime``/``serial``, wall nanoseconds on ``threads``.
  The registry's ``time_unit`` names the unit in exports.  Series that
  are *always* wall-clock regardless of the unit say so in their name
  (the procs backend's ``*_wall_ns`` histograms: fan-out, per-fragment
  merge installs, overlapped-install time and frontier replay).
- **Cheap opt-out.**  Construct a runtime with ``enable_metrics=False``
  and ``rt.metrics`` is the shared :data:`NULL_METRICS` no-op, so
  instrumented call sites cost one attribute read and a predictable
  branch.  Sites that would do extra work to *compute* a metric value
  (e.g. reading a clock twice) guard on ``rt.metrics.enabled``.

The catalog of every metric name emitted by the library lives in
``docs/OBSERVABILITY.md``; ``tests/test_docs.py`` checks the catalog is
complete against a real run.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from contextlib import contextmanager

#: Schema identifier embedded in :meth:`MetricsRegistry.snapshot`.
METRICS_SCHEMA = "repro.metrics/1"


def bucket_bound(value: int) -> int:
    """The histogram bucket upper bound for ``value``.

    Buckets are powers of two: a value lands in the smallest bucket
    ``2**k >= value``; values ``<= 0`` land in bucket ``0``.  Power-of-two
    buckets keep the export compact and merge-friendly while preserving
    the order-of-magnitude shape that contention analysis needs.
    """
    if value <= 0:
        return 0
    return 1 << (value - 1).bit_length()


class Histogram:
    """Streaming histogram: count/sum/min/max plus power-of-two buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = bucket_bound(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-ready dict (bucket keys stringified, sorted numerically)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): self.buckets[k]
                        for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named counters and histograms for one runtime instance.

    Updates are guarded by a plain ``threading.Lock`` (never a runtime
    lock): on the virtual-time backend execution is already serialized
    so the lock is uncontended; on the thread backend it makes
    concurrent updates safe.
    """

    enabled = True

    def __init__(self, time_unit: str = "cycles",
                 clock: Callable[[], int] | None = None):
        self.time_unit = time_unit
        self._clock = clock if clock is not None else (lambda: 0)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._hists: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: int) -> None:
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = Histogram()
            h.observe(value)

    def clock(self) -> int:
        """The owning backend's clock, in ``time_unit`` units."""
        return self._clock()

    @contextmanager
    def timer(self, name: str):
        """Observe the elapsed backend time of a ``with`` body."""
        t0 = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - t0)

    # -- merging -------------------------------------------------------------

    def merge_snapshot(self, snap: dict, prefix: str = "") -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; histograms merge count/sum/min/max and bucket
        tallies (power-of-two buckets merge exactly).  ``prefix`` is
        prepended to every name — the procs backend uses ``"workers."``
        so per-worker collections stay distinguishable from the
        coordinator's own series.  Cross-process metric flow is exactly
        this: collect in the worker, snapshot, merge at the join.
        """
        with self._lock:
            for k, v in snap.get("counters", {}).items():
                key = prefix + k
                self._counters[key] = self._counters.get(key, 0) + v
            for k, h in snap.get("histograms", {}).items():
                key = prefix + k
                dst = self._hists.get(key)
                if dst is None:
                    dst = self._hists[key] = Histogram()
                dst.count += h["count"]
                dst.total += h["sum"]
                for bound, better in (("min", min), ("max", max)):
                    v = h.get(bound)
                    if v is not None:
                        cur = getattr(dst, bound)
                        setattr(dst, bound,
                                v if cur is None else better(cur, v))
                for bk, c in h.get("buckets", {}).items():
                    b = int(bk)
                    dst.buckets[b] = dst.buckets.get(b, 0) + c

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        return self._hists.get(name)

    def names(self) -> list[str]:
        """All metric names recorded so far, sorted."""
        return sorted(set(self._counters) | set(self._hists))

    def snapshot(self) -> dict:
        """Versioned, JSON-ready view of everything recorded."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "time_unit": self.time_unit,
                "counters": {k: self._counters[k]
                             for k in sorted(self._counters)},
                "histograms": {k: self._hists[k].snapshot()
                               for k in sorted(self._hists)},
            }


class _NullMetrics(MetricsRegistry):
    """Shared do-nothing registry used when metrics are disabled."""

    enabled = False

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: int) -> None:
        pass

    def merge_snapshot(self, snap: dict, prefix: str = "") -> None:
        pass

    @contextmanager
    def timer(self, name: str):
        yield


#: The disabled-metrics singleton (also the Runtime class default).
NULL_METRICS = _NullMetrics()
