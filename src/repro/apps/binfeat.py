"""BinFeat: binary code feature extraction for forensics (Section 7/8.3).

Four stages over a corpus of binaries, matching Table 3's columns:

- **CFG** — parallel CFG construction, one binary after another.  Small
  binaries offer few functions per binary, and jump-table analysis tasks
  dominate (imbalance), so this stage scales worst — the paper measures
  only ~4x at 64 threads and explains exactly these two causes.
- **IF** — instruction features: opcode n-grams per function (parallel
  over every function of every binary).
- **CF** — control-flow features: loop counts/depths, degree histograms,
  small subgraph signatures.
- **DF** — data-flow features: live-register counts.  Data-flow has
  higher per-function complexity, so the largest functions dominate the
  stage makespan (the paper's explanation for DF's 9x plateau).

A final parallel reduction merges per-function features into the global
feature index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analyses.liveness import liveness
from repro.analyses.loops import find_loops
from repro.binary.loader import LoadedBinary
from repro.core.cfg import Function, ParsedCFG
from repro.core.parallel_parser import ParallelParser, ParseOptions
from repro.runtime.api import Runtime


@dataclass
class BinFeatResult:
    """Output of one BinFeat run over a corpus."""

    stage_durations: dict[str, int]
    makespan: int
    feature_index: Counter
    n_binaries: int
    n_functions: int

    @property
    def cfg_time(self) -> int:
        return self.stage_durations["cfg"]

    @property
    def if_time(self) -> int:
        return self.stage_durations["instruction_features"]

    @property
    def cf_time(self) -> int:
        return self.stage_durations["control_flow_features"]

    @property
    def df_time(self) -> int:
        return self.stage_durations["data_flow_features"]


def binfeat(binaries: list[LoadedBinary], rt: Runtime,
            ngram: int = 2,
            parse_options: ParseOptions | None = None) -> BinFeatResult:
    """Run BinFeat over a corpus on ``rt``."""
    app = _BinFeat(binaries, rt, ngram, parse_options)
    return rt.run(app.execute)


@dataclass
class DistributedBinFeatResult:
    """Node-level distribution results (Section 9 discussion)."""

    per_node: list[BinFeatResult]
    makespan: int           #: max over nodes (nodes run independently)
    feature_index: Counter  #: merged global index

    @property
    def n_nodes(self) -> int:
        return len(self.per_node)


def binfeat_distributed(binaries: list[LoadedBinary], n_nodes: int,
                        workers_per_node: int,
                        runtime_factory=None) -> DistributedBinFeatResult:
    """Distribute the corpus across nodes (the paper's Section 9 note:
    "BinFeat can benefit from node level parallelism by distributing the
    analysis of different binaries to different machines").

    Each node runs an independent virtual-time runtime over its share of
    the corpus; the cluster makespan is the slowest node.  Shares are
    dealt round-robin, the simplest static balance.
    """
    from repro.runtime.vtime import VirtualTimeRuntime

    if runtime_factory is None:
        def runtime_factory():
            return VirtualTimeRuntime(workers_per_node)

    shares: list[list[LoadedBinary]] = [[] for _ in range(n_nodes)]
    for i, b in enumerate(binaries):
        shares[i % n_nodes].append(b)

    per_node: list[BinFeatResult] = []
    for share in shares:
        if not share:
            continue
        rt = runtime_factory()
        per_node.append(binfeat(share, rt))

    merged: Counter = Counter()
    for res in per_node:
        merged.update(res.feature_index)
    return DistributedBinFeatResult(
        per_node=per_node,
        makespan=max((r.makespan for r in per_node), default=0),
        feature_index=merged,
    )


class _BinFeat:
    def __init__(self, binaries: list[LoadedBinary], rt: Runtime,
                 ngram: int, parse_options: ParseOptions | None):
        self.binaries = binaries
        self.rt = rt
        self.ngram = ngram
        self.parse_options = parse_options or ParseOptions()

    def execute(self) -> BinFeatResult:
        rt = self.rt
        durations: dict[str, int] = {}

        # Stage 1: CFG construction, binary by binary (each parallel).
        cfgs: list[ParsedCFG] = []
        t0 = rt.now()
        with rt.phase("cfg"):
            for binary in self.binaries:
                parser = ParallelParser(binary, rt, self.parse_options)
                cfgs.append(parser.execute())
        durations["cfg"] = rt.now() - t0

        # Work list: every function of every binary, largest first
        # (Listing 7's sort for load balancing).
        work: list[Function] = [f for cfg in cfgs for f in cfg.functions()]
        per_function: list[Counter] = []

        def stage(name: str, fn) -> None:
            start = rt.now()
            with rt.phase(name):
                # Per-function enumeration/setup is serial driver work
                # (building the work queue, opening feature streams) —
                # one of the Amdahl terms that keeps the paper's feature
                # stages below perfect scaling.
                rt.charge(4 * max(1, len(work)))
                rt.parallel_for(work, fn,
                                sort_key=lambda f: len(f.blocks),
                                reverse=True)
            durations[name] = rt.now() - start

        def extract_if(func: Function) -> None:
            feats = self._instruction_features(func)
            per_function.append(feats)

        def extract_cf(func: Function) -> None:
            per_function.append(self._control_flow_features(func))

        def extract_df(func: Function) -> None:
            per_function.append(self._data_flow_features(func))

        stage("instruction_features", extract_if)
        stage("control_flow_features", extract_cf)
        stage("data_flow_features", extract_df)

        # Final reduction: merge feature counters (tree-parallel).
        t0 = rt.now()
        with rt.phase("reduce"):
            index = self._reduce(per_function)
        durations["reduce"] = rt.now() - t0

        return BinFeatResult(
            stage_durations=durations,
            makespan=rt.now(),
            feature_index=index,
            n_binaries=len(self.binaries),
            n_functions=len(work),
        )

    # -- feature extractors ---------------------------------------------------

    def _instruction_features(self, func: Function) -> Counter:
        rt = self.rt
        feats: Counter = Counter()
        n_insns = 0
        for b in sorted(func.blocks, key=lambda b: b.start):
            ops = [i.opcode.name for i in b.insns]
            n_insns += len(ops)
            for k in range(len(ops) - self.ngram + 1):
                feats[("ngram", tuple(ops[k:k + self.ngram]))] += 1
        rt.charge(rt.cost.feature_per_insn * max(1, n_insns))
        return feats

    def _control_flow_features(self, func: Function) -> Counter:
        rt = self.rt
        feats: Counter = Counter()
        n_edges = sum(len(b.out_edges) for b in func.blocks)
        rt.charge(rt.cost.feature_per_edge * max(1, n_edges))
        forest = find_loops(func, rt)
        feats[("loops", forest.n_loops)] += 1
        feats[("loop_depth", forest.max_depth)] += 1
        for b in func.blocks:
            out_deg = len([e for e in b.out_edges
                           if e.etype.intraprocedural])
            feats[("degree", out_deg)] += 1
        return feats

    def _data_flow_features(self, func: Function) -> Counter:
        feats: Counter = Counter()
        res = liveness(func, self.rt)
        # Data-flow analysis has higher complexity than instruction or
        # control-flow traversal (Section 8.3): charge the superlinear
        # component (iterative bit-vector passes scale with blocks *and*
        # instructions), which is why the largest functions dominate the
        # DF stage and it plateaus around 9x in the paper.
        rt = self.rt
        n_insns = sum(len(b.insns) for b in func.blocks)
        n_blocks = max(1, len(func.blocks))
        rt.charge(rt.cost.liveness_per_insn * n_insns * n_blocks // 2)
        feats[("max_live", res.max_live())] += 1
        feats[("avg_live", round(res.avg_live()))] += 1
        return feats

    def _reduce(self, counters: list[Counter]) -> Counter:
        """Parallel tree reduction into the global feature index."""
        rt = self.rt
        chunk = max(1, len(counters) // max(1, rt.num_workers * 4))
        chunks = [counters[i:i + chunk]
                  for i in range(0, len(counters), chunk)]
        partials: list[Counter] = []

        def merge_chunk(items: list[Counter]) -> None:
            acc: Counter = Counter()
            for c in items:
                rt.charge(rt.cost.reduce_per_item * max(1, len(c)))
                acc.update(c)
            partials.append(acc)

        rt.parallel_for(chunks, merge_chunk)
        final: Counter = Counter()
        for p in partials:
            rt.charge(rt.cost.reduce_per_item * max(1, len(p)) // 4)
            final.update(p)
        return final
