"""Binary code similarity search (the Section 9 discussion use case).

"Software vulnerability searching calculates binary code similarity to
match known vulnerable code.  The calculation utilizes binary analysis
capabilities of analyzing machine instruction characteristics, control
flow, and data flow."  This module builds per-function fingerprints from
exactly those three capability groups and provides a parallel index for
nearest-function queries — demonstrating how the parallelized common
analyses benefit a third application beyond hpcstruct and BinFeat.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.analyses.liveness import liveness
from repro.analyses.loops import find_loops
from repro.binary.loader import LoadedBinary
from repro.core.cfg import Function
from repro.core.parallel_parser import ParallelParser, ParseOptions
from repro.runtime.api import Runtime


@dataclass(frozen=True)
class FunctionFingerprint:
    """Feature vector of one function."""

    binary: str
    name: str
    entry: int
    features: tuple[tuple[str, float], ...]  # sorted sparse vector

    def vector(self) -> dict[str, float]:
        return dict(self.features)


def fingerprint_function(func: Function, binary_name: str,
                         rt: Runtime | None = None) -> FunctionFingerprint:
    """Instruction + control-flow + data-flow features of one function."""
    feats: Counter = Counter()
    n_insns = 0
    # Machine instruction characteristics.
    for b in sorted(func.blocks, key=lambda b: b.start):
        for insn in b.insns:
            feats[f"op:{insn.opcode.name}"] += 1
            n_insns += 1
    if rt is not None:
        rt.charge(rt.cost.feature_per_insn * max(1, n_insns))
    # Control flow.
    feats["cfg:blocks"] = len(func.blocks)
    feats["cfg:edges"] = sum(len(b.out_edges) for b in func.blocks)
    forest = find_loops(func, rt)
    feats["cfg:loops"] = forest.n_loops
    feats["cfg:loop_depth"] = forest.max_depth
    # Data flow.
    live = liveness(func, rt)
    feats["df:max_live"] = live.max_live()
    feats["df:avg_live"] = round(live.avg_live(), 2)
    vec = tuple(sorted((k, float(v)) for k, v in feats.items() if v))
    return FunctionFingerprint(binary=binary_name, name=func.name,
                               entry=func.addr, features=vec)


def cosine(a: FunctionFingerprint, b: FunctionFingerprint) -> float:
    """Cosine similarity of two fingerprints (1.0 = identical)."""
    va, vb = a.vector(), b.vector()
    dot = sum(v * vb.get(k, 0.0) for k, v in va.items())
    na = math.sqrt(sum(v * v for v in va.values()))
    nb = math.sqrt(sum(v * v for v in vb.values()))
    if na == 0 or nb == 0:
        return 0.0
    return dot / (na * nb)


@dataclass
class Match:
    fingerprint: FunctionFingerprint
    score: float


class SimilarityIndex:
    """A corpus-wide function index supporting nearest-function queries.

    Build with :func:`build_index` (parallel); queries score candidates in
    a parallel loop — the read-only-CFG pattern of Section 7.2 again.
    """

    def __init__(self, fingerprints: list[FunctionFingerprint]):
        self.fingerprints = sorted(fingerprints,
                                   key=lambda f: (f.binary, f.entry))

    def __len__(self) -> int:
        return len(self.fingerprints)

    def query(self, needle: FunctionFingerprint, rt: Runtime | None = None,
              top_k: int = 5, exclude_self: bool = True) -> list[Match]:
        """Rank the corpus by similarity to ``needle``."""
        scores: list[Match] = []

        def score(fp: FunctionFingerprint) -> None:
            if exclude_self and fp.binary == needle.binary \
                    and fp.entry == needle.entry:
                return
            if rt is not None:
                rt.charge(rt.cost.reduce_per_item
                          * max(1, len(fp.features)))
            scores.append(Match(fp, cosine(needle, fp)))

        if rt is not None:
            rt.parallel_for(self.fingerprints, score, grain=16)
        else:
            for fp in self.fingerprints:
                score(fp)
        scores.sort(key=lambda m: (-m.score, m.fingerprint.binary,
                                   m.fingerprint.entry))
        return scores[:top_k]


@dataclass
class BuildResult:
    index: SimilarityIndex
    makespan: int
    n_functions: int


def build_index(binaries: list[LoadedBinary], rt: Runtime,
                parse_options: ParseOptions | None = None) -> BuildResult:
    """Parse a corpus and fingerprint every function, in parallel."""

    def run() -> SimilarityIndex:
        fps: list[FunctionFingerprint] = []
        for binary in binaries:
            parser = ParallelParser(binary, rt,
                                    parse_options or ParseOptions())
            cfg = parser.execute()

            def fp_one(func: Function, name=binary.name) -> None:
                fps.append(fingerprint_function(func, name, rt))

            rt.parallel_for(cfg.functions(), fp_one,
                            sort_key=lambda f: len(f.blocks), reverse=True)
        return SimilarityIndex(fps)

    index = rt.run(run)
    return BuildResult(index=index, makespan=rt.makespan,
                       n_functions=len(index))
