"""hpcstruct: program structure recovery (Section 7.1 / Figure 2).

Relates machine instructions to functions (AC1), loops (AC2), source
lines (AC3) and inlined functions (AC4) by combining the parsed CFG with
DWARF debug information.  The pipeline reproduces the seven phases of the
paper's Figure 2 trace:

1. ``read``        — read the binary from disk (serial);
2. ``dwarf_types`` — parse DWARF type info + CU DIEs (parallel per CU,
   imbalanced when CU sizes differ);
3. ``line_map``    — build the address-to-line structure (serial: "the
   design of the data structure used here makes this region difficult to
   parallelize");
4. ``cfg``         — parallel CFG construction (Section 5);
5. ``skeleton``    — build export skeletons (serial);
6. ``queries``     — per-function loop/inline/line queries (parallel,
   dynamic schedule over size-sorted functions — Listing 7);
7. ``output``      — serialize the structure file (parallel writer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyses.loops import find_loops
from repro.binary.dwarf import FunctionDIE, InlinedCall
from repro.binary.loader import LoadedBinary
from repro.binary.symtab import IndexedSymbols
from repro.core.cfg import ParseStats, ParsedCFG
from repro.core.parallel_parser import ParallelParser, ParseOptions
from repro.runtime.api import Runtime


@dataclass
class LoopStructure:
    """One loop node of the structure document."""

    header: int
    depth: int
    n_blocks: int
    children: list["LoopStructure"] = field(default_factory=list)


@dataclass
class InlineStructure:
    """One inlined-call node of the structure document."""

    callee: str
    call_file: str
    call_line: int
    children: list["InlineStructure"] = field(default_factory=list)


@dataclass
class FunctionStructure:
    """Structure entry for one function (what hpcstruct exports)."""

    name: str
    entry: int
    ranges: list[tuple[int, int]]
    loops: list[LoopStructure] = field(default_factory=list)
    inlines: list[InlineStructure] = field(default_factory=list)
    n_lines: int = 0
    source_file: str = ""


@dataclass
class HpcstructResult:
    """Output of one hpcstruct run."""

    structure: list[FunctionStructure]
    phase_durations: dict[str, int]
    makespan: int
    cfg_stats: ParseStats
    n_symbols: int
    n_dies: int
    n_line_rows: int

    @property
    def dwarf_time(self) -> int:
        """Table 2's "DWARF" column: the parallel DWARF parse phase."""
        return self.phase_durations["dwarf_types"]

    @property
    def cfg_time(self) -> int:
        """Table 2's "CFG" column: parallel CFG construction."""
        return self.phase_durations["cfg"]


def hpcstruct(binary: LoadedBinary, rt: Runtime,
              parse_options: ParseOptions | None = None) -> HpcstructResult:
    """Run the full hpcstruct pipeline on ``rt``."""
    app = _Hpcstruct(binary, rt, parse_options)
    return rt.run(app.execute)


class _Hpcstruct:
    def __init__(self, binary: LoadedBinary, rt: Runtime,
                 parse_options: ParseOptions | None):
        self.binary = binary
        self.rt = rt
        self.parse_options = parse_options or ParseOptions()

    def execute(self) -> HpcstructResult:
        rt = self.rt
        phase_marks: dict[str, tuple[int, int]] = {}

        def mark(name: str):
            return _PhaseMark(rt, name, phase_marks)

        # Phase 1: read the binary from "disk".
        with mark("read"):
            rt.charge(rt.cost.io_per_kib
                      * max(1, self.binary.image.total_size // 1024))

        # Phase 2: DWARF types + symbols, parallel per CU (and the
        # multi-keyed parallel symbol table of Listing 6).
        debug = self.binary.debug_info
        symbols = IndexedSymbols(rt)
        with mark("dwarf_types"):
            rt.parallel_for(
                debug.cus,
                lambda cu: rt.charge(rt.cost.dwarf_per_die * cu.die_count()),
            )
            rt.parallel_for(list(self.binary.symtab), symbols.insert,
                            grain=8)

        # Phase 3: serial line map.
        with mark("line_map"):
            rt.charge(rt.cost.dwarf_per_line * debug.line_count())
            line_rows_by_file: dict[str, int] = {}
            for cu in debug.cus:
                line_rows_by_file[cu.name] = len(cu.line_rows)

        # Phase 4: parallel CFG construction.
        with mark("cfg"):
            parser = ParallelParser(self.binary, rt, self.parse_options)
            cfg = parser.execute()

        # Phase 5: serial skeleton build.
        functions = cfg.functions()
        with mark("skeleton"):
            rt.charge(rt.cost.output_per_item * max(1, len(functions)))
            dies_by_entry = self._index_dies(debug.all_functions())

        # Phase 6: parallel per-function queries (size-sorted, Listing 7).
        structures: list[FunctionStructure] = []

        def analyze(func) -> None:
            fs = self._build_structure(func, dies_by_entry,
                                       line_rows_by_file)
            structures.append(fs)

        with mark("queries"):
            rt.parallel_for(functions, analyze,
                            sort_key=lambda f: len(f.blocks), reverse=True)

        # Phase 7: parallel output serialization.
        with mark("output"):
            rt.parallel_for(
                structures,
                lambda fs: rt.charge(
                    rt.cost.output_per_item
                    * (1 + len(fs.loops) + len(fs.inlines) + fs.n_lines)),
                grain=8)

        structures.sort(key=lambda fs: (fs.entry, fs.name))
        durations = {name: hi - lo for name, (lo, hi) in phase_marks.items()}
        return HpcstructResult(
            structure=structures,
            phase_durations=durations,
            makespan=rt.now(),
            cfg_stats=cfg.stats,
            n_symbols=len(self.binary.symtab),
            n_dies=debug.die_count(),
            n_line_rows=debug.line_count(),
        )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _index_dies(dies: list[FunctionDIE]) -> dict[int, FunctionDIE]:
        out: dict[int, FunctionDIE] = {}
        for die in dies:
            if die.ranges:
                out.setdefault(die.low_pc, die)
        return out

    def _build_structure(self, func, dies_by_entry,
                         line_rows_by_file) -> FunctionStructure:
        rt = self.rt
        fs = FunctionStructure(name=func.name, entry=func.addr,
                               ranges=func.ranges())
        forest = find_loops(func, rt)
        fs.loops = [_loop_structure(l) for l in forest.roots]
        die = dies_by_entry.get(func.addr)
        if die is not None:
            fs.name = die.name
            fs.source_file = die.decl_file
            fs.inlines = [_inline_structure(i) for i in die.inlines]
            fs.n_lines = line_rows_by_file.get(die.decl_file, 0)
            rt.charge(rt.cost.dwarf_per_line * max(1, fs.n_lines // 4))
        return fs


def _loop_structure(loop) -> LoopStructure:
    return LoopStructure(header=loop.header, depth=loop.depth,
                         n_blocks=len(loop.blocks),
                         children=[_loop_structure(c)
                                   for c in loop.children])


def _inline_structure(inl: InlinedCall) -> InlineStructure:
    return InlineStructure(callee=inl.callee, call_file=inl.call_file,
                           call_line=inl.call_line,
                           children=[_inline_structure(c)
                                     for c in inl.children])


class _PhaseMark:
    """Record a phase interval on the driver's clock (and the trace)."""

    def __init__(self, rt: Runtime, name: str,
                 marks: dict[str, tuple[int, int]]):
        self._rt = rt
        self._name = name
        self._marks = marks
        self._cm = rt.phase(name)

    def __enter__(self):
        self._start = self._rt.now()
        self._cm.__enter__()
        return self

    def __exit__(self, *exc):
        self._cm.__exit__(*exc)
        self._marks[self._name] = (self._start, self._rt.now())
