"""Structure-file serialization for hpcstruct results.

Real hpcstruct writes an XML document (``<LM>/<F>/<P>/<L>/<S>`` elements)
mapping load module -> files -> procedures -> loops -> statements, which
HPCToolkit's attribution step consumes.  This module emits the analogous
document from :class:`~repro.apps.hpcstruct.HpcstructResult` and parses
it back, so the pipeline produces a real on-disk artifact.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.apps.hpcstruct import (
    FunctionStructure,
    HpcstructResult,
    InlineStructure,
    LoopStructure,
)


def to_xml(result: HpcstructResult, binary_name: str = "a.out") -> str:
    """Serialize a structure result to the XML document format."""
    root = ET.Element("HPCToolkitStructure", version="1.0")
    lm = ET.SubElement(root, "LM", n=binary_name)
    by_file: dict[str, ET.Element] = {}
    for fs in result.structure:
        fnode = by_file.get(fs.source_file or "<unknown>")
        if fnode is None:
            fnode = ET.SubElement(lm, "F", n=fs.source_file or "<unknown>")
            by_file[fs.source_file or "<unknown>"] = fnode
        proc = ET.SubElement(
            fnode, "P", n=fs.name,
            v=_ranges_attr(fs.ranges),
        )
        for loop in fs.loops:
            _emit_loop(proc, loop)
        for inl in fs.inlines:
            _emit_inline(proc, inl)
    return minidom.parseString(
        ET.tostring(root, encoding="unicode")
    ).toprettyxml(indent="  ")


def _ranges_attr(ranges) -> str:
    return " ".join(f"{{{lo:#x}-{hi:#x}}}" for lo, hi in ranges)


def _emit_loop(parent: ET.Element, loop: LoopStructure) -> None:
    node = ET.SubElement(parent, "L", s=f"{loop.header:#x}",
                         d=str(loop.depth), b=str(loop.n_blocks))
    for child in loop.children:
        _emit_loop(node, child)


def _emit_inline(parent: ET.Element, inl: InlineStructure) -> None:
    node = ET.SubElement(parent, "A", n=inl.callee, f=inl.call_file,
                         l=str(inl.call_line))
    for child in inl.children:
        _emit_inline(node, child)


def write_structure_file(result: HpcstructResult, path: str,
                         binary_name: str = "a.out") -> None:
    """Write the structure document to ``path``."""
    with open(path, "w") as f:
        f.write(to_xml(result, binary_name))


def parse_structure_file(text: str) -> list[FunctionStructure]:
    """Parse a structure document back into structure entries."""
    root = ET.fromstring(text)
    out: list[FunctionStructure] = []
    for fnode in root.iter("F"):
        source = fnode.get("n", "")
        for proc in fnode.findall("P"):
            fs = FunctionStructure(
                name=proc.get("n", "?"),
                entry=_first_range_lo(proc.get("v", "")),
                ranges=_parse_ranges(proc.get("v", "")),
                source_file=source,
            )
            fs.loops = [_parse_loop(l) for l in proc.findall("L")]
            fs.inlines = [_parse_inline(a) for a in proc.findall("A")]
            out.append(fs)
    out.sort(key=lambda fs: (fs.entry, fs.name))
    return out


def _parse_ranges(attr: str):
    ranges = []
    for part in attr.split():
        body = part.strip("{}")
        lo, hi = body.split("-")
        ranges.append((int(lo, 16), int(hi, 16)))
    return ranges


def _first_range_lo(attr: str) -> int:
    ranges = _parse_ranges(attr)
    return ranges[0][0] if ranges else 0


def _parse_loop(node: ET.Element) -> LoopStructure:
    return LoopStructure(
        header=int(node.get("s", "0"), 16),
        depth=int(node.get("d", "1")),
        n_blocks=int(node.get("b", "0")),
        children=[_parse_loop(c) for c in node.findall("L")],
    )


def _parse_inline(node: ET.Element) -> InlineStructure:
    return InlineStructure(
        callee=node.get("n", "?"),
        call_file=node.get("f", ""),
        call_line=int(node.get("l", "0")),
        children=[_parse_inline(c) for c in node.findall("A")],
    )
