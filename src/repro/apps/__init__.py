"""Application case studies (Section 7).

- :mod:`repro.apps.hpcstruct` — program-structure recovery for
  performance analysis (HPCToolkit's hpcstruct): seven-phase pipeline of
  Figure 2 over one large binary.
- :mod:`repro.apps.binfeat` — binary-code feature extraction for software
  forensics (BinFeat): CFG + instruction/control-flow/data-flow feature
  stages of Table 3 over a corpus.
- :mod:`repro.apps.checker` — correctness checker comparing parsed CFGs
  against synthesized ground truth (Section 8.1).
"""

from repro.apps.hpcstruct import HpcstructResult, hpcstruct
from repro.apps.binfeat import (
    BinFeatResult,
    binfeat,
    binfeat_distributed,
)
from repro.apps.checker import (
    CheckReport,
    Difference,
    DiffCategory,
    check_binary,
    check_corpus,
)
from repro.apps.similarity import SimilarityIndex, build_index
from repro.apps.structfile import (
    parse_structure_file,
    to_xml,
    write_structure_file,
)

__all__ = [
    "HpcstructResult",
    "hpcstruct",
    "BinFeatResult",
    "binfeat",
    "binfeat_distributed",
    "CheckReport",
    "Difference",
    "DiffCategory",
    "check_binary",
    "check_corpus",
    "SimilarityIndex",
    "build_index",
    "parse_structure_file",
    "to_xml",
    "write_structure_file",
]
