"""Correctness checker: parsed CFG vs. synthesized ground truth.

Reproduces the Section 8.1 methodology: the checker prints function
ranges, jump-table sizes and non-returning calls from the parsed CFG and
matches them against ground truth (DWARF + RTL analog).  Differences are
categorized; the four *expected* categories are exactly the ones the
paper reports:

1. missed non-returning calls to the ``error``-style conditionally
   returning function (name matching cannot model argument-dependent
   behaviour) — and the function-range bleed they cause;
2. ``.cold`` outlined fragments: separate symbols to the parser, part of
   the parent function to DWARF;
3. jump tables whose computation round-trips through the stack
   (unresolvable by the slice);
4. extra indirect targets / bogus edges downstream of a missed
   non-returning call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.cfg import ParsedCFG
from repro.synth.codegen import SynthesizedBinary
from repro.synth.program import ERROR_FUNC_NAME


class DiffCategory(enum.Enum):
    RANGE_MISMATCH = "range_mismatch"
    MISSING_FUNCTION = "missing_function"
    EXTRA_FUNCTION = "extra_function"
    JT_SIZE_MISMATCH = "jt_size_mismatch"
    JT_MISSING = "jt_missing"
    NORETURN_MISSED = "noreturn_missed"      # wrong call fall-through added
    NORETURN_EXTRA = "noreturn_extra"        # fall-through wrongly omitted


@dataclass(frozen=True)
class Difference:
    category: DiffCategory
    address: int
    name: str
    detail: str
    #: paper difference bucket (1-4) when attributable, else 0.
    paper_category: int = 0


@dataclass
class CheckReport:
    binary_name: str
    differences: list[Difference] = field(default_factory=list)
    n_functions_checked: int = 0
    n_functions_matched: int = 0
    n_tables_checked: int = 0
    n_tables_matched: int = 0
    n_noreturn_checked: int = 0
    n_noreturn_matched: int = 0

    def count(self, category: DiffCategory) -> int:
        return sum(1 for d in self.differences if d.category is category)

    def paper_counts(self) -> dict[int, int]:
        out = {1: 0, 2: 0, 3: 0, 4: 0, 0: 0}
        for d in self.differences:
            out[d.paper_category] += 1
        return out

    @property
    def clean(self) -> bool:
        return not self.differences


def check_binary(sb: SynthesizedBinary, cfg: ParsedCFG) -> CheckReport:
    """Compare one parse result against its ground truth."""
    gt = sb.ground_truth
    entry_names, function_ranges = _adjust_listing1_expectations(sb, cfg)
    report = CheckReport(binary_name=sb.name)

    err_syms = sb.binary.symtab.by_mangled_name(ERROR_FUNC_NAME)
    err_addr = err_syms[0].offset if err_syms else None
    cold_entries = {s.offset: s.name
                    for s in sb.binary.symtab.functions()
                    if s.name.endswith(".cold")}

    # Which GT functions are affected by missed-noreturn bleed (their
    # ranges grow because a wrong fall-through extended traversal)?
    bleed_sources = _bleed_affected(sb, cfg, err_addr)

    symtab_entries = {s.offset for s in sb.binary.symtab.functions()}

    # --- function ranges ----------------------------------------------------
    for entry in sorted(entry_names):
        name = entry_names[entry]
        report.n_functions_checked += 1
        func = cfg.function_at(entry)
        if func is None:
            # Hidden (symbol-less) functions are only discoverable via
            # calls; when their only call site sits in code made dead by
            # a missed-noreturn cascade, the miss is a cascading effect
            # (paper category 4), not a parallelism error.
            hidden = entry not in symtab_entries
            report.differences.append(Difference(
                DiffCategory.MISSING_FUNCTION, entry, name,
                "ground-truth function not identified",
                paper_category=4 if hidden else 0))
            continue
        got = func.ranges()
        want = function_ranges.get(name, [])
        if got == want:
            report.n_functions_matched += 1
            continue
        paper_cat = 0
        if entry in bleed_sources:
            paper_cat = 1  # extra ranges from a missed noreturn call
        elif any(lo in cold_entries for lo, _ in want):
            paper_cat = 2  # cold range listed under the parent by DWARF
        elif _has_cold_range(want, got, cold_entries):
            paper_cat = 2
        report.differences.append(Difference(
            DiffCategory.RANGE_MISMATCH, entry, name,
            f"ranges {got} != ground truth {want}",
            paper_category=paper_cat))

    # --- extra functions -----------------------------------------------------
    gt_entries = set(entry_names)
    for func in cfg.functions():
        if func.addr in gt_entries:
            continue
        cat = 2 if func.addr in cold_entries else 0
        report.differences.append(Difference(
            DiffCategory.EXTRA_FUNCTION, func.addr, func.name,
            "function not in ground truth", paper_category=cat))

    # --- jump tables -----------------------------------------------------------
    found_tables = {jt.table_addr: jt for jt in cfg.jump_tables
                    if jt.table_addr is not None}
    unresolved = [jt for jt in cfg.jump_tables if jt.table_addr is None]
    for addr in sorted(gt.jump_tables):
        want_size = gt.jump_tables[addr]
        report.n_tables_checked += 1
        jt = found_tables.get(addr)
        if jt is None:
            report.differences.append(Difference(
                DiffCategory.JT_MISSING, addr, f"table@{addr:#x}",
                f"table of {want_size} entries not resolved",
                paper_category=3))
            continue
        if jt.n_entries == want_size:
            report.n_tables_matched += 1
        else:
            report.differences.append(Difference(
                DiffCategory.JT_SIZE_MISMATCH, addr, f"table@{addr:#x}",
                f"size {jt.n_entries} != ground truth {want_size}",
                paper_category=4 if jt.n_entries > want_size else 0))
    del unresolved

    # --- non-returning calls -------------------------------------------------------
    ft_sites = cfg.call_ft_sites()
    call_sites = cfg.call_sites()
    for addr in sorted(gt.noreturn_calls):
        report.n_noreturn_checked += 1
        if addr not in call_sites:
            continue  # call not parsed (already reported via ranges)
        if addr in ft_sites:
            is_error_call = _calls_error(sb, cfg, addr, err_addr)
            report.differences.append(Difference(
                DiffCategory.NORETURN_MISSED, addr, f"call@{addr:#x}",
                "call fall-through created for a non-returning call",
                paper_category=1 if is_error_call else 0))
        else:
            report.n_noreturn_matched += 1
    error_call_entries = _error_call_entries(sb)
    for addr in sorted((call_sites - ft_sites) - gt.noreturn_calls):
        callee = _callee_of(cfg, addr)
        # Cascading impact of the error_report mis-modeling: callees whose
        # ground-truth bodies end in error_report calls form cyclic return
        # dependencies through the range bleed and resolve NORETURN.
        cascading = callee in error_call_entries
        report.differences.append(Difference(
            DiffCategory.NORETURN_EXTRA, addr, f"call@{addr:#x}",
            "fall-through omitted for a returning call",
            paper_category=4 if cascading else 0))

    return report


def _error_call_entries(sb: SynthesizedBinary) -> set[int]:
    """Entries of functions whose spec epilogue calls error_report."""
    from repro.synth.program import Epilogue

    names = {f.name for f in sb.spec.functions
             if f.epilogue is Epilogue.ERROR_CALL}
    return {addr for addr, name in sb.ground_truth.entry_names.items()
            if name in names}


def _callee_of(cfg: ParsedCFG, call_addr: int) -> int | None:
    for b in cfg.blocks():
        if b.insns and b.insns[-1].address == call_addr:
            return b.insns[-1].direct_target
    return None


def check_corpus(pairs: list[tuple[SynthesizedBinary, ParsedCFG]]
                 ) -> list[CheckReport]:
    """Check a whole corpus; one report per binary."""
    return [check_binary(sb, cfg) for sb, cfg in pairs]


#: check names for a ``repro.findings/1`` ground-truth document.
GROUNDTRUTH_CHECKS = tuple(sorted(c.value for c in DiffCategory))


def report_to_findings(reports: list[CheckReport]) -> list[dict]:
    """Route ground-truth differences through ``repro.findings/1``.

    Each :class:`Difference` becomes one finding record whose rule is
    the :class:`DiffCategory` value; the paper bucket (when attributed)
    rides along in the detail text so the sidecar stays flat.
    """
    from repro.analyses.findings import finding

    out: list[dict] = []
    for r in reports:
        for d in r.differences:
            detail = d.detail
            if d.paper_category:
                detail = f"{detail} [paper category {d.paper_category}]"
            out.append(finding(d.category.value, detail,
                               binary=r.binary_name, function=d.name,
                               address=d.address))
    return out


def summarize(reports: list[CheckReport]) -> dict:
    """Aggregate counts across a corpus (the Section 8.1 summary)."""
    total = {
        "binaries": len(reports),
        "clean_binaries": sum(1 for r in reports if r.clean),
        "functions_checked": sum(r.n_functions_checked for r in reports),
        "functions_matched": sum(r.n_functions_matched for r in reports),
        "tables_checked": sum(r.n_tables_checked for r in reports),
        "tables_matched": sum(r.n_tables_matched for r in reports),
        "noreturn_checked": sum(r.n_noreturn_checked for r in reports),
        "noreturn_matched": sum(r.n_noreturn_matched for r in reports),
        "by_category": {c.value: sum(r.count(c) for r in reports)
                        for c in DiffCategory},
        "by_paper_category": {},
    }
    paper: dict[int, int] = {0: 0, 1: 0, 2: 0, 3: 0, 4: 0}
    for r in reports:
        for k, v in r.paper_counts().items():
            paper[k] += v
    total["by_paper_category"] = paper
    return total


# ------------------------------------------------------------------- helpers

def _adjust_listing1_expectations(
    sb: SynthesizedBinary, cfg: ParsedCFG
) -> tuple[dict[int, str], dict[str, list]]:
    """Accept either of the two equally valid Listing 1 answers.

    The paper notes that for two functions branching to one shared block
    it is "equally valid to conclude either 'A and B both tail call' or
    'A and B share the block'".  Ground truth records the first answer;
    when the parser consistently produced the second (no function at the
    shared target), the expected entries/ranges are adjusted: the shared
    range folds into each branching function instead.
    """
    from repro.synth.groundtruth import merge_ranges

    gt = sb.ground_truth
    entry_names = dict(gt.entry_names)
    function_ranges = {k: list(v) for k, v in gt.function_ranges.items()}

    l1_funcs: dict[int, list[str]] = {}
    for fn in sb.spec.functions:
        if fn.listing1_shared_jmp is not None:
            l1_funcs.setdefault(fn.listing1_shared_jmp, []).append(fn.name)

    for j, members in l1_funcs.items():
        shared_name = f"l1_shared_{j}"
        shared_entry = next((a for a, n in gt.entry_names.items()
                             if n == shared_name), None)
        if shared_entry is None:
            continue
        if cfg.function_at(shared_entry) is not None:
            continue  # the parser chose the tail-call answer: GT as-is
        shared_ranges = gt.range_of(shared_name)
        entry_names.pop(shared_entry, None)
        function_ranges.pop(shared_name, None)
        for name in members:
            function_ranges[name] = merge_ranges(
                function_ranges.get(name, []) + list(shared_ranges))
    return entry_names, function_ranges


def _calls_error(sb: SynthesizedBinary, cfg: ParsedCFG, call_addr: int,
                 err_addr: int | None) -> bool:
    if err_addr is None:
        return False
    for b in cfg.blocks():
        if b.insns and b.insns[-1].address == call_addr:
            return b.insns[-1].direct_target == err_addr
    return False


def _bleed_affected(sb: SynthesizedBinary, cfg: ParsedCFG,
                    err_addr: int | None) -> set[int]:
    """GT entries whose function contains a missed-noreturn call site."""
    gt = sb.ground_truth
    out: set[int] = set()
    ft_sites = cfg.call_ft_sites()
    wrong = gt.noreturn_calls & ft_sites
    for entry, name in gt.entry_names.items():
        ranges = gt.range_of(name)
        if any(lo <= a < hi for a in wrong for lo, hi in ranges):
            out.add(entry)
    return out


def _has_cold_range(want, got, cold_entries) -> bool:
    """True if the GT ranges include a .cold fragment the parser split."""
    missing = [r for r in want if r not in got]
    return any(any(lo <= c < hi for c in cold_entries)
               for lo, hi in missing)
