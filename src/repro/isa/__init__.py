"""Synthetic instruction set architecture (ISA) substrate.

The paper analyzes x86-64 and Power machine code through Dyninst's
InstructionAPI.  This package provides the analogous substrate: a compact
RISC-ish instruction set with the code constructs that matter for CFG
construction — direct, conditional and indirect control flow, calls and
returns, stack frame manipulation (used by tail-call heuristics), and the
bounded-index jump-table idiom used to compile ``switch`` statements.

Public surface:

- :mod:`repro.isa.registers` — register file definition.
- :mod:`repro.isa.instructions` — :class:`Instruction`, :class:`Opcode`,
  and control-flow classification helpers.
- :mod:`repro.isa.encoding` — byte-level encode/decode.
- :mod:`repro.isa.decoder` — a thread-safe streaming decoder over a code
  buffer (the InstructionAPI analog used by the parsers).
"""

from repro.isa.registers import Reg, NUM_GP_REGS, gp_registers
from repro.isa.instructions import (
    Opcode,
    Cond,
    Instruction,
    ControlFlowKind,
)
from repro.isa.encoding import encode, decode, instruction_length
from repro.isa.decoder import Decoder

__all__ = [
    "Reg",
    "NUM_GP_REGS",
    "gp_registers",
    "Opcode",
    "Cond",
    "Instruction",
    "ControlFlowKind",
    "encode",
    "decode",
    "instruction_length",
    "Decoder",
]
