"""Byte-level encoding and decoding of synthetic ISA instructions.

The encoding is variable length (1–10 bytes): one opcode byte followed by an
opcode-specific operand layout.  Variable length matters for the fidelity of
the reproduction: linear parsing, block splitting and the "at most one block
ends at a given address" invariant all interact with instruction boundaries
exactly as they do on x86-64.
"""

from __future__ import annotations

import struct

from repro.errors import EncodingError, InvalidInstructionError
from repro.isa.instructions import Cond, Instruction, Opcode
from repro.isa.registers import Reg

# Field kinds: 'r' = register byte, 'c' = condition byte,
# 'i32' = 32-bit little-endian immediate, 'i16' = 16-bit immediate.
_LAYOUT: dict[Opcode, tuple[str, ...]] = {
    Opcode.NOP: (),
    Opcode.HALT: (),
    Opcode.MOV_RI: ("r", "i32"),
    Opcode.MOV_RR: ("r", "r"),
    Opcode.ADD: ("r", "r"),
    Opcode.SUB: ("r", "r"),
    Opcode.MUL: ("r", "r"),
    Opcode.XOR: ("r", "r"),
    Opcode.AND: ("r", "r"),
    Opcode.OR: ("r", "r"),
    Opcode.ADDI: ("r", "i32"),
    Opcode.CMP_RI: ("r", "i32"),
    Opcode.CMP_RR: ("r", "r"),
    Opcode.LOAD: ("r", "r", "i32"),
    Opcode.STORE: ("r", "i32", "r"),
    Opcode.LOADIDX: ("r", "r", "r"),
    Opcode.LEA: ("r", "i32"),
    Opcode.PUSH: ("r",),
    Opcode.POP: ("r",),
    Opcode.ENTER: ("i16",),
    Opcode.LEAVE: (),
    Opcode.JMP: ("i32",),
    Opcode.JCC: ("c", "i32"),
    Opcode.CALL: ("i32",),
    Opcode.ICALL: ("r",),
    Opcode.IJMP: ("r",),
    Opcode.RET: (),
}

_FIELD_SIZE = {"r": 1, "c": 1, "i32": 4, "i16": 2}

_LENGTHS: dict[Opcode, int] = {
    op: 1 + sum(_FIELD_SIZE[f] for f in fields)
    for op, fields in _LAYOUT.items()
}

_VALID_OPCODES = frozenset(int(op) for op in Opcode)

#: Longest encoded instruction, in bytes.
MAX_INSTRUCTION_LENGTH = max(_LENGTHS.values())


def instruction_length(opcode: Opcode) -> int:
    """Encoded length in bytes of instructions with the given opcode."""
    return _LENGTHS[opcode]


def encode(instr: Instruction) -> bytes:
    """Encode an instruction to bytes.

    Raises :class:`EncodingError` on operand/layout mismatch or
    out-of-range values.
    """
    fields = _LAYOUT.get(instr.opcode)
    if fields is None:
        raise EncodingError(f"unknown opcode {instr.opcode!r}")
    if len(fields) != len(instr.operands):
        raise EncodingError(
            f"{instr.opcode.name}: expected {len(fields)} operands, "
            f"got {len(instr.operands)}"
        )
    out = bytearray([int(instr.opcode)])
    for kind, value in zip(fields, instr.operands):
        if kind == "r":
            if not 0 <= value < len(Reg):
                raise EncodingError(f"register out of range: {value}")
            out.append(value)
        elif kind == "c":
            if not 0 <= value < len(Cond):
                raise EncodingError(f"condition out of range: {value}")
            out.append(value)
        elif kind == "i32":
            if not 0 <= value < (1 << 32):
                raise EncodingError(f"imm32 out of range: {value:#x}")
            out += struct.pack("<I", value)
        elif kind == "i16":
            if not 0 <= value < (1 << 16):
                raise EncodingError(f"imm16 out of range: {value:#x}")
            out += struct.pack("<H", value)
        else:  # pragma: no cover - layout table is static
            raise EncodingError(f"bad field kind {kind}")
    return bytes(out)


def decode(buf: bytes | memoryview, offset: int, address: int) -> Instruction:
    """Decode one instruction from ``buf`` at ``offset``.

    ``address`` is the virtual address the instruction lives at (recorded in
    the returned :class:`Instruction`).  Raises
    :class:`InvalidInstructionError` if the bytes do not form a valid
    instruction (unknown opcode, truncated operands, bad register).
    """
    if offset >= len(buf):
        raise InvalidInstructionError(address, "past end of code")
    opbyte = buf[offset]
    if opbyte not in _VALID_OPCODES:
        raise InvalidInstructionError(address, f"invalid opcode {opbyte:#04x}")
    opcode = Opcode(opbyte)
    fields = _LAYOUT[opcode]
    length = _LENGTHS[opcode]
    if offset + length > len(buf):
        raise InvalidInstructionError(address, "truncated instruction")
    operands: list[int] = []
    pos = offset + 1
    for kind in fields:
        if kind == "r":
            v = buf[pos]
            if v >= len(Reg):
                raise InvalidInstructionError(address, f"bad register {v}")
            operands.append(v)
            pos += 1
        elif kind == "c":
            v = buf[pos]
            if v >= len(Cond):
                raise InvalidInstructionError(address, f"bad condition {v}")
            operands.append(v)
            pos += 1
        elif kind == "i32":
            operands.append(struct.unpack_from("<I", buf, pos)[0])
            pos += 4
        else:  # i16
            operands.append(struct.unpack_from("<H", buf, pos)[0])
            pos += 2
    return Instruction(address=address, opcode=opcode,
                       operands=tuple(operands), length=length)
