"""Streaming instruction decoder over a code region.

This is the analog of Dyninst's InstructionAPI as used by the CFG parsers:
given the bytes of a ``.text`` section and its base virtual address, decode
instructions at arbitrary virtual addresses.  The decoder is stateless after
construction and therefore safe to share between threads — the paper notes
that "modifications to Dyninst's instruction decoding code add thread-safety
to support this" (Section 5.3); here thread-safety falls out of immutability.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InvalidInstructionError
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction


class Decoder:
    """Decodes instructions from a code buffer mapped at ``base``.

    Parameters
    ----------
    code:
        Raw bytes of the executable region.
    base:
        Virtual address of ``code[0]``.
    """

    __slots__ = ("_code", "_base", "_limit")

    def __init__(self, code: bytes | memoryview, base: int):
        # A memoryview stays zero-copy (the shared-memory transport maps
        # .text straight out of the segment); anything else is frozen
        # into an immutable private copy.
        self._code = (code if isinstance(code, memoryview)
                      else memoryview(bytes(code)))
        self._base = base
        self._limit = base + len(code)

    @property
    def base(self) -> int:
        """Lowest decodable virtual address."""
        return self._base

    @property
    def limit(self) -> int:
        """One past the highest decodable virtual address."""
        return self._limit

    def contains(self, address: int) -> bool:
        """True if ``address`` lies inside the code region."""
        return self._base <= address < self._limit

    def decode_at(self, address: int) -> Instruction:
        """Decode the instruction at a virtual address.

        Raises :class:`InvalidInstructionError` for addresses outside the
        region or bytes that do not form an instruction.
        """
        if not self.contains(address):
            raise InvalidInstructionError(address, "outside code region")
        return decode(self._code, address - self._base, address)

    def iter_from(self, address: int) -> Iterator[Instruction]:
        """Yield consecutive instructions starting at ``address``.

        Iteration stops silently at the end of the region or at the first
        undecodable byte sequence; CFG construction treats that point as a
        forced block end.
        """
        addr = address
        while self.contains(addr):
            try:
                insn = self.decode_at(addr)
            except InvalidInstructionError:
                return
            yield insn
            addr = insn.end

    def linear_scan(
        self, address: int, stop_before: int | None = None
    ) -> tuple[list[Instruction], bool]:
        """Decode linearly until a control-flow instruction (inclusive).

        This is the ``linearParsing`` primitive of Listing 3.  Returns the
        decoded instructions and a flag that is True when the scan ended at a
        control-flow instruction (False when it ran into undecodable bytes or
        the end of the region — a forced block end with no outgoing edges).

        ``stop_before`` optionally bounds the scan (exclusive); the scan also
        stops when the *next* instruction would start at or past it.  The
        parsers do not use this for correctness (per Invariant 2 the check is
        deferred to control-flow instructions) but the serial reference parser
        uses it for the "early block ending" case of ``O_BER``.
        """
        insns: list[Instruction] = []
        addr = address
        while self.contains(addr):
            if stop_before is not None and addr >= stop_before:
                return insns, False
            try:
                insn = self.decode_at(addr)
            except InvalidInstructionError:
                return insns, False
            insns.append(insn)
            if insn.is_control_flow:
                return insns, True
            addr = insn.end
        return insns, False
