"""Register file for the synthetic ISA.

Sixteen general-purpose registers plus a dedicated stack pointer, frame
pointer and flags register.  Liveness analysis (BinFeat's data-flow
features) tracks all of them; the stack-height analysis used by tail-call
heuristics tracks SP/FP effects.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """Architectural registers.

    ``R0``–``R15`` are general purpose.  ``SP`` is the stack pointer,
    ``FP`` the frame pointer, and ``FLAGS`` holds comparison results
    consumed by conditional branches.
    """

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15
    SP = 16
    FP = 17
    FLAGS = 18

    @property
    def is_gp(self) -> bool:
        """True for the sixteen general-purpose registers."""
        return self <= Reg.R15


#: Number of general-purpose registers (``R0``..``R15``).
NUM_GP_REGS = 16

#: Total number of architectural registers (including SP/FP/FLAGS).
NUM_REGS = len(Reg)

#: Conventional return-value register.
RET_REG = Reg.R0

#: Conventional first-argument register (used by the ``error``-style
#: conditionally non-returning function in the synthesizer).
ARG0_REG = Reg.R1


def gp_registers() -> list[Reg]:
    """Return the general-purpose registers in numeric order."""
    return [r for r in Reg if r.is_gp]
