"""Instruction definitions for the synthetic ISA.

An :class:`Instruction` is an immutable record of a decoded machine
instruction: its address, opcode, operands and byte length.  Classification
helpers (``is_control_flow``, ``falls_through``, ``direct_target`` …) are what
CFG construction consumes; register def/use sets are what liveness analysis
and backward slicing (jump-table analysis) consume.

Control-flow relevant opcodes mirror the constructs discussed in the paper:

- ``JMP``/``JCC`` — direct and conditional branches (``O_DEC``),
- ``CALL``/``ICALL`` — function calls (``O_DEC``, ``O_FEI``, ``O_CFEC``),
- ``IJMP`` — indirect jumps through jump tables (``O_IEC``),
- ``RET`` — returns (drives the non-returning function analysis),
- ``ENTER``/``LEAVE`` — stack frame setup/teardown (tail-call heuristics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.registers import Reg


class Opcode(enum.IntEnum):
    """Opcodes of the synthetic ISA.

    The numeric values are the first byte of the encoded instruction.
    Byte values outside this enum do not decode (``InvalidInstructionError``),
    so stray data in ``.text`` terminates linear parsing as on real ISAs.
    """

    NOP = 0x01
    HALT = 0x02
    MOV_RI = 0x03   # rd <- imm32
    MOV_RR = 0x04   # rd <- rs
    ADD = 0x05      # rd <- rd + rs
    SUB = 0x06      # rd <- rd - rs
    MUL = 0x07      # rd <- rd * rs
    XOR = 0x08      # rd <- rd ^ rs
    AND = 0x09      # rd <- rd & rs
    OR = 0x0A       # rd <- rd | rs
    ADDI = 0x0B     # rd <- rd + simm32
    CMP_RI = 0x0C   # FLAGS <- compare(rs, imm32)
    CMP_RR = 0x0D   # FLAGS <- compare(rs1, rs2)
    LOAD = 0x0E     # rd <- mem[base + simm32]
    STORE = 0x0F    # mem[base + simm32] <- rs
    LOADIDX = 0x10  # rd <- mem[base + idx*8]   (jump-table load idiom)
    LEA = 0x11      # rd <- imm32               (materialize an address)
    PUSH = 0x12     # mem[--sp] <- rs
    POP = 0x13      # rd <- mem[sp++]
    ENTER = 0x14    # push fp; fp <- sp; sp -= imm16
    LEAVE = 0x15    # sp <- fp; pop fp
    JMP = 0x20      # goto addr32
    JCC = 0x21      # if cond(FLAGS) goto addr32, else fall through
    CALL = 0x22     # call addr32
    ICALL = 0x23    # call [rs]
    IJMP = 0x24     # goto [rs]
    RET = 0x25      # return


class Cond(enum.IntEnum):
    """Condition codes for ``JCC``."""

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5
    A = 6   # unsigned above — the jump-table bound check idiom
    BE = 7  # unsigned below-or-equal


class ControlFlowKind(enum.Enum):
    """Coarse control-flow classification used by the CFG parsers."""

    NONE = "none"              # ordinary computation, falls through
    DIRECT_JUMP = "jump"       # unconditional direct branch
    COND_JUMP = "cond"         # conditional direct branch
    CALL = "call"              # direct call
    INDIRECT_CALL = "icall"    # indirect call
    INDIRECT_JUMP = "ijmp"     # indirect jump (jump tables)
    RETURN = "ret"             # function return
    HALT = "halt"              # program termination


_CF_KIND: dict[Opcode, ControlFlowKind] = {
    Opcode.JMP: ControlFlowKind.DIRECT_JUMP,
    Opcode.JCC: ControlFlowKind.COND_JUMP,
    Opcode.CALL: ControlFlowKind.CALL,
    Opcode.ICALL: ControlFlowKind.INDIRECT_CALL,
    Opcode.IJMP: ControlFlowKind.INDIRECT_JUMP,
    Opcode.RET: ControlFlowKind.RETURN,
    Opcode.HALT: ControlFlowKind.HALT,
}


@dataclass(frozen=True, slots=True)
class Instruction:
    """A decoded machine instruction.

    ``operands`` is an opcode-specific tuple; accessor properties below give
    named access (``dst``, ``src``, ``target`` …).  Instances are immutable
    and hence safe to share between threads without synchronization.
    """

    address: int
    opcode: Opcode
    operands: tuple[int, ...]
    length: int

    # -- classification ----------------------------------------------------

    @property
    def cf_kind(self) -> ControlFlowKind:
        """Control-flow classification of this instruction."""
        return _CF_KIND.get(self.opcode, ControlFlowKind.NONE)

    @property
    def is_control_flow(self) -> bool:
        """True if this instruction ends a basic block."""
        return self.opcode in _CF_KIND

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.CALL, Opcode.ICALL)

    @property
    def is_branch(self) -> bool:
        return self.opcode in (Opcode.JMP, Opcode.JCC, Opcode.IJMP)

    @property
    def is_ret(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_cond(self) -> bool:
        return self.opcode is Opcode.JCC

    @property
    def falls_through(self) -> bool:
        """True if control may continue at ``end`` (the next instruction).

        Calls architecturally fall through; whether the CFG gets a
        call fall-through edge is decided by the non-returning analysis
        (``O_CFEC``), not here.
        """
        return self.opcode not in (
            Opcode.JMP,
            Opcode.IJMP,
            Opcode.RET,
            Opcode.HALT,
        )

    @property
    def end(self) -> int:
        """Address one past this instruction (start of its successor)."""
        return self.address + self.length

    @property
    def direct_target(self) -> int | None:
        """Branch/call target for direct control flow, else None."""
        if self.opcode is Opcode.JMP or self.opcode is Opcode.CALL:
            return self.operands[0]
        if self.opcode is Opcode.JCC:
            return self.operands[1]
        return None

    # -- named operand access ----------------------------------------------

    @property
    def dst(self) -> Reg:
        """Destination register for register-writing opcodes."""
        op = self.opcode
        if op in (
            Opcode.MOV_RI, Opcode.MOV_RR, Opcode.ADD, Opcode.SUB,
            Opcode.MUL, Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.ADDI,
            Opcode.LOAD, Opcode.LOADIDX, Opcode.LEA, Opcode.POP,
        ):
            return Reg(self.operands[0])
        raise AttributeError(f"{op.name} has no destination register")

    @property
    def src(self) -> Reg:
        """Source register for single-source opcodes."""
        op = self.opcode
        if op in (Opcode.MOV_RR, Opcode.ADD, Opcode.SUB, Opcode.MUL,
                  Opcode.XOR, Opcode.AND, Opcode.OR):
            return Reg(self.operands[1])
        if op in (Opcode.PUSH, Opcode.ICALL, Opcode.IJMP):
            return Reg(self.operands[0])
        raise AttributeError(f"{op.name} has no single source register")

    @property
    def imm(self) -> int:
        """Immediate operand where present."""
        op = self.opcode
        if op in (Opcode.MOV_RI, Opcode.ADDI, Opcode.LEA):
            return self.operands[1]
        if op is Opcode.CMP_RI:
            return self.operands[1]
        if op is Opcode.ENTER:
            return self.operands[0]
        if op in (Opcode.JMP, Opcode.CALL):
            return self.operands[0]
        if op is Opcode.JCC:
            return self.operands[1]
        raise AttributeError(f"{op.name} has no immediate")

    @property
    def cond(self) -> Cond:
        if self.opcode is not Opcode.JCC:
            raise AttributeError("cond only valid for JCC")
        return Cond(self.operands[0])

    # -- def/use sets for dataflow ------------------------------------------

    def regs_read(self) -> frozenset[Reg]:
        """Registers read by this instruction (for liveness/slicing)."""
        op = self.opcode
        o = self.operands
        if op is Opcode.MOV_RR:
            return frozenset({Reg(o[1])})
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.XOR,
                  Opcode.AND, Opcode.OR):
            return frozenset({Reg(o[0]), Reg(o[1])})
        if op is Opcode.ADDI:
            return frozenset({Reg(o[0])})
        if op is Opcode.CMP_RI:
            return frozenset({Reg(o[0])})
        if op is Opcode.CMP_RR:
            return frozenset({Reg(o[0]), Reg(o[1])})
        if op is Opcode.LOAD:
            return frozenset({Reg(o[1])})
        if op is Opcode.STORE:
            return frozenset({Reg(o[0]), Reg(o[2])})
        if op is Opcode.LOADIDX:
            return frozenset({Reg(o[1]), Reg(o[2])})
        if op is Opcode.PUSH:
            return frozenset({Reg(o[0]), Reg.SP})
        if op is Opcode.POP:
            return frozenset({Reg.SP})
        if op is Opcode.ENTER:
            return frozenset({Reg.SP, Reg.FP})
        if op is Opcode.LEAVE:
            return frozenset({Reg.FP})
        if op is Opcode.JCC:
            return frozenset({Reg.FLAGS})
        if op in (Opcode.ICALL, Opcode.IJMP):
            return frozenset({Reg(o[0])})
        if op is Opcode.RET:
            return frozenset({Reg.SP, Reg.R0})
        return frozenset()

    def regs_written(self) -> frozenset[Reg]:
        """Registers written by this instruction."""
        op = self.opcode
        o = self.operands
        if op in (Opcode.MOV_RI, Opcode.MOV_RR, Opcode.ADD, Opcode.SUB,
                  Opcode.MUL, Opcode.XOR, Opcode.AND, Opcode.OR,
                  Opcode.ADDI, Opcode.LOAD, Opcode.LOADIDX, Opcode.LEA):
            return frozenset({Reg(o[0])})
        if op in (Opcode.CMP_RI, Opcode.CMP_RR):
            return frozenset({Reg.FLAGS})
        if op is Opcode.PUSH:
            return frozenset({Reg.SP})
        if op is Opcode.POP:
            return frozenset({Reg(o[0]), Reg.SP})
        if op is Opcode.ENTER:
            return frozenset({Reg.SP, Reg.FP})
        if op is Opcode.LEAVE:
            return frozenset({Reg.SP, Reg.FP})
        if op in (Opcode.CALL, Opcode.ICALL):
            # Calls clobber the caller-saved half of the register file.
            return frozenset({Reg.R0, Reg.R1, Reg.R2, Reg.R3,
                              Reg.R4, Reg.R5, Reg.R6, Reg.R7})
        return frozenset()

    # -- stack effect --------------------------------------------------------

    def sp_delta(self) -> int | None:
        """Static stack-pointer adjustment in bytes, or None if unknown.

        Used by the stack-height analysis backing tail-call heuristic (3):
        a branch preceded by frame teardown is a tail call.
        """
        op = self.opcode
        if op is Opcode.PUSH:
            return -8
        if op is Opcode.POP:
            return 8
        if op is Opcode.ENTER:
            return -8 - self.operands[0]
        if op is Opcode.LEAVE:
            return None  # restores from FP: resolved by the analysis
        if op is Opcode.ADDI and self.operands[0] == Reg.SP:
            return _as_signed32(self.operands[1])
        return 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(self._operand_strs())
        return f"{self.address:#08x}: {self.opcode.name.lower():8s} {ops}"

    def _operand_strs(self) -> list[str]:
        out: list[str] = []
        if self.opcode is Opcode.JCC:
            out.append(Cond(self.operands[0]).name.lower())
            out.append(f"{self.operands[1]:#x}")
            return out
        for v in self.operands:
            out.append(str(v))
        return out


def _as_signed32(v: int) -> int:
    """Interpret an unsigned 32-bit value as signed."""
    return v - (1 << 32) if v >= (1 << 31) else v
