"""Correctness tooling for the parallel CFG reproduction.

Three cooperating analyses (see docs/SANITY.md):

- :mod:`repro.sanity.races` — a vector-clock happens-before race
  detector layered on the virtual-time runtime, swept across seeded
  schedules.
- :mod:`repro.sanity.cfgsan` — a CFG/operation-trace sanitizer
  validating the paper's five structural invariants and the ordering
  legality of the six core operations.
- :mod:`repro.sanity.lint` — a static AST lint enforcing accessor
  discipline and worker-path determinism rules.
"""

from repro.sanity.cfgsan import (
    SanityFinding,
    check_cfg,
    check_op_trace,
    check_parser_state,
    run_cfgsan,
    run_cfgsan_cfg,
)
from repro.sanity.lint import LintFinding, run_lint
from repro.sanity.races import RaceDetector, run_race_sweep

__all__ = [
    "LintFinding",
    "RaceDetector",
    "SanityFinding",
    "check_cfg",
    "check_op_trace",
    "check_parser_state",
    "run_cfgsan",
    "run_cfgsan_cfg",
    "run_lint",
    "run_race_sweep",
]
