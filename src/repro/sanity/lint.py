"""Accessor-discipline and determinism lint (static AST pass).

Three rules, each targeting a class of bug the dynamic tooling can
only catch if the right schedule happens to run:

- ``unsync-iteration``: calling ``.items()`` / ``.keys()`` /
  ``.values()`` on a :class:`~repro.runtime.conchash.ConcurrentHashMap`
  outside the map implementation itself.  These iterate the shard
  dicts with no locking; use ``items_snapshot()`` / ``snapshot()`` /
  ``sorted_items()`` instead.
- ``bare-mutation``: mutating an object obtained from a concurrent
  map via lock-free ``get()`` (attribute assignment, item assignment,
  or a known mutator-method call) instead of working under an
  ``accessor`` scope.
- ``wall-clock``: use of wall-clock or randomness sources
  (``time``/``random``/``secrets``/``uuid``/``datetime.now``) in
  worker code paths — the determinism rule the fault-injection
  harness and the differential battery depend on.

A finding can be suppressed on its line with ``# sanity: allow(<rule>)``
and a justification; suppressions are deliberate, reviewable
exceptions (the procs merge timing its own coordinator-side phases,
for example).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

#: Iteration methods that walk shard dicts without locks.
_UNSYNC_ITERS = {"items", "keys", "values"}

#: Mutator method names on common container/record values.
_MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "remove", "setdefault", "sort", "update",
}

#: Module names whose use in worker paths breaks determinism.
_NONDET_MODULES = {"time", "random", "secrets", "uuid"}

#: Names importable from those modules that are themselves nondeterministic.
_NONDET_IMPORTS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "random", "randrange", "randint",
    "choice", "shuffle", "uniform", "token_bytes", "token_hex", "uuid4",
    "uuid1", "getrandbits",
}

_PRAGMA = re.compile(r"#\s*sanity:\s*allow\(([a-z\-,\s]+)\)")

#: Every rule this lint can emit (the ``checks`` list of the
#: ``repro.findings/1`` document ``repro lint --json`` writes).
LINT_RULES = ("bare-mutation", "unsync-iteration", "wall-clock")


@dataclass(frozen=True)
class LintFinding:
    """One lint violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _allowed_rules(source_lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed by a pragma on the given 1-based line."""
    if 1 <= lineno <= len(source_lines):
        m = _PRAGMA.search(source_lines[lineno - 1])
        if m:
            return {r.strip() for r in m.group(1).split(",")}
    return set()


def _is_conchash_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    name = fn.id if isinstance(fn, ast.Name) else (
        fn.attr if isinstance(fn, ast.Attribute) else None)
    return name == "ConcurrentHashMap"


def _collect_conchash_attrs(trees: dict[Path, ast.AST]) -> set[str]:
    """Attribute names ever assigned a ConcurrentHashMap, tree-wide."""
    attrs: set[str] = set()
    for tree in trees.values():
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_conchash_ctor(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Attribute):
                        attrs.add(tgt.attr)
                    elif isinstance(tgt, ast.Name):
                        attrs.add(tgt.id)
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                    and _is_conchash_ctor(node.value)):
                if isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
                elif isinstance(node.target, ast.Name):
                    attrs.add(node.target.id)
    return attrs


def _receiver_name(node: ast.expr) -> str | None:
    """The terminal name of an attribute/name expression, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FileLinter(ast.NodeVisitor):
    def __init__(self, rel_path: str, source_lines: list[str],
                 conchash_attrs: set[str], worker_path: bool):
        self.rel_path = rel_path
        self.lines = source_lines
        self.conchash = conchash_attrs
        self.worker_path = worker_path
        self.findings: list[LintFinding] = []
        #: names imported from nondeterministic modules in this file
        self.nondet_names: set[str] = set()
        #: per-function map of local names bound to `<conchash>.get(...)`
        self._got_vars: list[dict[str, int]] = []
        #: scope stack of local names bound to a ConcurrentHashMap
        #: (ctor call or alias of a known map attribute); a bare Name
        #: receiver is only treated as a map if bound here, so a plain
        #: dict that shares a name with a map attribute is not flagged.
        self._map_vars: list[set[str]] = [set()]

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule in _allowed_rules(self.lines, lineno):
            return
        self.findings.append(
            LintFinding(rule, self.rel_path, lineno, message))

    # ------------------------------------------------------------- imports

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _NONDET_MODULES:
            for alias in node.names:
                if alias.name in _NONDET_IMPORTS:
                    self.nondet_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ----------------------------------------------------------- functions

    def _visit_func(self, node: ast.AST) -> None:
        self._got_vars.append({})
        self._map_vars.append(set())
        self.generic_visit(node)
        self._map_vars.pop()
        self._got_vars.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func
    visit_Lambda = _visit_func

    # --------------------------------------------------------------- calls

    def _is_conchash_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self.conchash
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._map_vars)
        return False

    def _binds_conchash(self, value: ast.expr) -> bool:
        """True when assigning ``value`` binds a ConcurrentHashMap."""
        if _is_conchash_ctor(value):
            return True
        # Alias of a known map attribute: `m = parser.functions`.
        return (isinstance(value, ast.Attribute)
                and value.attr in self.conchash)

    def _is_get_from_conchash(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and self._is_conchash_expr(node.func.value))

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._got_vars and self._is_get_from_conchash(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._got_vars[-1][tgt.id] = node.lineno
        if self._binds_conchash(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._map_vars[-1].add(tgt.id)
        for tgt in node.targets:
            self._check_mutation_target(tgt, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            if self._got_vars and self._is_get_from_conchash(node.value):
                self._got_vars[-1][node.target.id] = node.lineno
            if self._binds_conchash(node.value):
                self._map_vars[-1].add(node.target.id)
        self._check_mutation_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node.target, node)
        self.generic_visit(node)

    def _check_mutation_target(self, tgt: ast.expr, node: ast.AST) -> None:
        """Flag `v.attr = ...` / `v[i] = ...` where v came from get()."""
        inner = tgt
        if isinstance(inner, (ast.Attribute, ast.Subscript)):
            base = inner.value
            if (isinstance(base, ast.Name) and self._got_vars
                    and base.id in self._got_vars[-1]):
                self._flag(
                    "bare-mutation", node,
                    f"mutation of {base.id!r} obtained from a lock-free "
                    f"ConcurrentHashMap.get() (line "
                    f"{self._got_vars[-1][base.id]}); use an accessor "
                    f"scope instead")
            elif self._is_get_from_conchash(base):
                self._flag(
                    "bare-mutation", node,
                    "mutation of a ConcurrentHashMap.get() result; use "
                    "an accessor scope instead")

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            # unsync-iteration: conchash.items()/keys()/values()
            if (fn.attr in _UNSYNC_ITERS
                    and self._is_conchash_expr(fn.value)):
                self._flag(
                    "unsync-iteration", node,
                    f"unsynchronized iteration via .{fn.attr}() on "
                    f"ConcurrentHashMap {_receiver_name(fn.value)!r}; use "
                    f"items_snapshot()/snapshot()/sorted_items()")
            # bare-mutation: mutator call on a get() result
            if fn.attr in _MUTATORS:
                base = fn.value
                if (isinstance(base, ast.Name) and self._got_vars
                        and base.id in self._got_vars[-1]):
                    self._flag(
                        "bare-mutation", node,
                        f"mutator .{fn.attr}() on {base.id!r} obtained "
                        f"from a lock-free ConcurrentHashMap.get(); use "
                        f"an accessor scope instead")
                elif self._is_get_from_conchash(base):
                    self._flag(
                        "bare-mutation", node,
                        f"mutator .{fn.attr}() on a "
                        f"ConcurrentHashMap.get() result; use an "
                        f"accessor scope instead")
            # wall-clock: time.*/random.*/datetime.now in worker paths
            if self.worker_path:
                base = fn.value
                if (isinstance(base, ast.Name)
                        and base.id in _NONDET_MODULES):
                    self._flag(
                        "wall-clock", node,
                        f"nondeterministic call {base.id}.{fn.attr}() in "
                        f"a worker code path")
                elif (isinstance(base, ast.Name) and base.id == "datetime"
                        and fn.attr in ("now", "utcnow", "today")):
                    self._flag(
                        "wall-clock", node,
                        f"wall-clock call datetime.{fn.attr}() in a "
                        f"worker code path")
        elif (self.worker_path and isinstance(fn, ast.Name)
                and fn.id in self.nondet_names):
            self._flag(
                "wall-clock", node,
                f"nondeterministic call {fn.id}() in a worker code path")
        self.generic_visit(node)


#: Modules that execute on worker code paths (tasks / shard workers),
#: where the determinism rule applies.  Everything under core/ runs
#: inside parse tasks; conchash is on every map operation's path;
#: everything under analyses/ runs inside SCC units shipped to the
#: procs pool (the findings sidecar is byte-pinned across backends).
_WORKER_PATH_PARTS = ("core", "conchash.py", "analyses")


def _is_worker_path(rel_path: str) -> bool:
    parts = rel_path.replace("\\", "/").split("/")
    return any(p in _WORKER_PATH_PARTS for p in parts)


def run_lint(paths: list[Path] | None = None,
             root: Path | None = None) -> list[LintFinding]:
    """Lint python files; returns findings sorted by (path, line, rule).

    ``paths`` defaults to the ``src/repro`` tree containing this file.
    ``root`` anchors the relative paths used in reports.
    """
    if paths is None:
        paths = [Path(__file__).resolve().parents[1]]  # src/repro
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        files.extend(sorted(p.rglob("*.py")) if p.is_dir() else [p])
    if root is None:
        try:
            root = Path(__file__).resolve().parents[2]  # src/
        except IndexError:  # pragma: no cover
            root = Path.cwd()

    trees: dict[Path, ast.AST] = {}
    sources: dict[Path, list[str]] = {}
    for f in files:
        text = f.read_text()
        trees[f] = ast.parse(text, filename=str(f))
        sources[f] = text.splitlines()

    conchash_attrs = _collect_conchash_attrs(trees)
    findings: list[LintFinding] = []
    for f, tree in trees.items():
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = f.name
        rel = rel.replace("\\", "/")
        if rel.endswith("runtime/conchash.py"):
            # The map implementation itself iterates its own shards.
            worker = _is_worker_path(rel)
            linter = _FileLinter(rel, sources[f], set(), worker)
        else:
            linter = _FileLinter(rel, sources[f], conchash_attrs,
                                 _is_worker_path(rel))
        linter.visit(tree)
        findings.extend(linter.findings)
    return sorted(findings, key=lambda x: (x.path, x.line, x.rule))
