"""Vector-clock happens-before race detection for the vtime runtime.

The paper's correctness argument (Sections 5–6) rests on every access
to shared parser state being ordered by one of three synchronization
mechanisms: task spawn/wait (fork-join), ``SimLock`` critical sections
(the concurrent hash map's entry accessors), and the map's internal
shard locks.  This module checks that claim dynamically: the
virtual-time runtime reports every synchronization operation to a
:class:`RaceDetector`, instrumented shared structures report their
reads and writes, and the detector flags any pair of conflicting
accesses not ordered by the happens-before relation.

The detector is FastTrack-flavoured: one vector clock per worker, a
last-write epoch plus a per-worker read map per location.  Because the
vtime backend is token-serialized, detector state needs no locking of
its own — only the worker holding the execution token ever calls in.

A single vtime schedule only witnesses races that that interleaving
makes visible, so :func:`run_race_sweep` re-runs a workload across a
seeded family of schedules (``schedule_seed`` perturbs tie-break ranks
and spawn/pop jitter) and accumulates findings into one deterministic
report: same seeds in, byte-identical report out.  Schedule seeds are
*split* from the single ``base_seed`` via :mod:`repro.seeds` — never
derived arithmetically (overlapping ``base_seed`` ranges would share
schedules) and never drawn from module-level ``random`` state.
"""

from __future__ import annotations

import sys
from collections.abc import Callable
from pathlib import PurePath
from typing import Any

#: Schema identifier for the serialized race report (see tracefmt).
RACES_SCHEMA = "repro.races/1"

#: Filenames whose frames are skipped when attributing an access to a
#: source site: the detector itself and the instrumented runtime layers.
_SKIP_FRAMES = ("races.py", "conchash.py", "vtime.py", "api.py")


def _format_path(filename: str) -> str:
    """Render a frame filename machine-independently (repo-relative)."""
    parts = PurePath(filename).parts
    for anchor in ("repro", "tests"):
        if anchor in parts:
            i = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[i:])
    return PurePath(filename).name


def _caller_site() -> str:
    """``file:line`` of the nearest frame outside the runtime layers."""
    frame = sys._getframe(1)
    while frame is not None:
        fname = frame.f_code.co_filename
        if not fname.endswith(_SKIP_FRAMES):
            return f"{_format_path(fname)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _fmt_loc(loc: Any) -> str:
    if isinstance(loc, tuple):
        if len(loc) >= 2 and loc[0] == "map":
            keys = ",".join(
                f"{k:#x}" if isinstance(k, int) else str(k)
                for k in loc[2:])
            return f"map.{loc[1]}[{keys}]"
        return ".".join(str(x) for x in loc)
    return str(loc)


class _Loc:
    """Per-location access state: last-write epoch + read map."""

    __slots__ = ("write", "write_site", "reads")

    def __init__(self) -> None:
        self.write: tuple[int, int] | None = None   # (wid, clk)
        self.write_site: str | None = None
        self.reads: dict[int, tuple[int, str]] = {}  # wid -> (clk, site)


class RaceDetector:
    """Happens-before checker fed by vtime hooks and shared-state probes.

    One detector instance can observe many runs (a schedule sweep);
    vector clocks and location state reset per run while findings
    accumulate, deduplicated by (location, kind, sites).
    """

    def __init__(self) -> None:
        self._vc: list[list[int]] = []
        self._locks: dict[int, list[int]] = {}
        self._groups: dict[int, list[int]] = {}
        self._locs: dict[Any, _Loc] = {}
        self._seed: int | None = None
        self.seeds: list[int | None] = []
        self.events = 0
        self.events_this_run = 0
        #: (location, kind, sites) -> {"count": n, "first_seed": seed}
        self.findings: dict[tuple, dict[str, Any]] = {}

    # ------------------------------------------------------------ lifecycle

    def begin_run(self, n_workers: int, seed: int | None) -> None:
        """Reset per-run state; called by the runtime at ``run()``."""
        self._vc = [[0] * n_workers for _ in range(n_workers)]
        for i in range(n_workers):
            self._vc[i][i] = 1
        self._locks.clear()
        self._groups.clear()
        self._locs.clear()
        self._seed = seed
        self.seeds.append(seed)
        self.events_this_run = 0

    def end_run(self) -> None:
        """Hook for symmetry; per-run state is reset by begin_run."""

    # ------------------------------------------------------ synchronization

    def _join(self, dst: list[int], src: list[int]) -> None:
        for i, v in enumerate(src):
            if v > dst[i]:
                dst[i] = v

    def on_spawn(self, wid: int) -> list[int]:
        """Task spawn: capture the spawner's clock as the task's token."""
        token = list(self._vc[wid])
        self._vc[wid][wid] += 1
        return token

    def on_task_start(self, wid: int, token: list[int] | None) -> None:
        if token is not None:
            self._join(self._vc[wid], token)

    def on_task_done(self, wid: int, group_id: int) -> None:
        """Task completion: publish the worker's clock to the group."""
        g = self._groups.setdefault(group_id, [0] * len(self._vc))
        self._join(g, self._vc[wid])
        self._vc[wid][wid] += 1

    def on_group_wait(self, wid: int, group_id: int) -> None:
        """Group wait return: the waiter sees every member's effects."""
        g = self._groups.get(group_id)
        if g is not None:
            self._join(self._vc[wid], g)

    def on_acquire(self, wid: int, lock_id: int) -> None:
        vc = self._locks.get(lock_id)
        if vc is not None:
            self._join(self._vc[wid], vc)

    def on_release(self, wid: int, lock_id: int) -> None:
        me = self._vc[wid]
        vc = self._locks.setdefault(lock_id, [0] * len(me))
        self._join(vc, me)
        me[wid] += 1

    # ------------------------------------------------------------- accesses

    def _record(self, kind: str, loc: Any, site_a: str, site_b: str) -> None:
        key = (_fmt_loc(loc), kind, tuple(sorted((site_a, site_b))))
        rec = self.findings.get(key)
        if rec is None:
            self.findings[key] = {"count": 1, "first_seed": self._seed}
        else:
            rec["count"] += 1

    def read(self, wid: int, loc: Any, site: str | None = None) -> None:
        self.events += 1
        self.events_this_run += 1
        if site is None:
            site = _caller_site()
        st = self._locs.get(loc)
        if st is None:
            st = self._locs[loc] = _Loc()
        vc = self._vc[wid]
        w = st.write
        if w is not None and w[0] != wid and w[1] > vc[w[0]]:
            self._record("write-read", loc, st.write_site or "?", site)
        st.reads[wid] = (vc[wid], site)

    def write(self, wid: int, loc: Any, site: str | None = None) -> None:
        self.events += 1
        self.events_this_run += 1
        if site is None:
            site = _caller_site()
        st = self._locs.get(loc)
        if st is None:
            st = self._locs[loc] = _Loc()
        vc = self._vc[wid]
        w = st.write
        if w is not None and w[0] != wid and w[1] > vc[w[0]]:
            self._record("write-write", loc, st.write_site or "?", site)
        for t, (clk, rsite) in st.reads.items():
            if t != wid and clk > vc[t]:
                self._record("read-write", loc, rsite, site)
        st.write = (wid, vc[wid])
        st.write_site = site
        st.reads.clear()

    # --------------------------------------------------------------- report

    def report(self, workload: str = "", n_workers: int = 0) -> dict:
        """Deterministic, JSON-ready findings document."""
        findings = [
            {
                "location": key[0],
                "kind": key[1],
                "sites": list(key[2]),
                "count": rec["count"],
                "first_seed": rec["first_seed"],
            }
            for key, rec in sorted(self.findings.items())
        ]
        return {
            "schema": RACES_SCHEMA,
            "workload": workload,
            "n_workers": n_workers,
            "seeds": list(self.seeds),
            "schedules": len(self.seeds),
            "events": self.events,
            "findings": findings,
        }


def run_race_sweep(
    workload: Callable[[Any], Any],
    *,
    n_workers: int = 4,
    schedules: int = 8,
    base_seed: int = 0,
    cost_model: Any = None,
    detector: RaceDetector | None = None,
    workload_name: str = "workload",
    metrics: Any = None,
) -> dict:
    """Run ``workload(rt)`` under ``schedules`` seeded vtime schedules.

    ``workload`` receives a fresh race-instrumented
    :class:`~repro.runtime.vtime.VirtualTimeRuntime` per schedule and
    must drive it itself (call ``rt.run``).  Findings accumulate across
    the whole sweep; the returned report is deterministic for a given
    (workload, n_workers, schedules, base_seed): schedule seeds are
    split off ``base_seed`` (see :mod:`repro.seeds`), so sweeps with
    different base seeds explore disjoint schedule families.  When
    ``metrics`` is a registry, ``sanity.race.*`` counters are recorded
    on it.
    """
    from repro.runtime.vtime import VirtualTimeRuntime
    from repro.seeds import derive_seeds

    det = detector if detector is not None else RaceDetector()
    for seed in derive_seeds(base_seed, schedules, "race-sweep"):
        rt = VirtualTimeRuntime(
            n_workers, cost_model=cost_model,
            schedule_seed=seed, race_detector=det)
        workload(rt)
        if metrics is not None:
            metrics.inc("sanity.race.schedules")
            metrics.inc("sanity.race.events", det.events_this_run)
    rep = det.report(workload=workload_name, n_workers=n_workers)
    if metrics is not None:
        metrics.inc("sanity.race.findings", len(rep["findings"]))
    return rep
