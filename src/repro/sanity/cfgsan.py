"""CFG and operation-trace sanitizer (the paper's five invariants).

``check_parser_state`` validates a parser's shared maps at a quiesced
point (finalize entry, after a shard merge) against the structural
invariants of Section 5.2:

1. one block per start address (the blocks map key is the identity);
2. one block per end address (the ends map key is the identity, and no
   block is registered at two ends);
3. edges are symmetric and connect blocks that exist in the maps;
4. registered blocks partition the parsed bytes (no overlap) — losers
   of an end collision re-register at strictly smaller ends until this
   holds;
5. one function per entry address, anchored at an existing block.

``check_op_trace`` validates a recorded operation trace (Section 4)
for ordering legality: O_IEC target sets grow monotonically per block,
O_CFEC call-fallthrough edges are only created once the callee's
status is RETURN (no reordering past the O_FEI / noreturn resolution
that feeds them), one O_FEI per entry address, and every
``_split_collision`` re-registration strictly decreases the losing
block's end.

``run_cfgsan`` bundles both, records ``sanity.cfgsan.*`` metrics and
raises :class:`~repro.errors.SanityCheckError` on violations.  It is
hooked into ``finalize`` and ``shard_merge`` behind
``ParseOptions.sanitize`` (or env ``REPRO_CFGSAN=1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SanityCheckError


@dataclass(frozen=True)
class SanityFinding:
    """One invariant violation."""

    rule: str
    message: str
    addr: int | None = None

    def __str__(self) -> str:
        at = f" @{self.addr:#x}" if self.addr is not None else ""
        return f"[{self.rule}]{at} {self.message}"


# ----------------------------------------------------------------- structural


def check_parser_state(parser: Any) -> list[SanityFinding]:
    """Validate the five structural invariants on a quiesced parser."""
    out: list[SanityFinding] = []
    blocks = dict(parser.blocks_by_start.items_snapshot())
    ends = dict(parser.block_ends.items_snapshot())

    # Invariant 1: the blocks map key is the block's start address.
    for start, b in blocks.items():
        if b.start != start:
            out.append(SanityFinding(
                "block-start", f"blocks[{start:#x}] holds {b!r}", start))

    # Invariant 2: the ends map key is the registrant's end address, and
    # no block is registered under two end addresses.
    seen_ends: dict[int, int] = {}
    for end, b in ends.items():
        if b.end != end:
            out.append(SanityFinding(
                "block-end", f"ends[{end:#x}] holds {b!r}", end))
        prior = seen_ends.get(id(b))
        if prior is not None:
            out.append(SanityFinding(
                "block-end",
                f"{b!r} registered at both {prior:#x} and {end:#x}", end))
        seen_ends[id(b)] = end
        if b.start not in blocks:
            out.append(SanityFinding(
                "block-end",
                f"ends[{end:#x}] registrant {b!r} not in blocks map", end))

    # Invariant 3: edge symmetry over blocks that exist in the map.
    for start, b in blocks.items():
        for e in b.out_edges:
            if e.src is not b:
                out.append(SanityFinding(
                    "edge-symmetry",
                    f"out-edge {e!r} of {b!r} has src {e.src!r}", start))
            elif e not in e.dst.in_edges:
                out.append(SanityFinding(
                    "edge-symmetry",
                    f"{e!r} missing from dst in-edges", start))
            if e.dst.start not in blocks:
                out.append(SanityFinding(
                    "edge-symmetry",
                    f"{e!r} dst not in blocks map", e.dst.start))
        for e in b.in_edges:
            if e.dst is not b:
                out.append(SanityFinding(
                    "edge-symmetry",
                    f"in-edge {e!r} of {b!r} has dst {e.dst!r}", start))
            elif e not in e.src.out_edges:
                out.append(SanityFinding(
                    "edge-symmetry",
                    f"{e!r} missing from src out-edges", start))

    # Invariant 4: registered blocks do not overlap.
    out.extend(_check_overlap(
        b for b in blocks.values() if b.end is not None))

    # Invariant 5: one function per entry address, anchored at a block.
    for addr, f in parser.functions.items_snapshot():
        if f.addr != addr:
            out.append(SanityFinding(
                "function-entry", f"functions[{addr:#x}] holds {f!r}", addr))
        if f.entry.start != addr:
            out.append(SanityFinding(
                "function-entry",
                f"{f!r} entry block starts at {f.entry.start:#x}", addr))
        if addr not in blocks:
            out.append(SanityFinding(
                "function-entry",
                f"{f!r} entry block not in blocks map", addr))
    return out


def _check_overlap(blocks: Any) -> list[SanityFinding]:
    out: list[SanityFinding] = []
    live = sorted((b for b in blocks if not b.is_empty),
                  key=lambda b: (b.start, b.end))
    for prev, nxt in zip(live, live[1:]):
        if nxt.start < prev.end:
            out.append(SanityFinding(
                "block-overlap",
                f"{prev!r} overlaps {nxt!r}", nxt.start))
    return out


def check_cfg(cfg: Any) -> list[SanityFinding]:
    """Validate a finalized :class:`~repro.core.cfg.ParsedCFG`."""
    out: list[SanityFinding] = []
    blocks = cfg.blocks()
    block_set = {id(b) for b in blocks}
    out.extend(_check_overlap(blocks))
    for b in blocks:
        for e in b.out_edges:
            if e.src is not b or e not in e.dst.in_edges:
                out.append(SanityFinding(
                    "edge-symmetry", f"broken out-edge {e!r}", b.start))
        for e in b.in_edges:
            if e.dst is not b or e not in e.src.out_edges:
                out.append(SanityFinding(
                    "edge-symmetry", f"broken in-edge {e!r}", b.start))
    for f in cfg.functions():
        if f.entry.start != f.addr:
            out.append(SanityFinding(
                "function-entry",
                f"{f!r} entry starts at {f.entry.start:#x}", f.addr))
        if f.blocks and id(f.entry) not in {id(b) for b in f.blocks}:
            out.append(SanityFinding(
                "function-entry",
                f"{f!r} entry not among its blocks", f.addr))
        if id(f.entry) not in block_set:
            out.append(SanityFinding(
                "function-entry",
                f"{f!r} entry block not in CFG", f.addr))
    return out


# -------------------------------------------------------------------- traces


def check_op_trace(trace: list[tuple] | None) -> list[SanityFinding]:
    """Validate operation-ordering legality on a recorded trace."""
    out: list[SanityFinding] = []
    if not trace:
        return out
    jt_targets: dict[int, set[int]] = {}
    fei_seen: dict[int, str] = {}
    for rec in trace:
        op = rec[0]
        if op == "OIEC":
            _, block_start, targets = rec
            tset = set(targets)
            prev = jt_targets.get(block_start)
            if prev is not None and not tset >= prev:
                out.append(SanityFinding(
                    "oiec-monotone",
                    f"jump-table targets of block {block_start:#x} shrank: "
                    f"{sorted(prev - tset)} disappeared", block_start))
            jt_targets[block_start] = tset
        elif op == "OCFEC":
            _, block_start, callee, status = rec
            if status != "return":
                out.append(SanityFinding(
                    "ocfec-order",
                    f"call fall-through at {block_start:#x} created while "
                    f"callee {callee:#x} status is {status!r}", block_start))
        elif op == "OFEI":
            _, addr, via = rec
            if addr in fei_seen:
                out.append(SanityFinding(
                    "ofei-unique",
                    f"function at {addr:#x} created twice "
                    f"(via {fei_seen[addr]} then {via})", addr))
            fei_seen[addr] = via
        elif op == "SPLIT":
            _, loser_start, old_end, new_end = rec
            if new_end >= old_end:
                out.append(SanityFinding(
                    "split-decreasing",
                    f"split of block {loser_start:#x} re-registered end "
                    f"{old_end:#x} -> {new_end:#x} (must strictly "
                    f"decrease)", loser_start))
    return out


# -------------------------------------------------------------------- driver


def run_cfgsan(parser: Any, where: str, *,
               raise_on_violation: bool = True) -> list[SanityFinding]:
    """Run both checks against a quiesced parser; record metrics."""
    m = parser.rt.metrics
    findings = check_parser_state(parser)
    findings.extend(check_op_trace(getattr(parser, "op_trace", None)))
    m.inc("sanity.cfgsan.checks")
    m.observe("sanity.cfgsan.blocks", len(parser.blocks_by_start))
    if findings:
        m.inc("sanity.cfgsan.violations", len(findings))
        if raise_on_violation:
            raise SanityCheckError(where, findings)
    return findings


def run_cfgsan_cfg(cfg: Any, metrics: Any, where: str, *,
                   raise_on_violation: bool = True) -> list[SanityFinding]:
    """Validate a finalized CFG; record metrics (final-graph hook)."""
    findings = check_cfg(cfg)
    metrics.inc("sanity.cfgsan.checks")
    metrics.observe("sanity.cfgsan.blocks", len(cfg.blocks()))
    if findings:
        metrics.inc("sanity.cfgsan.violations", len(findings))
        if raise_on_violation:
            raise SanityCheckError(where, findings)
    return findings
