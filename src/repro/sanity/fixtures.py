"""Intentionally-buggy (and matching safe) workloads for the race sweep.

Each fixture is a tiny task-parallel workload over one
:class:`~repro.runtime.conchash.ConcurrentHashMap`.  The safe variants
follow the accessor discipline and stay race-free under every
schedule; each racy variant removes exactly one piece of that
discipline, reproducing a bug class the detector must catch:

- ``counter-racy`` — the read half of a read-modify-write moved out of
  the accessor scope (a lock-free ``get`` feeding an accessor write):
  the atomicity bug the paper's Listing 5 accessor prevents.
- ``iteration-racy`` — unsynchronized ``items()`` iteration while
  writer tasks are still running: the hazard conchash's docstring
  warns about and the lint flags statically.

These are the regression anchors for ``repro check --races``: the
acceptance test pins that the racy twins are caught within a small
schedule sweep while the safe twins stay clean.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.runtime.conchash import ConcurrentHashMap

_N_TASKS = 6
_N_KEYS = 2


def _counter_workload(buggy: bool) -> Callable[[Any], None]:
    def workload(rt: Any) -> None:
        m: ConcurrentHashMap[int, int] = ConcurrentHashMap(rt, name="fixture")

        def bump_safe(i: int) -> None:
            rt.charge(3)
            with m.accessor(i % _N_KEYS) as acc:
                acc.value = acc.value + 1

        def bump_racy(i: int) -> None:
            rt.charge(3)
            # BUG: the read happens outside the accessor scope, so the
            # increment is not atomic — and the lock-free get() races
            # with sibling accessor writes.
            stale = m.get(i % _N_KEYS, 0)
            rt.charge(2)
            with m.accessor(i % _N_KEYS) as acc:
                acc.value = stale + 1

        def body() -> None:
            for k in range(_N_KEYS):
                m.insert(k, 0)
            g = rt.task_group()
            for i in range(_N_TASKS):
                g.spawn(bump_racy if buggy else bump_safe, i)
            g.wait()

        rt.run(body)

    return workload


def _iteration_workload(buggy: bool) -> Callable[[Any], None]:
    def workload(rt: Any) -> None:
        m: ConcurrentHashMap[int, int] = ConcurrentHashMap(rt, name="fixture")

        def writer(i: int) -> None:
            rt.charge(4)
            with m.accessor(i) as acc:
                acc.value = i * i

        def reader() -> None:
            rt.charge(2)
            if buggy:
                # BUG: unsynchronized iteration while writers run.
                pairs = m.items()  # sanity: allow(unsync-iteration) fixture
                total = sum(v for _, v in pairs)
            else:
                # Concurrent reads go through entry accessors; whole-map
                # iteration waits for the join below.  (items_snapshot is
                # structure-safe but does not exclude entry-locked
                # writers, so it is not value-synchronized mid-run.)
                total = 0
                for k in range(_N_TASKS):
                    with m.accessor(k) as acc:
                        total += acc.value
            rt.charge(max(total % 3, 1))

        def body() -> None:
            for k in range(_N_TASKS):
                m.insert(k, 0)
            g = rt.task_group()
            for i in range(_N_TASKS):
                g.spawn(writer, i)
            g.spawn(reader)
            g.wait()
            # Post-join iteration is always legal: no writers remain.
            sum(v for _, v in m.items_snapshot())

        rt.run(body)

    return workload


#: name -> workload(rt); the ``-racy`` twins must be caught by the
#: sweep, the ``-safe`` twins must stay clean.
FIXTURES: dict[str, Callable[[Any], None]] = {
    "counter-safe": _counter_workload(buggy=False),
    "counter-racy": _counter_workload(buggy=True),
    "iteration-safe": _iteration_workload(buggy=False),
    "iteration-racy": _iteration_workload(buggy=True),
}


def fixture_workload(name: str) -> Callable[[Any], None]:
    try:
        return FIXTURES[name]
    except KeyError:
        raise KeyError(
            f"unknown fixture {name!r}; choose from {sorted(FIXTURES)}"
        ) from None
