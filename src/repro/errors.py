"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad operands, out-of-range imm)."""


class InvalidInstructionError(ReproError):
    """Bytes at an address do not decode to a valid instruction.

    Carries the offending address so CFG construction can terminate a basic
    block at undecodable bytes, mirroring how Dyninst handles junk bytes.
    """

    def __init__(self, address: int, reason: str = "invalid opcode"):
        super().__init__(f"invalid instruction at {address:#x}: {reason}")
        self.address = address
        self.reason = reason


class ImageFormatError(ReproError):
    """A binary image or one of its sections failed to parse."""


class SectionNotFoundError(ImageFormatError):
    """A required section is missing from a binary image."""

    def __init__(self, name: str):
        super().__init__(f"section not found: {name}")
        self.name = name


class SynthesisError(ReproError):
    """The binary synthesizer was given an unsatisfiable program spec."""


class RuntimeConfigError(ReproError):
    """A parallel runtime was misconfigured (bad worker count, etc.)."""


class SimDeadlockError(ReproError):
    """The virtual-time scheduler detected that all workers are blocked."""


class ParseAbortError(ReproError):
    """CFG construction was aborted (internal invariant violation)."""
