"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad operands, out-of-range imm)."""


class InvalidInstructionError(ReproError):
    """Bytes at an address do not decode to a valid instruction.

    Carries the offending address so CFG construction can terminate a basic
    block at undecodable bytes, mirroring how Dyninst handles junk bytes.
    """

    def __init__(self, address: int, reason: str = "invalid opcode"):
        super().__init__(f"invalid instruction at {address:#x}: {reason}")
        self.address = address
        self.reason = reason


class ImageFormatError(ReproError):
    """A binary image or one of its sections failed to parse."""


class SectionNotFoundError(ImageFormatError):
    """A required section is missing from a binary image."""

    def __init__(self, name: str):
        super().__init__(f"section not found: {name}")
        self.name = name


class SynthesisError(ReproError):
    """The binary synthesizer was given an unsatisfiable program spec."""


class RuntimeConfigError(ReproError):
    """A parallel runtime was misconfigured (bad worker count, etc.)."""


class CorpusError(ReproError):
    """The corpus driver cannot make progress (unusable run directory,
    corrupt journal body, resume/config mismatch)."""


class ShardError(ReproError):
    """Base class for procs-backend shard execution failures.

    Every shard failure carries the shard id and the attempt number
    (1-based) it occurred on, so the retry/degradation ladder and the
    run report can attribute faults precisely.
    """

    def __init__(self, message: str, shard_id: int | None = None,
                 attempt: int = 0):
        super().__init__(message)
        self.shard_id = shard_id
        self.attempt = attempt


class ShardTimeoutError(ShardError):
    """A shard task did not produce its delta within its deadline."""

    def __init__(self, shard_id: int, attempt: int, deadline: float):
        super().__init__(
            f"shard {shard_id} attempt {attempt} exceeded its "
            f"{deadline:g}s deadline", shard_id, attempt)
        self.deadline = deadline


class ShardFailedError(ShardError):
    """A shard task returned an error or an invalid/corrupt delta."""

    def __init__(self, shard_id: int, attempt: int, reason: str):
        super().__init__(
            f"shard {shard_id} attempt {attempt} failed: {reason}",
            shard_id, attempt)
        self.reason = reason


class PoolBrokenError(ShardError):
    """The worker pool died (or could not be created) beyond repair.

    ``attempt`` counts pool creations: 1 is the initial creation,
    each respawn increments it.
    """


class InjectedFaultError(ReproError):
    """A deterministic fault injected by a :class:`~repro.runtime.faults.FaultPlan`."""

    def __init__(self, site: str, shard_id: int | None, attempt: int):
        super().__init__(
            f"injected fault at site {site!r} "
            f"(shard={shard_id}, attempt={attempt})")
        self.site = site
        self.shard_id = shard_id
        self.attempt = attempt


class SimDeadlockError(ReproError):
    """The virtual-time scheduler detected that all workers are blocked."""


class SanityCheckError(ReproError):
    """A sanity analysis (cfgsan / race detector) found a violation.

    Carries the structured findings so callers (CLI, tests) can render
    or serialize them instead of re-parsing the message text.
    """

    def __init__(self, where: str, findings: list):
        lines = "; ".join(str(f) for f in findings[:5])
        more = f" (+{len(findings) - 5} more)" if len(findings) > 5 else ""
        super().__init__(
            f"{len(findings)} sanity violation(s) at {where}: {lines}{more}")
        self.where = where
        self.findings = findings


class ParseAbortError(ReproError):
    """CFG construction was aborted (internal invariant violation)."""
