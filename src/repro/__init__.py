"""repro: a reproduction of "Parallel Binary Code Analysis" (PPoPP 2021).

Quick start::

    from repro import tiny_binary, parse_binary, VirtualTimeRuntime

    sb = tiny_binary()                       # synthesize a binary
    rt = VirtualTimeRuntime(8)               # 8 simulated workers
    cfg = parse_binary(sb.binary, rt)        # parallel CFG construction
    print(cfg.stats.n_functions, rt.makespan)

Package map:

- :mod:`repro.isa` — synthetic instruction set + decoder;
- :mod:`repro.binary` — binary container, symbols, debug info;
- :mod:`repro.synth` — workload generator with ground truth;
- :mod:`repro.runtime` — serial / real-thread / virtual-time runtimes;
- :mod:`repro.core` — the paper's contribution: formal CFG operations and
  the parallel CFG construction algorithm;
- :mod:`repro.analyses` — loops, liveness, stack height, slicing;
- :mod:`repro.apps` — hpcstruct, BinFeat, the correctness checker.
"""

from repro.core import (
    EdgeType,
    ParseOptions,
    ParsedCFG,
    ReturnStatus,
    parse_binary,
)
from repro.runtime import (
    SerialRuntime,
    ThreadRuntime,
    VirtualTimeRuntime,
    make_runtime,
)
from repro.synth import (
    camellia_like,
    forensics_corpus,
    llnl1_like,
    llnl2_like,
    synthesize,
    tensorflow_like,
    tiny_binary,
)
from repro.binary import load_image, save_image

__version__ = "1.0.0"

__all__ = [
    "EdgeType",
    "ParseOptions",
    "ParsedCFG",
    "ReturnStatus",
    "parse_binary",
    "SerialRuntime",
    "ThreadRuntime",
    "VirtualTimeRuntime",
    "make_runtime",
    "tiny_binary",
    "llnl1_like",
    "llnl2_like",
    "camellia_like",
    "tensorflow_like",
    "forensics_corpus",
    "synthesize",
    "load_image",
    "save_image",
    "__version__",
]
