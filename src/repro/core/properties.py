"""Property checkers for CFG operations (Section 4).

These helpers make the paper's algebraic claims executable: given a code
space, a graph and two operations, check commutativity; given an indirect
oracle, check the monotonic ordering property.  The property-based tests
drive these across randomly generated code spaces, and the ablation
benchmarks use the oracle variants to demonstrate why union semantics are
needed for jump tables.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.graphstate import CodeSpace, GraphState
from repro.core.operations import IndirectOracle, ober, odec, oiec
from repro.core.partial_order import precedes

Op = Callable[[GraphState], GraphState]


def commutes(g: GraphState, op_a: Op, op_b: Op) -> bool:
    """True if applying the operations in either order yields equal states."""
    return op_a(op_b(g)) == op_b(op_a(g))


def monotone_ordering_holds(code: CodeSpace, g: GraphState,
                            indirect_end: int, oracle: IndirectOracle,
                            other: Op) -> bool:
    """Check ``Ox(O_IEC(G,a)) ≼ O_IEC(Ox(G),a)`` (Section 4.1).

    ``other`` is the ``O_BER``/``O_DEC`` operation being reordered across
    the indirect edge creation.
    """
    lhs = other(oiec(code, g, indirect_end, oracle))
    rhs = oiec(code, other(g), indirect_end, oracle)
    return precedes(lhs, rhs)


def make_monotone_oracle(base_targets: dict[int, frozenset[int]],
                         bonus_if_block: tuple[int, frozenset[int]] | None = None
                         ) -> IndirectOracle:
    """A well-behaved oracle: targets only grow as the graph grows.

    ``bonus_if_block`` optionally adds targets once a given block start is
    present in the graph — modeling 'more control-flow paths reveal more
    jump-table targets' (the fixed-point refinement of Section 5.3).
    """

    def oracle(g: GraphState, end: int) -> frozenset[int]:
        targets = base_targets.get(end, frozenset())
        if bonus_if_block is not None:
            start, extra = bonus_if_block
            if g.has_node_at(start):
                targets = targets | extra
        return targets

    return oracle


def make_overapprox_oracle(good: dict[int, frozenset[int]],
                           poisoned_block: int) -> IndirectOracle:
    """A non-monotone oracle reproducing the Section 4.2 failure.

    Once the ``poisoned_block`` (an over-approximated bogus target) exists
    in the graph, the analysis is confused and returns the empty set —
    "such additional but confusing control flow may cause O_IEC(G, b2) to
    fail, leading to an empty set of targets".
    """

    def oracle(g: GraphState, end: int) -> frozenset[int]:
        if g.block_starting(poisoned_block) is not None:
            return frozenset()
        return good.get(end, frozenset())

    return oracle


def expansion_chain_increases(code: CodeSpace, g0: GraphState,
                              ops: list[Op]) -> bool:
    """Check ``G0 ≼ G1 ≼ … ≼ Gm`` for an expansion-phase op sequence."""
    g = g0
    for op in ops:
        nxt = op(g)
        if not precedes(g, nxt):
            return False
        g = nxt
    return True


def resolve_all(code: CodeSpace, g: GraphState,
                max_steps: int = 10_000) -> GraphState:
    """Drive O_BER/O_DEC to a fixed point (a pure expansion phase)."""
    for _ in range(max_steps):
        changed = False
        for t in sorted(g.candidates):
            nxt = ober(code, g, t)
            if nxt != g:
                g = nxt
                changed = True
        for _, end in sorted(g.blocks):
            nxt = odec(code, g, end)
            if nxt != g:
                g = nxt
                changed = True
        if not changed:
            return g
    raise RuntimeError("resolve_all did not converge")
