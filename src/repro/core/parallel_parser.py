"""Parallel CFG construction (Section 5 of the paper).

Implements Listing 2's three stages — parallel function initialization,
parallel control-flow traversal, CFG finalization — on top of the runtime
abstraction, with the five invariants of Section 5.2:

1. **Block creation**: at most one block per start address (insert-if-
   absent on the blocks-by-start map; the winning task parses the block).
2. **Block end**: at most one block per end address; the check is deferred
   until a control-flow instruction, so there is one global map lookup per
   *control-flow* instruction, not per instruction.
3. **Edge creation**: the task that registers a block's end creates its
   outgoing edges, while holding the end accessor.
4. **Block split**: tasks that lose the end registration split blocks with
   the eager algorithm — each iteration re-registers at a strictly smaller
   end address, so the algorithm converges (and the accessor order is
   strictly decreasing, so it cannot deadlock).
5. **Function creation**: at most one function per entry address.

Non-returning dependencies are handled by eager notification (the first
``RET`` found releases waiting call sites immediately) plus a wave-level
fixed point for statuses that need whole-closure information (shared
blocks, call chains, cycles).  Jump tables are analyzed with union
semantics and re-analyzed after a function gains more control-flow paths
(the fixed-point refinement of Section 5.3).
"""

from __future__ import annotations

import bisect
import os
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.binary.loader import LoadedBinary
from repro.core.cfg import (
    Block,
    Edge,
    EdgeType,
    Function,
    JumpTableInfo,
    ParseStats,
    ParsedCFG,
    ReturnStatus,
)
from repro.core.finalize import finalize
from repro.core.jump_table import JumpTableOptions, analyze_jump_table
from repro.core.noreturn import (
    DeferredCallSite,
    NoReturnState,
    closure_summary_fn,
)
from repro.core.tailcall import conditional_branch_is_tail_call, is_tail_call
from repro.isa.instructions import ControlFlowKind, Instruction, Opcode
from repro.runtime.api import Runtime
from repro.runtime.conchash import ConcurrentHashMap


@dataclass
class ParseOptions:
    """Knobs for the parallel parser (ablation points are called out)."""

    #: eager noreturn notification (Section 5.3) vs wave-boundary only.
    eager_noreturn_notify: bool = True
    #: task parallelism with spawn-on-discovery (Section 6.3) vs
    #: round-based parallel-for waves (Listing 2's basic shape).
    task_parallel: bool = True
    #: process large functions first at the initial spawn (Listing 7).
    sort_functions: bool = True
    #: thread-local decode cache (Section 6.3).
    thread_local_cache: bool = True
    jt_options: JumpTableOptions = field(default_factory=JumpTableOptions)
    max_waves: int = 60
    #: fault-injection probe bound to (shard, attempt) — set per shard
    #: attempt by the procs backend, never by callers
    #: (:class:`repro.runtime.faults.FaultProbe`; None = no injection).
    fault_probe: Any = None
    #: record an operation trace and validate the structural invariants
    #: at quiesced points (finalize, shard merge) — see
    #: :mod:`repro.sanity.cfgsan`.  Env ``REPRO_CFGSAN=1`` forces it on.
    sanitize: bool = False
    #: ship worker-side partial-finalize hints in exported fragments and
    #: consume them at the coordinator (procs backend tail optimization).
    #: Perf-only: results are byte-identical either way — hints are
    #: validated against a dirty-block log and fall back to recomputation.
    #: The procs backend resolves ``REPRO_NO_PARTIAL_FINALIZE=1`` into
    #: this flag *before* fan-out (long-lived pool workers must not read
    #: the env themselves).
    partial_finalize: bool = True


@dataclass
class _TaskCtx:
    """Per-traversal-task state (function-local, no synchronization)."""

    func: Function
    work: list[Block] = field(default_factory=list)
    reached: set[int] = field(default_factory=set)
    jt_pending: list[Block] = field(default_factory=list)
    jt_targets_seen: dict[int, set[int]] = field(default_factory=dict)
    #: blocks already scanned for reachable returns (shared-code regions).
    scanned: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class FrontierRecord:
    """One deferred cross-shard operation (procs backend fragment mode).

    A shard worker parsing with an ownership range records — instead of
    executing — every expansion step whose target address belongs to
    another shard.  The record is flat ints/strings so it pickles without
    dragging the block graph along; the coordinator replays it through
    the real parser machinery during the structural merge
    (``repro.core.shard_merge``).
    """

    seq: int                      #: discovery order within the shard
    kind: str                     #: direct | cond | call | intra | resume
    func_addr: int                #: the traversal task's function
    block_start: int | None       #: source block at record time
    end_addr: int | None          #: the source block's registered end
    target: int | None            #: branch/intra target (direct/intra)
    last_addr: int | None         #: CF instruction address (cond/call)
    etype: str | None             #: EdgeType value (intra)
    #: (caller_addr, block_start, fallthrough, callee_addr) for resume
    site: tuple[int, int, int, int] | None


class ParallelParser:
    """One-shot parser for one binary on one runtime."""

    def __init__(self, binary: LoadedBinary, rt: Runtime,
                 options: ParseOptions | None = None,
                 seed_entries: list[int] | None = None,
                 warm_cache: dict[int, Instruction] | None = None,
                 owned_range: tuple[int, int] | None = None):
        self.binary = binary
        self.rt = rt
        self.opts = options or ParseOptions()
        self.decoder = binary.decoder
        self.image = binary.image
        #: restrict stage 1 to these entries (procs backend shards);
        #: None means the binary's full ``F0``.
        self.seed_entries = seed_entries
        #: read-only pre-decoded instructions (procs backend merge):
        #: semantically transparent — only removes redundant decoding.
        self._warm = warm_cache or None
        #: shard ownership claim ``[lo, hi)`` (procs backend fragment
        #: mode): expansion steps targeting a foreign address are recorded
        #: in ``_frontier`` instead of executed.  None = own everything.
        self._owned = owned_range
        #: multi-range ownership (coordinator early drains): the union of
        #: installed shard claims, as a sorted disjoint ``[(lo, hi), …]``
        #: list.  Only consulted when ``_owned`` is None; None = own
        #: everything.  See :meth:`set_owned_ranges`.
        self._owned_ranges: list[tuple[int, int]] | None = None
        self._own_los: list[int] = []
        #: coordinator-side dirty-block log (procs structural merge):
        #: starts of blocks whose out-edges or last_kind changed since the
        #: fragments were exported.  The merge uses it to invalidate
        #: worker partial-finalize hints; None = not tracking.
        self._dirty_log: set[int] | None = None
        #: coordinator-side partial-finalize hint index
        #: (:class:`repro.core.shard_merge.FinalizeAccel`); None = off.
        self.finalize_accel = None
        self._frontier: list[FrontierRecord] = []
        self._frontier_ctxs: list[_TaskCtx | None] = []
        self.blocks_by_start: ConcurrentHashMap[int, Block] = \
            ConcurrentHashMap(rt, name="blocks")
        self.block_ends: ConcurrentHashMap[int, Block] = \
            ConcurrentHashMap(rt, name="block_ends")
        self.functions: ConcurrentHashMap[int, Function] = \
            ConcurrentHashMap(rt, name="functions")
        self.jump_tables: ConcurrentHashMap[int, JumpTableInfo] = \
            ConcurrentHashMap(rt, name="jump_tables")
        self.noreturn = NoReturnState(
            rt, eager_notify=(self.opts.eager_noreturn_notify
                              and self.opts.task_parallel))
        self.stats = ParseStats()
        #: operation trace for the cfgsan checker (None = not recording).
        #: Entries are flat tuples: ("OIEC", block, targets),
        #: ("OCFEC", block, callee, status), ("OFEI", addr, via),
        #: ("SPLIT", loser_start, old_end, new_end).
        self.op_trace: list[tuple] | None = (
            [] if (self.opts.sanitize
                   or os.environ.get("REPRO_CFGSAN") == "1") else None)
        self._tl = threading.local()
        self._group = None            # traversal task group
        self._round_discovered: list[Function] = []  # round-mode only

    # ------------------------------------------------------------- public API

    def local_decode_cache(self) -> dict[int, Instruction]:
        """The calling thread's decode cache (complete after a serial
        parse — this is the shard delta the procs backend ships home)."""
        return getattr(self._tl, "insns", None) or {}

    def execute(self) -> ParsedCFG:
        """Run all three stages; must be called inside ``rt.run``."""
        rt = self.rt
        with rt.phase("cfg_init"):
            initial = self._init_functions()
        with rt.phase("cfg_traversal"):
            if self.opts.task_parallel:
                self._traverse_tasked(initial)
            else:
                self._traverse_rounds(initial)
            self._noreturn_waves()
        with rt.phase("cfg_finalize"):
            cfg = finalize(self)
        return cfg

    def execute_fragment(self) -> None:
        """Stages 1–2 only, bounded by the shard ownership range.

        Used by procs-backend workers: traversal defers every cross-shard
        step into ``_frontier``, the wave fixed point runs without the
        cycle rule (an UNSET→NORETURN conclusion is unsound on a partial
        closure), and finalization is skipped — the coordinator merges the
        exported fragment (``repro.core.shard_merge``) and completes the
        parse there.  Must be called inside ``rt.run``.
        """
        rt = self.rt
        with rt.phase("cfg_init"):
            initial = self._init_functions()
        if self.opts.fault_probe is not None:
            # Named injection site "frag": a deterministic fault between
            # init and traversal, proving mid-parse worker failures are
            # contained by the retry ladder (runtime/faults.py).
            self.opts.fault_probe.raise_if("frag")
        with rt.phase("cfg_traversal"):
            if self.opts.task_parallel:
                self._traverse_tasked(initial)
            else:
                self._traverse_rounds(initial)
            self._noreturn_waves()

    # ------------------------------------------------- shard frontier (procs)

    def _foreign(self, addr: int) -> bool:
        """True if ``addr`` is owned by another shard (fragment mode)."""
        if self._owned is not None:
            lo, hi = self._owned
            return not (lo <= addr < hi)
        ranges = self._owned_ranges
        if ranges is None:
            return False
        i = bisect.bisect_right(self._own_los, addr) - 1
        return i < 0 or addr >= ranges[i][1]

    def set_owned_ranges(self,
                         ranges: list[tuple[int, int]] | None) -> None:
        """Own exactly the union of ``ranges`` (coordinator early drains).

        While some shards are still outstanding, the coordinator replays
        ready frontier records with ownership restricted to the installed
        claims: any cascade step that would touch a not-yet-installed
        region re-defers itself through the ordinary ``_defer_frontier``
        path instead of creating blocks a later fragment will export
        (which would trip the shard-ownership guard).  None restores
        full ownership for the final drain.
        """
        if ranges is None:
            self._owned_ranges = None
            self._own_los = []
        else:
            self._owned_ranges = sorted(ranges)
            self._own_los = [lo for lo, _ in self._owned_ranges]

    def _mark_dirty(self, *starts: int) -> None:
        """Record coordinator-side block mutations (hint invalidation)."""
        log = self._dirty_log
        if log is not None:
            log.update(starts)

    def _defer_frontier(self, ctx: _TaskCtx | None, kind: str,
                        block: Block | None = None,
                        target: int | None = None,
                        last: Instruction | None = None,
                        etype: EdgeType | None = None,
                        site: DeferredCallSite | None = None) -> None:
        """Record a cross-shard expansion step for coordinator replay."""
        self.rt.metrics.inc("parser.frontier_deferred")
        self._frontier.append(FrontierRecord(
            seq=len(self._frontier),
            kind=kind,
            func_addr=(ctx.func.addr if ctx is not None
                       else site.caller_addr),
            block_start=block.start if block is not None else None,
            end_addr=block.end if block is not None else None,
            target=target,
            last_addr=last.address if last is not None else None,
            etype=etype.value if etype is not None else None,
            site=((site.caller_addr, site.block.start, site.fallthrough,
                   site.callee_addr) if site is not None else None),
        ))
        self._frontier_ctxs.append(ctx)

    # -------------------------------------------------------------- stage 1

    def _init_functions(self) -> list[tuple[Function, list[Block]]]:
        """Parallel InitFunctions: one function per symtab/unwind entry."""
        symtab = self.binary.symtab
        name_of = {}
        size_of = {}
        for s in symtab.functions():
            name_of.setdefault(s.offset, s.name)
            size_of[s.offset] = max(size_of.get(s.offset, 0), s.size)
        for s in self.binary.dynsym.functions():
            name_of.setdefault(s.offset, s.name)
        entries = (self.binary.entry_addresses()
                   if self.seed_entries is None
                   else sorted(self.seed_entries))

        results: list[tuple[Function, list[Block]]] = []

        def init_one(addr: int) -> None:
            name = name_of.get(addr, f"func_{addr:x}")
            func, created_f, seeds = self._make_function(addr, name,
                                                         via="symtab")
            if created_f:
                results.append((func, seeds))

        self.rt.parallel_for(entries, init_one)
        if self.opts.sort_functions:
            # Largest symbols first: the load-balancing sort of Listing 7.
            results.sort(key=lambda fs: (-size_of.get(fs[0].addr, 0),
                                         fs[0].addr))
        else:
            results.sort(key=lambda fs: fs[0].addr)
        return results

    # -------------------------------------------------------------- stage 2

    def _traverse_tasked(self, initial) -> None:
        """Task parallelism: a task per function, spawned on discovery.

        Initial tasks are fanned out as a splitting tree so launching
        thousands of functions isn't itself a serial phase.
        """
        group = self.rt.task_group()
        self._group = group

        def spawn_range(lo: int, hi: int) -> None:
            while hi - lo > 1:
                mid = (lo + hi) // 2
                group.spawn(spawn_range, mid, hi)
                hi = mid
            if hi > lo:
                func, seeds = initial[lo]
                self._traverse_task(func, seeds)

        if initial:
            spawn_range(0, len(initial))
        group.wait()

    def _traverse_rounds(self, initial) -> None:
        """Round-based parallel-for (Listing 2's loop; ablation mode)."""
        current = list(initial)
        while current:
            self._round_discovered = []
            self.rt.parallel_for(
                current, lambda fs: self._traverse_task(fs[0], fs[1]))
            current = [(f, seeds) for f, seeds in self._round_discovered]

    def _traverse_task(self, func: Function, seeds: list[Block]) -> None:
        """ControlFlowTraversal(f) — Listing 3."""
        ctx = _TaskCtx(func=func)
        ctx.work.extend(seeds)
        ctx.reached.add(func.addr)
        self._drain(ctx)

    def _drain(self, ctx: _TaskCtx) -> None:
        while True:
            while ctx.work:
                block = ctx.work.pop()
                self._parse_block(ctx, block)
            if not self._retry_jump_tables(ctx):
                break

    # -- block parsing -------------------------------------------------------

    def _parse_block(self, ctx: _TaskCtx, block: Block) -> None:
        ctx.reached.add(block.start)
        insns, ended_cf = self._linear_parse(block.start)
        if not insns:
            block.end = block.start  # degenerate: undecodable candidate
            return
        block.insns = insns
        block.has_teardown = any(
            i.opcode is Opcode.LEAVE or (i.sp_delta() or 0) > 0
            for i in insns
        )
        last = insns[-1] if ended_cf else None
        end = insns[-1].end
        if last is not None and self._foreign(last.address):
            # Linear overrun past the shard boundary: the control-flow
            # instruction belongs to another shard, which may parse the
            # same bytes in its own fragment.  Claim rule: only the CF
            # instruction's owner registers this end (invariants 2–3), so
            # edges are created exactly once; we keep the block with its
            # end *unregistered* and defer the whole registration for
            # coordinator replay, where it reconciles against the owner's
            # blocks through the ordinary split cascade.
            block.end = end
            self._defer_frontier(ctx, "end", block=block, last=last)
            return
        self._register_end(ctx, block, end, last)

    def _linear_parse(self, start: int) -> tuple[list[Instruction], bool]:
        """linearParsing with the optional thread-local decode cache."""
        rt = self.rt
        if not self.opts.thread_local_cache:
            insns, ended_cf = self.decoder.linear_scan(start)
            rt.charge(rt.cost.decode_insn * len(insns))
            return insns, ended_cf
        cache: dict[int, Instruction] = getattr(self._tl, "insns", None) or {}
        if not hasattr(self._tl, "insns"):
            self._tl.insns = cache
        warm = self._warm
        insns: list[Instruction] = []
        addr = start
        misses = 0
        while True:
            insn = cache.get(addr)
            if insn is None and warm is not None:
                # Pre-decoded by a shard worker (procs backend): a warm
                # hit costs no decode charge — that work already ran in
                # parallel.
                insn = warm.get(addr)
                if insn is not None:
                    cache[addr] = insn
            if insn is None:
                if not self.decoder.contains(addr):
                    break
                try:
                    insn = self.decoder.decode_at(addr)
                except Exception:
                    break
                cache[addr] = insn
                misses += 1
            insns.append(insn)
            if insn.is_control_flow:
                rt.charge(rt.cost.decode_insn * misses)
                return insns, True
            addr = insn.end
        rt.charge(rt.cost.decode_insn * misses)
        return insns, False

    # -- invariants 2-4: end registration, edge creation, splitting ------------

    def _register_end(self, ctx: _TaskCtx, block: Block, end: int,
                      last: Instruction | None) -> None:
        rt = self.rt
        pending: tuple[Block, int, Instruction | None] | None = \
            (block, end, last)
        while pending is not None:
            blk, e, lst = pending
            pending = None
            with self.block_ends.accessor(e) as acc:
                if acc.created:
                    # Invariant 2 won: this block owns end e; invariant 3:
                    # we create its outgoing edges, under the accessor.
                    acc.value = blk
                    blk.end = e
                    blk.last_kind = lst.cf_kind if lst is not None else None
                    self._mark_dirty(blk.start)
                    if lst is not None:
                        self._create_edges(ctx, blk, lst)
                    continue
                if acc.value is blk:
                    continue
                pending = self._split_collision(blk, e, acc)

    def _split_collision(self, blk: Block, e: int, acc
                         ) -> tuple[Block, int, None]:
        """Invariant 4: two distinct blocks claim end ``e`` — split.

        ``acc`` is the held accessor for ``block_ends[e]``.  Returns the
        (block, end) pair that must re-register at a strictly smaller end
        address.  Shared with the procs-backend structural merge, which
        re-registers imported shard block ends through the same cascade
        to reconcile cross-shard disagreements about where a region's
        blocks end.
        """
        rt = self.rt
        other = acc.value
        rt.charge(rt.cost.block_split)
        rt.metrics.inc("parser.block_splits")
        self.stats.n_splits += 1
        self._mark_dirty(blk.start, other.start)
        trace = self.op_trace
        if trace is not None:
            loser = other if other.start < blk.start else blk
            winner_start = blk.start if loser is other else other.start
            trace.append(("SPLIT", loser.start, e, winner_start))
        if other.start < blk.start:
            # Split the incumbent: it keeps [xo, xb); we take over
            # the end registration and inherit its out-edges.
            acc.value = blk
            blk.end = e
            blk.last_kind = other.last_kind
            moved = other.out_edges
            other.out_edges = []
            for edge in moved:
                edge.src = blk
            blk.out_edges.extend(moved)
            other.truncate(blk.start)
            self._link(other, blk, EdgeType.FALLTHROUGH)
            return (other, blk.start, None)
        # We are the longer block: truncate ourselves and
        # re-register at the incumbent's start.
        blk.truncate(other.start)
        self._link(blk, other, EdgeType.FALLTHROUGH)
        return (blk, other.start, None)

    def _link(self, src: Block, dst: Block, etype: EdgeType) -> Edge:
        rt = self.rt
        rt.charge(rt.cost.edge_create)
        rt.metrics.inc("parser.edges_created")
        self._mark_dirty(src.start)
        edge = Edge(src, dst, etype)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        return edge

    def _ensure_block(self, start: int) -> tuple[Block, bool]:
        """Invariant 1: create-if-absent; the winner parses the block."""
        rt = self.rt
        with self.blocks_by_start.accessor(start) as acc:
            if acc.created:
                rt.charge(rt.cost.block_create)
                rt.metrics.inc("parser.blocks_created")
                acc.value = Block(start)
                return acc.value, True
            return acc.value, False

    def _make_function(self, addr: int, name: str, via: str
                       ) -> tuple[Function, bool, list[Block]]:
        """Invariant 5: create-if-absent function plus its entry block."""
        rt = self.rt
        entry, created_b = self._ensure_block(addr)
        with self.functions.accessor(addr) as acc:
            if acc.created:
                rt.charge(rt.cost.func_create)
                rt.metrics.inc("parser.functions_created")
                func = Function(addr, name, entry,
                                from_symtab=(via == "symtab"),
                                discovered_via=via)
                acc.value = func
                self.noreturn.init_function(func)
                if self.op_trace is not None:
                    self.op_trace.append(("OFEI", addr, via))
                return func, True, [entry] if created_b else []
            return acc.value, False, [entry] if created_b else []

    # -- invariant 3: the edge creation cases of Listing 3 ---------------------

    def _create_edges(self, ctx: _TaskCtx, block: Block,
                      last: Instruction) -> None:
        kind = last.cf_kind
        if kind is ControlFlowKind.DIRECT_JUMP:
            self._direct_branch(ctx, block, last.direct_target)
        elif kind is ControlFlowKind.COND_JUMP:
            self._cond_branch(ctx, block, last)
        elif kind is ControlFlowKind.CALL:
            self._call(ctx, block, last)
        elif kind is ControlFlowKind.INDIRECT_CALL:
            # Unknown callee: assume it returns (as Dyninst does).
            self._add_intra_target(ctx, block, last.end, EdgeType.CALL_FT)
        elif kind is ControlFlowKind.INDIRECT_JUMP:
            self._indirect_jump(ctx, block)
        elif kind is ControlFlowKind.RETURN:
            for site in self.noreturn.mark_return(ctx.func.addr):
                self._spawn_resume(site)
        # HALT: block ends, no edges.

    def _add_intra_target(self, ctx: _TaskCtx, block: Block, target: int,
                          etype: EdgeType) -> Block | None:
        if self._foreign(target):
            self._defer_frontier(ctx, "intra", block=block, target=target,
                                 etype=etype)
            return None
        tb, created = self._ensure_block(target)
        self._link(block, tb, etype)
        ctx.reached.add(target)
        if created:
            ctx.work.append(tb)
        else:
            # Shared code: the region was parsed by another function's
            # task, so its return instructions never pass through our
            # Listing 3 loop.  Scan the already-built subgraph eagerly so
            # our status resolves without waiting for a wave boundary.
            self._scan_existing_region(ctx, tb)
        return tb

    def _scan_existing_region(self, ctx: _TaskCtx, block: Block) -> None:
        rt = self.rt
        if self.noreturn.status_of(ctx.func.addr) is not ReturnStatus.UNSET:
            return
        stack = [block]
        while stack:
            b = stack.pop()
            if b.start in ctx.scanned:
                continue
            ctx.scanned.add(b.start)
            ctx.reached.add(b.start)
            rt.charge(rt.cost.closure_per_block)
            if b.last_kind is ControlFlowKind.RETURN:
                for site in self.noreturn.mark_return(ctx.func.addr):
                    self._spawn_resume(site)
                return
            for e in b.out_edges:
                if e.etype.intraprocedural and e.dst.start not in ctx.scanned:
                    stack.append(e.dst)

    def _direct_branch(self, ctx: _TaskCtx, block: Block,
                       target: int) -> None:
        if self._foreign(target):
            # Defer before tail-call classification: the coordinator sees
            # the merged function map, the shard would mis-classify.
            self._defer_frontier(ctx, "direct", block=block, target=target)
            return
        if is_tail_call(target, block,
                        is_known_entry=lambda t: t in self.functions,
                        reached_in_function=lambda t: t in ctx.reached):
            self._tail_call_edge(ctx, block, target, EdgeType.TAILCALL)
        else:
            self._add_intra_target(ctx, block, target, EdgeType.DIRECT)

    def _cond_branch(self, ctx: _TaskCtx, block: Block,
                     last: Instruction) -> None:
        if self._foreign(last.direct_target) or self._foreign(last.end):
            # Either successor is foreign: defer the whole conditional so
            # both edges are created once, by the coordinator.
            self._defer_frontier(ctx, "cond", block=block, last=last)
            return
        target = last.direct_target
        if conditional_branch_is_tail_call(
                target, is_known_entry=lambda t: t in self.functions):
            self._tail_call_edge(ctx, block, target, EdgeType.TAILCALL)
        else:
            self._add_intra_target(ctx, block, target, EdgeType.COND_TAKEN)
        self._add_intra_target(ctx, block, last.end,
                               EdgeType.COND_FALLTHROUGH)

    def _tail_call_edge(self, ctx: _TaskCtx, block: Block, target: int,
                        etype: EdgeType) -> None:
        func, created, seeds = self._make_function(
            target, f"func_{target:x}", via="tailcall")
        self._link(block, func.entry, etype)
        if seeds:
            self._spawn_traversal(func, seeds)
        # Eager tail propagation: this function returns if the tail-callee
        # does; register the dependency (or propagate immediately).
        status = self.noreturn.defer_tail(ctx.func.addr, target)
        if status is ReturnStatus.RETURN:
            for site in self.noreturn.mark_return(ctx.func.addr):
                self._spawn_resume(site)

    def _call(self, ctx: _TaskCtx, block: Block, last: Instruction) -> None:
        if self._foreign(last.direct_target):
            # Foreign callee: the whole call expansion (function creation,
            # CALL edge, fall-through deferral) replays at the coordinator.
            self._defer_frontier(ctx, "call", block=block, last=last)
            return
        target = last.direct_target
        func, created, seeds = self._make_function(
            target, f"func_{target:x}", via="call")
        self._link(block, func.entry, EdgeType.CALL)
        if seeds:
            self._spawn_traversal(func, seeds)
        # Call fall-through: depends on the callee's return status.
        site = DeferredCallSite(caller_addr=ctx.func.addr, block=block,
                                fallthrough=last.end, callee_addr=target)
        status = self.noreturn.defer(site)
        if status is ReturnStatus.RETURN:
            if self.op_trace is not None:
                self.op_trace.append(
                    ("OCFEC", block.start, target, status.value))
            self._add_intra_target(ctx, block, last.end, EdgeType.CALL_FT)
        # UNSET: deferred (eager notification or a wave releases it).
        # NORETURN: no fall-through edge, ever.

    def _indirect_jump(self, ctx: _TaskCtx, block: Block) -> None:
        self.rt.metrics.inc("parser.jt_analyses")
        info = analyze_jump_table(self.rt, self.image, block,
                                  self.opts.jt_options)
        with self.jump_tables.accessor(block.start) as acc:
            acc.value = info
        seen = ctx.jt_targets_seen.setdefault(block.start, set())
        for t in info.targets:
            if t not in seen:
                seen.add(t)
                self._add_intra_target(ctx, block, t, EdgeType.INDIRECT)
        if self.op_trace is not None:
            self.op_trace.append(
                ("OIEC", block.start, tuple(sorted(seen))))
        if info.table_addr is None or not info.bounded:
            ctx.jt_pending.append(block)

    def _retry_jump_tables(self, ctx: _TaskCtx) -> bool:
        """Fixed-point jump-table refinement: re-analyze after the function
        gained more control-flow paths; True if new targets appeared."""
        if not ctx.jt_pending:
            return False
        self.rt.metrics.inc("parser.jt_retry_rounds")
        progress = False
        still_pending: list[Block] = []
        for block in ctx.jt_pending:
            self.rt.metrics.inc("parser.jt_analyses")
            info = analyze_jump_table(self.rt, self.image, block,
                                      self.opts.jt_options)
            seen = ctx.jt_targets_seen.setdefault(block.start, set())
            new = [t for t in info.targets if t not in seen]
            if new:
                progress = True
                with self.jump_tables.accessor(block.start) as acc:
                    acc.value = info
                for t in new:
                    seen.add(t)
                    self._add_intra_target(ctx, block, t, EdgeType.INDIRECT)
                if self.op_trace is not None:
                    self.op_trace.append(
                        ("OIEC", block.start, tuple(sorted(seen))))
            if info.table_addr is None or not info.bounded:
                still_pending.append(block)
        ctx.jt_pending = still_pending if progress else []
        return progress

    # -- deferred call fall-throughs --------------------------------------------

    def _spawn_traversal(self, func: Function, seeds: list[Block]) -> None:
        if self.opts.task_parallel:
            assert self._group is not None
            self._group.spawn(self._traverse_task, func, seeds)
        else:
            self._round_discovered.append((func, seeds))

    def _spawn_resume(self, site: DeferredCallSite) -> None:
        if self.opts.task_parallel and self._group is not None:
            self._group.spawn(self._resume_call_ft, site)
        else:
            self._resume_call_ft(site)

    def _resume_call_ft(self, site: DeferredCallSite) -> None:
        """Create a released call fall-through edge and keep traversing.

        The call block may have been split since the site was recorded;
        the current owner of the call's end address is looked up under the
        block-ends accessor, which also excludes concurrent splits while
        the edge is attached (invariants 3/4).
        """
        if self._foreign(site.fallthrough):
            self._defer_frontier(None, "resume", site=site)
            return
        if self.op_trace is not None:
            status = self.noreturn.status_of(site.callee_addr)
            self.op_trace.append(
                ("OCFEC", site.block.start, site.callee_addr, status.value))
        # The call instruction ends exactly at the fall-through address,
        # and that end was recorded immutably at deferral time.  Reading
        # ``site.block.insns`` here instead would race block splits: a
        # split truncates the recorded block's instruction list, so its
        # last end would name the *split point*, attaching the edge to
        # the stale lower half (a schedule-dependent CFG, found by
        # ``repro fuzz``).
        call_end = site.fallthrough
        fb, created = self._ensure_block(site.fallthrough)
        owner = None
        with self.block_ends.accessor(call_end, create=False) as acc:
            if acc is not None:
                owner = acc.value
                self._link(owner, fb, EdgeType.CALL_FT)
        if owner is None:
            self._link(site.block, fb, EdgeType.CALL_FT)
        if created:
            func = self.functions.get(site.caller_addr)
            ctx = _TaskCtx(func=func if func is not None else
                           Function(site.caller_addr, "?", fb, False))
            ctx.work.append(fb)
            self._drain(ctx)

    # -- wave-level noreturn fixed point ------------------------------------------

    def _noreturn_waves(self) -> None:
        """Resolve return statuses and release deferred fall-throughs
        until nothing changes; then resolve cycles to NORETURN."""
        rt = self.rt
        accel = self.finalize_accel
        probe = self.opts.fault_probe
        for _ in range(self.opts.max_waves):
            if probe is not None:
                # Named injection site "wave": a deterministic fault at a
                # wave-round boundary, proving that a worker dying mid-wave
                # is contained by the retry ladder (runtime/faults.py).
                probe.raise_if("wave")
            self.stats.n_waves += 1
            rt.metrics.inc("parser.noreturn_waves")
            funcs = [f for _, f in self.functions.sorted_items()]
            memo: dict[int, tuple[bool, frozenset[int]]] = {}
            base_summary = closure_summary_fn(
                on_visit=lambda b: rt.charge(rt.cost.closure_per_block))

            # Closure walks are the expensive part of a wave; do them in
            # parallel, then run the (cheap) status fixed point serially.
            # At the procs coordinator, a still-valid worker hint replaces
            # the walk entirely (worker-side partial finalization).
            def precompute(f: Function) -> None:
                if accel is not None:
                    hint = accel.wave_hint(f.addr)
                    if hint is not None:
                        memo[f.addr] = hint
                        return
                memo[f.addr] = base_summary(f)

            rt.parallel_for(
                [f for f in funcs
                 if self.noreturn.status_of(f.addr) is ReturnStatus.UNSET],
                precompute)

            def summary(f: Function) -> tuple[bool, frozenset[int]]:
                if f.addr not in memo:
                    memo[f.addr] = base_summary(f)
                return memo[f.addr]

            parts = (accel.wave_partitions(funcs)
                     if accel is not None else None)
            released = self.noreturn.resolve_wave(funcs, summary,
                                                  partitions=parts)
            if not released:
                if self._owned is None:
                    # Fragment mode skips the cycle rule: concluding
                    # UNSET→NORETURN from a shard-local closure is
                    # unsound (a RET may live in another shard).  The
                    # coordinator runs it after the structural merge.
                    self.noreturn.resolve_cycles(funcs)
                return
            if self.opts.task_parallel:
                # Resumed parsing may eagerly release more sites or
                # discover functions; those spawns must join the *active*
                # group, or they could still be queued when the cycle rule
                # runs (a real bug this fixed: a late resume racing
                # resolve_cycles made statuses schedule-dependent).
                self._group = rt.task_group()
                for site in released:
                    self._group.spawn(self._resume_call_ft, site)
                self._group.wait()
            else:
                rt.parallel_for(released, self._resume_call_ft)
                current = self._round_discovered
                while current:
                    self._round_discovered = []
                    rt.parallel_for(
                        current,
                        lambda fs: self._traverse_task(fs[0], fs[1]))
                    current = self._round_discovered
        raise RuntimeError("noreturn wave fixed point did not converge")



def parse_binary(binary: LoadedBinary, rt: Runtime,
                 options: ParseOptions | None = None) -> ParsedCFG:
    """Convenience: run the full parallel parse under ``rt.run``.

    Backends that implement sharded construction (the ``procs``
    process-pool backend) expose ``sharded_parse``; dispatching here
    keeps every caller — CLI, apps, benchmarks — backend-agnostic.
    """
    sharded = getattr(rt, "sharded_parse", None)
    if sharded is not None:
        return sharded(binary, options)
    parser = ParallelParser(binary, rt, options)
    return rt.run(parser.execute)
