"""Structural merge of per-shard CFG fragments (procs backend).

The procs backend shards the entry set across worker processes; each
worker runs the ordinary parallel parser in *fragment mode*
(:meth:`~repro.core.parallel_parser.ParallelParser.execute_fragment`):
it owns a contiguous address range ``[lo, hi)``, parses its closure
normally inside that range, and defers every cross-shard expansion step
as a flat :class:`~repro.core.parallel_parser.FrontierRecord` instead of
executing it.  This module is the coordinator side:

1. **Rebuild** each fragment's block/edge graph from its flat pickled
   records (instructions come from the merged decode cache, so no object
   graph crosses the process boundary).
2. **Install** the union into a fresh :class:`ParallelParser`'s maps.
   Shard ownership makes block starts, functions, jump tables and
   noreturn records disjoint by construction; block *ends* are the one
   place shards can disagree (linear overrun past a boundary), so every
   imported end is re-registered through the parser's real invariant-4
   split cascade (``_split_collision``), which reconciles the fragments
   to the serial block set.
3. **Replay** the frontier records through the real parser machinery —
   tail-call classification, function creation, noreturn deferral and
   jump-table analysis all run exactly as in a serial parse, just
   starting from the merged state.  Replay is *batched*: after every
   install, records whose endpoint regions are all installed drain
   immediately (coordinator ownership restricted to the installed
   claims, so cascades re-defer anything further), overlapping
   cross-shard expansion with still-outstanding shards; the final drain
   at :meth:`StreamingMerge.finish` restores full ownership.  Within a
   batch records replay in discovery order; across batches (one per
   source shard) they replay in parallel (``rt.parallel_for``), safe
   because ownership claims make the record sets disjoint and all
   shared state goes through the accessor-based invariant machinery.
4. Run the wave fixed point — including the cycle rule the fragments
   had to skip, and *sharded* across ownership partitions when more
   than one claim is installed (``resolve_wave(partitions=…)``) — then
   the ordinary ``finalize`` correction phase, accelerated by the
   workers' :class:`PartialFinalize` hints where still valid.

Steps 1–3 run *incrementally*: :class:`StreamingMerge` installs each
fragment the moment its delta lands and drains ready frontier batches
right after, overlapping merge and replay work with the still-running
fan-out; :func:`merge_fragments` is the batch wrapper the
inline/degraded paths use (same code path, installs in shard order).

Correctness rests on the battery-proven schedule independence of the
invariant machinery: a fragment is a prefix of a valid global schedule
(all its steps touch only addresses it owns), so completing the union of
prefixes with the remaining cross-shard work through the same machinery
reproduces the serial fixed point byte-for-byte — the differential
battery (``tests/test_differential_backends.py``) pins exactly that.
"""

from __future__ import annotations

import bisect
import os
import time
from dataclasses import dataclass, field, replace

from repro.binary.loader import LoadedBinary
from repro.core.cfg import (
    Block,
    Edge,
    EdgeType,
    Function,
    JumpTableInfo,
    ParsedCFG,
    ReturnStatus,
)
from repro.core.finalize import finalize
from repro.core.noreturn import DeferredCallSite
from repro.core.parallel_parser import (
    FrontierRecord,
    ParallelParser,
    ParseOptions,
    _TaskCtx,
)
from repro.errors import RuntimeConfigError
from repro.isa.instructions import ControlFlowKind, Instruction
from repro.runtime.api import Runtime


@dataclass
class PartialFinalize:
    """Worker-precomputed, shard-local finalize inputs (flat tuples).

    Each hint is a pure function of the worker's exported block graph;
    the coordinator validates a hint against its dirty-block log (blocks
    whose out-edges or last_kind changed since install) and uses it only
    when every block it mentions is untouched — then the hinted value is
    exactly what recomputation would produce, so results are
    byte-identical with hints on, off, or partially valid.
    """

    #: (func_addr, sorted intra-procedural closure starts, has_ret,
    #:  sorted tail-call targets) — one walk serves the tail-call rules,
    #: boundary assignment and the wave summary (the edge sets coincide).
    closures: list[tuple[int, tuple[int, ...], bool, tuple[int, ...]]] = \
        field(default_factory=list)
    #: (func_addr, sorted all-edge reach from the entry) — seeds the
    #: unreachable sweep (closed under out-edges at export time).
    sweep: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    #: (block_start, local next table base) for unbounded tables whose
    #: trim is a no-op given that base — valid when the global next base
    #: matches (the shard then already saw every table that matters).
    jt_noop: list[tuple[int, int | None]] = field(default_factory=list)


@dataclass
class CFGFragment:
    """Pickle-friendly structural export of one shard's fragment parse.

    Everything is flat ints/strings/enums — no :class:`Block`/:class:`Edge`
    object graph crosses the process boundary (deep linked graphs recurse
    past pickle limits, and the coordinator rebuilds instructions from the
    merged decode cache anyway).
    """

    shard_id: int
    owned: tuple[int, int]
    #: (start, end, last_kind, has_teardown) per block
    blocks: list[tuple] = field(default_factory=list)
    #: the shard's block-ends map as (end_addr, block_start)
    ends: list[tuple[int, int]] = field(default_factory=list)
    #: (src_start, dst_start, etype value) in per-block creation order
    edges: list[tuple[int, int, str]] = field(default_factory=list)
    #: (addr, name, entry_start, from_symtab, discovered_via, status value)
    functions: list[tuple] = field(default_factory=list)
    jump_tables: list[JumpTableInfo] = field(default_factory=list)
    #: noreturn table: (addr, status value,
    #:   [(caller, block_start, fallthrough, callee)], [tail_waiters])
    noreturn: list[tuple] = field(default_factory=list)
    #: deferred cross-shard operations, in discovery order
    frontier: list[FrontierRecord] = field(default_factory=list)
    #: func addr -> reached block starts (frontier replay task seeds)
    reached: dict[int, list[int]] = field(default_factory=dict)
    n_splits: int = 0
    #: 1-based shard attempt this fragment came from.  The retry ladder
    #: can hand the merge duplicate fragments for one shard (a timed-out
    #: attempt whose delta straggles in next to its retry's); the merge
    #: keeps the highest attempt per shard and drops the rest.
    attempt: int = 1
    #: worker-side partial-finalize hints (None when disabled via
    #: ``ParseOptions.partial_finalize`` / ``REPRO_NO_PARTIAL_FINALIZE``,
    #: or for fragments from older producers — the merge treats a missing
    #: payload as "no hints" and recomputes, so degraded rungs work).
    partial: PartialFinalize | None = None


def export_fragment(parser: ParallelParser, shard_id: int,
                    attempt: int = 1) -> CFGFragment:
    """Flatten a fragment-mode parser's state for shipping home."""
    assert parser._owned is not None, "export requires fragment mode"
    frag = CFGFragment(shard_id=shard_id, owned=parser._owned,
                       attempt=attempt)
    for start, b in parser.blocks_by_start.sorted_items():
        frag.blocks.append((b.start, b.end, b.last_kind, b.has_teardown))
        for e in b.out_edges:
            frag.edges.append((e.src.start, e.dst.start, e.etype.value))
    frag.ends = [(end, b.start)
                 for end, b in parser.block_ends.sorted_items()]
    frag.functions = [
        (f.addr, f.name, f.entry.start, f.from_symtab, f.discovered_via,
         f.status.value)
        for _, f in parser.functions.sorted_items()
    ]
    frag.jump_tables = [info
                        for _, info in parser.jump_tables.sorted_items()]
    frag.noreturn = [
        (addr, status.value,
         [(s.caller_addr, s.block.start, s.fallthrough, s.callee_addr)
          for s in waiters],
         list(tail_waiters))
        for addr, status, waiters, tail_waiters
        in parser.noreturn.dump_state()
    ]
    frag.frontier = list(parser._frontier)
    reached: dict[int, set[int]] = {}
    for ctx in parser._frontier_ctxs:
        if ctx is not None:
            reached.setdefault(ctx.func.addr, set()).update(ctx.reached)
    frag.reached = {addr: sorted(starts)
                    for addr, starts in reached.items()}
    frag.n_splits = parser.stats.n_splits
    if parser.opts.partial_finalize:
        frag.partial = compute_partial(parser)
    return frag


def compute_partial(parser: ParallelParser) -> PartialFinalize:
    """Precompute shard-local finalize inputs on the worker.

    Workers only create blocks at addresses they own, so every walk here
    is automatically shard-local; cross-shard steps were frontier-deferred
    and created no edges, so the walks are closed over the exported graph.
    """
    part = PartialFinalize()
    for addr, f in parser.functions.sorted_items():
        starts, has_ret, tails = _intra_walk(f)
        part.closures.append((addr, tuple(sorted(starts)), has_ret,
                              tuple(sorted(tails))))
        part.sweep.append((addr, tuple(sorted(_all_edge_reach(f)))))
    tables = [info for _, info in parser.jump_tables.sorted_items()]
    bases = sorted(t.table_addr for t in tables if t.table_addr is not None)
    for info in tables:
        if info.table_addr is None or info.bounded:
            continue
        idx = bisect.bisect_right(bases, info.table_addr)
        next_base = bases[idx] if idx < len(bases) else None
        if next_base is not None:
            allowed = max(0, (next_base - info.table_addr) // 8)
            if info.n_entries > allowed:
                continue  # a real trim is needed: no no-op verdict
        # next_base None = "no later base in my range": a no-op verdict
        # the coordinator may use iff the global next base is also None.
        part.jt_noop.append((info.block_start, next_base))
    return part


def _intra_walk(f: Function) -> tuple[set[int], bool, set[int]]:
    """Closure starts, has-return and tail targets in one walk.

    The edge set followed here (``EdgeType.intraprocedural``) is the same
    one both ``closure_summary_fn`` (wave) and finalize's
    ``_function_closure`` walk, so a single worker walk serves all three
    coordinator consumers.
    """
    seen: set[int] = set()
    stack = [f.entry]
    has_ret = False
    tails: set[int] = set()
    while stack:
        b = stack.pop()
        if b.start in seen:
            continue
        seen.add(b.start)
        if b.last_kind is ControlFlowKind.RETURN:
            has_ret = True
        for e in b.out_edges:
            if e.etype.intraprocedural:
                stack.append(e.dst)
            elif e.etype is EdgeType.TAILCALL:
                tails.add(e.dst.start)
    return seen, has_ret, tails


def _all_edge_reach(f: Function) -> set[int]:
    """Starts reachable from the entry via *all* edges (sweep seed)."""
    seen: set[int] = set()
    stack = [f.entry]
    while stack:
        b = stack.pop()
        if b.start in seen:
            continue
        seen.add(b.start)
        for e in b.out_edges:
            if e.dst.start not in seen:
                stack.append(e.dst)
    return seen


class FinalizeAccel:
    """Coordinator-side index of worker partial-finalize hints.

    Consumed by ``finalize`` (closure/sweep/jt-trim hints), by the
    coordinator's wave fixed point (summary hints and ownership
    partitions for the sharded wave), all via the parser's
    ``finalize_accel`` attribute — which only :class:`StreamingMerge`
    sets, so serial/vtime/threads parses are untouched.

    Validity discipline: the parser's ``_dirty_log`` (wired to
    :attr:`dirty`) records every block whose out-edges or last_kind
    changed after fragment install — splits, new edges, replayed end
    registrations, finalize trims and sweeps.  A hint is used only while
    its block-start set is disjoint from that log.
    """

    def __init__(self, rt: Runtime):
        self.rt = rt
        self.dirty: set[int] = set()
        #: func addr -> (closure starts, has_ret, tail targets)
        self._closures: dict[int, tuple] = {}
        self._sweeps: dict[int, frozenset[int]] = {}
        self._jt_noop: dict[int, int | None] = {}
        #: installed shard claims, in install order
        self._ranges: list[tuple[int, int]] = []

    def add_fragment(self, frag: CFGFragment, ingest: bool) -> None:
        self._ranges.append(frag.owned)
        if not ingest or frag.partial is None:
            return
        self.rt.metrics.inc("procs.partial.fragments")
        for addr, starts, has_ret, tails in frag.partial.closures:
            self._closures[addr] = (starts, has_ret, tails)
        for addr, starts in frag.partial.sweep:
            self._sweeps[addr] = frozenset(starts)
        for bstart, next_base in frag.partial.jt_noop:
            self._jt_noop[bstart] = next_base

    def ranges(self) -> list[tuple[int, int]]:
        return list(self._ranges)

    # -- hint lookups (each validates against the dirty log) ----------------

    def closure_hint(self, addr: int) -> tuple[int, ...] | None:
        rec = self._closures.get(addr)
        if rec is not None and self.dirty.isdisjoint(rec[0]):
            self.rt.metrics.inc("procs.partial.closure_hits")
            return rec[0]
        self.rt.metrics.inc("procs.partial.closure_misses")
        return None

    def wave_hint(self, addr: int) -> tuple[bool, frozenset[int]] | None:
        rec = self._closures.get(addr)
        if rec is not None and self.dirty.isdisjoint(rec[0]):
            rt = self.rt
            rt.metrics.inc("procs.partial.wave_hits")
            rt.charge(rt.cost.closure_per_block * len(rec[0]))
            return rec[1], frozenset(rec[2])
        self.rt.metrics.inc("procs.partial.wave_misses")
        return None

    def sweep_hint(self, addr: int) -> set[int] | None:
        rec = self._sweeps.get(addr)
        if rec is not None and self.dirty.isdisjoint(rec):
            self.rt.metrics.inc("procs.partial.sweep_hits")
            return set(rec)
        self.rt.metrics.inc("procs.partial.sweep_misses")
        return None

    def jt_hint(self, block_start: int, global_next_base: int | None) -> bool:
        if (block_start in self._jt_noop
                and self._jt_noop[block_start] == global_next_base
                and block_start not in self.dirty):
            self.rt.metrics.inc("procs.partial.jt_hits")
            return True
        self.rt.metrics.inc("procs.partial.jt_misses")
        return False

    # -- sharded wave partitions --------------------------------------------

    def wave_partitions(self, funcs: list[Function]
                        ) -> list[list[Function]] | None:
        """Partition functions by shard-claim ownership (entry address).

        The claims partition the address space, so every function —
        including ones minted at the coordinator — maps to exactly one
        partition.  Returns None (serial wave) with fewer than two
        non-empty partitions.
        """
        ranges = sorted(self._ranges)
        if len(ranges) <= 1:
            return None
        los = [lo for lo, _ in ranges]
        parts: list[list[Function]] = [[] for _ in ranges]
        for f in funcs:
            i = bisect.bisect_right(los, f.addr) - 1
            parts[i if i >= 0 else 0].append(f)
        live = [p for p in parts if p]
        return live if len(live) > 1 else None


class StreamingMerge:
    """Incremental coordinator: fold fragments in as they arrive.

    The batch merge waits for every shard before touching the graph; a
    streaming coordinator starts step 2 (rebuild + install) the moment
    the first :class:`ShardDelta` lands, overlapping merge work with
    the still-running fan-out.  The procs backend feeds
    :meth:`accept` from its dispatch loop; :meth:`finish` runs the
    parts that genuinely need *all* fragments — the frontier replay
    (a record can target any foreign shard's blocks), the wave fixed
    point and finalization.

    Per-fragment installation is order-independent: ownership claims
    make block starts, functions, jump tables and noreturn records
    shard-disjoint; map installs are insert-only; and cross-shard end
    collisions go through the invariant-4 cascade, whose outcome is
    schedule-independent (battery-proven).  So installing fragments in
    arrival order equals installing them in shard order.

    Must be used inside ``rt.run`` on the coordinator runtime.  One
    fragment per shard: a duplicate (the retry ladder's straggler case)
    is skipped — callers that can see both attempts dedup first, as
    :func:`merge_fragments` does.
    """

    def __init__(self, binary: LoadedBinary, rt: Runtime,
                 options: ParseOptions | None = None):
        self.binary = binary
        self.rt = rt
        self.opts = replace(options or ParseOptions(),
                            thread_local_cache=True)
        #: worker partial-finalize hints enabled (resolved from the
        #: options *and*, defensively, the env — the procs backend folds
        #: ``REPRO_NO_PARTIAL_FINALIZE=1`` into the options before
        #: fan-out, but inline/test paths construct the merge directly).
        self.partial_enabled = (
            self.opts.partial_finalize
            and os.environ.get("REPRO_NO_PARTIAL_FINALIZE") != "1")
        self.accel = FinalizeAccel(rt)
        #: merged decode cache; grows as deltas arrive.  The parser
        #: holds this same dict, so later updates are visible to it.
        self.warm: dict[int, Instruction] = {}
        #: every installed block by start (cross-fragment ownership guard)
        self.blocks: dict[int, Block] = {}
        self._parser: ParallelParser | None = None
        self._installed: dict[int, int] = {}  # shard_id -> attempt
        self._frags: list[CFGFragment] = []
        self._frag_by_sid: dict[int, CFGFragment] = {}
        #: undrained frontier records per source shard
        self._pending: dict[int, list[FrontierRecord]] = {}
        #: persistent replay contexts, one per (shard, function) — a
        #: shard's records may drain across several batches; reusing the
        #: context preserves the "at least what the shard task had"
        #: seeding across them.
        self._replay_ctxs: dict[tuple[int, int], _TaskCtx] = {}

    @property
    def parser(self) -> ParallelParser:
        """The merged-state parser (created on first use).

        Lazy because the parser treats an empty warm cache as "no warm
        cache" — constructing it after the first delta's instructions
        land keeps the shared ``warm`` dict wired in.
        """
        if self._parser is None:
            p = ParallelParser(self.binary, self.rt, self.opts,
                               warm_cache=self.warm)
            # Coordinator-only acceleration state: hint index + dirty
            # log + wave partitions.  Set exclusively here so the
            # serial/vtime/threads parse paths are structurally
            # untouched.  With partial finalization disabled the accel
            # simply holds no hints (every lookup misses); the sharded
            # wave still gets its ownership partitions.
            p.finalize_accel = self.accel
            p._dirty_log = self.accel.dirty
            self._parser = p
        return self._parser

    def accept(self, fragment: CFGFragment,
               insns: dict[int, Instruction] | None = None,
               streamed: bool = False) -> bool:
        """Install one shard's fragment into the merged graph.

        ``insns`` is the shard's decode cache (merged into the warm
        cache before the rebuild resolves instructions from it);
        ``streamed`` marks an install that overlapped the fan-out, for
        the ``procs.overlap.*`` metrics.  Returns False (and installs
        nothing) for a shard that already has a fragment installed.
        """
        if fragment.shard_id in self._installed:
            return False
        if insns:
            self.warm.update(insns)
        rt = self.rt
        m = rt.metrics
        parser = self.parser
        with rt.phase("cfg_merge"):
            t0 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            n_edges = _rebuild_fragment_graph(fragment, self.warm,
                                              self.blocks)
            added = sorted((b[0], self.blocks[b[0]])
                           for b in fragment.blocks)
            parser.blocks_by_start.install_many(added)

            funcs: dict[int, Function] = {}
            for addr, name, entry_start, from_symtab, via, status \
                    in fragment.functions:
                func = Function(addr, name, self.blocks[entry_start],
                                from_symtab=from_symtab,
                                discovered_via=via)
                func.status = ReturnStatus(status)
                funcs[addr] = func
            parser.functions.install_many(sorted(funcs.items()))

            parser.jump_tables.install_many(sorted(
                (info.block_start, info)
                for info in fragment.jump_tables))

            for addr, status, waiters, tails in fragment.noreturn:
                sites = [DeferredCallSite(caller_addr=c,
                                          block=self.blocks[bs],
                                          fallthrough=ft, callee_addr=ce)
                         for c, bs, ft, ce in waiters]
                parser.noreturn.seed_state(addr, ReturnStatus(status),
                                           sites, tails)

            # Cross-shard block-end reconciliation: re-register every
            # imported end through the real invariant-4 cascade.  Where
            # shards disagree (one shard's linear overrun straddles
            # another's blocks), the cascade splits exactly as
            # concurrent registration would have.
            splits_before = parser.stats.n_splits
            for end_addr, bstart in fragment.ends:
                _install_end(parser, self.blocks[bstart], end_addr)
            end_splits = parser.stats.n_splits - splits_before
            parser.stats.n_splits += fragment.n_splits
            if m.enabled:
                wall = time.perf_counter_ns() - t0  # sanity: allow(wall-clock) coordinator-side metric
                m.inc("procs.merge.blocks", len(added))
                m.inc("procs.merge.edges", n_edges)
                m.inc("procs.merge.functions", len(funcs))
                m.inc("procs.merge.end_splits", end_splits)
                m.observe("procs.merge.wall_ns", wall)
                m.observe("procs.phase.install_wall_ns", wall)
                if streamed:
                    m.inc("procs.overlap.fragments")
                    m.observe("procs.overlap.install_wall_ns", wall)
                else:
                    m.inc("procs.overlap.batch_fragments")
        self._installed[fragment.shard_id] = fragment.attempt
        self._frags.append(fragment)
        self._frag_by_sid[fragment.shard_id] = fragment
        self._pending[fragment.shard_id] = list(fragment.frontier)
        self.accel.add_fragment(fragment, ingest=self.partial_enabled)
        # Batched early drain: replay every pending record whose endpoint
        # regions are all installed, overlapping cross-shard expansion
        # with still-outstanding shards.
        with rt.phase("cfg_frontier"):
            t1 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            n, batches = self._drain_ready(final=False)
            if m.enabled and n:
                wall = time.perf_counter_ns() - t1  # sanity: allow(wall-clock) coordinator-side metric
                m.inc("procs.frontier.records", n)
                m.inc("procs.frontier.early_records", n)
                m.inc("procs.frontier.batches", batches)
                m.observe("procs.frontier.replay_wall_ns", wall)
                m.observe("procs.phase.frontier_wall_ns", wall)
        return True

    def finish(self) -> ParsedCFG:
        """Complete the parse: final frontier drain, waves, finalization.

        Only callable once every shard's fragment has been accepted —
        the final drain restores full ownership, so any record (or
        re-deferred cascade step) still pending replays unconditionally.
        """
        rt = self.rt
        m = rt.metrics
        parser = self.parser

        if getattr(parser, "op_trace", None) is not None:
            # Debug hook: the merged-from-shards graph must satisfy the
            # structural invariants before the remaining replay extends it.
            from repro.sanity.cfgsan import run_cfgsan
            run_cfgsan(parser, "shard-merge")

        with rt.phase("cfg_frontier"):
            t1 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            n, batches = self._drain_ready(final=True)
            if m.enabled:
                wall = time.perf_counter_ns() - t1  # sanity: allow(wall-clock) coordinator-side metric
                m.inc("procs.frontier.records", n)
                if batches:
                    m.inc("procs.frontier.batches", batches)
                m.observe("procs.frontier.replay_wall_ns", wall)
                m.observe("procs.phase.frontier_wall_ns", wall)

        with rt.phase("cfg_wave"):
            t2 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            parser._noreturn_waves()
            if m.enabled:
                m.observe("procs.phase.wave_wall_ns",
                          time.perf_counter_ns() - t2)  # sanity: allow(wall-clock) coordinator-side metric

        with rt.phase("cfg_finalize"):
            t3 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            cfg = finalize(parser)
            if m.enabled:
                m.observe("procs.phase.finalize_wall_ns",
                          time.perf_counter_ns() - t3)  # sanity: allow(wall-clock) coordinator-side metric
        return cfg

    # ------------------------------------------------- batched frontier drains

    def _insn_at(self, addr: int) -> Instruction:
        """Resolve an instruction for replay: merged warm cache, then the
        coordinator's own decode cache (cascade-parsed blocks), then a
        direct deterministic decode."""
        insn = self.warm.get(addr)
        if insn is None:
            insn = self.parser.local_decode_cache().get(addr)
        if insn is None:
            insn = self.parser.decoder.decode_at(addr)
        return insn

    def _block_at(self, start: int) -> Block:
        blk = self.blocks.get(start)
        if blk is None:
            blk = self.parser.blocks_by_start.get(start)
        assert blk is not None, f"replay source block {start:#x} missing"
        return blk

    def _record_ready(self, rec: FrontierRecord) -> bool:
        """True when every address this record's replay step itself
        touches lies in an installed claim (the cascade it triggers
        re-defers anything further via the restricted ownership)."""
        foreign = self.parser._foreign
        try:
            if rec.kind in ("direct", "intra"):
                return not foreign(rec.target)
            if rec.kind == "resume":
                return not foreign(rec.site[2])
            if rec.kind == "end":
                return not foreign(rec.last_addr)
            insn = self._insn_at(rec.last_addr)  # cond | call
            if rec.kind == "call":
                return not foreign(insn.direct_target)
            return (not foreign(insn.direct_target)
                    and not foreign(insn.end))
        except Exception:
            return False

    def _drain_ready(self, final: bool) -> tuple[int, int]:
        """Replay every ready pending record; returns (records, batches).

        Ownership is restricted to the union of installed claims while
        shards are outstanding (``final=False``), so replay cascades
        re-defer any step into a not-yet-installed region instead of
        creating blocks a later fragment will export.  The final drain
        restores full ownership first.
        """
        parser = self.parser
        parser.set_owned_ranges(None if final else self.accel.ranges())
        batches: list[tuple[CFGFragment, list[FrontierRecord]]] = []
        for sid in sorted(self._pending):
            recs = self._pending[sid]
            if not recs:
                continue
            if final:
                ready, rest = recs, []
            else:
                ready, rest = [], []
                for rec in recs:
                    (ready if self._record_ready(rec) else rest).append(rec)
            if ready:
                self._pending[sid] = rest
                batches.append((self._frag_by_sid[sid], ready))
        own = self._take_ready_own(final)
        if not batches and not own:
            return 0, 0
        self._replay_batches(batches, own)
        n = sum(len(r) for _, r in batches) + len(own)
        return n, len(batches) + (1 if own else 0)

    def _take_ready_own(self, final: bool
                        ) -> list[tuple[FrontierRecord, _TaskCtx | None]]:
        """Pop coordinator-re-deferred records that became ready.

        Cascades during early drains defer steps into uninstalled
        regions through the ordinary ``_defer_frontier`` path; their
        live contexts ride along so a later drain resumes them exactly
        where they stopped.
        """
        parser = self.parser
        if not parser._frontier:
            return []
        own: list[tuple[FrontierRecord, _TaskCtx | None]] = []
        keep_r: list[FrontierRecord] = []
        keep_c: list[_TaskCtx | None] = []
        for rec, ctx in zip(parser._frontier, parser._frontier_ctxs):
            if final or self._record_ready(rec):
                own.append((rec, ctx))
            else:
                keep_r.append(rec)
                keep_c.append(ctx)
        parser._frontier = keep_r
        parser._frontier_ctxs = keep_c
        return own

    def _replay_batches(self, batches, own) -> None:
        """Replay drained batches through the real parser machinery.

        Within a batch records replay in discovery order; across batches
        (one per source shard — their records were produced inside
        disjoint claims) they replay under ``rt.parallel_for``, exactly
        like the old whole-frontier replay but per drain.  Tasks the
        replay discovers spawn into the shared group (or round queue) as
        in a live parse, and the drain quiesces before returning.
        """
        parser = self.parser
        rt = parser.rt
        group = rt.task_group() if parser.opts.task_parallel else None
        parser._group = group
        try:
            if group is not None and len(batches) > 1:
                rt.parallel_for(
                    batches,
                    lambda b: self._replay_batch(b[0], b[1]),
                    sort_key=lambda b: b[0].shard_id)
            else:
                for frag, recs in batches:
                    self._replay_batch(frag, recs)
            for rec, ctx in own:
                self._replay_own(rec, ctx)
            if group is not None:
                group.wait()
            else:
                current = parser._round_discovered
                while current:
                    parser._round_discovered = []
                    rt.parallel_for(
                        current,
                        lambda fs: parser._traverse_task(fs[0], fs[1]))
                    current = parser._round_discovered
        finally:
            parser._group = None

    def _replay_batch(self, frag: CFGFragment,
                      recs: list[FrontierRecord]) -> None:
        parser = self.parser
        for rec in recs:
            if rec.kind == "resume":
                c, bs, ft, ce = rec.site
                parser._resume_call_ft(DeferredCallSite(
                    caller_addr=c, block=self._block_at(bs),
                    fallthrough=ft, callee_addr=ce))
                continue
            key = (frag.shard_id, rec.func_addr)
            ctx = self._replay_ctxs.get(key)
            if ctx is None:
                func = parser.functions.get(rec.func_addr)
                assert func is not None, (
                    f"frontier record for unknown function "
                    f"{rec.func_addr:#x}")
                ctx = _TaskCtx(func=func)
                ctx.reached.update(frag.reached.get(rec.func_addr, ()))
                ctx.reached.add(rec.func_addr)
                self._replay_ctxs[key] = ctx
            self._replay_record(ctx, rec)
            parser._drain(ctx)

    def _replay_own(self, rec: FrontierRecord,
                    ctx: _TaskCtx | None) -> None:
        parser = self.parser
        if rec.kind == "resume":
            c, bs, ft, ce = rec.site
            parser._resume_call_ft(DeferredCallSite(
                caller_addr=c, block=self._block_at(bs),
                fallthrough=ft, callee_addr=ce))
            return
        if ctx is None:
            func = parser.functions.get(rec.func_addr)
            assert func is not None
            ctx = _TaskCtx(func=func)
            ctx.reached.add(rec.func_addr)
        self._replay_record(ctx, rec)
        parser._drain(ctx)

    def _replay_record(self, ctx: _TaskCtx, rec: FrontierRecord) -> None:
        parser = self.parser
        if rec.kind == "end":
            parser._register_end(ctx, self._block_at(rec.block_start),
                                 rec.end_addr, self._insn_at(rec.last_addr))
            return
        src = parser.block_ends.get(rec.end_addr)
        if src is None:
            src = self._block_at(rec.block_start)
        if rec.kind == "direct":
            parser._direct_branch(ctx, src, rec.target)
        elif rec.kind == "cond":
            parser._cond_branch(ctx, src, self._insn_at(rec.last_addr))
        elif rec.kind == "call":
            parser._call(ctx, src, self._insn_at(rec.last_addr))
        else:  # intra
            parser._add_intra_target(ctx, src, rec.target,
                                     EdgeType(rec.etype))


def merge_fragments(binary: LoadedBinary, rt: Runtime,
                    options: ParseOptions | None,
                    fragments: list[CFGFragment],
                    warm_cache: dict[int, Instruction]) -> ParsedCFG:
    """Stitch shard fragments into the serial fixed point (batch form).

    The thin non-streaming wrapper over :class:`StreamingMerge`: dedup
    duplicate-attempt fragments from the retry ladder (highest attempt
    wins — the one the coordinator actually validated last), install
    them all, finish.  Must be called inside ``rt.run`` on the
    coordinator runtime.
    """
    merge = StreamingMerge(binary, rt, options)
    merge.warm.update(warm_cache)
    m = rt.metrics
    by_shard: dict[int, CFGFragment] = {}
    for f in fragments:
        cur = by_shard.get(f.shard_id)
        if cur is None or f.attempt > cur.attempt:
            by_shard[f.shard_id] = f
    if m.enabled and len(by_shard) != len(fragments):
        m.inc("procs.merge.duplicate_fragments",
              len(fragments) - len(by_shard))
    for sid in sorted(by_shard):
        merge.accept(by_shard[sid])
    return merge.finish()


def _rebuild_fragment_graph(frag: CFGFragment,
                            insns: dict[int, Instruction],
                            blocks: dict[int, Block]) -> int:
    """Rebuild one fragment's blocks and intra-fragment edges.

    Instructions are resolved from the merged decode cache (complete: a
    worker's cache covers every block it exported, including bytes later
    truncated away by splits).  Returns the number of edges rebuilt.
    """
    for start, end, last_kind, has_teardown in frag.blocks:
        if start in blocks:
            raise RuntimeConfigError(
                f"shard ownership violated: block {start:#x} exported by "
                f"shard {frag.shard_id} and an earlier shard")
        b = Block(start)
        b.end = end
        b.last_kind = last_kind
        b.has_teardown = has_teardown
        if end is not None and end > start:
            addr = start
            seq = []
            while addr < end:
                insn = insns.get(addr)
                if insn is None:
                    break
                seq.append(insn)
                addr = insn.end
            b.insns = seq
        blocks[start] = b
    for src, dst, etype in frag.edges:
        edge = Edge(blocks[src], blocks[dst], EdgeType(etype))
        blocks[src].out_edges.append(edge)
        blocks[dst].in_edges.append(edge)
    return len(frag.edges)


def _install_end(parser: ParallelParser, block: Block, end: int) -> None:
    """Register an imported block end, cascading splits on collision.

    Mirrors ``_register_end``'s loop minus edge creation (the owning
    shard already created this end's edges; losers in the cascade carry
    theirs along exactly as invariant 4 moves them).
    """
    pending: tuple[Block, int] | None = (block, end)
    while pending is not None:
        blk, e = pending
        pending = None
        with parser.block_ends.accessor(e) as acc:
            if acc.created:
                acc.value = blk
                blk.end = e
                continue
            if acc.value is blk:
                continue
            nxt_blk, nxt_end, _ = parser._split_collision(blk, e, acc)
            pending = (nxt_blk, nxt_end)


