"""Structural merge of per-shard CFG fragments (procs backend).

The procs backend shards the entry set across worker processes; each
worker runs the ordinary parallel parser in *fragment mode*
(:meth:`~repro.core.parallel_parser.ParallelParser.execute_fragment`):
it owns a contiguous address range ``[lo, hi)``, parses its closure
normally inside that range, and defers every cross-shard expansion step
as a flat :class:`~repro.core.parallel_parser.FrontierRecord` instead of
executing it.  This module is the coordinator side:

1. **Rebuild** each fragment's block/edge graph from its flat pickled
   records (instructions come from the merged decode cache, so no object
   graph crosses the process boundary).
2. **Install** the union into a fresh :class:`ParallelParser`'s maps.
   Shard ownership makes block starts, functions, jump tables and
   noreturn records disjoint by construction; block *ends* are the one
   place shards can disagree (linear overrun past a boundary), so every
   imported end is re-registered through the parser's real invariant-4
   split cascade (``_split_collision``), which reconciles the fragments
   to the serial block set.
3. **Replay** the frontier records in deterministic (shard, discovery)
   order through the real parser machinery — tail-call classification,
   function creation, noreturn deferral and jump-table analysis all run
   exactly as in a serial parse, just starting from the merged state.
4. Run the ordinary wave fixed point (including the cycle rule the
   fragments had to skip) and the ordinary ``finalize`` correction phase.

Correctness rests on the battery-proven schedule independence of the
invariant machinery: a fragment is a prefix of a valid global schedule
(all its steps touch only addresses it owns), so completing the union of
prefixes with the remaining cross-shard work through the same machinery
reproduces the serial fixed point byte-for-byte — the differential
battery (``tests/test_differential_backends.py``) pins exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.binary.loader import LoadedBinary
from repro.core.cfg import (
    Block,
    Edge,
    EdgeType,
    Function,
    JumpTableInfo,
    ParsedCFG,
    ReturnStatus,
)
from repro.core.finalize import finalize
from repro.core.noreturn import DeferredCallSite
from repro.core.parallel_parser import (
    FrontierRecord,
    ParallelParser,
    ParseOptions,
    _TaskCtx,
)
from repro.errors import RuntimeConfigError
from repro.isa.instructions import Instruction
from repro.runtime.api import Runtime


@dataclass
class CFGFragment:
    """Pickle-friendly structural export of one shard's fragment parse.

    Everything is flat ints/strings/enums — no :class:`Block`/:class:`Edge`
    object graph crosses the process boundary (deep linked graphs recurse
    past pickle limits, and the coordinator rebuilds instructions from the
    merged decode cache anyway).
    """

    shard_id: int
    owned: tuple[int, int]
    #: (start, end, last_kind, has_teardown) per block
    blocks: list[tuple] = field(default_factory=list)
    #: the shard's block-ends map as (end_addr, block_start)
    ends: list[tuple[int, int]] = field(default_factory=list)
    #: (src_start, dst_start, etype value) in per-block creation order
    edges: list[tuple[int, int, str]] = field(default_factory=list)
    #: (addr, name, entry_start, from_symtab, discovered_via, status value)
    functions: list[tuple] = field(default_factory=list)
    jump_tables: list[JumpTableInfo] = field(default_factory=list)
    #: noreturn table: (addr, status value,
    #:   [(caller, block_start, fallthrough, callee)], [tail_waiters])
    noreturn: list[tuple] = field(default_factory=list)
    #: deferred cross-shard operations, in discovery order
    frontier: list[FrontierRecord] = field(default_factory=list)
    #: func addr -> reached block starts (frontier replay task seeds)
    reached: dict[int, list[int]] = field(default_factory=dict)
    n_splits: int = 0
    #: 1-based shard attempt this fragment came from.  The retry ladder
    #: can hand the merge duplicate fragments for one shard (a timed-out
    #: attempt whose delta straggles in next to its retry's); the merge
    #: keeps the highest attempt per shard and drops the rest.
    attempt: int = 1


def export_fragment(parser: ParallelParser, shard_id: int,
                    attempt: int = 1) -> CFGFragment:
    """Flatten a fragment-mode parser's state for shipping home."""
    assert parser._owned is not None, "export requires fragment mode"
    frag = CFGFragment(shard_id=shard_id, owned=parser._owned,
                       attempt=attempt)
    for start, b in parser.blocks_by_start.sorted_items():
        frag.blocks.append((b.start, b.end, b.last_kind, b.has_teardown))
        for e in b.out_edges:
            frag.edges.append((e.src.start, e.dst.start, e.etype.value))
    frag.ends = [(end, b.start)
                 for end, b in parser.block_ends.sorted_items()]
    frag.functions = [
        (f.addr, f.name, f.entry.start, f.from_symtab, f.discovered_via,
         f.status.value)
        for _, f in parser.functions.sorted_items()
    ]
    frag.jump_tables = [info
                        for _, info in parser.jump_tables.sorted_items()]
    frag.noreturn = [
        (addr, status.value,
         [(s.caller_addr, s.block.start, s.fallthrough, s.callee_addr)
          for s in waiters],
         list(tail_waiters))
        for addr, status, waiters, tail_waiters
        in parser.noreturn.dump_state()
    ]
    frag.frontier = list(parser._frontier)
    reached: dict[int, set[int]] = {}
    for ctx in parser._frontier_ctxs:
        if ctx is not None:
            reached.setdefault(ctx.func.addr, set()).update(ctx.reached)
    frag.reached = {addr: sorted(starts)
                    for addr, starts in reached.items()}
    frag.n_splits = parser.stats.n_splits
    return frag


def merge_fragments(binary: LoadedBinary, rt: Runtime,
                    options: ParseOptions | None,
                    fragments: list[CFGFragment],
                    warm_cache: dict[int, Instruction]) -> ParsedCFG:
    """Stitch shard fragments into the serial fixed point.

    Must be called inside ``rt.run`` on the coordinator runtime.
    """
    opts = replace(options or ParseOptions(), thread_local_cache=True)
    parser = ParallelParser(binary, rt, opts, warm_cache=warm_cache)
    m = rt.metrics
    # Tolerate duplicate-attempt fragments from the retry ladder: keep
    # one fragment per shard, preferring the highest attempt (the one
    # the coordinator actually validated last).
    by_shard: dict[int, CFGFragment] = {}
    for f in fragments:
        cur = by_shard.get(f.shard_id)
        if cur is None or f.attempt > cur.attempt:
            by_shard[f.shard_id] = f
    if m.enabled and len(by_shard) != len(fragments):
        m.inc("procs.merge.duplicate_fragments",
              len(fragments) - len(by_shard))
    frags = [by_shard[sid] for sid in sorted(by_shard)]

    with rt.phase("cfg_merge"):
        t0 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
        blocks: dict[int, Block] = {}
        n_edges = 0
        for frag in frags:
            n_edges += _rebuild_fragment_graph(frag, warm_cache, blocks)
        parser.blocks_by_start.install_many(sorted(blocks.items()))

        funcs: dict[int, Function] = {}
        for frag in frags:
            for addr, name, entry_start, from_symtab, via, status \
                    in frag.functions:
                func = Function(addr, name, blocks[entry_start],
                                from_symtab=from_symtab,
                                discovered_via=via)
                func.status = ReturnStatus(status)
                funcs[addr] = func
        parser.functions.install_many(sorted(funcs.items()))

        jts: dict[int, JumpTableInfo] = {}
        for frag in frags:
            for info in frag.jump_tables:
                jts[info.block_start] = info
        parser.jump_tables.install_many(sorted(jts.items()))

        for frag in frags:
            for addr, status, waiters, tails in frag.noreturn:
                sites = [DeferredCallSite(caller_addr=c, block=blocks[bs],
                                          fallthrough=ft, callee_addr=ce)
                         for c, bs, ft, ce in waiters]
                parser.noreturn.seed_state(addr, ReturnStatus(status),
                                           sites, tails)

        # Cross-shard block-end reconciliation: re-register every imported
        # end through the real invariant-4 cascade.  Where shards disagree
        # (one shard's linear overrun straddles another's blocks), the
        # cascade splits exactly as concurrent registration would have.
        splits_before = parser.stats.n_splits
        for frag in frags:
            for end_addr, bstart in frag.ends:
                _install_end(parser, blocks[bstart], end_addr)
        end_splits = parser.stats.n_splits - splits_before
        parser.stats.n_splits += sum(f.n_splits for f in frags)
        if m.enabled:
            m.inc("procs.merge.blocks", len(blocks))
            m.inc("procs.merge.edges", n_edges)
            m.inc("procs.merge.functions", len(funcs))
            m.inc("procs.merge.end_splits", end_splits)
            m.observe("procs.merge.wall_ns", time.perf_counter_ns() - t0)  # sanity: allow(wall-clock) coordinator-side metric

    if getattr(parser, "op_trace", None) is not None:
        # Debug hook: the merged-from-shards graph must satisfy the
        # structural invariants before the frontier replay extends it.
        from repro.sanity.cfgsan import run_cfgsan
        run_cfgsan(parser, "shard-merge")

    with rt.phase("cfg_frontier"):
        t1 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
        n_records = sum(len(f.frontier) for f in frags)
        _replay_frontier(parser, frags, blocks, warm_cache)
        parser._noreturn_waves()
        if m.enabled:
            m.inc("procs.frontier.records", n_records)
            m.observe("procs.frontier.replay_wall_ns",
                      time.perf_counter_ns() - t1)  # sanity: allow(wall-clock) coordinator-side metric

    with rt.phase("cfg_finalize"):
        return finalize(parser)


def _rebuild_fragment_graph(frag: CFGFragment,
                            insns: dict[int, Instruction],
                            blocks: dict[int, Block]) -> int:
    """Rebuild one fragment's blocks and intra-fragment edges.

    Instructions are resolved from the merged decode cache (complete: a
    worker's cache covers every block it exported, including bytes later
    truncated away by splits).  Returns the number of edges rebuilt.
    """
    for start, end, last_kind, has_teardown in frag.blocks:
        if start in blocks:
            raise RuntimeConfigError(
                f"shard ownership violated: block {start:#x} exported by "
                f"shard {frag.shard_id} and an earlier shard")
        b = Block(start)
        b.end = end
        b.last_kind = last_kind
        b.has_teardown = has_teardown
        if end is not None and end > start:
            addr = start
            seq = []
            while addr < end:
                insn = insns.get(addr)
                if insn is None:
                    break
                seq.append(insn)
                addr = insn.end
            b.insns = seq
        blocks[start] = b
    for src, dst, etype in frag.edges:
        edge = Edge(blocks[src], blocks[dst], EdgeType(etype))
        blocks[src].out_edges.append(edge)
        blocks[dst].in_edges.append(edge)
    return len(frag.edges)


def _install_end(parser: ParallelParser, block: Block, end: int) -> None:
    """Register an imported block end, cascading splits on collision.

    Mirrors ``_register_end``'s loop minus edge creation (the owning
    shard already created this end's edges; losers in the cascade carry
    theirs along exactly as invariant 4 moves them).
    """
    pending: tuple[Block, int] | None = (block, end)
    while pending is not None:
        blk, e = pending
        pending = None
        with parser.block_ends.accessor(e) as acc:
            if acc.created:
                acc.value = blk
                blk.end = e
                continue
            if acc.value is blk:
                continue
            nxt_blk, nxt_end, _ = parser._split_collision(blk, e, acc)
            pending = (nxt_blk, nxt_end)


def _replay_frontier(parser: ParallelParser, frags: list[CFGFragment],
                     blocks: dict[int, Block],
                     warm: dict[int, Instruction]) -> None:
    """Replay deferred cross-shard steps through the real machinery.

    One coordinator task context per (shard, function): seeded with the
    shard task's final reached set, so tail-call classification and
    shared-region scans observe at least what the shard task had.  The
    source block of each record is the *current* owner of the end address
    registered at record time — splits during the merge or earlier
    replays move edges to the owner, exactly as in a live parse.
    """
    rt = parser.rt
    group = rt.task_group() if parser.opts.task_parallel else None
    parser._group = group
    ctxs: dict[tuple[int, int], _TaskCtx] = {}
    try:
        for frag in frags:
            for rec in frag.frontier:
                if rec.kind == "resume":
                    c, bs, ft, ce = rec.site
                    parser._resume_call_ft(DeferredCallSite(
                        caller_addr=c, block=blocks[bs],
                        fallthrough=ft, callee_addr=ce))
                    continue
                key = (frag.shard_id, rec.func_addr)
                ctx = ctxs.get(key)
                if ctx is None:
                    func = parser.functions.get(rec.func_addr)
                    assert func is not None, (
                        f"frontier record for unknown function "
                        f"{rec.func_addr:#x}")
                    ctx = _TaskCtx(func=func)
                    ctx.reached.update(frag.reached.get(rec.func_addr, ()))
                    ctx.reached.add(rec.func_addr)
                    ctxs[key] = ctx
                if rec.kind == "end":
                    parser._register_end(ctx, blocks[rec.block_start],
                                         rec.end_addr,
                                         warm[rec.last_addr])
                else:
                    src = parser.block_ends.get(rec.end_addr)
                    if src is None:
                        src = blocks[rec.block_start]
                    if rec.kind == "direct":
                        parser._direct_branch(ctx, src, rec.target)
                    elif rec.kind == "cond":
                        parser._cond_branch(ctx, src, warm[rec.last_addr])
                    elif rec.kind == "call":
                        parser._call(ctx, src, warm[rec.last_addr])
                    else:  # intra
                        parser._add_intra_target(ctx, src, rec.target,
                                                 EdgeType(rec.etype))
                parser._drain(ctx)
        if group is not None:
            group.wait()
        else:
            current = parser._round_discovered
            while current:
                parser._round_discovered = []
                rt.parallel_for(
                    current, lambda fs: parser._traverse_task(fs[0], fs[1]))
                current = parser._round_discovered
    finally:
        parser._group = None
