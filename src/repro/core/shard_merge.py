"""Structural merge of per-shard CFG fragments (procs backend).

The procs backend shards the entry set across worker processes; each
worker runs the ordinary parallel parser in *fragment mode*
(:meth:`~repro.core.parallel_parser.ParallelParser.execute_fragment`):
it owns a contiguous address range ``[lo, hi)``, parses its closure
normally inside that range, and defers every cross-shard expansion step
as a flat :class:`~repro.core.parallel_parser.FrontierRecord` instead of
executing it.  This module is the coordinator side:

1. **Rebuild** each fragment's block/edge graph from its flat pickled
   records (instructions come from the merged decode cache, so no object
   graph crosses the process boundary).
2. **Install** the union into a fresh :class:`ParallelParser`'s maps.
   Shard ownership makes block starts, functions, jump tables and
   noreturn records disjoint by construction; block *ends* are the one
   place shards can disagree (linear overrun past a boundary), so every
   imported end is re-registered through the parser's real invariant-4
   split cascade (``_split_collision``), which reconciles the fragments
   to the serial block set.
3. **Replay** the frontier records through the real parser machinery —
   tail-call classification, function creation, noreturn deferral and
   jump-table analysis all run exactly as in a serial parse, just
   starting from the merged state.  Within a shard, records replay in
   discovery order; across shards they replay in parallel
   (``rt.parallel_for``), which is safe because ownership claims make
   the record sets disjoint and all shared state goes through the
   accessor-based invariant machinery.
4. Run the ordinary wave fixed point (including the cycle rule the
   fragments had to skip) and the ordinary ``finalize`` correction phase.

Steps 1–2 run *incrementally*: :class:`StreamingMerge` installs each
fragment the moment its delta lands, overlapping merge work with the
still-running fan-out; :func:`merge_fragments` is the batch wrapper the
inline/degraded paths use.

Correctness rests on the battery-proven schedule independence of the
invariant machinery: a fragment is a prefix of a valid global schedule
(all its steps touch only addresses it owns), so completing the union of
prefixes with the remaining cross-shard work through the same machinery
reproduces the serial fixed point byte-for-byte — the differential
battery (``tests/test_differential_backends.py``) pins exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.binary.loader import LoadedBinary
from repro.core.cfg import (
    Block,
    Edge,
    EdgeType,
    Function,
    JumpTableInfo,
    ParsedCFG,
    ReturnStatus,
)
from repro.core.finalize import finalize
from repro.core.noreturn import DeferredCallSite
from repro.core.parallel_parser import (
    FrontierRecord,
    ParallelParser,
    ParseOptions,
    _TaskCtx,
)
from repro.errors import RuntimeConfigError
from repro.isa.instructions import Instruction
from repro.runtime.api import Runtime


@dataclass
class CFGFragment:
    """Pickle-friendly structural export of one shard's fragment parse.

    Everything is flat ints/strings/enums — no :class:`Block`/:class:`Edge`
    object graph crosses the process boundary (deep linked graphs recurse
    past pickle limits, and the coordinator rebuilds instructions from the
    merged decode cache anyway).
    """

    shard_id: int
    owned: tuple[int, int]
    #: (start, end, last_kind, has_teardown) per block
    blocks: list[tuple] = field(default_factory=list)
    #: the shard's block-ends map as (end_addr, block_start)
    ends: list[tuple[int, int]] = field(default_factory=list)
    #: (src_start, dst_start, etype value) in per-block creation order
    edges: list[tuple[int, int, str]] = field(default_factory=list)
    #: (addr, name, entry_start, from_symtab, discovered_via, status value)
    functions: list[tuple] = field(default_factory=list)
    jump_tables: list[JumpTableInfo] = field(default_factory=list)
    #: noreturn table: (addr, status value,
    #:   [(caller, block_start, fallthrough, callee)], [tail_waiters])
    noreturn: list[tuple] = field(default_factory=list)
    #: deferred cross-shard operations, in discovery order
    frontier: list[FrontierRecord] = field(default_factory=list)
    #: func addr -> reached block starts (frontier replay task seeds)
    reached: dict[int, list[int]] = field(default_factory=dict)
    n_splits: int = 0
    #: 1-based shard attempt this fragment came from.  The retry ladder
    #: can hand the merge duplicate fragments for one shard (a timed-out
    #: attempt whose delta straggles in next to its retry's); the merge
    #: keeps the highest attempt per shard and drops the rest.
    attempt: int = 1


def export_fragment(parser: ParallelParser, shard_id: int,
                    attempt: int = 1) -> CFGFragment:
    """Flatten a fragment-mode parser's state for shipping home."""
    assert parser._owned is not None, "export requires fragment mode"
    frag = CFGFragment(shard_id=shard_id, owned=parser._owned,
                       attempt=attempt)
    for start, b in parser.blocks_by_start.sorted_items():
        frag.blocks.append((b.start, b.end, b.last_kind, b.has_teardown))
        for e in b.out_edges:
            frag.edges.append((e.src.start, e.dst.start, e.etype.value))
    frag.ends = [(end, b.start)
                 for end, b in parser.block_ends.sorted_items()]
    frag.functions = [
        (f.addr, f.name, f.entry.start, f.from_symtab, f.discovered_via,
         f.status.value)
        for _, f in parser.functions.sorted_items()
    ]
    frag.jump_tables = [info
                        for _, info in parser.jump_tables.sorted_items()]
    frag.noreturn = [
        (addr, status.value,
         [(s.caller_addr, s.block.start, s.fallthrough, s.callee_addr)
          for s in waiters],
         list(tail_waiters))
        for addr, status, waiters, tail_waiters
        in parser.noreturn.dump_state()
    ]
    frag.frontier = list(parser._frontier)
    reached: dict[int, set[int]] = {}
    for ctx in parser._frontier_ctxs:
        if ctx is not None:
            reached.setdefault(ctx.func.addr, set()).update(ctx.reached)
    frag.reached = {addr: sorted(starts)
                    for addr, starts in reached.items()}
    frag.n_splits = parser.stats.n_splits
    return frag


class StreamingMerge:
    """Incremental coordinator: fold fragments in as they arrive.

    The batch merge waits for every shard before touching the graph; a
    streaming coordinator starts step 2 (rebuild + install) the moment
    the first :class:`ShardDelta` lands, overlapping merge work with
    the still-running fan-out.  The procs backend feeds
    :meth:`accept` from its dispatch loop; :meth:`finish` runs the
    parts that genuinely need *all* fragments — the frontier replay
    (a record can target any foreign shard's blocks), the wave fixed
    point and finalization.

    Per-fragment installation is order-independent: ownership claims
    make block starts, functions, jump tables and noreturn records
    shard-disjoint; map installs are insert-only; and cross-shard end
    collisions go through the invariant-4 cascade, whose outcome is
    schedule-independent (battery-proven).  So installing fragments in
    arrival order equals installing them in shard order.

    Must be used inside ``rt.run`` on the coordinator runtime.  One
    fragment per shard: a duplicate (the retry ladder's straggler case)
    is skipped — callers that can see both attempts dedup first, as
    :func:`merge_fragments` does.
    """

    def __init__(self, binary: LoadedBinary, rt: Runtime,
                 options: ParseOptions | None = None):
        self.binary = binary
        self.rt = rt
        self.opts = replace(options or ParseOptions(),
                            thread_local_cache=True)
        #: merged decode cache; grows as deltas arrive.  The parser
        #: holds this same dict, so later updates are visible to it.
        self.warm: dict[int, Instruction] = {}
        #: every installed block by start (cross-fragment ownership guard)
        self.blocks: dict[int, Block] = {}
        self._parser: ParallelParser | None = None
        self._installed: dict[int, int] = {}  # shard_id -> attempt
        self._frags: list[CFGFragment] = []

    @property
    def parser(self) -> ParallelParser:
        """The merged-state parser (created on first use).

        Lazy because the parser treats an empty warm cache as "no warm
        cache" — constructing it after the first delta's instructions
        land keeps the shared ``warm`` dict wired in.
        """
        if self._parser is None:
            self._parser = ParallelParser(self.binary, self.rt, self.opts,
                                          warm_cache=self.warm)
        return self._parser

    def accept(self, fragment: CFGFragment,
               insns: dict[int, Instruction] | None = None,
               streamed: bool = False) -> bool:
        """Install one shard's fragment into the merged graph.

        ``insns`` is the shard's decode cache (merged into the warm
        cache before the rebuild resolves instructions from it);
        ``streamed`` marks an install that overlapped the fan-out, for
        the ``procs.overlap.*`` metrics.  Returns False (and installs
        nothing) for a shard that already has a fragment installed.
        """
        if fragment.shard_id in self._installed:
            return False
        if insns:
            self.warm.update(insns)
        rt = self.rt
        m = rt.metrics
        parser = self.parser
        with rt.phase("cfg_merge"):
            t0 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            n_edges = _rebuild_fragment_graph(fragment, self.warm,
                                              self.blocks)
            added = sorted((b[0], self.blocks[b[0]])
                           for b in fragment.blocks)
            parser.blocks_by_start.install_many(added)

            funcs: dict[int, Function] = {}
            for addr, name, entry_start, from_symtab, via, status \
                    in fragment.functions:
                func = Function(addr, name, self.blocks[entry_start],
                                from_symtab=from_symtab,
                                discovered_via=via)
                func.status = ReturnStatus(status)
                funcs[addr] = func
            parser.functions.install_many(sorted(funcs.items()))

            parser.jump_tables.install_many(sorted(
                (info.block_start, info)
                for info in fragment.jump_tables))

            for addr, status, waiters, tails in fragment.noreturn:
                sites = [DeferredCallSite(caller_addr=c,
                                          block=self.blocks[bs],
                                          fallthrough=ft, callee_addr=ce)
                         for c, bs, ft, ce in waiters]
                parser.noreturn.seed_state(addr, ReturnStatus(status),
                                           sites, tails)

            # Cross-shard block-end reconciliation: re-register every
            # imported end through the real invariant-4 cascade.  Where
            # shards disagree (one shard's linear overrun straddles
            # another's blocks), the cascade splits exactly as
            # concurrent registration would have.
            splits_before = parser.stats.n_splits
            for end_addr, bstart in fragment.ends:
                _install_end(parser, self.blocks[bstart], end_addr)
            end_splits = parser.stats.n_splits - splits_before
            parser.stats.n_splits += fragment.n_splits
            if m.enabled:
                wall = time.perf_counter_ns() - t0  # sanity: allow(wall-clock) coordinator-side metric
                m.inc("procs.merge.blocks", len(added))
                m.inc("procs.merge.edges", n_edges)
                m.inc("procs.merge.functions", len(funcs))
                m.inc("procs.merge.end_splits", end_splits)
                m.observe("procs.merge.wall_ns", wall)
                if streamed:
                    m.inc("procs.overlap.fragments")
                    m.observe("procs.overlap.install_wall_ns", wall)
                else:
                    m.inc("procs.overlap.batch_fragments")
        self._installed[fragment.shard_id] = fragment.attempt
        self._frags.append(fragment)
        return True

    def finish(self) -> ParsedCFG:
        """Complete the parse: frontier replay, waves, finalization.

        Only callable once every shard's fragment has been accepted —
        a frontier record may target any other shard's region, so the
        replay needs the whole merged graph.
        """
        rt = self.rt
        m = rt.metrics
        parser = self.parser
        frags = sorted(self._frags, key=lambda f: f.shard_id)

        if getattr(parser, "op_trace", None) is not None:
            # Debug hook: the merged-from-shards graph must satisfy the
            # structural invariants before the frontier replay extends it.
            from repro.sanity.cfgsan import run_cfgsan
            run_cfgsan(parser, "shard-merge")

        with rt.phase("cfg_frontier"):
            t1 = time.perf_counter_ns()  # sanity: allow(wall-clock) coordinator-side metric
            n_records = sum(len(f.frontier) for f in frags)
            _replay_frontier(parser, frags, self.blocks, self.warm)
            parser._noreturn_waves()
            if m.enabled:
                m.inc("procs.frontier.records", n_records)
                m.observe("procs.frontier.replay_wall_ns",
                          time.perf_counter_ns() - t1)  # sanity: allow(wall-clock) coordinator-side metric

        with rt.phase("cfg_finalize"):
            return finalize(parser)


def merge_fragments(binary: LoadedBinary, rt: Runtime,
                    options: ParseOptions | None,
                    fragments: list[CFGFragment],
                    warm_cache: dict[int, Instruction]) -> ParsedCFG:
    """Stitch shard fragments into the serial fixed point (batch form).

    The thin non-streaming wrapper over :class:`StreamingMerge`: dedup
    duplicate-attempt fragments from the retry ladder (highest attempt
    wins — the one the coordinator actually validated last), install
    them all, finish.  Must be called inside ``rt.run`` on the
    coordinator runtime.
    """
    merge = StreamingMerge(binary, rt, options)
    merge.warm.update(warm_cache)
    m = rt.metrics
    by_shard: dict[int, CFGFragment] = {}
    for f in fragments:
        cur = by_shard.get(f.shard_id)
        if cur is None or f.attempt > cur.attempt:
            by_shard[f.shard_id] = f
    if m.enabled and len(by_shard) != len(fragments):
        m.inc("procs.merge.duplicate_fragments",
              len(fragments) - len(by_shard))
    for sid in sorted(by_shard):
        merge.accept(by_shard[sid])
    return merge.finish()


def _rebuild_fragment_graph(frag: CFGFragment,
                            insns: dict[int, Instruction],
                            blocks: dict[int, Block]) -> int:
    """Rebuild one fragment's blocks and intra-fragment edges.

    Instructions are resolved from the merged decode cache (complete: a
    worker's cache covers every block it exported, including bytes later
    truncated away by splits).  Returns the number of edges rebuilt.
    """
    for start, end, last_kind, has_teardown in frag.blocks:
        if start in blocks:
            raise RuntimeConfigError(
                f"shard ownership violated: block {start:#x} exported by "
                f"shard {frag.shard_id} and an earlier shard")
        b = Block(start)
        b.end = end
        b.last_kind = last_kind
        b.has_teardown = has_teardown
        if end is not None and end > start:
            addr = start
            seq = []
            while addr < end:
                insn = insns.get(addr)
                if insn is None:
                    break
                seq.append(insn)
                addr = insn.end
            b.insns = seq
        blocks[start] = b
    for src, dst, etype in frag.edges:
        edge = Edge(blocks[src], blocks[dst], EdgeType(etype))
        blocks[src].out_edges.append(edge)
        blocks[dst].in_edges.append(edge)
    return len(frag.edges)


def _install_end(parser: ParallelParser, block: Block, end: int) -> None:
    """Register an imported block end, cascading splits on collision.

    Mirrors ``_register_end``'s loop minus edge creation (the owning
    shard already created this end's edges; losers in the cascade carry
    theirs along exactly as invariant 4 moves them).
    """
    pending: tuple[Block, int] | None = (block, end)
    while pending is not None:
        blk, e = pending
        pending = None
        with parser.block_ends.accessor(e) as acc:
            if acc.created:
                acc.value = blk
                blk.end = e
                continue
            if acc.value is blk:
                continue
            nxt_blk, nxt_end, _ = parser._split_collision(blk, e, acc)
            pending = (nxt_blk, nxt_end)


def _replay_shard_frontier(parser: ParallelParser, frag: CFGFragment,
                           blocks: dict[int, Block],
                           warm: dict[int, Instruction]) -> None:
    """Replay one shard's frontier records, in discovery order.

    One coordinator task context per function: seeded with the shard
    task's final reached set, so tail-call classification and
    shared-region scans observe at least what the shard task had.  The
    source block of each record is the *current* owner of the end address
    registered at record time — splits during the merge or earlier
    replays move edges to the owner, exactly as in a live parse.
    """
    ctxs: dict[int, _TaskCtx] = {}
    for rec in frag.frontier:
        if rec.kind == "resume":
            c, bs, ft, ce = rec.site
            parser._resume_call_ft(DeferredCallSite(
                caller_addr=c, block=blocks[bs],
                fallthrough=ft, callee_addr=ce))
            continue
        ctx = ctxs.get(rec.func_addr)
        if ctx is None:
            func = parser.functions.get(rec.func_addr)
            assert func is not None, (
                f"frontier record for unknown function "
                f"{rec.func_addr:#x}")
            ctx = _TaskCtx(func=func)
            ctx.reached.update(frag.reached.get(rec.func_addr, ()))
            ctx.reached.add(rec.func_addr)
            ctxs[rec.func_addr] = ctx
        if rec.kind == "end":
            parser._register_end(ctx, blocks[rec.block_start],
                                 rec.end_addr,
                                 warm[rec.last_addr])
        else:
            src = parser.block_ends.get(rec.end_addr)
            if src is None:
                src = blocks[rec.block_start]
            if rec.kind == "direct":
                parser._direct_branch(ctx, src, rec.target)
            elif rec.kind == "cond":
                parser._cond_branch(ctx, src, warm[rec.last_addr])
            elif rec.kind == "call":
                parser._call(ctx, src, warm[rec.last_addr])
            else:  # intra
                parser._add_intra_target(ctx, src, rec.target,
                                         EdgeType(rec.etype))
        parser._drain(ctx)


def _replay_frontier(parser: ParallelParser, frags: list[CFGFragment],
                     blocks: dict[int, Block],
                     warm: dict[int, Instruction]) -> None:
    """Replay deferred cross-shard steps through the real machinery.

    Replay order within a shard is its discovery order (determinism of
    the ladder's inline rung depends on it); *across* shards the records
    are independent — each shard's records were produced inside its
    ownership claim, the claims partition the address space, and every
    shared structure the replay touches goes through the accessor-based
    invariant machinery — so shards replay under ``rt.parallel_for``,
    overlapping the cross-shard expansion work that used to run as one
    sequential scan.  Tasks the replay discovers spawn into the shared
    group (or round queue) exactly as in a live parse.
    """
    rt = parser.rt
    group = rt.task_group() if parser.opts.task_parallel else None
    parser._group = group
    live = [f for f in frags if f.frontier]
    try:
        if group is not None and len(live) > 1:
            rt.parallel_for(
                live,
                lambda frag: _replay_shard_frontier(parser, frag, blocks,
                                                    warm),
                sort_key=lambda f: f.shard_id)
        else:
            for frag in live:
                _replay_shard_frontier(parser, frag, blocks, warm)
        if group is not None:
            group.wait()
        else:
            current = parser._round_discovered
            while current:
                parser._round_discovered = []
                rt.parallel_for(
                    current, lambda fs: parser._traverse_task(fs[0], fs[1]))
                current = parser._round_discovered
    finally:
        parser._group = None
