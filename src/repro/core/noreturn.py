"""Non-returning function analysis (Section 5.3, Meng & Miller 2016).

Each function has a return status in {UNSET, RETURN, NORETURN}:

- functions whose name matches a known non-returning function start
  NORETURN;
- finding a reachable return instruction makes a function RETURN — with
  the paper's *eager notification* improvement, the very first return
  instruction encountered during traversal resolves the status and
  immediately releases every call site waiting to create its call
  fall-through edge, without waiting for the callee's analysis to finish;
- call sites whose callee is UNSET register a deferred fall-through; the
  wave-level fixed point (:meth:`NoReturnState.resolve_wave`) propagates
  statuses through call chains, and cyclic dependencies resolve to
  NORETURN (all functions in the cycle are non-returning).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.cfg import EdgeType, Function, ReturnStatus
from repro.runtime.api import Runtime
from repro.runtime.conchash import ConcurrentHashMap
from repro.synth.program import KNOWN_NORETURN_NAMES


@dataclass
class DeferredCallSite:
    """A call site waiting on its callee's return status."""

    caller_addr: int          #: function whose traversal hit the call
    block: Any                #: Block containing the call
    fallthrough: int          #: address the call would fall through to
    callee_addr: int


@dataclass
class _StatusRec:
    status: ReturnStatus = ReturnStatus.UNSET
    waiters: list[DeferredCallSite] = field(default_factory=list)
    #: functions that tail-call this one and inherit its RETURN status
    #: (eager notification across tail-call dependencies).
    tail_waiters: list[int] = field(default_factory=list)


class NoReturnState:
    """Shared return-status table with eager notification."""

    def __init__(self, rt: Runtime, eager_notify: bool = True):
        self._rt = rt
        self.eager_notify = eager_notify
        self._table: ConcurrentHashMap[int, _StatusRec] = \
            ConcurrentHashMap(rt, name="noreturn")

    # -- setup ---------------------------------------------------------------

    def init_function(self, func: Function) -> None:
        """Initialize status: NORETURN for known names, else UNSET."""
        rt = self._rt
        rt.charge(rt.cost.noreturn_update)
        status = (ReturnStatus.NORETURN
                  if _known_noreturn(func.name) else ReturnStatus.UNSET)
        with self._table.accessor(func.addr) as acc:
            if acc.created:
                acc.value = _StatusRec(status)
            elif status is not ReturnStatus.UNSET:
                acc.value.status = status
        func.status = status

    # -- queries ---------------------------------------------------------------

    def status_of(self, addr: int) -> ReturnStatus:
        rec = self._table.get(addr)
        return rec.status if rec is not None else ReturnStatus.UNSET

    # -- updates ----------------------------------------------------------------

    def mark_return(self, addr: int) -> list[DeferredCallSite]:
        """Set RETURN (first return instruction found); returns the call
        sites released by the eager notification (empty when disabled —
        they are then released at the next wave boundary instead).

        A RETURN cascades through registered tail-call dependencies: a
        function that tail-calls a returning function returns too, so its
        own waiting call sites are released in the same notification.
        """
        rt = self._rt
        released: list[DeferredCallSite] = []
        worklist = [addr]
        while worklist:
            a = worklist.pop()
            rt.charge(rt.cost.noreturn_update)
            with self._table.accessor(a) as acc:
                if acc.created:
                    acc.value = _StatusRec()
                rec = acc.value
                if rec.status is not ReturnStatus.UNSET:
                    continue
                rec.status = ReturnStatus.RETURN
                if not self.eager_notify:
                    continue
                released.extend(rec.waiters)
                rec.waiters = []
                worklist.extend(rec.tail_waiters)
                rec.tail_waiters = []
        if released:
            rt.metrics.inc("noreturn.eager_released", len(released))
        return released

    def mark_noreturn(self, addr: int) -> None:
        rt = self._rt
        rt.charge(rt.cost.noreturn_update)
        with self._table.accessor(addr) as acc:
            if acc.created:
                acc.value = _StatusRec()
            if acc.value.status is ReturnStatus.UNSET:
                acc.value.status = ReturnStatus.NORETURN
                acc.value.waiters = []  # dropped: no fall-through edges

    def defer_tail(self, caller_addr: int, callee_addr: int) -> ReturnStatus:
        """Register a tail-call dependency: ``caller`` returns if
        ``callee`` does.  Returns the callee status observed under the
        lock — if already RETURN, the caller handles the propagation
        itself (by calling :meth:`mark_return` on its own address)."""
        rt = self._rt
        rt.charge(rt.cost.noreturn_update)
        with self._table.accessor(callee_addr) as acc:
            if acc.created:
                acc.value = _StatusRec()
            rec = acc.value
            if rec.status is ReturnStatus.UNSET and self.eager_notify:
                rec.tail_waiters.append(caller_addr)
            return rec.status

    def defer(self, site: DeferredCallSite) -> ReturnStatus:
        """Register a deferred call fall-through (component 2 of the
        analysis).  Returns the callee status observed under the lock: if
        it is already resolved the caller handles it immediately and
        nothing is registered."""
        rt = self._rt
        rt.charge(rt.cost.noreturn_update)
        with self._table.accessor(site.callee_addr) as acc:
            if acc.created:
                acc.value = _StatusRec()
            rec = acc.value
            if rec.status is ReturnStatus.UNSET:
                rec.waiters.append(site)
            return rec.status

    # -- fragment export / import (procs backend structural merge) ---------------

    def dump_state(self) -> list[
            tuple[int, ReturnStatus, list[DeferredCallSite], list[int]]]:
        """Flatten the table for shard fragment export: one
        ``(addr, status, waiters, tail_waiters)`` record per entry, sorted
        by address.  Shard ownership makes the tables disjoint — waiters
        are only ever registered on own-region callees (foreign callees
        are frontier-deferred), so the coordinator can seed the union."""
        out = []
        for addr, rec in self._table.sorted_items():
            out.append((addr, rec.status, list(rec.waiters),
                        list(rec.tail_waiters)))
        return out

    def seed_state(self, addr: int, status: ReturnStatus,
                   waiters: list[DeferredCallSite],
                   tail_waiters: list[int]) -> None:
        """Install one exported record (coordinator merge phase)."""
        rt = self._rt
        rt.charge(rt.cost.noreturn_update)
        with self._table.accessor(addr) as acc:
            if acc.created:
                acc.value = _StatusRec(status)
            elif status is not ReturnStatus.UNSET:
                # Defensive: shards should never disagree (ownership keeps
                # the tables disjoint), but a resolved status always wins.
                acc.value.status = status
            acc.value.waiters.extend(waiters)
            acc.value.tail_waiters.extend(tail_waiters)

    # -- wave-level fixed point ---------------------------------------------------

    def resolve_wave(
        self,
        functions: list[Function],
        closure_summary: Callable[[Function], tuple[bool, frozenset[int]]],
        partitions: list[list[Function]] | None = None,
    ) -> list[DeferredCallSite]:
        """One round of the fixed point run at a wave boundary.

        ``closure_summary(f)`` returns ``(has_ret, tail_targets)`` over
        f's intra-procedural closure.  Only RETURN statuses are derived
        here: a function returns if a return instruction is reachable or
        a tail-callee returns (a tail call transfers the callee's return
        to *our* caller).  NORETURN is never concluded mid-wave — a
        released-but-unprocessed call fall-through could still reveal a
        return, so non-returning conclusions wait for quiescence
        (:meth:`resolve_cycles`).  Returns all call sites newly released
        by RETURN statuses.

        ``partitions`` (procs coordinator) shards the worklist by
        function-entry ownership: each round runs every partition's local
        fixed point under ``rt.parallel_for`` with a deterministic round
        barrier, repeating until a full round derives nothing.  The
        derivation UNSET→RETURN is monotone on the status lattice and
        confluent (a function's verdict depends only on its own summary
        and statuses that can only grow towards RETURN), so the fixed
        point — and therefore the released-site *set* — is identical to
        the serial schedule; released sites are concatenated in partition
        order so the result is deterministic as a list too.
        """
        released: list[DeferredCallSite] = []
        # Without eager notification, call sites accumulate on functions
        # already known to return; drain them first.
        for f in functions:
            if self.status_of(f.addr) is ReturnStatus.RETURN:
                with self._table.accessor(f.addr) as acc:
                    rec = acc.value
                    released.extend(rec.waiters)
                    rec.waiters = []
        if partitions is None:
            changed = True
            while changed:
                changed = False
                for f in functions:
                    if self.status_of(f.addr) is not ReturnStatus.UNSET:
                        continue
                    has_ret, tail_targets = closure_summary(f)
                    if has_ret or any(
                            self.status_of(t) is ReturnStatus.RETURN
                            for t in tail_targets):
                        with self._table.accessor(f.addr) as acc:
                            rec = acc.value
                            if rec.status is ReturnStatus.UNSET:
                                rec.status = ReturnStatus.RETURN
                                released.extend(rec.waiters)
                                rec.waiters = []
                                changed = True
        else:
            released.extend(self._resolve_wave_sharded(
                partitions, closure_summary))
        for f in functions:
            f.status = self.status_of(f.addr)
        if released:
            self._rt.metrics.inc("noreturn.wave_released", len(released))
        return released

    def _resolve_wave_sharded(
        self,
        partitions: list[list[Function]],
        closure_summary: Callable[[Function], tuple[bool, frozenset[int]]],
    ) -> list[DeferredCallSite]:
        """Partitioned RETURN derivation: rounds of per-shard local fixed
        points with a barrier between rounds (see :meth:`resolve_wave`)."""
        rt = self._rt
        by_part: list[list[DeferredCallSite]] = [[] for _ in partitions]
        progress = [False] * len(partitions)
        rounds = 0

        def run_partition(i: int) -> None:
            out = by_part[i]
            changed = True
            while changed:
                changed = False
                for f in partitions[i]:
                    if self.status_of(f.addr) is not ReturnStatus.UNSET:
                        continue
                    has_ret, tail_targets = closure_summary(f)
                    if has_ret or any(
                            self.status_of(t) is ReturnStatus.RETURN
                            for t in tail_targets):
                        with self._table.accessor(f.addr) as acc:
                            rec = acc.value
                            if rec.status is ReturnStatus.UNSET:
                                rec.status = ReturnStatus.RETURN
                                out.extend(rec.waiters)
                                rec.waiters = []
                                changed = True
                                progress[i] = True

        while True:
            rounds += 1
            for i in range(len(partitions)):
                progress[i] = False
            rt.parallel_for(list(range(len(partitions))), run_partition)
            if not any(progress):
                break
        rt.metrics.inc("noreturn.sharded_rounds", rounds)
        released: list[DeferredCallSite] = []
        for out in by_part:
            released.extend(out)
        return released

    def resolve_cycles(self, functions: list[Function]) -> None:
        """Terminal rule at quiescence: once no wave can derive another
        RETURN, every remaining UNSET function either always ends in calls
        to non-returning functions or sits in a cyclic dependency — both
        non-returning (the paper's component 3)."""
        for f in functions:
            if self.status_of(f.addr) is ReturnStatus.UNSET:
                self.mark_noreturn(f.addr)
        for f in functions:
            f.status = self.status_of(f.addr)


def _known_noreturn(name: str) -> bool:
    from repro.binary.symtab import demangle_pretty

    return (name in KNOWN_NORETURN_NAMES
            or demangle_pretty(name) in KNOWN_NORETURN_NAMES)


def closure_summary_fn(on_visit: Callable[[Any], None] | None = None
                       ) -> Callable[[Function], tuple[bool, frozenset[int]]]:
    """Build the per-function closure summary used by the wave fixed point.

    Walks intra-procedural edges from the entry block; returns whether a
    return instruction is reachable, and the set of tail-call targets at
    the closure's frontier (shared blocks parsed by another function's
    task still contribute this way).
    """
    from repro.core.cfg import EdgeType
    from repro.isa.instructions import ControlFlowKind

    def summarize(f: Function) -> tuple[bool, frozenset[int]]:
        seen: set[int] = set()
        stack = [f.entry]
        has_ret = False
        tails: set[int] = set()
        while stack:
            b = stack.pop()
            if b.start in seen:
                continue
            seen.add(b.start)
            if on_visit is not None:
                on_visit(b)
            if b.last_kind is ControlFlowKind.RETURN:
                has_ret = True
            for e in b.out_edges:
                if e.etype.intraprocedural:
                    stack.append(e.dst)
                elif e.etype is EdgeType.TAILCALL:
                    tails.add(e.dst.start)
        return has_ret, frozenset(tails)

    return summarize
