"""CFG finalization (Section 5.4): the correction phase ``Gm ≽ … ≽ Gn``.

No new CFG elements are added here.  Four steps:

1. **Jump-table overlap cleanup** — over-approximated (unbounded-scan)
   tables that overflow into another discovered table are trimmed using
   the observation that compilers do not emit overlapping jump tables;
   the trimmed edges are removed with ``O_ER`` semantics (cascading
   removal of blocks no longer reachable from any entry).  Edge removals
   commute (Section 4.1), so tables are processed in parallel.
2. **Tail-call correction** — the three rules of the paper, applied
   iteratively with function boundaries recomputed between rounds; each
   edge's verdict is flipped at most once, ensuring convergence.
3. **Function boundary assignment** — parallel reachability over
   intra-procedural edges from every entry (blocks may belong to several
   functions: shared code).
4. **Dead function removal** — functions discovered during analysis that
   ended with no incoming inter-procedural edges are dropped (symbol-table
   entries are roots and always stay).

Finalization is deliberately agnostic to how the parser state was built:
it reads only the parser's maps, noreturn table and stats, so the procs
backend's structural merge (``repro.core.shard_merge``) can run it
unchanged as the last phase over coordinator-stitched fragments.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING

from repro.core.cfg import (
    Block,
    EdgeType,
    Function,
    JumpTableInfo,
    ParsedCFG,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.parallel_parser import ParallelParser


def finalize(parser: "ParallelParser") -> ParsedCFG:
    rt = parser.rt
    sanitize = getattr(parser, "op_trace", None) is not None
    if sanitize:
        # Debug hook: validate the quiesced expansion-phase graph and
        # the recorded operation trace before correction mutates it.
        from repro.sanity.cfgsan import run_cfgsan
        run_cfgsan(parser, "finalize-entry")
    blocks = {start: b for start, b in parser.blocks_by_start.sorted_items()}
    functions = {addr: f for addr, f in parser.functions.sorted_items()}
    tables = [info for _, info in parser.jump_tables.sorted_items()]

    _trim_overlapping_tables(parser, tables, blocks, functions)
    closures = _correct_tail_calls(parser, blocks, functions)
    _assign_boundaries(parser, functions, closures)
    functions = _remove_dead_functions(parser, functions)
    _finalize_statuses(parser, functions)

    live_blocks = [b for b in blocks.values() if b.end is not None]
    stats = parser.stats
    stats.n_functions = len(functions)
    stats.n_blocks = len(live_blocks)
    stats.n_edges = sum(len(b.out_edges) for b in live_blocks)
    stats.n_jt_resolved = sum(1 for t in tables if t.bounded)
    stats.n_jt_unresolved = sum(1 for t in tables if t.table_addr is None)
    stats.n_jt_overapprox = sum(
        1 for t in tables if t.table_addr is not None and not t.bounded)
    cfg = ParsedCFG(functions=list(functions.values()),
                    blocks=live_blocks, jump_tables=tables, stats=stats)
    if sanitize:
        from repro.sanity.cfgsan import run_cfgsan_cfg
        run_cfgsan_cfg(cfg, rt.metrics, "finalize-exit")
    return cfg


# --------------------------------------------------------------- step 1

def _trim_overlapping_tables(parser: "ParallelParser",
                             tables: list[JumpTableInfo],
                             blocks: dict[int, Block],
                             functions: dict[int, Function]) -> None:
    """Trim unbounded table scans at the next discovered table's base.

    At the procs coordinator, a worker's shard-local trim hint (the next
    table base *within its owned range*) short-circuits the per-table
    work: if the global next base matches the hint's, the shard already
    saw every table that matters for this trim, so a hinted "no trim
    needed" verdict is final and a hinted trim applies verbatim.  A
    mismatching or missing hint falls back to the ordinary computation.
    """
    rt = parser.rt
    accel = getattr(parser, "finalize_accel", None)
    starts = sorted(t.table_addr for t in tables if t.table_addr is not None)
    removed_any = []

    def trim(info: JumpTableInfo) -> None:
        if info.table_addr is None or info.bounded:
            return
        rt.charge(rt.cost.map_op)
        idx = bisect.bisect_right(starts, info.table_addr)
        next_base = starts[idx] if idx < len(starts) else None
        if accel is not None and accel.jt_hint(info.block_start, next_base):
            return  # validated worker verdict: nothing to trim
        if next_base is None:
            return
        allowed = max(0, (next_base - info.table_addr) // 8)
        if info.n_entries <= allowed:
            return
        keep = info.targets[:allowed]
        drop = info.targets[allowed:]
        info.trimmed = len(drop)
        info.targets = keep
        info.n_entries = allowed
        block = blocks.get(info.block_start)
        if block is None:
            return
        drop_set = set(drop) - set(keep)
        doomed = [e for e in block.out_edges
                  if e.etype is EdgeType.INDIRECT and e.dst.start in drop_set]
        for e in doomed:
            rt.charge(rt.cost.edge_create)
            block.out_edges.remove(e)
            e.dst.in_edges.remove(e)
            parser.stats.n_edges_trimmed += 1
        if doomed:
            parser._mark_dirty(block.start)
            rt.metrics.inc("finalize.edges_trimmed", len(doomed))
            removed_any.append(True)

    rt.parallel_for(tables, trim)
    if removed_any:
        _sweep_unreachable(parser, blocks, functions)


def _sweep_unreachable(parser: "ParallelParser", blocks: dict[int, Block],
                       functions: dict[int, Function]) -> None:
    """O_ER cascade: drop blocks unreachable from any function entry.

    At the procs coordinator, a worker's per-entry reach set (closed
    under out-edges at export time) seeds ``reached`` wholesale when
    still valid: none of its members mutated since export means their
    out-edge sets are unchanged, so the set is still closed and every
    member still reached.  Entries without a valid hint walk normally.
    """
    rt = parser.rt
    accel = getattr(parser, "finalize_accel", None)
    reached: set[int] = set()
    stack = []
    for f in functions.values():
        hint = accel.sweep_hint(f.addr) if accel is not None else None
        if hint is not None:
            fresh = hint - reached
            rt.charge(rt.cost.sweep_per_block * len(fresh))
            reached |= fresh
        else:
            stack.append(f.entry)
    while stack:
        b = stack.pop()
        if b.start in reached:
            continue
        reached.add(b.start)
        rt.charge(rt.cost.sweep_per_block)
        for e in b.out_edges:
            if e.dst.start not in reached:
                stack.append(e.dst)
    dead = [s for s in blocks if s not in reached]
    if dead:
        parser._mark_dirty(*dead)
        rt.metrics.inc("finalize.blocks_swept", len(dead))
    for s in dead:
        b = blocks.pop(s)
        for e in b.out_edges:
            if e in e.dst.in_edges:
                e.dst.in_edges.remove(e)
        for e in b.in_edges:
            if e in e.src.out_edges:
                e.src.out_edges.remove(e)
        parser.blocks_by_start.remove(s)


# --------------------------------------------------------------- steps 2+3

_INTRA = (EdgeType.DIRECT, EdgeType.COND_TAKEN, EdgeType.COND_FALLTHROUGH,
          EdgeType.FALLTHROUGH, EdgeType.CALL_FT, EdgeType.INDIRECT)


def _function_closure(rt, func: Function) -> set[int]:
    """Block starts reachable from the entry via intra-procedural edges."""
    seen: set[int] = set()
    stack = [func.entry]
    while stack:
        b = stack.pop()
        if b.start in seen:
            continue
        seen.add(b.start)
        rt.charge(rt.cost.closure_per_block)
        for e in b.out_edges:
            if e.etype in _INTRA and e.dst.start not in seen:
                stack.append(e.dst)
    return seen


def _correct_tail_calls(parser: "ParallelParser", blocks: dict[int, Block],
                        functions: dict[int, Function]
                        ) -> dict[int, set[int]] | None:
    """Iterative application of the three correction rules.

    Returns the closures of the converged round (every function, fresh)
    so :func:`_assign_boundaries` can reuse them instead of recomputing —
    or None if the round cap was hit without convergence.

    At the procs coordinator two further accelerations apply, both
    output-invariant: round 1 takes each function's closure from its
    worker partial-finalize hint when still valid (the closure *values*
    are identical, and the rules below are recomputed from them, so the
    verdicts are too); rounds 2+ recompute only functions whose closures
    a flip could have changed — a TAILCALL↔DIRECT flip at block ``s``
    moves edges in or out of the intra-procedural set only for functions
    containing ``s``, plus functions minted since the last round.
    """
    rt = parser.rt
    accel = getattr(parser, "finalize_accel", None)

    symtab_entries = {s.offset for s in parser.binary.symtab.functions()}
    symtab_entries.update(s.offset
                          for s in parser.binary.dynsym.functions())

    closures: dict[int, set[int]] = {}
    dirty_funcs: set[int] | None = None  # None = (re)compute everything
    for _round in range(8):
        # The O_IEC fixed point of Section 5.4: each round recomputes
        # boundaries and may flip edge verdicts.
        rt.metrics.inc("finalize.tailcall_rounds")
        first_round = dirty_funcs is None
        if accel is None:
            closures = {}
            need = sorted(functions.items())
        elif first_round:
            need = sorted(functions.items())
        else:
            need = sorted((a, functions[a]) for a in dirty_funcs
                          if a in functions)

        def compute(fa):
            addr, func = fa
            if accel is not None and first_round:
                hint = accel.closure_hint(addr)
                if hint is not None:
                    rt.charge(rt.cost.closure_per_block * len(hint))
                    closures[addr] = set(hint)
                    return
            closures[addr] = _function_closure(rt, func)

        rt.parallel_for(need, compute)

        # Block start -> functions containing it.
        containing: dict[int, set[int]] = {}
        for faddr, cl in closures.items():
            for bstart in cl:
                containing.setdefault(bstart, set()).add(faddr)

        def entry_like(dst: Block) -> bool:
            return (dst.start in symtab_entries
                    or any(ie.etype.interprocedural for ie in dst.in_edges))

        flips = 0
        flip_srcs: list[int] = []
        for b in (blocks[s] for s in sorted(blocks)):
            for e in list(b.out_edges):
                if e.flipped:
                    continue
                if e.etype is EdgeType.DIRECT:
                    # Rule 1: not a tail call, but the target has CALL-like
                    # incoming edges (it is a function entry).
                    if entry_like(e.dst):
                        e.etype = EdgeType.TAILCALL
                        e.flipped = True
                        flips += 1
                        flip_srcs.append(e.src.start)
                elif e.etype is EdgeType.TAILCALL:
                    target = e.dst.start
                    src_funcs = containing.get(e.src.start, set())
                    # Rule 2: marked tail call but the target lies inside
                    # the current function's own boundary.
                    inside = any(
                        target in closures[fa] and target != fa
                        for fa in src_funcs
                        if fa != target
                    )
                    # Rule 3: sole incoming edge and not a symbol-table
                    # entry: an outlined block, not a function.
                    sole = (len(e.dst.in_edges) == 1
                            and target not in symtab_entries
                            and target in functions
                            and functions[target].discovered_via
                            == "tailcall")
                    if inside or sole:
                        e.etype = EdgeType.DIRECT
                        e.flipped = True
                        flips += 1
                        flip_srcs.append(e.src.start)
        parser.stats.n_tailcall_flips += flips
        if flips:
            rt.metrics.inc("finalize.tailcall_flips", flips)
        if flips == 0:
            # Converged: every closure in the memo is fresh (nothing
            # mutated edges since this round's compute pass).
            return closures

        # A flip changes a block's out-edge type: hints that include it
        # are stale from here on.
        parser._mark_dirty(*flip_srcs)

        # Flips change the function set: rule-1 flips may need a function
        # at the target; rule-2/3 flips may orphan one (cleaned later).
        minted: list[int] = []
        for b in blocks.values():
            for e in b.out_edges:
                if e.etype is EdgeType.TAILCALL and \
                        e.dst.start not in functions:
                    func = Function(e.dst.start, f"func_{e.dst.start:x}",
                                    e.dst, from_symtab=False,
                                    discovered_via="tailcall")
                    func.status = parser.noreturn.status_of(e.dst.start)
                    functions[e.dst.start] = func
                    minted.append(e.dst.start)

        if accel is not None:
            dirty_funcs = set(minted)
            for s in flip_srcs:
                dirty_funcs.update(containing.get(s, ()))
    return None


def _assign_boundaries(parser: "ParallelParser",
                       functions: dict[int, Function],
                       closures: dict[int, set[int]] | None = None) -> None:
    """Step 3 — with ``closures`` (the converged round's memo from
    :func:`_correct_tail_calls`) the reachability walk is skipped: no
    edge mutated between that round's compute pass and here, so the
    closure values are already exact (same total charge either way)."""
    rt = parser.rt
    by_start = parser.blocks_by_start

    def assign(fa):
        addr, func = fa
        if closures is not None and addr in closures:
            closure = closures[addr]
            rt.charge(rt.cost.closure_per_block * len(closure))
        else:
            closure = _function_closure(rt, func)
        func.blocks = [by_start.get(s) for s in sorted(closure)
                       if by_start.get(s) is not None]

    rt.parallel_for(sorted(functions.items()), assign)


# --------------------------------------------------------------- step 4

def _remove_dead_functions(parser: "ParallelParser",
                           functions: dict[int, Function]
                           ) -> dict[int, Function]:
    """Drop discovered functions with no incoming inter-procedural edges."""
    incoming: set[int] = set()
    for addr, func in functions.items():
        for b in func.blocks:
            for e in b.out_edges:
                if e.etype.interprocedural:
                    incoming.add(e.dst.start)
    kept: dict[int, Function] = {}
    for addr, func in sorted(functions.items()):
        if func.from_symtab or addr in incoming:
            kept[addr] = func
        else:
            parser.stats.n_funcs_removed += 1
            parser.rt.metrics.inc("finalize.dead_functions_removed")
    return kept


def _finalize_statuses(parser: "ParallelParser",
                       functions: dict[int, Function]) -> None:
    """Give finalization-created functions a schedule-independent status.

    Functions minted during tail-call correction never went through the
    wave fixed point; resolve them from their (now final) closure so the
    result is identical regardless of whether a given entry was discovered
    during traversal or during correction.
    """
    from repro.core.cfg import ReturnStatus
    from repro.isa.instructions import ControlFlowKind

    def summary(func: Function) -> tuple[bool, set[int]]:
        has_ret = any(b.last_kind is ControlFlowKind.RETURN
                      for b in func.blocks)
        tails = {e.dst.start for b in func.blocks for e in b.out_edges
                 if e.etype is EdgeType.TAILCALL}
        return has_ret, tails

    changed = True
    while changed:
        changed = False
        for func in functions.values():
            if func.status is not ReturnStatus.UNSET:
                continue
            has_ret, tails = summary(func)
            statuses = [functions[t].status for t in tails
                        if t in functions]
            if has_ret or ReturnStatus.RETURN in statuses:
                func.status = ReturnStatus.RETURN
                changed = True
    for func in functions.values():
        if func.status is ReturnStatus.UNSET:
            func.status = ReturnStatus.NORETURN
