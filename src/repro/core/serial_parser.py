"""Legacy serial CFG construction: the pre-parallel Dyninst model.

Section 4.2 assesses existing serial algorithms: they construct an
increasing chain ``G0 ≼ G1 ≼ … ≼ Gn`` with *no correction phase*, and
their results depend on the order functions are analyzed (Listing 1's
tail-call inconsistency) and on the order jump tables are resolved.

:class:`LegacySerialParser` reproduces that behaviour: single worker,
caller-controlled function analysis order, expansion phase only (no
finalization).  Tests use it to exhibit the order-dependence the paper
identifies, and to show that the parallel parser's finalization restores a
consistent answer for every order.
"""

from __future__ import annotations

from repro.binary.loader import LoadedBinary
from repro.core.cfg import ParsedCFG
from repro.core.finalize import _assign_boundaries
from repro.core.parallel_parser import ParallelParser, ParseOptions
from repro.runtime.serial import SerialRuntime


class LegacySerialParser:
    """Order-sensitive serial parser (expansion phase only)."""

    def __init__(self, binary: LoadedBinary,
                 order: list[int] | None = None,
                 options: ParseOptions | None = None):
        """``order``: entry addresses in desired analysis order; entries
        not listed are analyzed afterwards in address order."""
        self.binary = binary
        self._order = order or []
        opts = options or ParseOptions()
        opts.sort_functions = False
        opts.task_parallel = True  # serial runtime runs tasks FIFO
        self._rt = SerialRuntime()
        self._parser = ParallelParser(binary, self._rt, opts)

    @property
    def clock(self) -> int:
        return self._rt.now()

    def parse(self) -> ParsedCFG:
        return self._rt.run(self._execute)

    def _execute(self) -> ParsedCFG:
        parser = self._parser
        initial = parser._init_functions()
        if self._order:
            rank = {addr: i for i, addr in enumerate(self._order)}
            initial.sort(key=lambda fs: (rank.get(fs[0].addr, len(rank)),
                                         fs[0].addr))
        parser._traverse_tasked(initial)
        parser._noreturn_waves()

        # Expansion only: assign boundaries, skip every correction step.
        functions = {addr: f for addr, f in parser.functions.sorted_items()}
        _assign_boundaries(parser, functions)
        blocks = [b for _, b in parser.blocks_by_start.sorted_items()
                  if b.end is not None]
        tables = [info for _, info in parser.jump_tables.sorted_items()]
        stats = parser.stats
        stats.n_functions = len(functions)
        stats.n_blocks = len(blocks)
        stats.n_edges = sum(len(b.out_edges) for b in blocks)
        return ParsedCFG(functions=list(functions.values()), blocks=blocks,
                         jump_tables=tables, stats=stats)
