"""The paper's primary contribution: parallel CFG construction.

Two layers:

- a **formal layer** (:mod:`graphstate`, :mod:`operations`,
  :mod:`partial_order`, :mod:`properties`) encoding Section 3's
  ``G = ⟨B,C,E,F⟩`` abstraction, the six core operations, the partial
  order ``≼`` and the Section 4 property checkers — small, pure, and
  property-tested;
- an **execution layer** (:mod:`cfg`, :mod:`parallel_parser`,
  :mod:`serial_parser`, :mod:`noreturn`, :mod:`jump_table`,
  :mod:`tailcall`, :mod:`finalize`) implementing Section 5's parallel
  algorithm with the five invariants on real data structures, plus the
  legacy order-sensitive serial parser used for the Section 4.2
  assessment.
"""

from repro.core.cfg import (
    Block,
    Edge,
    EdgeType,
    Function,
    JumpTableInfo,
    ParseStats,
    ParsedCFG,
    ReturnStatus,
)
from repro.core.graphstate import CodeSpace, EdgeKind, FEdge, GraphState
from repro.core.jump_table import JumpTableOptions, analyze_jump_table
from repro.core.parallel_parser import (
    ParallelParser,
    ParseOptions,
    parse_binary,
)
from repro.core.partial_order import precedes
from repro.core.serial_parser import LegacySerialParser

__all__ = [
    "Block",
    "Edge",
    "EdgeType",
    "Function",
    "JumpTableInfo",
    "ParseStats",
    "ParsedCFG",
    "ReturnStatus",
    "CodeSpace",
    "EdgeKind",
    "FEdge",
    "GraphState",
    "JumpTableOptions",
    "analyze_jump_table",
    "ParallelParser",
    "ParseOptions",
    "parse_binary",
    "precedes",
    "LegacySerialParser",
]
