"""Tail-call identification heuristics (Section 2.1 / Listing 1).

Parse-time heuristics, applied when a direct branch is encountered, in
this order (as in Dyninst):

1. a branch to a *known function entry* is a tail call;
2. a branch to a block already reachable through intra-procedural edges
   of the current function is **not** a tail call;
3. a branch preceded by stack-frame teardown is a tail call;
4. otherwise: not a tail call.

These are heuristic and order-sensitive — Listing 1 of the paper shows two
functions branching to one address where the verdict depends on analysis
order.  CFG finalization (:mod:`repro.core.finalize`) applies the paper's
three correction rules to restore a consistent answer.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.cfg import Block


def is_tail_call(
    target: int,
    src_block: Block,
    is_known_entry: Callable[[int], bool],
    reached_in_function: Callable[[int], bool],
) -> bool:
    """Apply the parse-time heuristics to an unconditional branch."""
    if is_known_entry(target):
        return True
    if reached_in_function(target):
        return False
    if src_block.has_teardown:
        return True
    return False


def conditional_branch_is_tail_call(
    target: int,
    is_known_entry: Callable[[int], bool],
) -> bool:
    """Conditional branches are tail calls only toward known entries.

    This is how outlined ``.cold`` fragments (separate symbols) end up
    excluded from their parent function — the behaviour the paper's
    correctness study observed as difference category 2.
    """
    return is_known_entry(target)
