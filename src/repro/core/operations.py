"""The six core CFG operations of Section 3, as pure functions.

Each operation maps an immutable :class:`~repro.core.graphstate.GraphState`
to a new state, given the :class:`~repro.core.graphstate.CodeSpace` that
abstracts the underlying binary.  Property tests in
``tests/core/test_properties.py`` verify the paper's Section 4 claims
directly against these definitions: commutativity of ``O_BER``/``O_DEC``/
``O_ER``, the monotonic ordering of ``O_IEC`` under a monotone target
oracle, and its failure under an over-approximating oracle.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

from repro.core.graphstate import CodeSpace, EdgeKind, FEdge, GraphState

#: An indirect-target oracle: given the current graph and the indirect
#: block's end address, produce statically determined targets.  The paper's
#: monotonicity property holds when the oracle is monotone in the graph.
IndirectOracle = Callable[[GraphState, int], frozenset[int]]


def ober(code: CodeSpace, g: GraphState, t: int) -> GraphState:
    """Block End Resolution: resolve candidate ``[t]`` to a real block.

    Implements the three cases of the paper's definition: block splitting,
    early block ending, and linear parsing.  No-op if ``t`` is not a
    candidate of ``g`` (operations are only applicable to discovered
    elements — the applicability dependency).
    """
    if t not in g.candidates:
        return g
    if not (code.base <= t < code.limit):
        # Undecodable address: the candidate resolves to nothing.
        return replace(g, candidates=g.candidates - {t})

    # Case 1: block splitting — t falls strictly inside an existing block.
    host = g.block_containing(t)
    if host is not None:
        s, e = host
        g = g.without_block(host)
        g = g.with_block(s, t)
        g = g.with_block(t, e)
        return g.with_edge(FEdge(t, t, EdgeKind.FALL))

    # Find where linear parsing from t would end.
    nxt = code.next_cf_end(t)
    linear_end = nxt[0] if nxt is not None else code.limit

    # Case 2: early block ending — an existing block starts at s in
    # (t, linear_end) with no control-flow instruction in [t, s).
    starts_after = sorted(s for s, _ in g.blocks if t < s < linear_end)
    if starts_after:
        s = starts_after[0]
        g = g.with_block(t, s)
        return g.with_edge(FEdge(s, s, EdgeKind.FALL))

    # Case 3: linear parsing.
    return g.with_block(t, linear_end)


def odec(code: CodeSpace, g: GraphState, e: int) -> GraphState:
    """Direct Edge Creation: append outgoing edges of the block ending at ``e``.

    The operation is identified by the block's *end address*: it depends
    only on the terminating control-flow instruction ending there — the
    fact the paper's commutativity argument rests on (a split may shrink
    the block, but its end, and hence this operation, is unaffected).
    """
    if g.block_ending(e) is None:
        return g
    cf = code.cf_at_end(e)
    if cf is None:
        return g
    kind, targets = cf
    if kind is EdgeKind.JUMP:
        for t in targets:
            g = g.with_candidate(t)
            g = g.with_edge(FEdge(e, t, EdgeKind.JUMP))
    elif kind is EdgeKind.COND_TAKEN:
        for t in targets:
            g = g.with_candidate(t)
            g = g.with_edge(FEdge(e, t, EdgeKind.COND_TAKEN))
        g = g.with_candidate(e)
        g = g.with_edge(FEdge(e, e, EdgeKind.FALL))
    elif kind is EdgeKind.CALL:
        for t in targets:
            g = g.with_candidate(t)
            g = g.with_edge(FEdge(e, t, EdgeKind.CALL))
    # returns/halts/indirects add no direct edges
    return g


def ocfec(code: CodeSpace, g: GraphState, call_edge: FEdge,
          returns: Callable[[int], bool]) -> GraphState:
    """Call Fall-through Edge Creation.

    ``returns`` is the non-returning analysis: correctness of this
    operation *depends* on it (the non-returning function dependency).
    """
    if call_edge.kind is not EdgeKind.CALL or call_edge not in g.edges:
        return g
    if not returns(call_edge.dst_start):
        return g
    e = call_edge.src_end
    g = g.with_candidate(e)
    return g.with_edge(FEdge(e, e, EdgeKind.CALL_FT))


def oiec(code: CodeSpace, g: GraphState, block_end: int,
         oracle: IndirectOracle) -> GraphState:
    """Indirect Edge Creation via a target oracle (jump-table analysis)."""
    if block_end not in code.indirect_ends:
        return g
    if g.block_ending(block_end) is None:
        return g
    for t in sorted(oracle(g, block_end)):
        g = g.with_candidate(t)
        g = g.with_edge(FEdge(block_end, t, EdgeKind.INDIRECT))
    return g


def ofei(code: CodeSpace, g: GraphState, edge: FEdge,
         is_tail_call: Callable[[GraphState, FEdge], bool] | None = None
         ) -> GraphState:
    """Function Entry Identification.

    Trivial for call edges; for branches it consults the (implementation-
    specific, order-sensitive) tail-call heuristic — which is why the paper
    classifies this operation as non-reorderable.
    """
    if edge not in g.edges:
        return g
    if edge.kind is EdgeKind.CALL:
        return g.with_entry(edge.dst_start)
    if is_tail_call is not None and is_tail_call(g, edge):
        return g.with_entry(edge.dst_start)
    return g


def oer(code: CodeSpace, g: GraphState, edge: FEdge) -> GraphState:
    """Edge Removal: drop ``edge`` and everything no longer reachable.

    Exactly the paper's definition: keep blocks/candidates reachable from
    any entry without traversing ``edge``, then restrict the edge set.
    """
    if edge not in g.edges:
        return g
    kept_edges = g.edges - {edge}

    # Reachability over nodes identified by start address.
    out_by_end: dict[int, list[FEdge]] = {}
    for ed in kept_edges:
        out_by_end.setdefault(ed.src_end, []).append(ed)

    block_by_start = {s: (s, e) for s, e in g.blocks}
    reached_blocks: set[tuple[int, int]] = set()
    reached_cands: set[int] = set()
    stack = [a for a in g.entries
             if a in block_by_start or a in g.candidates]
    seen_starts: set[int] = set()
    while stack:
        a = stack.pop()
        if a in seen_starts:
            continue
        seen_starts.add(a)
        b = block_by_start.get(a)
        if b is None:
            if a in g.candidates:
                reached_cands.add(a)
            continue
        reached_blocks.add(b)
        for ed in out_by_end.get(b[1], []):
            stack.append(ed.dst_start)

    final_edges = frozenset(
        ed for ed in kept_edges
        if any(b[1] == ed.src_end for b in reached_blocks)
        and (ed.dst_start in seen_starts)
    )
    return replace(g, blocks=frozenset(reached_blocks),
                   candidates=frozenset(reached_cands), edges=final_edges)
