"""Mutable CFG data model used by the parsers, and the final read-only view.

Concurrency contract (mirrors Section 6.1 of the paper):

- block *creation* is mediated by the blocks-by-start concurrent map
  (invariant 1): at most one :class:`Block` per start address;
- block *end registration*, edge creation and block splitting are mutually
  exclusive per end address via the block-ends map accessor
  (invariants 2–4);
- function creation is mediated by the functions map (invariant 5).

After construction the CFG becomes read-only and analyses iterate it
without synchronization (Section 7.2).  All iteration orders exposed by
:class:`ParsedCFG` are canonical (address-sorted), so results are
independent of construction schedule — the property the equivalence tests
pin down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instructions import ControlFlowKind, Instruction, Opcode


class EdgeType(enum.Enum):
    """CFG edge types (Section 3's edge classification, concretized)."""

    DIRECT = "direct"            # unconditional intra-procedural branch
    COND_TAKEN = "cond_taken"
    COND_FALLTHROUGH = "cond_ft"
    FALLTHROUGH = "fallthrough"  # split-induced / straight-line
    CALL = "call"                # inter-procedural call edge
    CALL_FT = "call_ft"          # call fall-through summary edge
    TAILCALL = "tailcall"        # inter-procedural branch
    INDIRECT = "indirect"        # resolved jump-table target

    @property
    def interprocedural(self) -> bool:
        return self in (EdgeType.CALL, EdgeType.TAILCALL)

    @property
    def intraprocedural(self) -> bool:
        return not self.interprocedural


class ReturnStatus(enum.Enum):
    """Non-returning analysis lattice (Meng & Miller 2016)."""

    UNSET = "unset"
    RETURN = "return"
    NORETURN = "noreturn"


class Edge:
    """A directed control-flow edge between two blocks.

    ``src``/``etype`` may be rewritten during block splits (edge moves),
    always under the source block-end accessor; ``etype`` may additionally
    be flipped once during tail-call correction in finalization.
    """

    __slots__ = ("src", "dst", "etype", "flipped")

    def __init__(self, src: "Block", dst: "Block", etype: EdgeType):
        self.src = src
        self.dst = dst
        self.etype = etype
        self.flipped = False  # tail-call correction flips each edge ≤ once

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Edge({self.src.start:#x}->{self.dst.start:#x}, "
                f"{self.etype.value})")


class Block:
    """A basic block (or candidate while ``end`` is None)."""

    __slots__ = ("start", "end", "insns", "out_edges", "in_edges",
                 "last_kind", "has_teardown")

    def __init__(self, start: int):
        self.start = start
        self.end: int | None = None
        self.insns: list[Instruction] = []
        self.out_edges: list[Edge] = []
        self.in_edges: list[Edge] = []
        self.last_kind: ControlFlowKind | None = None
        self.has_teardown = False  # LEAVE / net positive SP delta observed

    @property
    def is_candidate(self) -> bool:
        return self.end is None

    @property
    def is_empty(self) -> bool:
        """Zero-length block (candidate that hit undecodable bytes)."""
        return self.end is not None and self.end <= self.start

    @property
    def range(self) -> tuple[int, int]:
        assert self.end is not None
        return (self.start, self.end)

    def truncate(self, new_end: int) -> list[Instruction]:
        """Cut the block at ``new_end``; return the instructions cut off."""
        keep: list[Instruction] = []
        dropped: list[Instruction] = []
        for i in self.insns:
            (keep if i.address < new_end else dropped).append(i)
        self.insns = keep
        self.end = new_end
        self.last_kind = None
        self.has_teardown = any(
            i.opcode is Opcode.LEAVE or (i.sp_delta() or 0) > 0
            for i in keep
        )
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        e = f"{self.end:#x}" if self.end is not None else "?"
        return f"Block({self.start:#x}, {e})"


class Function:
    """A function: an entry block plus (after finalization) its blocks."""

    __slots__ = ("addr", "name", "entry", "status", "from_symtab",
                 "blocks", "discovered_via")

    def __init__(self, addr: int, name: str, entry: Block,
                 from_symtab: bool, discovered_via: str = "symtab"):
        self.addr = addr
        self.name = name
        self.entry = entry
        self.status = ReturnStatus.UNSET
        self.from_symtab = from_symtab
        self.discovered_via = discovered_via  # symtab|call|tailcall
        self.blocks: list[Block] = []         # assigned at finalization

    def ranges(self) -> list[tuple[int, int]]:
        """Merged, sorted [lo, hi) ranges of this function's blocks."""
        spans = sorted(b.range for b in self.blocks if not b.is_empty)
        out: list[tuple[int, int]] = []
        for lo, hi in spans:
            if out and lo <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], hi))
            else:
                out.append((lo, hi))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name!r}@{self.addr:#x})"


@dataclass
class JumpTableInfo:
    """Result of analyzing one indirect jump."""

    block_start: int          #: block containing the indirect jump
    table_addr: int | None    #: resolved table base (None if unresolved)
    n_entries: int            #: entries read
    bounded: bool             #: True if a bound check was recovered
    targets: list[int] = field(default_factory=list)
    trimmed: int = 0          #: entries removed by overlap finalization


@dataclass
class ParseStats:
    """Construction statistics reported alongside the CFG."""

    n_functions: int = 0
    n_blocks: int = 0
    n_edges: int = 0
    n_splits: int = 0
    n_waves: int = 0
    n_jt_resolved: int = 0
    n_jt_unresolved: int = 0
    n_jt_overapprox: int = 0
    n_edges_trimmed: int = 0
    n_tailcall_flips: int = 0
    n_funcs_removed: int = 0


class ParsedCFG:
    """Read-only CFG produced by a parser (plus finalization)."""

    def __init__(self, functions: list[Function], blocks: list[Block],
                 jump_tables: list[JumpTableInfo], stats: ParseStats):
        self._functions = sorted(functions, key=lambda f: (f.addr, f.name))
        self._blocks = sorted((b for b in blocks), key=lambda b: b.start)
        self.jump_tables = sorted(jump_tables, key=lambda j: j.block_start)
        self.stats = stats
        self._func_by_addr = {f.addr: f for f in self._functions}

    # -- queries ---------------------------------------------------------------

    def functions(self) -> list[Function]:
        return list(self._functions)

    def function_at(self, addr: int) -> Function | None:
        return self._func_by_addr.get(addr)

    def blocks(self) -> list[Block]:
        return list(self._blocks)

    def block_at(self, addr: int) -> Block | None:
        for b in self._blocks:
            if b.start == addr:
                return b
        return None

    def edges(self) -> list[Edge]:
        out = []
        for b in self._blocks:
            out.extend(b.out_edges)
        return out

    def call_ft_sites(self) -> set[int]:
        """Addresses of call instructions that got a fall-through edge."""
        sites = set()
        for b in self._blocks:
            for e in b.out_edges:
                if e.etype is EdgeType.CALL_FT:
                    last = b.insns[-1] if b.insns else None
                    if last is not None:
                        sites.add(last.address)
        return sites

    def call_sites(self) -> set[int]:
        """Addresses of all call instructions in parsed blocks."""
        sites = set()
        for b in self._blocks:
            if b.insns and b.insns[-1].is_call:
                sites.add(b.insns[-1].address)
        return sites

    # -- canonical identity ------------------------------------------------------

    def signature(self) -> tuple:
        """Schedule-independent identity of the parse result.

        Two parses (any worker count, any backend) of the same binary must
        produce equal signatures — the paper's core correctness property
        ("the relative speed of threads will not impact the final
        results").
        """
        blocks = tuple(sorted(b.range for b in self._blocks
                              if not b.is_empty))
        edges = tuple(sorted(
            (e.src.start, e.dst.start, e.etype.value)
            for b in self._blocks for e in b.out_edges
        ))
        funcs = tuple(sorted(
            (f.addr, f.status.value, tuple(f.ranges()))
            for f in self._functions
        ))
        return (blocks, edges, funcs)

    def to_networkx(self):
        """Whole-program digraph (block starts as nodes) for analyses."""
        import networkx as nx

        g = nx.DiGraph()
        for b in self._blocks:
            g.add_node(b.start, block=b)
        for b in self._blocks:
            for e in b.out_edges:
                g.add_edge(e.src.start, e.dst.start, etype=e.etype)
        return g
