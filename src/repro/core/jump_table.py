"""Jump-table analysis: backward slicing + symbolic evaluation.

Mirrors the paper's pipeline (Sections 2.1/2.2/5.3): collect the backward
slice of the indirect jump, lift it to symbolic expressions (Dyninst
lifts slices to ROSE IR — our analog is :mod:`repro.analyses.symexpr`),
and match the jump-target expression against the bounded-table idiom
``Load(base + idx*8)``:

- a **constant** target expression is a statically-resolved indirect jump
  (one edge, no table);
- a table whose **base** is constant needs an index **bound**: a
  ``CMP idx, k`` + ``JA`` guard dominating the load gives ``k+1``
  entries.  A bound obscured through memory is unrecoverable, and then:

  - in **union mode** (the paper's fix) the analysis scans entries while
    they look like text addresses, up to ``max_scan`` — the deliberate
    over-approximation that finalization trims with the "compilers do
    not emit overlapping jump tables" observation;
  - in **strict mode** (pre-fix Dyninst, kept for the ablation) it gives
    up and returns no targets, violating monotonic ordering;

- a table base that itself comes out of memory (``STORE``/``LOAD``
  through the stack) leaves the expression unresolvable — difference
  category 3 of Section 8.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyses.symexpr import (
    Const,
    TablePattern,
    lift_slice,
    match_table_pattern,
)
from repro.binary.format import BinaryImage
from repro.core.cfg import Block, EdgeType, JumpTableInfo
from repro.errors import ImageFormatError
from repro.isa.instructions import Cond, Instruction, Opcode
from repro.isa.registers import Reg
from repro.runtime.api import Runtime


@dataclass(frozen=True)
class JumpTableOptions:
    union_mode: bool = True  #: scan on unknown bound instead of failing
    max_scan: int = 64       #: over-approximation cap
    max_pred_depth: int = 4  #: backward-slice depth across predecessors


def analyze_jump_table(
    rt: Runtime,
    image: BinaryImage,
    block: Block,
    options: JumpTableOptions = JumpTableOptions(),
) -> JumpTableInfo:
    """Analyze the indirect jump terminating ``block``."""
    rt.charge(rt.cost.jump_table_base)
    info = JumpTableInfo(block_start=block.start, table_addr=None,
                         n_entries=0, bounded=False)

    ijmp = block.insns[-1] if block.insns else None
    if ijmp is None or ijmp.opcode is not Opcode.IJMP:
        return info
    target_reg = Reg(ijmp.operands[0])

    # 1. Backward slice of the target register.
    slice_insns = _collect_slice(block, target_reg, options)
    rt.charge(rt.cost.jump_table_per_insn * max(1, len(slice_insns)))

    # 2. Lift to a symbolic expression of the jump target.
    expr = lift_slice(slice_insns, target_reg)
    pattern = match_table_pattern(expr)
    text = image.section_containing(block.start)

    if isinstance(pattern, Const):
        # Statically resolved single target (constant-folded ijmp).
        if text is not None and text.contains(pattern.value):
            info.targets = [pattern.value]
            info.n_entries = 1
            info.bounded = True
        return info
    if pattern is None or pattern.scale != 8:
        return info  # unresolvable (e.g. table base spilled to the stack)

    info.table_addr = pattern.base
    if pattern.index.const_value is not None:
        # Constant index: one statically known entry.
        try:
            word = image.read_word(pattern.base
                                   + 8 * pattern.index.const_value)
        except ImageFormatError:
            return info
        if text is not None and text.contains(word):
            info.targets = [word]
            info.n_entries = 1
            info.bounded = True
        return info

    # 3. Recover the index bound from the dominating CMP/JA guard.
    idx_reg = _index_register(slice_insns)
    bound = _find_bound(block, idx_reg, options) if idx_reg is not None \
        else None

    if bound is not None:
        info.bounded = True
        n = bound + 1
    elif options.union_mode:
        n = options.max_scan  # scan until entries stop looking like code
    else:
        return info  # strict mode: give up (pre-fix Dyninst behaviour)

    targets: list[int] = []
    for i in range(n):
        try:
            word = image.read_word(pattern.base + 8 * i)
        except ImageFormatError:
            break
        if text is None or not text.contains(word):
            if info.bounded:
                continue  # bounded tables keep their declared size
            break         # unbounded scan stops at the first non-code word
        targets.append(word)
    info.targets = targets
    info.n_entries = n if info.bounded else len(targets)
    rt.charge(rt.cost.jump_table_per_target * max(1, len(targets)))
    return info


# ------------------------------------------------------------ slice collection

def _intra_preds(block: Block) -> list[Block]:
    return [e.src for e in block.in_edges
            if e.etype in (EdgeType.COND_FALLTHROUGH, EdgeType.FALLTHROUGH,
                           EdgeType.DIRECT)]

#: Registers never chased by the slice (frame/stack plumbing and flags).
_SLICE_STOPS = frozenset({Reg.FLAGS, Reg.SP, Reg.FP})


def _collect_slice(block: Block, target: Reg,
                   options: JumpTableOptions) -> list[Instruction]:
    """Collect the backward slice of ``target``, in execution order.

    Scans the block backwards, then single predecessor chains (first
    predecessor in address order wins at joins — the same single-path
    heuristic Dyninst's slices use), depth-limited.
    """

    def walk(b: Block, upto: int, wanted: set[Reg], depth: int
             ) -> list[Instruction]:
        collected: list[Instruction] = []  # reverse execution order
        remaining = set(wanted)
        for i in range(upto - 1, -1, -1):
            insn = b.insns[i]
            written = insn.regs_written() & remaining
            if written:
                collected.append(insn)
                remaining -= written
                remaining |= insn.regs_read() - _SLICE_STOPS
            if not remaining:
                return collected
        if depth < options.max_pred_depth and remaining:
            for pred in sorted(_intra_preds(b), key=lambda x: x.start):
                if pred is b or pred.end is None:
                    continue
                more = walk(pred, len(pred.insns), remaining, depth + 1)
                if more:
                    collected.extend(more)
                    break
        return collected

    rev = walk(block, len(block.insns) - 1, {target}, 0)
    rev.reverse()
    return rev


def _index_register(slice_insns: list[Instruction]) -> Reg | None:
    """The index register of the last table load in the slice."""
    for insn in reversed(slice_insns):
        if insn.opcode is Opcode.LOADIDX:
            return Reg(insn.operands[2])
    return None


# ------------------------------------------------------------- bound recovery

def _find_bound(load_block: Block, idx_reg: Reg,
                options: JumpTableOptions) -> int | None:
    """Recover the index bound from a dominating CMP/JA guard.

    Looks in the block containing the table load and then through intra
    predecessors that branch around it with ``JA`` (the guard's
    fall-through path is the bounded one): ``CMP_RI idx, k`` + ``JA``
    ⇒ at most k+1 entries.
    """

    def scan_block(b: Block, upto: int) -> int | None:
        for i in range(upto - 1, -1, -1):
            insn = b.insns[i]
            if insn.opcode is Opcode.JCC and insn.cond is Cond.A:
                # Find the comparison feeding this guard.
                for j in range(i - 1, -1, -1):
                    prev = b.insns[j]
                    if Reg.FLAGS in prev.regs_written():
                        if (prev.opcode is Opcode.CMP_RI
                                and Reg(prev.operands[0]) == idx_reg):
                            return prev.operands[1]
                        return None  # CMP_RR or unrelated: bound unknown
                return None
            if idx_reg in insn.regs_written():
                return None  # index redefined after any earlier guard
        return None

    found = scan_block(load_block, len(load_block.insns))
    if found is not None:
        return found
    seen: set[int] = set()
    frontier = [load_block]
    for _ in range(options.max_pred_depth):
        nxt: list[Block] = []
        for b in frontier:
            for pred in sorted(_intra_preds(b), key=lambda x: x.start):
                if pred.start in seen or pred.end is None:
                    continue
                seen.add(pred.start)
                found = scan_block(pred, len(pred.insns))
                if found is not None:
                    return found
                nxt.append(pred)
        frontier = nxt
        if not frontier:
            break
    return None
