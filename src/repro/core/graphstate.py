"""Immutable CFG states for the formal operations layer (Section 3).

The paper defines a CFG as ``G = ⟨B, C, E, F⟩``:

- ``B`` — basic blocks, address ranges ``[s, e)``;
- ``C`` — candidate blocks ``[t]`` with known start but unknown end;
- ``E`` — directed edges between blocks; the partial order preserves only
  the *end address of the source* and the *start address of the target*
  (splits may change everything else), so an edge is represented here as
  exactly that pair plus a kind;
- ``F`` — function entry addresses.

This layer exists to state and property-test the paper's Section 4 claims
(commutativity, monotonicity, dependencies); the high-performance mutable
CFG used by the parsers lives in :mod:`repro.core.cfg`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from enum import Enum


class EdgeKind(str, Enum):
    """Edge kinds in the formal layer."""

    JUMP = "jump"          # unconditional direct branch
    COND_TAKEN = "cond_t"  # conditional branch, taken
    FALL = "fall"          # fall-through (incl. split-induced)
    CALL = "call"          # function call
    CALL_FT = "call_ft"    # call fall-through summary edge
    INDIRECT = "ind"       # resolved indirect branch target


@dataclass(frozen=True, slots=True)
class FEdge:
    """A formal edge: (source block end, target block start, kind)."""

    src_end: int
    dst_start: int
    kind: EdgeKind


@dataclass(frozen=True)
class GraphState:
    """An immutable ``⟨B, C, E, F⟩`` tuple."""

    blocks: frozenset[tuple[int, int]] = frozenset()
    candidates: frozenset[int] = frozenset()
    edges: frozenset[FEdge] = frozenset()
    entries: frozenset[int] = frozenset()

    # -- factory -------------------------------------------------------------

    @classmethod
    def initial(cls, entry_addrs: set[int]) -> "GraphState":
        """``G0 = ⟨∅, F0, ∅, F0⟩`` (Section 3)."""
        return cls(candidates=frozenset(entry_addrs),
                   entries=frozenset(entry_addrs))

    # -- queries ---------------------------------------------------------------

    def block_starting(self, addr: int) -> tuple[int, int] | None:
        for b in self.blocks:
            if b[0] == addr:
                return b
        return None

    def block_ending(self, addr: int) -> tuple[int, int] | None:
        for b in self.blocks:
            if b[1] == addr:
                return b
        return None

    def block_containing(self, addr: int) -> tuple[int, int] | None:
        """The block with ``s < addr < e`` (strict interior), if any."""
        for s, e in self.blocks:
            if s < addr < e:
                return (s, e)
        return None

    def has_node_at(self, addr: int) -> bool:
        """True if a block or candidate starts at ``addr``."""
        return addr in self.candidates or self.block_starting(addr) is not None

    def address_intervals(self) -> list[tuple[int, int]]:
        """Merged, sorted intervals of addresses covered by blocks."""
        out: list[tuple[int, int]] = []
        for s, e in sorted(self.blocks):
            if out and s <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], e))
            else:
                out.append((s, e))
        return out

    # -- functional updates ----------------------------------------------------------

    def with_block(self, s: int, e: int) -> "GraphState":
        return replace(self, blocks=self.blocks | {(s, e)},
                       candidates=self.candidates - {s})

    def without_block(self, b: tuple[int, int]) -> "GraphState":
        return replace(self, blocks=self.blocks - {b})

    def with_candidate(self, t: int) -> "GraphState":
        if self.has_node_at(t):
            return self
        return replace(self, candidates=self.candidates | {t})

    def with_edge(self, edge: FEdge) -> "GraphState":
        return replace(self, edges=self.edges | {edge})

    def with_entry(self, addr: int) -> "GraphState":
        return replace(self, entries=self.entries | {addr})


@dataclass(frozen=True)
class CodeSpace:
    """The underlying binary, abstracted for the formal layer.

    A single instruction stream over ``[base, limit)`` described only by
    its control-flow instructions: each control-flow point is
    ``(end_addr, kind, static targets)``, meaning a control-flow
    instruction *ends* at ``end_addr`` (so a block starting at or before
    it ends there).  Between control-flow points the stream is ordinary
    instructions.
    """

    base: int
    limit: int
    cf_points: tuple[tuple[int, EdgeKind, tuple[int, ...]], ...] = ()
    #: ends of indirect-jump blocks (targets come from an oracle)
    indirect_ends: frozenset[int] = frozenset()

    def __post_init__(self):
        ends = [p[0] for p in self.cf_points]
        assert ends == sorted(ends), "cf points must be sorted"

    def _ends(self) -> list[int]:
        return [p[0] for p in self.cf_points]

    def next_cf_end(self, addr: int) -> tuple[int, EdgeKind, tuple[int, ...]] | None:
        """First control-flow point with end > addr, or None."""
        idx = bisect.bisect_right(self._ends(), addr)
        if idx < len(self.cf_points):
            return self.cf_points[idx]
        return None

    def cf_at_end(self, end: int) -> tuple[EdgeKind, tuple[int, ...]] | None:
        idx = bisect.bisect_left(self._ends(), end)
        if idx < len(self.cf_points) and self.cf_points[idx][0] == end:
            _, kind, targets = self.cf_points[idx]
            return kind, targets
        return None

    def has_cf_in(self, lo: int, hi: int) -> bool:
        """True if some control-flow instruction ends in (lo, hi]."""
        ends = self._ends()
        idx = bisect.bisect_right(ends, lo)
        return idx < len(ends) and ends[idx] <= hi
