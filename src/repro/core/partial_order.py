"""The partial order ``≼`` over control-flow graphs (Section 3).

``G1 ≼ G2`` iff the four conditions of the paper hold:

1. address coverage grows: addresses covered by blocks of G1 are covered
   by blocks of G2;
2. explicit control flow is preserved modulo block-range adjustment: for
   every edge, the (source end, target start) pair survives;
3. implicit control flow through every G1 block survives as a chain of
   G2 blocks linked by fall-through edges;
4. function entry labels are preserved (modulo range adjustment).
"""

from __future__ import annotations

from repro.core.graphstate import EdgeKind, GraphState


def _covers(intervals: list[tuple[int, int]], lo: int, hi: int) -> bool:
    """True if the merged interval list fully covers [lo, hi)."""
    for s, e in intervals:
        if s <= lo and hi <= e:
            return True
    return False


def addresses_subset(g1: GraphState, g2: GraphState) -> bool:
    """Condition 1: A1 ⊆ A2."""
    i2 = g2.address_intervals()
    return all(_covers(i2, s, e) for s, e in g1.blocks)


def edges_preserved(g1: GraphState, g2: GraphState) -> bool:
    """Condition 2: every (src_end, dst_start) pair of E1 survives in E2."""
    pairs2 = {(e.src_end, e.dst_start) for e in g2.edges}
    return all((e.src_end, e.dst_start) in pairs2 for e in g1.edges)


def implicit_flow_preserved(g1: GraphState, g2: GraphState) -> bool:
    """Condition 3: each G1 block is a fall-through chain of G2 blocks."""
    starts2 = {s: e for s, e in g2.blocks}
    fall_pairs = {(e.src_end, e.dst_start) for e in g2.edges
                  if e.kind in (EdgeKind.FALL, EdgeKind.CALL_FT)}
    for s0, end in g1.blocks:
        cur = s0
        hops = 0
        while True:
            if cur not in starts2:
                return False
            nxt = starts2[cur]
            if nxt == end:
                break
            if nxt > end:
                return False
            # Must be linked to the next piece by a fall-through edge.
            if (nxt, nxt) not in fall_pairs:
                return False
            cur = nxt
            hops += 1
            if hops > len(g2.blocks):
                return False  # cycle guard
    return True


def entries_preserved(g1: GraphState, g2: GraphState) -> bool:
    """Condition 4: every entry of G1 starts a node of G2's entry set."""
    return g1.entries <= g2.entries


def precedes(g1: GraphState, g2: GraphState) -> bool:
    """``g1 ≼ g2`` per the paper's four conditions."""
    return (addresses_subset(g1, g2)
            and edges_preserved(g1, g2)
            and implicit_flow_preserved(g1, g2)
            and entries_preserved(g1, g2))
