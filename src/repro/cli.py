"""Command-line interface: ``repro <command>``.

Commands:

- ``synth``     — generate a synthetic binary (optionally save to disk);
- ``parse``     — run parallel CFG construction and print statistics;
- ``hpcstruct`` — run the structure-recovery pipeline (Figure 2 phases);
- ``binfeat``   — run feature extraction over a generated corpus;
- ``check``     — run the correctness checker (Section 8.1); with
  ``--races`` sweep a workload across seeded schedules under the
  happens-before race detector, with ``--cfgsan`` parse the corpus with
  the CFG sanitizer enabled (see docs/SANITY.md);
- ``analyze``   — parallel interprocedural checkers over a workload or a
  seeded hostile corpus: call-graph SCC waves, summary fixpoint, and a
  deterministic ``repro.findings/1`` sidecar that is byte-identical
  across backends and worker counts (see docs/ANALYSES.md);
- ``fuzz``      — seeded differential-fuzzing campaign over the hostile
  synthesis presets: every case runs on all backends (plus fault-plan
  and sanity axes) and divergences are optionally delta-reduced to
  minimal spec-level repros (see docs/FUZZING.md);
- ``corpus``    — crash-isolated, resumable corpus driver: schedule a
  seeded corpus of synthesized binaries over the shared procs pool
  under per-binary supervision, journal every outcome, quarantine
  binaries that exhaust their attempt budget, and resume after any
  coordinator death with ``--resume`` (see docs/ROBUSTNESS.md);
- ``lint``      — static accessor-discipline lint over the source tree;
- ``trace``     — render the Figure-2 timeline plus the metrics table
  for one traced run, optionally exporting the versioned run-report
  JSON (schema: ``docs/OBSERVABILITY.md``).

Workloads are either preset names (``tiny``, ``llnl1``, ``llnl2``,
``camellia``, ``tensorflow``) or paths to ``.sbin`` images produced by
``synth --output``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.binary.loader import load_image
from repro.core.parallel_parser import ParseOptions, parse_binary
from repro.runtime import make_runtime
from repro.synth import (
    camellia_like,
    llnl1_like,
    llnl2_like,
    tensorflow_like,
    tiny_binary,
)

_PRESETS = {
    "tiny": lambda scale: tiny_binary(),
    "llnl1": lambda scale: llnl1_like(scale=scale),
    "llnl2": lambda scale: llnl2_like(scale=scale),
    "camellia": lambda scale: camellia_like(scale=scale),
    "tensorflow": lambda scale: tensorflow_like(scale=scale),
}


def _load_workload(spec: str, scale: float):
    """Resolve a preset name or image path to (LoadedBinary, synth|None)."""
    if spec in _PRESETS:
        sb = _PRESETS[spec](scale)
        return sb.binary, sb
    return load_image(spec), None


def _add_runtime_args(p: argparse.ArgumentParser) -> None:
    from repro.runtime import BACKENDS

    p.add_argument("--workers", "-j", type=int, default=8,
                   help="number of (simulated or real) workers")
    p.add_argument("--runtime", "--backend", dest="runtime",
                   choices=list(BACKENDS),
                   default="vtime", help="execution backend")
    p.add_argument("--scale", type=float, default=0.1,
                   help="workload scale factor for presets")
    p.add_argument("--no-metrics", action="store_true",
                   help="opt out of structured metrics collection")
    p.add_argument("--shard-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="procs only: per-shard deadline for one pool "
                        "attempt (0 disables the deadline)")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="procs only: pool re-dispatches per shard before "
                        "inline re-execution")
    p.add_argument("--fault-plan", type=str, default=None, metavar="SPEC",
                   help="procs only: deterministic fault-injection plan, "
                        "e.g. 'exc@1x1,delay@0=2' "
                        "(grammar in docs/ROBUSTNESS.md; also read from "
                        "the REPRO_FAULT_PLAN environment variable)")


def _make_rt(args, **kw):
    n = 1 if args.runtime == "serial" else args.workers
    kw.setdefault("enable_metrics", not getattr(args, "no_metrics", False))
    if args.runtime == "procs":
        if getattr(args, "shard_deadline", None) is not None:
            kw.setdefault("shard_deadline",
                          args.shard_deadline if args.shard_deadline > 0
                          else None)
        if getattr(args, "max_retries", None) is not None:
            kw.setdefault("max_retries", args.max_retries)
        if getattr(args, "fault_plan", None) is not None:
            from repro.runtime.faults import FaultPlan
            kw.setdefault("fault_plan",
                          FaultPlan.from_spec(args.fault_plan))
    return make_runtime(args.runtime, n, **kw)


def _makespan_field(args, rt) -> tuple[str, int | float]:
    """(key, value) for the makespan: wall-clock backends report seconds."""
    if args.runtime in ("threads", "procs"):
        return "makespan_seconds", rt.makespan
    return "makespan_cycles", rt.makespan


def cmd_synth(args) -> int:
    binary, sb = _load_workload(args.workload, args.scale)
    img = binary.image
    info = {
        "name": img.name,
        "total_bytes": img.total_size,
        "text_bytes": img.text_size,
        "debug_bytes": img.debug_size,
        "symbols": len(binary.symtab),
        "entries": len(binary.entry_addresses()),
    }
    if sb is not None:
        info["functions"] = len(sb.spec.functions)
        info["jump_tables"] = len(sb.ground_truth.jump_tables)
    if args.output:
        img.save(args.output)
        info["saved_to"] = args.output
    print(json.dumps(info, indent=2))
    return 0


def cmd_parse(args) -> int:
    binary, _ = _load_workload(args.workload, args.scale)
    rt = _make_rt(args)
    cfg = parse_binary(binary, rt, ParseOptions())
    s = cfg.stats
    out = {
        "binary": binary.name,
        "workers": rt.num_workers,
        "functions": s.n_functions,
        "blocks": s.n_blocks,
        "edges": s.n_edges,
        "splits": s.n_splits,
        "waves": s.n_waves,
        "jump_tables": {
            "resolved": s.n_jt_resolved,
            "unresolved": s.n_jt_unresolved,
            "over_approximated": s.n_jt_overapprox,
            "edges_trimmed": s.n_edges_trimmed,
        },
        "tailcall_flips": s.n_tailcall_flips,
    }
    key, value = _makespan_field(args, rt)
    out[key] = value
    if args.runtime == "procs" and rt.metrics.enabled:
        out["procs"] = {
            "shards": rt.metrics.counter("procs.shards"),
            "pool_fallback": rt.metrics.counter("procs.pool_fallback"),
            "merged_cache_insns":
                rt.metrics.counter("procs.merged_cache_insns"),
            "duplicate_insns":
                rt.metrics.counter("procs.duplicate_insns"),
            "merged_blocks": rt.metrics.counter("procs.merge.blocks"),
            "merged_edges": rt.metrics.counter("procs.merge.edges"),
            "merge_end_splits":
                rt.metrics.counter("procs.merge.end_splits"),
            "frontier_records":
                rt.metrics.counter("procs.frontier.records"),
            "shard_timeouts": rt.metrics.counter("procs.shard_timeout"),
            "retries": (rt.metrics.counter("procs.retry.dispatch")
                        + rt.metrics.counter("procs.retry.inline")),
            "pool_respawns": rt.metrics.counter("procs.pool_respawn"),
            "shm_segments": rt.metrics.counter("procs.shm.segments"),
            "shm_bytes": rt.metrics.counter("procs.shm.bytes"),
            "shm_fallback": rt.metrics.counter("procs.shm.fallback"),
            "overlap_fragments":
                rt.metrics.counter("procs.overlap.fragments"),
            "degraded_to": rt.degradation["level"],
            "fault_events": len(rt.fault_events),
        }
    print(json.dumps(out, indent=2))
    return 0


def cmd_hpcstruct(args) -> int:
    from repro.apps.hpcstruct import hpcstruct

    binary, _ = _load_workload(args.workload, args.scale)
    rt = _make_rt(args)
    res = hpcstruct(binary, rt)
    out = {
        "binary": binary.name,
        "workers": rt.num_workers,
        "functions": len(res.structure),
        "phases_cycles": res.phase_durations,
        "dwarf_cycles": res.dwarf_time,
        "cfg_cycles": res.cfg_time,
        "makespan_cycles": res.makespan,
    }
    print(json.dumps(out, indent=2))
    return 0


def cmd_binfeat(args) -> int:
    from repro.apps.binfeat import binfeat
    from repro.synth import forensics_corpus

    corpus = forensics_corpus(n_binaries=args.n_binaries,
                              scale=args.scale)
    rt = _make_rt(args)
    res = binfeat([sb.binary for sb in corpus], rt)
    out = {
        "binaries": res.n_binaries,
        "workers": rt.num_workers,
        "functions": res.n_functions,
        "stages_cycles": res.stage_durations,
        "distinct_features": len(res.feature_index),
        "makespan_cycles": res.makespan,
    }
    print(json.dumps(out, indent=2))
    return 0


def cmd_sweep(args) -> int:
    """Worker-count sweep: the Figure 3 experiment for one binary."""
    binary, _ = _load_workload(args.workload, args.scale)
    rows = []
    base = None
    counts = [int(x) for x in args.workers_list.split(",")]
    for n in counts:
        rt = make_runtime("vtime", n)
        parse_binary(binary, rt, ParseOptions())
        if base is None:
            base = rt.makespan
        rows.append({"workers": n, "makespan_cycles": rt.makespan,
                     "speedup": round(base / rt.makespan, 2)})
    print(json.dumps({"binary": binary.name, "sweep": rows}, indent=2))
    return 0


def cmd_trace(args) -> int:
    """One traced vtime run: Figure-2 timeline + metrics table (+ JSON)."""
    from repro.runtime.tracefmt import (
        render_metrics,
        render_phase_table,
        render_trace,
        run_report,
        validate_report,
    )

    binary, _ = _load_workload(args.workload, args.scale)
    rt = make_runtime("vtime", args.workers, enable_trace=True,
                      enable_metrics=not args.no_metrics)
    if args.app == "parse":
        parse_binary(binary, rt, ParseOptions())
    else:
        from repro.apps.hpcstruct import hpcstruct

        hpcstruct(binary, rt)
    print(f"{args.app} trace of {binary.name}: {rt.num_workers} workers, "
          f"makespan {rt.makespan:,} cycles")
    print()
    print(render_trace(rt.trace, width=args.width))
    print()
    print(render_phase_table(rt.trace))
    if not args.no_metrics:
        print()
        print(render_metrics(rt.metrics.snapshot()))
    if args.json:
        report = run_report(rt, workload=args.workload)
        errors = validate_report(report)
        if errors:
            raise RuntimeError(f"exported report is invalid: {errors}")
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"\nrun report written to {args.json}")
    return 0


def cmd_check(args) -> int:
    if args.races:
        return _check_races(args)
    if args.cfgsan:
        return _check_cfgsan(args)
    from repro.apps.checker import check_binary, summarize
    from repro.synth import coreutils_like_corpus

    corpus = coreutils_like_corpus(n_binaries=args.n_binaries)
    reports = []
    for sb in corpus:
        rt = _make_rt(args)
        cfg = parse_binary(sb.binary, rt)
        reports.append(check_binary(sb, cfg))
    if args.json:
        from repro.analyses.findings import findings_document, write_findings
        from repro.apps.checker import GROUNDTRUTH_CHECKS, report_to_findings
        from repro.runtime.tracefmt import validate_findings

        doc = findings_document(
            "groundtruth", list(GROUNDTRUTH_CHECKS),
            report_to_findings(reports),
            subject={"corpus": "coreutils_like_corpus",
                     "n_binaries": args.n_binaries})
        errors = validate_findings(doc)
        if errors:
            raise RuntimeError(f"findings document is invalid: {errors}")
        write_findings(args.json, doc)
        print(f"ground-truth findings written to {args.json}",
              file=sys.stderr)
    print(json.dumps(summarize(reports), indent=2))
    return 0


def _emit_race_report(args, report: dict) -> int:
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as f:
            f.write(text + "\n")
        print(f"race report written to {args.json}", file=sys.stderr)
    print(text)
    return 1 if report["findings"] else 0


def _check_races(args) -> int:
    """Happens-before race sweep: fixture or ground-truth corpus."""
    from repro.sanity.races import RaceDetector, run_race_sweep

    if args.fixture:
        from repro.sanity.fixtures import fixture_workload

        try:
            workload = fixture_workload(args.fixture)
        except KeyError as e:
            print(f"error: {e.args[0]}", file=sys.stderr)
            return 2
        report = run_race_sweep(
            workload, n_workers=args.workers,
            schedules=args.race_schedules, base_seed=args.seed,
            workload_name=f"fixture:{args.fixture}")
        return _emit_race_report(args, report)

    from repro.synth import coreutils_like_corpus

    det = RaceDetector()
    corpus = coreutils_like_corpus(n_binaries=args.n_binaries)
    for sb in corpus:
        def workload(rt, binary=sb.binary):
            parse_binary(binary, rt, ParseOptions())

        run_race_sweep(
            workload, n_workers=args.workers,
            schedules=args.race_schedules, base_seed=args.seed,
            detector=det,
            workload_name=f"coreutils_like_corpus({args.n_binaries})")
    report = det.report(
        workload=f"coreutils_like_corpus({args.n_binaries})",
        n_workers=args.workers)
    return _emit_race_report(args, report)


def _check_cfgsan(args) -> int:
    """Parse the corpus with the CFG/op-trace sanitizer enabled."""
    from repro.errors import SanityCheckError
    from repro.synth import coreutils_like_corpus

    corpus = coreutils_like_corpus(n_binaries=args.n_binaries)
    checks = violations = 0
    failed: list[str] = []
    for sb in corpus:
        rt = _make_rt(args)
        try:
            parse_binary(sb.binary, rt, ParseOptions(sanitize=True))
        except SanityCheckError as e:
            failed.append(sb.binary.name)
            violations += len(e.findings)
            print(f"{sb.binary.name}: {len(e.findings)} violation(s) "
                  f"at {e.where}", file=sys.stderr)
            for f in e.findings:
                print(f"  {f}", file=sys.stderr)
        if rt.metrics.enabled:
            checks += rt.metrics.counter("sanity.cfgsan.checks")
    print(json.dumps({
        "binaries": len(corpus),
        "checks": checks,
        "violations": violations,
        "failed": failed,
    }, indent=2))
    return 1 if failed else 0


def cmd_analyze(args) -> int:
    """Interprocedural checkers over a workload or a seeded corpus."""
    from repro.analyses.checkers import resolve_checks
    from repro.analyses.findings import findings_document, write_findings
    from repro.analyses.interproc import run_checkers
    from repro.runtime.tracefmt import validate_findings

    try:
        checks = resolve_checks(args.checks)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if args.corpus is not None:
        from repro.synth.hostile import HOSTILE_PRESETS, hostile_binary

        presets = tuple(args.presets) if args.presets else HOSTILE_PRESETS
        binaries = [
            hostile_binary(presets[i % len(presets)], seed=args.seed + i,
                           n_functions=args.n_functions).binary
            for i in range(args.corpus)]
        subject = {"corpus": {"count": args.corpus, "seed": args.seed,
                              "presets": list(presets),
                              "n_functions": args.n_functions}}
    elif args.workload:
        binary, _ = _load_workload(args.workload, args.scale)
        binaries = [binary]
        subject = {"workload": args.workload, "scale": args.scale}
    else:
        print("error: give a workload or --corpus N", file=sys.stderr)
        return 2

    findings: list[dict] = []
    stats = {"binaries": len(binaries), "functions": 0, "call_edges": 0,
             "sccs": 0, "waves": 0, "rounds": 0}
    for binary in binaries:
        cfg = parse_binary(binary, _make_rt(args))
        # Runtime.run is single-use: analysis gets its own fresh runtime.
        res = run_checkers(cfg, checks, rt=_make_rt(args),
                           binary=binary.name)
        findings.extend(res.findings)
        for k in ("functions", "call_edges", "sccs", "waves", "rounds"):
            stats[k] += res.stats[k]

    doc = findings_document("checkers", list(checks), findings,
                            subject=subject)
    errors = validate_findings(doc)
    if errors:
        raise RuntimeError(f"findings document is invalid: {errors}")
    if args.json:
        write_findings(args.json, doc)
        print(f"findings written to {args.json}", file=sys.stderr)
    print(json.dumps({
        "backend": args.runtime,
        "checks": list(checks),
        **stats,
        "findings": doc["summary"]["findings"],
        "by_rule": doc["summary"]["by_rule"],
    }, indent=2))
    return 0


def cmd_fuzz(args) -> int:
    """Seeded differential-fuzzing campaign (docs/FUZZING.md)."""
    from repro.fuzz.driver import fuzz_run
    from repro.runtime.metrics import MetricsRegistry
    from repro.runtime.tracefmt import validate_fuzz_report

    metrics = None if args.no_metrics else MetricsRegistry()
    report = fuzz_run(
        args.runs, args.seed,
        presets=tuple(args.presets) if args.presets else None,
        minimize=args.minimize, n_functions=args.n_functions,
        workers=args.workers, procs_workers=args.procs_workers,
        procs_inline=not args.procs_pool, include_shm=args.procs_pool,
        race_schedules=args.race_schedules, metrics=metrics)
    errors = validate_fuzz_report(report)
    if errors:
        raise RuntimeError(f"fuzz report is invalid: {errors}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"fuzz report written to {args.json}", file=sys.stderr)
    # stdout gets the digest-free view; the full per-case rows and any
    # minimized repro specs live in the --json sidecar.
    out = {k: report[k] for k in
           ("schema", "seed", "runs", "presets", "axes", "summary")}
    out["divergences"] = [
        {k: d[k] for k in ("index", "preset", "case_seed", "binary",
                           "failing", "reduce")}
        for d in report["divergences"]
    ]
    if metrics is not None:
        out["metrics"] = {
            k: v for k, v in sorted(
                metrics.snapshot()["counters"].items())
            if k.startswith("fuzz.")}
    print(json.dumps(out, indent=2))
    return 1 if report["divergences"] else 0


def cmd_corpus(args) -> int:
    """Crash-isolated, resumable corpus driver (docs/ROBUSTNESS.md)."""
    from pathlib import Path

    from repro.corpus import CORPUS_PRESETS, CorpusConfig, run_corpus
    from repro.corpus.report import REPORT_NAME
    from repro.runtime.faults import FaultPlan
    from repro.runtime.metrics import MetricsRegistry
    from repro.runtime.tracefmt import validate_corpus_report

    plan = (FaultPlan.from_spec(args.fault_plan)
            if args.fault_plan else None)
    config = None
    if not args.resume:
        config = CorpusConfig(
            count=args.count, seed=args.seed,
            presets=(tuple(args.presets) if args.presets
                     else CORPUS_PRESETS),
            n_functions=args.n_functions, attempts=args.attempts,
            verify=not args.no_verify, window=args.window,
            binary_deadline=args.binary_deadline,
            backend=args.backend, procs_workers=args.procs_workers,
            journal_batch=args.journal_batch)
    metrics = None if args.no_metrics else MetricsRegistry()
    summary = run_corpus(args.dir, config, resume=args.resume,
                         in_process=args.in_process, fault_plan=plan,
                         metrics=metrics)
    with open(Path(args.dir) / REPORT_NAME) as f:
        errors = validate_corpus_report(json.load(f))
    if errors:
        raise RuntimeError(f"corpus report is invalid: {errors}")
    if metrics is not None:
        summary["metrics"] = {
            k: v for k, v in sorted(
                metrics.snapshot()["counters"].items())
            if k.startswith("corpus.")}
    print(json.dumps(summary, indent=2))
    return 1 if summary["quarantined"] else 0


def cmd_lint(args) -> int:
    from repro.sanity.lint import LINT_RULES, run_lint

    findings = run_lint(paths=args.paths or None)
    if args.json is not None:
        from repro.analyses.findings import (
            canonical_bytes,
            finding,
            findings_document,
        )
        from repro.runtime.tracefmt import validate_findings

        doc = findings_document(
            "lint", list(LINT_RULES),
            [finding(f.rule, f.message, path=f.path, line=f.line)
             for f in findings],
            subject={"paths": list(args.paths) if args.paths else None})
        errors = validate_findings(doc)
        if errors:
            raise RuntimeError(f"findings document is invalid: {errors}")
        text = canonical_bytes(doc).decode()
        if args.json == "-":
            print(text, end="")
        else:
            with open(args.json, "w") as f:
                f.write(text)
            print(f"lint findings written to {args.json}",
                  file=sys.stderr)
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: {f.rule}: {f.message}")
        n = len(findings)
        print(f"{n} finding(s)" if n else "lint clean", file=sys.stderr)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Parallel binary code analysis (PPoPP 2021 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("synth", help="generate a synthetic binary")
    sp.add_argument("workload", help="preset name")
    sp.add_argument("--output", "-o", help="save image to this path")
    sp.add_argument("--scale", type=float, default=0.1)
    sp.set_defaults(fn=cmd_synth)

    pp = sub.add_parser("parse", help="parallel CFG construction")
    pp.add_argument("workload", help="preset name or .sbin path")
    _add_runtime_args(pp)
    pp.set_defaults(fn=cmd_parse)

    hp = sub.add_parser("hpcstruct", help="program structure recovery")
    hp.add_argument("workload", help="preset name or .sbin path")
    _add_runtime_args(hp)
    hp.set_defaults(fn=cmd_hpcstruct)

    bp = sub.add_parser("binfeat", help="forensic feature extraction")
    bp.add_argument("--n-binaries", type=int, default=8)
    _add_runtime_args(bp)
    bp.set_defaults(fn=cmd_binfeat)

    cp = sub.add_parser(
        "check", help="correctness vs ground truth / sanity analyses")
    cp.add_argument("--n-binaries", type=int, default=10)
    cp.add_argument("--races", action="store_true",
                    help="sweep seeded vtime schedules under the "
                         "happens-before race detector instead of the "
                         "ground-truth checker")
    cp.add_argument("--cfgsan", action="store_true",
                    help="parse the corpus with the CFG/op-trace "
                         "sanitizer enabled; violations fail the run")
    cp.add_argument("--race-schedules", type=int, default=6, metavar="N",
                    help="races only: schedules per workload (default 6)")
    cp.add_argument("--seed", type=int, default=0,
                    help="races only: base schedule seed (default 0)")
    cp.add_argument("--fixture", metavar="NAME",
                    help="races only: sweep a repro.sanity.fixtures "
                         "workload (e.g. counter-racy) instead of the "
                         "corpus")
    cp.add_argument("--json", metavar="PATH",
                    help="with --races: write the repro.races/1 report "
                         "to this path; otherwise write the ground-"
                         "truth repro.findings/1 sidecar")
    _add_runtime_args(cp)
    cp.set_defaults(fn=cmd_check)

    ap = sub.add_parser(
        "analyze",
        help="parallel interprocedural checkers (findings sidecar)")
    ap.add_argument("workload", nargs="?", default=None,
                    help="preset name or .sbin path (alternative to "
                         "--corpus)")
    ap.add_argument("--corpus", type=int, default=None, metavar="N",
                    help="analyze a seeded hostile corpus of N binaries "
                         "instead of one workload; binary i is a pure "
                         "function of (seed, i)")
    ap.add_argument("--seed", type=int, default=0,
                    help="corpus master seed (default 0)")
    ap.add_argument("--preset", action="append", dest="presets",
                    metavar="NAME",
                    help="corpus only: hostile preset to round-robin "
                         "through (repeatable; default: all presets)")
    ap.add_argument("--n-functions", type=int, default=None,
                    help="corpus only: override the per-binary function "
                         "count")
    ap.add_argument("--checks", default="all",
                    help="comma-separated check names, or 'all' "
                         "(default)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the repro.findings/1 sidecar to this "
                         "path (canonical bytes, backend-independent)")
    _add_runtime_args(ap)
    ap.set_defaults(fn=cmd_analyze)

    fz = sub.add_parser(
        "fuzz", help="seeded differential-fuzzing campaign")
    fz.add_argument("--runs", type=int, default=30,
                    help="number of fuzz cases (default 30)")
    fz.add_argument("--seed", type=int, default=0,
                    help="master seed; every per-case RNG is split off "
                         "this one value (default 0)")
    fz.add_argument("--preset", action="append", dest="presets",
                    metavar="NAME",
                    help="hostile preset axis to fuzz (repeatable; "
                         "default: all presets, round-robin)")
    fz.add_argument("--minimize", action="store_true",
                    help="delta-reduce each divergence to a minimal "
                         "spec-level repro")
    fz.add_argument("--n-functions", type=int, default=None,
                    help="override the per-case function count")
    fz.add_argument("--workers", "-j", type=int, default=4,
                    help="worker count for the vtime/threads axes")
    fz.add_argument("--procs-workers", type=int, default=2,
                    help="worker count for the procs axes")
    fz.add_argument("--procs-pool", action="store_true",
                    help="run the procs axes on a real process pool "
                         "(adds the shm-fallback axis; default is the "
                         "in-process sharded pipeline)")
    fz.add_argument("--race-schedules", type=int, default=2, metavar="N",
                    help="vtime schedules per case for the race-sweep "
                         "axis (default 2)")
    fz.add_argument("--json", metavar="PATH",
                    help="write the full repro.fuzz-report/1 document "
                         "(per-case digests, minimized repro specs) "
                         "to this path")
    fz.add_argument("--no-metrics", action="store_true",
                    help="opt out of fuzz.* metrics collection")
    fz.set_defaults(fn=cmd_fuzz)

    co = sub.add_parser(
        "corpus", help="crash-isolated, resumable corpus driver")
    co.add_argument("dir",
                    help="run directory (journal, quarantine bundles, "
                         "final corpus report)")
    co.add_argument("--resume", action="store_true",
                    help="replay the directory's journal, skip "
                         "completed work and finish the run (the "
                         "config is restored from the journal header)")
    co.add_argument("--count", type=int, default=50,
                    help="number of corpus binaries (default 50)")
    co.add_argument("--seed", type=int, default=0,
                    help="master seed; binary i is a pure function of "
                         "(seed, i) (default 0)")
    co.add_argument("--preset", action="append", dest="presets",
                    metavar="NAME",
                    help="preset to round-robin through (repeatable; "
                         "'benign' or any hostile preset; default: "
                         "benign + all hostile presets)")
    co.add_argument("--n-functions", type=int, default=None,
                    help="override the per-binary function count")
    co.add_argument("--attempts", type=int, default=3,
                    help="attempt budget per binary before quarantine "
                         "(default 3)")
    co.add_argument("--window", type=int, default=2,
                    help="inflight-binary window; also sizes the "
                         "shared pool admission gate (default 2)")
    co.add_argument("--binary-deadline", type=float, default=120.0,
                    metavar="SECONDS",
                    help="per-attempt deadline for one binary "
                         "(default 120)")
    co.add_argument("--backend", choices=["procs", "serial"],
                    default="procs",
                    help="analysis backend (default procs)")
    co.add_argument("--procs-workers", type=int, default=2,
                    help="worker count per procs parse (default 2)")
    co.add_argument("--in-process", action="store_true",
                    help="run procs shards in-process (no worker "
                         "pool; test/CI escape hatch)")
    co.add_argument("--no-verify", action="store_true",
                    help="skip the serial reference parse per binary "
                         "(disables divergence detection)")
    co.add_argument("--journal-batch", type=int, default=8,
                    metavar="N",
                    help="journal records per fsync batch (default 8)")
    co.add_argument("--fault-plan", metavar="SPEC",
                    help="deterministic fault injection, including the "
                         "corpus sites binary-crash/binary-hang/"
                         "journal-torn/coordinator-kill "
                         "(docs/ROBUSTNESS.md)")
    co.add_argument("--no-metrics", action="store_true",
                    help="opt out of corpus.* metrics collection")
    co.set_defaults(fn=cmd_corpus)

    lp = sub.add_parser(
        "lint", help="static accessor-discipline / determinism lint")
    lp.add_argument("paths", nargs="*",
                    help="files or directories to lint "
                         "(default: the repro source tree)")
    lp.add_argument("--json", nargs="?", const="-", default=None,
                    metavar="PATH",
                    help="emit a repro.findings/1 document (to PATH, "
                         "or stdout when no path is given)")
    lp.set_defaults(fn=cmd_lint)

    tp = sub.add_parser(
        "trace", help="render Figure-2 timeline + metrics for one run")
    tp.add_argument("workload", help="preset name or .sbin path")
    tp.add_argument("--workers", "-j", type=int, default=8,
                    help="number of simulated workers")
    tp.add_argument("--scale", type=float, default=0.1,
                    help="workload scale factor for presets")
    tp.add_argument("--app", choices=["hpcstruct", "parse"],
                    default="hpcstruct",
                    help="pipeline to trace (default: hpcstruct)")
    tp.add_argument("--width", type=int, default=96,
                    help="timeline width in columns")
    tp.add_argument("--json", metavar="PATH",
                    help="also export the versioned run-report JSON")
    tp.add_argument("--no-metrics", action="store_true",
                    help="opt out of structured metrics collection")
    tp.set_defaults(fn=cmd_trace)

    wp = sub.add_parser("sweep", help="worker-count speedup sweep")
    wp.add_argument("workload", help="preset name or .sbin path")
    wp.add_argument("--workers-list", default="1,2,4,8,16",
                    help="comma-separated worker counts")
    wp.add_argument("--scale", type=float, default=0.1)
    wp.set_defaults(fn=cmd_sweep)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
