"""Crash-isolated, resumable corpus driver (`repro corpus`).

The paper's BinFeat client parallelizes analysis *across* a 504-binary
corpus as well as within each binary; BCFA (PAPERS.md) pushes the same
shape to millions of programs.  At that scale the dominant failure mode
is no longer "a shard timed out" but "binary #3127 wedged the pool" or
"the coordinator was OOM-killed at hour two" — so this subsystem is
built robustness-first, on three pillars:

- **Per-binary supervision** (:mod:`repro.corpus.driver`) — every
  binary runs under a deadline and attempt budget; a crash, timeout or
  divergence quarantines *that binary* and the run continues.  The
  procs degradation ladder of docs/ROBUSTNESS.md still protects each
  parse; a corpus-level ladder sits above it (shrink the inflight
  window → drop the binary to the serial backend → quarantine).
- **Resumable journaling** (:mod:`repro.corpus.journal`) — an
  append-only ``journal.jsonl`` records every outcome with result
  digests, fsync'd in batches; ``repro corpus --resume <dir>`` after a
  ``kill -9`` replays it, skips completed work, and produces a final
  ``repro.corpus-report/1`` sidecar byte-identical to an uninterrupted
  run's (the report is a pure function of the journal).
- **Deterministic chaos** — corpus-level fault sites in
  :mod:`repro.runtime.faults` (``binary-crash``, ``binary-hang``,
  ``journal-torn``, ``coordinator-kill``) drive kill-and-resume tests
  in ``tests/corpus/``.

See docs/ROBUSTNESS.md for the supervision ladder, the journal format
and the quarantine triage workflow.
"""

from repro.corpus.driver import (  # noqa: F401
    CORPUS_PRESETS,
    CorpusConfig,
    corpus_program,
    run_corpus,
)
from repro.corpus.journal import JOURNAL_SCHEMA, Journal  # noqa: F401
from repro.corpus.report import build_report, render_report  # noqa: F401
