"""Append-only, crash-tolerant journal for the corpus driver.

One JSONL file (``journal.jsonl`` in the run directory) records the
run's configuration header and every per-binary outcome.  The write
discipline makes it the run's single source of truth across coordinator
death:

- records are appended to an in-memory buffer and flushed in batches
  (``write`` + ``flush`` + ``fsync``), so a ``kill -9`` loses at most
  one batch of *completed* work — which a resume simply re-analyzes
  (analysis is deterministic, so the replayed outcome is identical);
- quarantine records flush immediately: a quarantined binary's triage
  artifacts are already on disk, and losing the record would re-run a
  known-bad binary's whole attempt ladder on resume;
- replay tolerates a torn trailing line (a crash mid-``write``, or the
  ``journal-torn`` fault site): the file is truncated back to the last
  record boundary and appending continues.  A torn line *anywhere
  else* means real corruption and raises :class:`CorpusError`.

The ``journal-torn`` fault site (docs/ROBUSTNESS.md) tears a flush
deterministically: the batch's bytes are cut mid-record, fsync'd, and
the process dies via ``os._exit`` — exactly the state a power cut
leaves behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.errors import CorpusError
from repro.runtime.faults import FaultPlan

#: Version identifier of the journal file format.
JOURNAL_SCHEMA = "repro.corpus-journal/1"

#: Journal filename inside a corpus run directory.
JOURNAL_NAME = "journal.jsonl"


def _encode(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class Journal:
    """The append side of the corpus journal.

    Construct via :meth:`create` (fresh run: writes and fsyncs the
    header immediately) or :meth:`resume` (existing run: replays the
    body, truncates a torn tail, and returns the parsed records).
    """

    def __init__(self, path: Path, batch: int = 8,
                 fault_plan: FaultPlan | None = None):
        if batch < 1:
            raise CorpusError("journal batch size must be >= 1")
        self.path = Path(path)
        self.batch = batch
        self.fault_plan = fault_plan
        self._buf: list[str] = []
        #: 1-based count of flushes this *invocation* (the
        #: ``journal-torn`` site keys on it).
        self.flushes = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: Path, header: dict, batch: int = 8,
               fault_plan: FaultPlan | None = None) -> "Journal":
        """Start a fresh journal; the header is durable on return."""
        path = Path(path)
        if path.exists():
            raise CorpusError(
                f"journal already exists: {path} (use --resume)")
        j = cls(path, batch=batch, fault_plan=fault_plan)
        rec = dict(header)
        rec["kind"] = "header"
        rec["schema"] = JOURNAL_SCHEMA
        j.append(rec)
        j.flush()
        return j

    @classmethod
    def resume(cls, path: Path, batch: int = 8,
               fault_plan: FaultPlan | None = None
               ) -> tuple["Journal", dict, list[dict], bool]:
        """Replay an existing journal.

        Returns ``(journal, header, records, torn)``: the reopened
        append handle, the header record, every intact body record in
        order, and whether a torn trailing line was truncated away.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise CorpusError(f"no journal to resume at {path}") from None
        records, keep, torn = cls._replay(raw, str(path))
        if torn:
            with open(path, "r+b") as f:
                f.truncate(keep)
                f.flush()
                os.fsync(f.fileno())
        if not records or records[0].get("kind") != "header":
            raise CorpusError(f"journal {path} has no header record")
        header = records[0]
        if header.get("schema") != JOURNAL_SCHEMA:
            raise CorpusError(
                f"journal {path} has schema {header.get('schema')!r}, "
                f"this build reads {JOURNAL_SCHEMA!r}")
        j = cls(path, batch=batch, fault_plan=fault_plan)
        return j, header, records[1:], torn

    @staticmethod
    def _replay(raw: bytes, label: str) -> tuple[list[dict], int, bool]:
        """Parse journal bytes; tolerate exactly one torn *final* line.

        Returns ``(records, keep_bytes, torn)`` where ``keep_bytes`` is
        the length of the intact prefix.
        """
        records: list[dict] = []
        offset = 0
        torn = False
        for line in raw.splitlines(keepends=True):
            complete = line.endswith(b"\n")
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict):
                    raise ValueError("journal record is not an object")
            except ValueError:
                rec = None
            if rec is None or not complete:
                # Only the final line may be damaged (a torn write dies
                # with the process, so nothing can follow it).
                if offset + len(line) != len(raw):
                    raise CorpusError(
                        f"corrupt journal {label}: damaged record at "
                        f"byte {offset} is not the final line")
                torn = True
                break
            records.append(rec)
            offset += len(line)
        return records, offset, torn

    # -- appending -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Buffer one record; flushes when the batch fills."""
        self._buf.append(_encode(record))
        if len(self._buf) >= self.batch:
            self.flush()

    def flush(self) -> None:
        """Write, flush and fsync the buffered batch.

        The ``journal-torn`` fault site fires here, keyed on this
        invocation's 1-based flush ordinal: the batch is cut mid-record
        before the write, made durable, and the process dies — the
        resume path must then truncate the torn tail.
        """
        if not self._buf:
            return
        self.flushes += 1
        data = "".join(line + "\n" for line in self._buf)
        torn = (self.fault_plan is not None and
                self.fault_plan.fires("journal-torn", self.flushes, 1)
                is not None)
        if torn:
            # Cut inside the final record: drop its newline and half
            # its body, the way a mid-write power cut would.
            data = data[:max(1, len(data) - max(2, len(self._buf[-1]) // 2))]
        with open(self.path, "ab") as f:
            f.write(data.encode())
            f.flush()
            os.fsync(f.fileno())
        if torn:
            os._exit(86)
        self._buf.clear()

    def close(self) -> None:
        self.flush()

    @property
    def pending(self) -> int:
        """Records buffered but not yet durable."""
        return len(self._buf)


def iter_journal(path: Path) -> Iterator[dict]:
    """Read-only replay of every intact record (header included)."""
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        raise CorpusError(f"no journal at {path}") from None
    records, _, _ = Journal._replay(raw, str(path))
    return iter(records)


def summarize_records(records: list[dict]) -> dict[str, Any]:
    """Fold body records into per-binary outcome maps.

    Later records win per index, which makes replay idempotent: a
    re-analyzed binary (its completion record was buffered but never
    flushed when the coordinator died) just overwrites itself.
    """
    completed: dict[int, dict] = {}
    quarantined: dict[int, dict] = {}
    resumes = 0
    for rec in records:
        kind = rec.get("kind")
        if kind == "completed":
            idx = rec["index"]
            completed[idx] = rec
            quarantined.pop(idx, None)
        elif kind == "quarantined":
            idx = rec["index"]
            quarantined[idx] = rec
            completed.pop(idx, None)
        elif kind == "resume":
            resumes += 1
    return {"completed": completed, "quarantined": quarantined,
            "resumes": resumes}
