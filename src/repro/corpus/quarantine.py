"""Quarantine artifacts: everything needed to triage one bad binary.

A binary that exhausts its attempt budget is *quarantined*, not fatal:
the run continues, and this module writes a self-contained triage
bundle under ``<run dir>/quarantine/<NNNN>-<preset>/``:

``spec.json``
    The :class:`~repro.synth.program.ProgramSpec` in the fuzz corpus's
    pinned-case JSON form (:mod:`repro.fuzz.specio`), so
    ``synthesize(spec_from_json(...))`` reproduces the binary
    bit-for-bit without re-running the corpus.
``error.txt``
    The final attempt's failure, reason first.
``attempts.json``
    The full attempt ladder: per attempt the backend, outcome, error
    and latency — the record of what supervision tried before giving
    up.

The bundle is written before the journal's quarantine record flushes,
so a crash between the two re-runs the binary's ladder on resume and
rewrites the same bundle (writes are deterministic) rather than ever
leaving a journal record pointing at nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fuzz.specio import spec_to_json

#: Subdirectory of a corpus run dir holding triage bundles.
QUARANTINE_DIR = "quarantine"


def quarantine_relpath(index: int, preset: str) -> str:
    """Stable bundle path (relative to the run dir) for one binary."""
    return f"{QUARANTINE_DIR}/{index:04d}-{preset}"


def write_quarantine(run_dir: Path, index: int, preset: str,
                     reason: str, error: str, attempts: list[dict],
                     spec=None, spec_error: str | None = None) -> str:
    """Write one triage bundle; returns its run-dir-relative path.

    ``spec`` may be None when synthesis itself was the failure — the
    bundle then records ``spec_error`` instead of ``spec.json``.
    """
    rel = quarantine_relpath(index, preset)
    bundle = Path(run_dir) / rel
    bundle.mkdir(parents=True, exist_ok=True)
    if spec is not None:
        (bundle / "spec.json").write_text(
            json.dumps(spec_to_json(spec), indent=2, sort_keys=True)
            + "\n")
    else:
        (bundle / "spec_error.txt").write_text(
            (spec_error or "spec unavailable") + "\n")
    (bundle / "error.txt").write_text(f"reason: {reason}\n{error}\n")
    (bundle / "attempts.json").write_text(
        json.dumps(attempts, indent=2, sort_keys=True) + "\n")
    return rel
