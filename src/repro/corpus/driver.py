"""Per-binary supervision: the corpus scheduler and its ladder.

The driver streams a deterministic corpus — binary *i* is a pure
function of ``(seed, i)`` via the sanctioned seed split
(:mod:`repro.seeds`) — through the analysis backends under an inflight
window, journaling every outcome (:mod:`repro.corpus.journal`) and
quarantining binaries that exhaust their attempt budget
(:mod:`repro.corpus.quarantine`).

Supervision model
-----------------
Each attempt of each binary runs on its own daemon thread: synthesize,
parse on the configured backend, digest, optionally verify against a
serial reference parse.  The scheduler thread owns all state; workers
only post ``(key, outcome, payload)`` tuples to a queue.  A binary's
attempt is bounded by ``binary_deadline`` — when it expires the
attempt is *abandoned* (its key is remembered so a straggling result
is discarded; the thread dies with the process) and the failure is
handled exactly like a crash.  The per-parse procs degradation ladder
of docs/ROBUSTNESS.md still runs *inside* each attempt; above it sits
the corpus ladder:

1. **shrink the inflight window** — any timeout halves the window
   (floor 1): a wedged binary is evidence of pool pressure, so admit
   less.  The shared :class:`~repro.runtime.procs.PoolAdmission` gate
   is resized live;
2. **drop to the serial backend** — a binary's *final* attempt after
   crash/timeout failures runs on the serial backend, sidestepping the
   pool entirely.  Divergence failures never take this rung: a procs
   result that disagrees with the serial reference would trivially
   "pass" when re-run serially, masking the very bug the verify
   exists to catch — divergent binaries retry on procs or quarantine;
3. **quarantine** — the attempt budget is spent: triage bundle to
   disk, journal record, run continues.

Determinism
-----------
With ``REPRO_CORPUS_FAKE_CLOCK=1`` recorded latencies become a pure
function of ``(binary index, attempt)``, making the final report —
already a pure function of the journal — byte-identical across
kill/resume, which is what the chaos tests pin.  Production runs use
real wall clock.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core import parse_binary
from repro.corpus.journal import JOURNAL_NAME, Journal, summarize_records
from repro.corpus.quarantine import write_quarantine
from repro.corpus.report import REPORT_NAME, build_report, render_report
from repro.errors import CorpusError
from repro.fuzz.oracle import signature_digest
from repro.runtime.faults import (
    FaultPlan,
    inject_binary_entry,
    maybe_kill_coordinator,
)
from repro.runtime.metrics import NULL_METRICS
from repro.runtime.procs import PoolAdmission, ProcsRuntime
from repro.runtime.serial import SerialRuntime
from repro.runtime.shm import sweep_orphans
from repro.seeds import derive_seed
from repro.synth.codegen import synthesize
from repro.synth.hostile import HOSTILE_PRESETS, hostile_params
from repro.synth.program import GenParams, generate_program

#: Deterministic-latency switch for the chaos tests (see module doc).
FAKE_CLOCK_ENV = "REPRO_CORPUS_FAKE_CLOCK"

#: The default preset mix: one benign profile plus every hostile axis,
#: round-robined across binary indexes.
CORPUS_PRESETS: tuple[str, ...] = ("benign",) + HOSTILE_PRESETS

#: The benign profile (small, well-behaved — the paper's evaluation
#: binaries look like this; the hostile presets supply the pathology).
_BENIGN = GenParams(n_functions=12, n_shared_error_groups=1,
                    shared_group_size=2, n_listing1_pairs=1,
                    n_noreturn_cycles=1, noreturn_chain_len=2,
                    functions_per_cu=6, type_dies_per_cu=4)


def corpus_program(index: int, seed: int,
                   presets: tuple[str, ...] = CORPUS_PRESETS,
                   n_functions: int | None = None):
    """The :class:`ProgramSpec` of corpus binary ``index`` — a pure
    function of its arguments (seed split, never arithmetic)."""
    preset = presets[index % len(presets)]
    bin_seed = derive_seed(seed, "corpus-bin", index)
    name = f"corpus-{index:04d}-{preset}"
    if preset == "benign":
        params = (_BENIGN if n_functions is None
                  else replace(_BENIGN, n_functions=n_functions))
    else:
        params = hostile_params(preset, n_functions)
    return generate_program(bin_seed, params, name=name)


@dataclass(frozen=True)
class CorpusConfig:
    """Everything that determines a corpus run's *results*.

    The full config is journaled in the header record and restored on
    resume — a resumed run may not silently analyze a different corpus.
    Runtime-environment knobs that cannot change results
    (``in_process``, the fault plan) are deliberately not here.
    """

    count: int = 50
    seed: int = 0
    presets: tuple[str, ...] = CORPUS_PRESETS
    n_functions: int | None = None
    attempts: int = 3
    verify: bool = True
    window: int = 2
    binary_deadline: float = 120.0
    backend: str = "procs"
    procs_workers: int = 2
    journal_batch: int = 8

    def validate(self) -> None:
        if self.count < 1:
            raise CorpusError("count must be >= 1")
        if self.attempts < 1:
            raise CorpusError("attempts must be >= 1")
        if self.window < 1:
            raise CorpusError("window must be >= 1")
        if self.binary_deadline <= 0:
            raise CorpusError("binary deadline must be positive")
        if self.backend not in ("procs", "serial"):
            raise CorpusError(f"unknown backend {self.backend!r}")
        if self.journal_batch < 1:
            raise CorpusError("journal batch must be >= 1")
        if not self.presets:
            raise CorpusError("need at least one preset")
        for p in self.presets:
            if p != "benign" and p not in HOSTILE_PRESETS:
                raise CorpusError(
                    f"unknown preset {p!r} (one of {CORPUS_PRESETS})")

    def header(self) -> dict:
        return {
            "count": self.count, "seed": self.seed,
            "presets": list(self.presets),
            "n_functions": self.n_functions, "attempts": self.attempts,
            "verify": self.verify, "window": self.window,
            "binary_deadline": self.binary_deadline,
            "backend": self.backend,
            "procs_workers": self.procs_workers,
            "journal_batch": self.journal_batch,
        }

    @classmethod
    def from_header(cls, header: dict) -> "CorpusConfig":
        try:
            return cls(
                count=header["count"], seed=header["seed"],
                presets=tuple(header["presets"]),
                n_functions=header.get("n_functions"),
                attempts=header["attempts"], verify=header["verify"],
                window=header["window"],
                binary_deadline=header["binary_deadline"],
                backend=header["backend"],
                procs_workers=header.get("procs_workers", 2),
                journal_batch=header.get("journal_batch", 8),
            )
        except KeyError as exc:
            raise CorpusError(
                f"journal header is missing field {exc}") from None


class CorpusDriver:
    """One corpus run (fresh or resumed) over one run directory."""

    def __init__(self, run_dir, config: CorpusConfig | None = None, *,
                 resume: bool = False, in_process: bool = False,
                 fault_plan: FaultPlan | None = None, metrics=None):
        if resume and config is not None:
            raise CorpusError(
                "--resume restores the config from the journal header; "
                "do not pass one")
        if not resume and config is None:
            config = CorpusConfig()
        self.run_dir = Path(run_dir)
        self.config = config
        self.resume = resume
        self.in_process = in_process
        self.fault_plan = (fault_plan if fault_plan is not None
                           else FaultPlan.from_env())
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.fake_clock = os.environ.get(FAKE_CLOCK_ENV) == "1"
        # scheduler state (owned by the thread that calls run())
        self._results: queue.Queue = queue.Queue()
        self._inflight: dict[tuple[int, int], dict] = {}
        self._abandoned: set[tuple[int, int]] = set()
        self._bins: dict[int, dict] = {}
        self._admission: PoolAdmission | None = None
        self._window = 0
        self._window_shrinks = 0
        self._outcomes = 0       # per-invocation ordinal (coordinator-kill)
        self.analyzed = 0        # attempts run by *this* invocation
        self.orphans_reaped: list[str] = []

    # -- public entry --------------------------------------------------------

    def run(self) -> dict:
        """Drive the corpus to completion; returns a summary dict."""
        # A previous coordinator killed mid-run never swept its shm
        # segments (os._exit skips atexit); reap anything owned by a
        # dead pid before publishing new ones.
        self.orphans_reaped = sweep_orphans()
        if self.orphans_reaped:
            self.metrics.inc("corpus.shm_orphans_reaped",
                             len(self.orphans_reaped))
        journal_path = self.run_dir / JOURNAL_NAME
        if self.resume:
            journal, header, records, torn = Journal.resume(
                journal_path, fault_plan=self.fault_plan)
            self.config = CorpusConfig.from_header(header)
            journal.batch = self.config.journal_batch
            state = summarize_records(records)
            journal.append({
                "kind": "resume",
                "completed": len(state["completed"]),
                "quarantined": len(state["quarantined"]),
                "torn_tail": torn,
            })
            self.metrics.inc("corpus.resumes")
        else:
            self.config.validate()
            self.run_dir.mkdir(parents=True, exist_ok=True)
            journal = Journal.create(
                journal_path, self.config.header(),
                batch=self.config.journal_batch,
                fault_plan=self.fault_plan)
            state = summarize_records([])
        completed: dict[int, dict] = state["completed"]
        quarantined: dict[int, dict] = state["quarantined"]
        skipped = len(completed) + len(quarantined)
        if self.fake_clock:
            self.metrics.inc("corpus.fake_clock")

        self._window = self.config.window
        if self.config.backend == "procs":
            self._admission = PoolAdmission(self._window)
        pending = [i for i in range(self.config.count)
                   if i not in completed and i not in quarantined]
        self.metrics.inc("corpus.scheduled", len(pending))
        try:
            self._supervise(pending, journal, completed, quarantined)
        finally:
            journal.close()

        report = build_report(self.config.header(), completed, quarantined)
        report_path = self.run_dir / REPORT_NAME
        report_path.write_bytes(render_report(report))
        return {
            "dir": str(self.run_dir),
            "schema": report["schema"],
            "report": str(report_path),
            "count": self.config.count,
            "completed": report["summary"]["completed"],
            "quarantined": report["summary"]["quarantined"],
            "analyzed_this_run": self.analyzed,
            "skipped_completed": skipped,
            "resumed": self.resume,
            "final_window": self._window,
            "orphans_reaped": len(self.orphans_reaped),
        }

    # -- the scheduler loop --------------------------------------------------

    def _supervise(self, pending: list[int], journal: Journal,
                   completed: dict[int, dict],
                   quarantined: dict[int, dict]) -> None:
        pending = list(reversed(pending))  # pop() from the low end
        while pending or self._inflight:
            while pending and len(self._inflight) < self._window:
                self._launch(pending.pop())
            try:
                key, kind, payload = self._results.get(
                    timeout=self._poll_timeout())
            except queue.Empty:
                self._expire_deadlines(pending, journal, quarantined)
                continue
            if key in self._abandoned:
                self._abandoned.discard(key)   # stale result: drop it
                continue
            info = self._inflight.pop(key, None)
            if info is None:  # pragma: no cover - duplicate post
                continue
            if kind == "ok":
                self._complete(info, payload, journal, completed)
            else:
                self._fail(info, kind, payload, pending, journal,
                           quarantined)

    def _poll_timeout(self) -> float:
        if not self._inflight:
            return 0.05
        now = time.monotonic()
        soonest = min(i["deadline_at"] for i in self._inflight.values())
        return min(0.2, max(0.01, soonest - now))

    def _launch(self, index: int) -> None:
        st = self._bins.setdefault(
            index, {"attempt": 0, "failures": [], "backend":
                    self.config.backend})
        st["attempt"] += 1
        attempt = st["attempt"]
        backend = st["backend"]
        key = (index, attempt)
        self._inflight[key] = {
            "index": index, "attempt": attempt, "backend": backend,
            "deadline_at": time.monotonic() + self.config.binary_deadline,
        }
        self.analyzed += 1
        self.metrics.inc("corpus.attempts")
        t = threading.Thread(
            target=self._analyze, args=(key, index, attempt, backend),
            name=f"corpus-{index}-a{attempt}", daemon=True)
        t.start()

    def _expire_deadlines(self, pending: list[int], journal: Journal,
                          quarantined: dict[int, dict]) -> None:
        now = time.monotonic()
        for key, info in list(self._inflight.items()):
            if now < info["deadline_at"]:
                continue
            del self._inflight[key]
            self._abandoned.add(key)
            self._fail(info, "timeout", {
                "error": ("binary exceeded its deadline of "
                          f"{self.config.binary_deadline:g}s"),
                "latency_s": round(self.config.binary_deadline, 6),
            }, pending, journal, quarantined)

    # -- outcome handling ----------------------------------------------------

    def _complete(self, info: dict, payload: dict, journal: Journal,
                  completed: dict[int, dict]) -> None:
        index = info["index"]
        st = self._bins[index]
        rec = {
            "kind": "completed",
            "index": index,
            "name": self._name(index),
            "preset": self._preset(index),
            "attempt": info["attempt"],
            "backend": info["backend"],
            "digest": payload["digest"],
            "serial_digest": payload["serial_digest"],
            "latency_s": payload["latency_s"],
            "functions": payload["functions"],
            "blocks": payload["blocks"],
            "edges": payload["edges"],
            "degraded": payload["degraded"],
            "failures": st["failures"],
        }
        completed[index] = rec
        journal.append(rec)
        self.metrics.inc("corpus.completed")
        self._outcome(journal)

    def _fail(self, info: dict, kind: str, payload: dict,
              pending: list[int], journal: Journal,
              quarantined: dict[int, dict]) -> None:
        index = info["index"]
        st = self._bins[index]
        st["failures"].append({
            "attempt": info["attempt"],
            "backend": info["backend"],
            "outcome": kind,
            "error": payload["error"],
            "latency_s": payload["latency_s"],
        })
        self.metrics.inc(f"corpus.failure.{kind}")
        if kind == "timeout":
            self._shrink_window()
        nxt = info["attempt"] + 1
        if nxt > self.config.attempts:
            self._quarantine(index, kind, payload["error"], journal,
                             quarantined)
            return
        if (kind in ("crash", "timeout") and nxt == self.config.attempts
                and self.config.backend == "procs"):
            # The corpus ladder's serial rung: the last attempt
            # sidesteps the pool.  Divergence never takes it (a serial
            # re-run trivially matches the serial reference and would
            # mask the divergence).
            st["backend"] = "serial"
            self.metrics.inc("corpus.serial_rung")
        pending.append(index)  # retries are popped first

    def _shrink_window(self) -> None:
        if self._window > 1:
            self._window = max(1, self._window // 2)
            self._window_shrinks += 1
            self.metrics.inc("corpus.window_shrinks")
            if self._admission is not None:
                self._admission.resize(self._window)

    def _quarantine(self, index: int, reason: str, error: str,
                    journal: Journal, quarantined: dict[int, dict]
                    ) -> None:
        st = self._bins[index]
        preset = self._preset(index)
        spec = spec_error = None
        try:
            spec = corpus_program(index, self.config.seed,
                                  self.config.presets,
                                  self.config.n_functions)
        except Exception as exc:  # synthesis itself is the failure
            spec_error = f"{type(exc).__name__}: {exc}"
        rel = write_quarantine(self.run_dir, index, preset, reason,
                               error, st["failures"], spec=spec,
                               spec_error=spec_error)
        rec = {
            "kind": "quarantined",
            "index": index,
            "name": self._name(index),
            "preset": preset,
            "reason": reason,
            "error": error,
            "attempts": st["failures"],
            "path": rel,
        }
        quarantined[index] = rec
        journal.append(rec)
        self.metrics.inc("corpus.quarantined")
        self.metrics.inc(f"corpus.quarantined.{reason}")
        # A quarantine record is precious: flush immediately so resume
        # never re-runs a known-bad binary's whole ladder.
        self._outcome(journal)
        journal.flush()

    def _outcome(self, journal: Journal) -> None:
        """Per-outcome bookkeeping, including the coordinator-kill site
        (fires *before* the flush the batch boundary would do, so the
        buffered records are genuinely lost — the state kill -9 leaves)."""
        self._outcomes += 1
        maybe_kill_coordinator(self.fault_plan, self._outcomes)

    # -- naming --------------------------------------------------------------

    def _preset(self, index: int) -> str:
        return self.config.presets[index % len(self.config.presets)]

    def _name(self, index: int) -> str:
        return f"corpus-{index:04d}-{self._preset(index)}"

    # -- the per-attempt worker (runs on a daemon thread) --------------------

    def _latency(self, index: int, attempt: int, t0: float) -> float:
        if self.fake_clock:
            return round(((index * 37 + attempt * 11) % 89 + 1) / 1000.0,
                         6)
        return round(time.perf_counter() - t0, 6)

    def _analyze(self, key: tuple[int, int], index: int, attempt: int,
                 backend: str) -> None:
        t0 = time.perf_counter()
        try:
            inject_binary_entry(self.fault_plan, index, attempt)
            spec = corpus_program(index, self.config.seed,
                                  self.config.presets,
                                  self.config.n_functions)
            binary = synthesize(spec).binary
            digest, stats = self._parse(binary, backend)
            serial_digest = None
            if self.config.verify:
                if backend == "serial":
                    serial_digest = digest
                else:
                    serial_digest, _ = self._parse(binary, "serial")
                    if serial_digest != digest:
                        self._results.put((key, "divergence", {
                            "error": (f"{backend} digest {digest} != "
                                      f"serial digest {serial_digest}"),
                            "latency_s": self._latency(index, attempt,
                                                       t0),
                        }))
                        return
            self._results.put((key, "ok", {
                "digest": digest,
                "serial_digest": serial_digest,
                "latency_s": self._latency(index, attempt, t0),
                "functions": stats[0],
                "blocks": stats[1],
                "edges": stats[2],
                "degraded": stats[3],
            }))
        except BaseException as exc:
            self._results.put((key, "crash", {
                "error": f"{type(exc).__name__}: {exc}",
                "latency_s": self._latency(index, attempt, t0),
            }))

    def _parse(self, binary, backend: str) -> tuple[str, tuple]:
        if backend == "serial":
            rt = SerialRuntime(enable_metrics=False)
            cfg = parse_binary(binary, rt)
            degraded = "none"
        else:
            rt = ProcsRuntime(
                self.config.procs_workers,
                enable_metrics=False,
                in_process=self.in_process,
                parse_budget=self.config.binary_deadline,
                fault_plan=self.fault_plan,
                admission=self._admission)
            cfg = parse_binary(binary, rt)
            degraded = rt.degradation["level"]
        stats = (len(cfg.functions()), len(cfg.blocks()),
                 len(cfg.edges()), degraded)
        return signature_digest(cfg.signature()), stats


def run_corpus(run_dir, config: CorpusConfig | None = None, *,
               resume: bool = False, in_process: bool = False,
               fault_plan: FaultPlan | None = None, metrics=None) -> dict:
    """Convenience wrapper: construct a driver and run it."""
    return CorpusDriver(run_dir, config, resume=resume,
                        in_process=in_process, fault_plan=fault_plan,
                        metrics=metrics).run()
