"""The ``repro.corpus-report/1`` sidecar: a pure function of the journal.

Byte-identity across crash/resume is the contract the chaos tests pin:
an interrupted-and-resumed run must produce *exactly* the bytes an
uninterrupted run produces.  Everything here is therefore derived from
journal records only — never from in-memory counters of the current
invocation (a resume never saw the first invocation's counters) and
never from run wall-clock (two invocations can't share one clock):

- per-binary latencies come from the journal's ``latency_s`` fields
  (deterministic under ``REPRO_CORPUS_FAKE_CLOCK``, see driver);
- throughput is analysis-seconds-based, not run-wall-based;
- window-shrink counts are recomputed from the recorded timeout
  failures rather than read off the live ladder;
- binaries are emitted in index order, floats rounded at the source,
  keys sorted by the renderer.

Validated by ``validate_corpus_report`` in
:mod:`repro.runtime.tracefmt`.
"""

from __future__ import annotations

import json
import math
from typing import Any

#: Version identifier of the corpus report sidecar.
REPORT_SCHEMA = "repro.corpus-report/1"

#: Report filename inside a corpus run directory.
REPORT_NAME = "corpus_report.json"


def _percentile(sorted_vals: list[float], q: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation)."""
    rank = max(1, math.ceil(q / 100.0 * len(sorted_vals)))
    return sorted_vals[rank - 1]


def _latency_section(latencies: list[float]) -> dict:
    if not latencies:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p90_s": 0.0,
                "p99_s": 0.0, "max_s": 0.0, "total_s": 0.0}
    vals = sorted(latencies)
    total = round(sum(vals), 6)
    return {
        "count": len(vals),
        "mean_s": round(total / len(vals), 6),
        "p50_s": _percentile(vals, 50),
        "p90_s": _percentile(vals, 90),
        "p99_s": _percentile(vals, 99),
        "max_s": vals[-1],
        "total_s": total,
    }


def _timeout_failures(rec: dict) -> int:
    log = rec.get("failures") if rec.get("kind") == "completed" \
        else rec.get("attempts")
    return sum(1 for f in (log or []) if f.get("outcome") == "timeout")


def build_report(header: dict, completed: dict[int, dict],
                 quarantined: dict[int, dict]) -> dict[str, Any]:
    """Assemble the report dict from replayed journal state."""
    count = header["count"]
    window = header["window"]
    binaries: list[dict] = []
    latencies: list[float] = []
    reasons: dict[str, int] = {}
    q_entries: list[dict] = []
    shrinks = 0
    serial_binaries = 0
    for index in range(count):
        rec = completed.get(index)
        if rec is not None:
            shrinks += _timeout_failures(rec)
            if rec["backend"] == "serial":
                serial_binaries += 1
            latencies.append(rec["latency_s"])
            binaries.append({
                "index": index,
                "name": rec["name"],
                "preset": rec["preset"],
                "status": "ok",
                "backend": rec["backend"],
                "attempt": rec["attempt"],
                "digest": rec["digest"],
                "serial_digest": rec.get("serial_digest"),
                "latency_s": rec["latency_s"],
                "functions": rec["functions"],
                "blocks": rec["blocks"],
                "edges": rec["edges"],
                "degraded": rec.get("degraded", "none"),
                "failures": rec.get("failures", []),
            })
            continue
        rec = quarantined.get(index)
        if rec is None:
            raise KeyError(f"binary {index} has no journal outcome")
        shrinks += _timeout_failures(rec)
        reasons[rec["reason"]] = reasons.get(rec["reason"], 0) + 1
        q_entries.append({
            "index": index,
            "name": rec["name"],
            "preset": rec["preset"],
            "reason": rec["reason"],
            "attempts": len(rec.get("attempts", [])),
            "path": rec["path"],
        })
        binaries.append({
            "index": index,
            "name": rec["name"],
            "preset": rec["preset"],
            "status": "quarantined",
            "backend": None,
            "attempt": len(rec.get("attempts", [])),
            "digest": None,
            "serial_digest": None,
            "latency_s": None,
            "functions": None,
            "blocks": None,
            "edges": None,
            "degraded": None,
            "failures": rec.get("attempts", []),
            "reason": rec["reason"],
            "error": rec.get("error", ""),
        })
    lat = _latency_section(latencies)
    total_s = lat["total_s"]
    return {
        "schema": REPORT_SCHEMA,
        "corpus": {
            "seed": header["seed"],
            "count": count,
            "presets": list(header["presets"]),
            "n_functions": header.get("n_functions"),
            "attempts": header["attempts"],
            "verify": header["verify"],
            "backend": header["backend"],
            "procs_workers": header.get("procs_workers"),
            "window": window,
        },
        "binaries": binaries,
        "summary": {
            "count": count,
            "completed": len(latencies),
            "quarantined": len(q_entries),
        },
        "latency": lat,
        "throughput": {
            "total_analysis_s": total_s,
            "binaries_per_second": (round(len(latencies) / total_s, 6)
                                    if total_s > 0 else 0.0),
        },
        "degradation": {
            "initial_window": window,
            "final_window": max(1, window >> min(shrinks, 30)),
            "window_shrinks": shrinks,
            "serial_binaries": serial_binaries,
        },
        "quarantine": {
            "count": len(q_entries),
            "reasons": dict(sorted(reasons.items())),
            "entries": q_entries,
        },
    }


def render_report(report: dict) -> bytes:
    """The canonical byte form the chaos tests compare."""
    return (json.dumps(report, indent=2, sort_keys=True) + "\n").encode()
