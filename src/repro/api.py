"""Dyninst-style public facade: the Listing 7 programming model.

The paper's Section 7.2 shows how application developers consume the
parallel library::

    ParseAPI::CodeObject *co = getCodeObject();
    co->parse();                        // parallel CFG construction
    std::vector<Function*> funcs = co->funcs();
    SortFuncs(funcs);                   // load-balancing sort
    #pragma omp parallel for schedule(dynamic)
    for (auto f : funcs) {
        ParseAPI::LoopAnalyzer la(f);
        DataflowAPI::LivenessAnalyzer live(f);
        DataflowAPI::StackAnalysis sa(f);
    }

This module provides the same shape in Python::

    co = CodeObject(binary, rt)
    co.parse()                          # parallel CFG construction
    co.parallel_analyze(analyses=...)   # sorted dynamic parallel loop

with :class:`LoopAnalyzer`, :class:`LivenessAnalyzer` and
:class:`StackAnalysis` wrapping the read-only per-function analyses.
After ``parse()`` the CFG is immutable, so analyzer construction is
thread-safe by design (Section 7.2's key observation).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.analyses.liveness import LivenessResult, liveness
from repro.analyses.loops import LoopForest, find_loops
from repro.analyses.stack_height import StackHeightResult, stack_heights
from repro.binary.loader import LoadedBinary
from repro.core.cfg import Function, ParsedCFG
from repro.core.parallel_parser import ParallelParser, ParseOptions
from repro.errors import ReproError
from repro.runtime.api import Runtime
from repro.runtime.serial import SerialRuntime


class LoopAnalyzer:
    """Per-function loop analysis (ParseAPI::LoopAnalyzer analog)."""

    def __init__(self, func: Function, rt: Runtime | None = None):
        self.func = func
        self.forest: LoopForest = find_loops(func, rt)

    @property
    def n_loops(self) -> int:
        return self.forest.n_loops

    @property
    def max_nesting(self) -> int:
        return self.forest.max_depth

    def loops(self):
        return list(self.forest.by_header.values())


class LivenessAnalyzer:
    """Register liveness (DataflowAPI::LivenessAnalyzer analog)."""

    def __init__(self, func: Function, rt: Runtime | None = None):
        self.func = func
        self.result: LivenessResult = liveness(func, rt)

    def live_at_entry(self):
        return self.result.live_in_regs(self.func.addr)

    @property
    def max_live(self) -> int:
        return self.result.max_live()


class StackAnalysis:
    """Stack-height analysis (DataflowAPI::StackAnalysis analog)."""

    def __init__(self, func: Function, rt: Runtime | None = None):
        self.func = func
        self.result: StackHeightResult = stack_heights(func, rt)

    def height_at(self, block_start: int):
        return self.result.height_in.get(block_start)


#: Analyzer registry used by :meth:`CodeObject.parallel_analyze`.
DEFAULT_ANALYZERS: dict[str, Callable[[Function, Runtime | None], Any]] = {
    "loops": LoopAnalyzer,
    "liveness": LivenessAnalyzer,
    "stack": StackAnalysis,
}


@dataclass
class FunctionAnalysis:
    """Results of the per-function analyzer loop for one function."""

    func: Function
    results: dict[str, Any] = field(default_factory=dict)


class CodeObject:
    """The parse-and-analyze entry point (ParseAPI::CodeObject analog).

    A CodeObject owns one binary and one runtime.  ``parse()`` runs the
    parallel CFG construction of Section 5; afterwards the CFG is
    read-only and ``funcs()``/``blocks()`` expose it.  The runtime is
    single-use, matching the underlying scheduler; parse once per
    CodeObject.
    """

    def __init__(self, binary: LoadedBinary, rt: Runtime | None = None,
                 options: ParseOptions | None = None):
        self.binary = binary
        self.rt = rt or SerialRuntime()
        self.options = options or ParseOptions()
        self._cfg: ParsedCFG | None = None
        self._analysis: list[FunctionAnalysis] | None = None
        self._analyze_requests: list[tuple[tuple[str, ...], Any]] = []

    # -- stage 1: parse -------------------------------------------------------

    def parse(self, analyses: Iterable[str] = ()) -> ParsedCFG:
        """Run parallel CFG construction (and, optionally, the analyzer
        loop in the same runtime session).

        ``analyses`` names entries of :data:`DEFAULT_ANALYZERS` to run in
        a sorted dynamic parallel loop right after parsing — the whole of
        Listing 7 in one call.
        """
        if self._cfg is not None:
            raise ReproError("CodeObject already parsed")
        names = tuple(analyses)

        def run() -> ParsedCFG:
            parser = ParallelParser(self.binary, self.rt, self.options)
            cfg = parser.execute()
            if names:
                self._analysis = self._run_analyzers(cfg, names)
            return cfg

        self._cfg = self.rt.run(run)
        return self._cfg

    # -- stage 2: read-only queries --------------------------------------------

    @property
    def cfg(self) -> ParsedCFG:
        if self._cfg is None:
            raise ReproError("call parse() first")
        return self._cfg

    def funcs(self) -> list[Function]:
        """All functions (address order), as ``co->funcs()``."""
        return self.cfg.functions()

    def blocks(self):
        return self.cfg.blocks()

    def function_at(self, addr: int) -> Function | None:
        return self.cfg.function_at(addr)

    # -- stage 3: the parallel analyzer loop --------------------------------------

    def _run_analyzers(self, cfg: ParsedCFG, names: tuple[str, ...]
                       ) -> list[FunctionAnalysis]:
        unknown = [n for n in names if n not in DEFAULT_ANALYZERS]
        if unknown:
            raise ReproError(f"unknown analyses: {unknown}")
        out: list[FunctionAnalysis] = []

        def analyze(func: Function) -> None:
            fa = FunctionAnalysis(func=func)
            for name in names:
                fa.results[name] = DEFAULT_ANALYZERS[name](func, self.rt)
            out.append(fa)

        # Listing 7: sort functions by decreasing size so large functions
        # are processed first, then a dynamic-schedule parallel loop.
        self.rt.parallel_for(cfg.functions(), analyze,
                             sort_key=lambda f: len(f.blocks),
                             reverse=True)
        out.sort(key=lambda fa: fa.func.addr)
        return out

    def analysis(self) -> list[FunctionAnalysis]:
        """Results of the analyzer loop requested via ``parse``."""
        if self._analysis is None:
            raise ReproError("parse(analyses=...) was not requested")
        return list(self._analysis)


def analyze_binary(binary: LoadedBinary, rt: Runtime | None = None,
                   analyses: Iterable[str] = ("loops", "liveness"),
                   options: ParseOptions | None = None) -> CodeObject:
    """One-call convenience: parse + analyzer loop (Listing 7 inline)."""
    co = CodeObject(binary, rt, options)
    co.parse(analyses=analyses)
    return co
