"""Lowering program specs to binary images plus ground truth.

The generator is a miniature compiler back end: it lays out functions
sequentially in ``.text``, allocates jump tables contiguously in
``.rodata`` (adjacent tables are what makes over-approximated jump-table
scans overflow into a neighbour, Section 5.4), emits symbols (including
``.cold`` fragments), DWARF-like debug info whose subprogram ranges encode
shared and non-contiguous functions, unwind entry points, and the ground
truth the checker verifies against.

Everything is deterministic in the spec: codegen derives its RNG from
``spec.seed``, so (seed, params) identifies the binary bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.binary import format as fmt
from repro.binary.dwarf import (
    CompilationUnit,
    DebugInfo,
    FunctionDIE,
    InlinedCall,
    LineRow,
)
from repro.binary.format import BinaryImage, Section, SectionFlags
from repro.binary.loader import LoadedBinary, encode_eh_frame
from repro.binary.symtab import Symbol, SymbolKind, SymbolTable
from repro.isa.instructions import Cond, Opcode
from repro.isa.registers import Reg
from repro.synth.asm import Assembler, L
from repro.synth.groundtruth import GroundTruth
from repro.synth.program import (
    Epilogue,
    FunctionSpec,
    ProgramSpec,
    SegKind,
    Segment,
)

TEXT_BASE = 0x0040_1000
RODATA_BASE = 0x0200_0000

# Registers reserved for jump-table idioms; filler code must not touch
# them between the bound check and the indirect jump.
_IDX = Reg.R4
_BASE = Reg.R5
_TGT = Reg.R6
_BND = Reg.R8
_SPILL = Reg.R9
_FILLER_REGS = [Reg.R10, Reg.R11, Reg.R12, Reg.R13, Reg.R14, Reg.R15]


@dataclass
class _TableSlot:
    """A jump table allocated in .rodata, filled after text layout."""

    addr: int
    case_labels: list[str]
    obscured: bool


@dataclass
class SynthesizedBinary:
    """Codegen output: the loadable binary plus its ground truth."""

    binary: LoadedBinary
    ground_truth: GroundTruth
    spec: ProgramSpec

    @property
    def name(self) -> str:
        return self.binary.name


def synthesize(spec: ProgramSpec) -> SynthesizedBinary:
    """Lower a program spec to a binary image + ground truth."""
    gen = _CodeGen(spec)
    return gen.generate()


class _CodeGen:
    def __init__(self, spec: ProgramSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed ^ 0x5EED_C0DE)
        self.asm = Assembler(TEXT_BASE)
        self.tables: list[_TableSlot] = []
        self._rodata_cursor = RODATA_BASE
        self.gt = GroundTruth()
        # (fn index, call-site label) pairs for GT noreturn call addresses.
        self._noreturn_call_labels: list[str] = []
        self._uid = 0

    # -- small helpers ------------------------------------------------------

    def _fresh(self, stem: str) -> str:
        self._uid += 1
        return f"{stem}_{self._uid}"

    def _filler(self, n: int) -> None:
        a = self.asm
        rng = self.rng
        for _ in range(n):
            r = rng.choice(_FILLER_REGS)
            r2 = rng.choice(_FILLER_REGS)
            pick = rng.randrange(5)
            if pick == 0:
                a.insn(Opcode.MOV_RI, r, rng.randrange(1 << 16))
            elif pick == 1:
                a.insn(Opcode.ADD, r, r2)
            elif pick == 2:
                a.insn(Opcode.XOR, r, r2)
            elif pick == 3:
                a.insn(Opcode.LOAD, r, Reg.FP, rng.randrange(0, 64, 8))
            else:
                a.insn(Opcode.MOV_RR, r, r2)

    def _alloc_table(self, n_cases: int, case_labels: list[str],
                     obscured: bool) -> int:
        addr = self._rodata_cursor
        self._rodata_cursor += 8 * n_cases
        self.tables.append(_TableSlot(addr, case_labels, obscured))
        return addr

    # -- function emission ------------------------------------------------------

    def _emit_function(self, fn: FunctionSpec) -> None:
        a = self.asm
        entry = f"fn_{fn.index}"
        a.label(entry)

        if fn.name == "error_report":
            self._emit_error_report(fn)
            a.label(f"{entry}_end")
            return

        if fn.has_frame:
            a.enter(self.rng.randrange(16, 64, 8))

        epilogue_label = self._fresh(f"f{fn.index}_epi")

        if fn.cold_outline:
            # Unlikely path jumps far away to the outlined cold fragment.
            a.cmp_ri(_FILLER_REGS[0], 0xDEAD)
            a.jcc(Cond.EQ, L(f"cold_{fn.index}"))

        for si, seg in enumerate(fn.segments):
            self._emit_segment(fn, seg, epilogue_label)
            if fn.secondary_entry and si == 0:
                a.label(f"fn_{fn.index}_entry2")

        a.label(epilogue_label)
        self._emit_epilogue(fn)
        a.label(f"{entry}_end")

    def _emit_error_report(self, fn: FunctionSpec) -> None:
        """The conditionally non-returning `error` analogue (Section 8.1).

        Returns iff its first argument is zero; a name-matching noreturn
        analysis cannot model this, which is difference category 1.
        """
        a = self.asm
        ret = self._fresh("err_ret")
        a.cmp_ri(Reg.R1, 0)
        a.jcc(Cond.EQ, L(ret))
        lbl = self._fresh("nrcall")
        a.label(lbl)
        a.call(L("fn_0"))  # exit: known noreturn, no fall-through emitted
        self._noreturn_call_labels.append(lbl)
        a.label(ret)
        a.ret()

    def _emit_segment(self, fn: FunctionSpec, seg: Segment,
                      epilogue_label: str) -> None:
        a = self.asm
        if seg.kind is SegKind.LINEAR:
            self._filler(seg.filler)
        elif seg.kind is SegKind.DIAMOND:
            els = self._fresh(f"f{fn.index}_else")
            join = self._fresh(f"f{fn.index}_join")
            a.cmp_ri(self.rng.choice(_FILLER_REGS), self.rng.randrange(64))
            a.jcc(self.rng.choice([Cond.EQ, Cond.NE, Cond.LT, Cond.GT]),
                  L(els))
            self._filler(max(1, seg.filler // 2))
            a.jmp(L(join))
            a.label(els)
            self._filler(max(1, seg.filler - seg.filler // 2))
            a.label(join)
        elif seg.kind is SegKind.LOOP:
            head = self._fresh(f"f{fn.index}_head")
            exit_ = self._fresh(f"f{fn.index}_exit")
            ctr = self.rng.choice(_FILLER_REGS)
            a.mov_ri(ctr, seg.loop_trips)
            a.label(head)
            a.cmp_ri(ctr, 0)
            a.jcc(Cond.EQ, L(exit_))
            self._filler(seg.filler)
            a.insn(Opcode.ADDI, ctr, (1 << 32) - 1)  # ctr -= 1
            a.jmp(L(head))
            a.label(exit_)
        elif seg.kind is SegKind.EARLY_RET:
            skip = self._fresh(f"f{fn.index}_skip")
            a.cmp_ri(self.rng.choice(_FILLER_REGS), self.rng.randrange(64))
            a.jcc(Cond.NE, L(skip))
            if fn.has_frame:
                a.leave()
            a.ret()
            a.label(skip)
            self._filler(seg.filler)
        elif seg.kind is SegKind.CALL:
            self._filler(seg.filler)
            a.mov_ri(Reg.R1, self.rng.randrange(16))
            a.call(L(f"fn_{seg.callee}"))
        elif seg.kind is SegKind.SWITCH:
            self._emit_switch(fn, seg)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(seg.kind)

    def _emit_switch(self, fn: FunctionSpec, seg: Segment) -> None:
        a = self.asm
        sw = seg.switch
        assert sw is not None
        k = sw.n_cases
        default = self._fresh(f"f{fn.index}_swdef")
        merge = self._fresh(f"f{fn.index}_swmerge")
        case_labels = [self._fresh(f"f{fn.index}_case{c}")
                       for c in range(k)]
        table_addr = self._alloc_table(k, case_labels, sw.obscured_bound)
        self.gt.jump_tables[table_addr] = k

        # The switch index is a runtime value (loaded from memory): the
        # slice must treat it as opaque, or the "table" would constant-
        # fold to a single target.
        a.insn(Opcode.LOAD, _IDX, Reg.FP, 24)
        if sw.obscured_bound:
            # Bound comes through memory: backward slicing cannot recover
            # it, so the analysis falls back to scanning (over-approx trap).
            a.insn(Opcode.LOAD, _BND, Reg.FP, 8)
            a.insn(Opcode.CMP_RR, _IDX, _BND)
        else:
            a.cmp_ri(_IDX, k - 1)
        a.jcc(Cond.A, L(default))
        if sw.stack_spill:
            # Table base round-trips through the stack: difference
            # category 3 (unresolvable jump table).
            a.insn(Opcode.LEA, _BASE, table_addr)
            a.insn(Opcode.STORE, Reg.FP, 16, _BASE)
            self._filler(1)
            a.insn(Opcode.LOAD, _SPILL, Reg.FP, 16)
            a.insn(Opcode.LOADIDX, _TGT, _SPILL, _IDX)
        else:
            a.insn(Opcode.LEA, _BASE, table_addr)
            a.insn(Opcode.LOADIDX, _TGT, _BASE, _IDX)
        a.insn(Opcode.IJMP, _TGT)
        for c, lbl in enumerate(case_labels):
            a.label(lbl)
            self._filler(1 if c % 2 else 2)
            a.jmp(L(merge))
        a.label(default)
        self._filler(1)
        a.label(merge)
        self._filler(seg.filler)

    def _emit_epilogue(self, fn: FunctionSpec) -> None:
        a = self.asm
        if fn.shared_error_group is not None:
            # Unlikely error path into the block shared by the group.
            a.cmp_ri(_FILLER_REGS[1], 0)
            a.jcc(Cond.NE, L(f"err_common_{fn.shared_error_group}"))
        if fn.epilogue is Epilogue.RET:
            if fn.has_frame:
                a.leave()
            a.ret()
        elif fn.epilogue is Epilogue.TAIL_CALL:
            if fn.has_frame:
                a.leave()
            if fn.listing1_shared_jmp is not None:
                a.jmp(L(f"l1_shared_{fn.listing1_shared_jmp}"))
            else:
                a.jmp(L(f"fn_{fn.tail_target}"))
        elif fn.epilogue is Epilogue.NORETURN_CALL:
            lbl = self._fresh("nrcall")
            a.label(lbl)
            a.call(L(f"fn_{fn.noreturn_callee}"))
            self._noreturn_call_labels.append(lbl)
        elif fn.epilogue is Epilogue.HALT:
            a.halt()
        elif fn.epilogue is Epilogue.ERROR_CALL:
            # Calls error_report with a nonzero argument: never returns,
            # but only the ground truth knows (difference category 1).
            a.mov_ri(Reg.R1, 1 + self.rng.randrange(7))
            lbl = self._fresh("nrcall")
            a.label(lbl)
            a.call(L("fn_1"))
            self._noreturn_call_labels.append(lbl)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(fn.epilogue)

    def _emit_cold_region(self, fn: FunctionSpec) -> None:
        a = self.asm
        a.label(f"cold_{fn.index}")
        self._filler(3)
        lbl = self._fresh("nrcall")
        a.label(lbl)
        a.call(L("fn_0"))
        self._noreturn_call_labels.append(lbl)
        a.label(f"cold_{fn.index}_end")

    # -- whole-binary assembly ---------------------------------------------------

    def generate(self) -> SynthesizedBinary:
        spec = self.spec
        a = self.asm

        for fn in spec.functions:
            self._emit_function(fn)
            # Padding (junk bytes) between some functions; never after
            # functions whose fall-through behaviour the checker measures.
            # pct_junk_padding/junk_max_bytes are the data-in-text axis:
            # hostile presets interleave long undecodable runs in .text.
            if (fn.epilogue in (Epilogue.RET, Epilogue.HALT, Epilogue.TAIL_CALL)
                    and self.rng.random() < spec.pct_junk_padding):
                a.raw(b"\xff" * self.rng.randint(1, spec.junk_max_bytes))

        # Deferred regions: cold fragments, shared error blocks, Listing 1
        # shared tail targets.
        for fn in spec.functions:
            if fn.cold_outline:
                self._emit_cold_region(fn)
        for g in range(spec.n_shared_error_groups):
            a.label(f"err_common_{g}")
            a.mov_ri(Reg.R0, 0xFFFF)
            self._filler(2)
            a.ret()
            a.label(f"err_common_{g}_end")
        l1_ids = sorted({fn.listing1_shared_jmp for fn in spec.functions
                         if fn.listing1_shared_jmp is not None})
        for j in l1_ids:
            a.label(f"l1_shared_{j}")
            self._filler(2)
            a.ret()
            a.label(f"l1_shared_{j}_end")

        code, labels = a.assemble()

        image = BinaryImage(name=spec.name)
        image.add_section(Section(fmt.TEXT, TEXT_BASE, code,
                                  SectionFlags.EXEC))
        image.add_section(Section(fmt.RODATA, RODATA_BASE,
                                  self._build_rodata(labels),
                                  SectionFlags.DATA))

        symtab, dynsym, eh_starts = self._build_symbols(labels)
        if not spec.strip_symtab:
            image.add_section(Section(fmt.SYMTAB, 0, symtab.to_bytes(),
                                      SectionFlags.DEBUG_INFO))
        image.add_section(Section(fmt.DYNSYM, 0, dynsym.to_bytes(),
                                  SectionFlags.DEBUG_INFO))
        image.add_section(Section(fmt.EH_FRAME, 0,
                                  encode_eh_frame(eh_starts),
                                  SectionFlags.DEBUG_INFO))
        debug = self._build_debug_info(labels)
        image.add_section(Section(fmt.DEBUG, 0, debug.to_bytes(),
                                  SectionFlags.DEBUG_INFO))

        self._build_ground_truth(labels)
        return SynthesizedBinary(binary=LoadedBinary(image),
                                 ground_truth=self.gt, spec=spec)

    def _build_rodata(self, labels: dict[str, int]) -> bytes:
        out = bytearray()
        cursor = RODATA_BASE
        for slot in self.tables:
            assert slot.addr == cursor, "tables must be contiguous"
            for lbl in slot.case_labels:
                out += labels[lbl].to_bytes(8, "little")
            cursor += 8 * len(slot.case_labels)
        out += b"\x00" * 8  # terminator word after the last table
        return bytes(out)

    def _build_symbols(self, labels: dict[str, int]
                       ) -> tuple[SymbolTable, SymbolTable, list[int]]:
        symtab = SymbolTable()
        dynsym = SymbolTable()
        eh_starts: list[int] = []
        for fn in self.spec.functions:
            if fn.hidden:
                continue
            entry = labels[f"fn_{fn.index}"]
            size = labels[f"fn_{fn.index}_end"] - entry
            if fn.eh_only:
                # Out-of-band entry: the unwind tables know about this
                # function, neither symbol table does (exception-handler
                # style discovery).
                eh_starts.append(entry)
                continue
            sym = Symbol(fn.name, entry, size)
            symtab.add(sym)
            eh_starts.append(entry)
            if fn.index % 7 == 0:
                dynsym.add(sym)  # a subset is dynamically exported
            if fn.cold_outline:
                cold = labels[f"cold_{fn.index}"]
                cold_size = labels[f"cold_{fn.index}_end"] - cold
                pretty = sym.pretty_name
                symtab.add(Symbol(f"{pretty}.cold", cold, cold_size))
                eh_starts.append(cold)
            if fn.secondary_entry:
                e2 = labels[f"fn_{fn.index}_entry2"]
                symtab.add(Symbol(f"{sym.pretty_name}__entry2", e2,
                                  entry + size - e2))
                eh_starts.append(e2)
        return symtab, dynsym, eh_starts

    def _fn_ranges(self, fn: FunctionSpec, labels: dict[str, int]
                   ) -> list[tuple[int, int]]:
        """DWARF-semantics ranges: hot part, cold part, shared blocks."""
        entry = labels[f"fn_{fn.index}"]
        end = labels[f"fn_{fn.index}_end"]
        ranges = [(entry, end)]
        if fn.cold_outline:
            ranges.append((labels[f"cold_{fn.index}"],
                           labels[f"cold_{fn.index}_end"]))
        if fn.shared_error_group is not None:
            g = fn.shared_error_group
            ranges.append((labels[f"err_common_{g}"],
                           labels[f"err_common_{g}_end"]))
        return ranges

    def _build_debug_info(self, labels: dict[str, int]) -> DebugInfo:
        spec = self.spec
        cus: dict[str, CompilationUnit] = {}
        rng = random.Random(spec.seed ^ 0xD3B06)
        for fn in spec.functions:
            cu = cus.get(fn.cu)
            if cu is None:
                # CU sizes are heavily skewed in real debug info (a few
                # template-instantiation units dwarf the rest); Figure 2's
                # phase 2 idles on exactly this imbalance.
                n_types = max(1, int(spec.type_dies_per_cu
                                     * rng.lognormvariate(0.0, 0.9)))
                cu = CompilationUnit(fn.cu, n_type_dies=n_types)
                cus[fn.cu] = cu
            entry = labels[f"fn_{fn.index}"]
            end = labels[f"fn_{fn.index}_end"]
            die = FunctionDIE(fn.name, ranges=self._fn_ranges(fn, labels),
                              decl_file=fn.cu, decl_line=fn.decl_line)
            die.inlines = self._make_inlines(rng, fn, entry, end)
            cu.functions.append(die)
            span = max(1, end - entry)
            n_rows = max(1, spec.lines_per_function)
            for j in range(n_rows):
                cu.line_rows.append(LineRow(entry + j * span // n_rows,
                                            fn.cu, fn.decl_line + j))
        for cu in cus.values():
            cu.line_rows.sort(key=lambda r: r.addr)
        return DebugInfo(cus=list(cus.values()))

    def _make_inlines(self, rng: random.Random, fn: FunctionSpec,
                      lo: int, hi: int) -> list[InlinedCall]:
        def make(depth: int, lo: int, hi: int) -> list[InlinedCall]:
            if depth <= 0 or hi - lo < 8:
                return []
            mid_lo = lo + (hi - lo) // 4
            mid_hi = hi - (hi - lo) // 4
            inl = InlinedCall(
                callee=f"inl_{rng.randrange(1 << 16):04x}",
                call_file=fn.cu, call_line=fn.decl_line + depth,
                ranges=[(mid_lo, mid_hi)],
                children=make(depth - 1, mid_lo, mid_hi),
            )
            return [inl]

        return make(fn.inline_depth, lo, hi)

    def _build_ground_truth(self, labels: dict[str, int]) -> None:
        spec = self.spec
        gt = self.gt
        for fn in spec.functions:
            entry = labels[f"fn_{fn.index}"]
            gt.entry_names[entry] = fn.name
            for lo, hi in self._fn_ranges(fn, labels):
                gt.add_function_range(fn.name, lo, hi)
            if fn.secondary_entry:
                e2 = labels[f"fn_{fn.index}_entry2"]
                end = labels[f"fn_{fn.index}_end"]
                name2 = f"{fn.name}__entry2"
                gt.entry_names[e2] = name2
                gt.add_function_range(name2, e2, end)
        # Listing 1 shared tail targets are functions of their own in the
        # stable (post-correction) answer.
        for name, addr in labels.items():
            if name.startswith("l1_shared_") and not name.endswith("_end"):
                j = name.removeprefix("l1_shared_")
                gt.entry_names[addr] = name
                gt.add_function_range(name, addr,
                                      labels[f"l1_shared_{j}_end"])
        for lbl in self._noreturn_call_labels:
            gt.noreturn_calls.add(labels[lbl])
        gt.normalize()
