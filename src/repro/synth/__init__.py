"""Binary synthesizer: the workload-generator substrate.

The paper evaluates on real binaries (coreutils/tar for correctness; LLNL,
Camellia and TensorFlow binaries plus a 504-binary forensic corpus for
performance).  This package generates synthetic binaries with the same
*structural* properties — function count/size distributions, call-graph
shape, functions sharing code, tail calls, non-returning call chains, jump
tables (including over-approximation traps), outlined cold blocks — and
emits ground truth (function ranges, jump-table sizes, non-returning call
sites) exactly as the paper derives it from DWARF + RTL dumps
(Section 8.1).

Layers:

- :mod:`repro.synth.asm` — a two-pass label-resolving assembler;
- :mod:`repro.synth.program` — seeded program-spec generation;
- :mod:`repro.synth.codegen` — lowering specs to a
  :class:`~repro.binary.format.BinaryImage` plus
  :class:`~repro.synth.groundtruth.GroundTruth`;
- :mod:`repro.synth.corpus` — presets named after the paper's binaries.
"""

from repro.synth.asm import Assembler
from repro.synth.groundtruth import GroundTruth
from repro.synth.program import (
    FunctionSpec,
    GenParams,
    ProgramSpec,
    generate_program,
)
from repro.synth.codegen import SynthesizedBinary, synthesize
from repro.synth.hostile import (
    HOSTILE_PRESETS,
    hostile_binary,
    hostile_corpus,
    hostile_params,
)
from repro.synth.corpus import (
    camellia_like,
    corpus_stats,
    coreutils_like_corpus,
    forensics_corpus,
    hpcstruct_binaries,
    llnl1_like,
    llnl2_like,
    tensorflow_like,
    tiny_binary,
)

__all__ = [
    "Assembler",
    "GroundTruth",
    "FunctionSpec",
    "ProgramSpec",
    "generate_program",
    "SynthesizedBinary",
    "synthesize",
    "GenParams",
    "tiny_binary",
    "llnl1_like",
    "llnl2_like",
    "camellia_like",
    "tensorflow_like",
    "hpcstruct_binaries",
    "forensics_corpus",
    "coreutils_like_corpus",
    "corpus_stats",
    "HOSTILE_PRESETS",
    "hostile_binary",
    "hostile_corpus",
    "hostile_params",
]
