"""Program specifications: what a synthetic binary should contain.

:func:`generate_program` draws a :class:`ProgramSpec` from a seeded RNG and
a :class:`GenParams` profile.  The spec is purely declarative — function
shapes, call graph, challenging constructs — and the code generator lowers
it deterministically, so a (seed, params) pair identifies a binary exactly.

The generated population exercises every construct from Section 2.1 of the
paper: functions sharing code (error-handling groups), non-returning
functions (known, wrapper chains, mutual-recursion cycles, and the
``error``-style conditionally-returning function), jump tables (plain,
obscured-bound over-approximation traps, stack-spill failures), tail calls
(including the order-sensitive Listing 1 shape), outlined cold blocks and
hidden (symbol-less) functions that must be discovered through calls.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import SynthesisError

#: Function names treated as known non-returning by the analyses, the
#: synthesizer, and the paper's name-matching heuristic alike.
KNOWN_NORETURN_NAMES = frozenset({
    "exit", "abort", "_exit", "__stack_chk_fail", "__assert_fail",
    "fatal_error",
})

#: Name of the conditionally non-returning function (Section 8.1's `error`).
ERROR_FUNC_NAME = "error_report"


class SegKind(enum.Enum):
    """Body segment kinds composed sequentially into a function."""

    LINEAR = "linear"        # straight-line filler
    DIAMOND = "diamond"      # if/else join
    LOOP = "loop"            # bounded loop with a back edge
    EARLY_RET = "early_ret"  # conditional early return (extra RET)
    CALL = "call"            # direct call to another function
    SWITCH = "switch"        # jump table


class Epilogue(enum.Enum):
    """How a function ends."""

    RET = "ret"                      # normal return
    TAIL_CALL = "tail_call"          # teardown + jump to another function
    NORETURN_CALL = "noreturn_call"  # last instruction calls a noreturn fn
    HALT = "halt"                    # known noreturn primitive (exit-like)
    ERROR_CALL = "error_call"        # calls error_report with nonzero arg
    FALL_SHARED = "fall_shared"      # jumps into a shared error block


@dataclass
class SwitchSpec:
    """One jump-table switch inside a function."""

    n_cases: int
    obscured_bound: bool = False  #: bound check unanalyzable -> over-approx
    stack_spill: bool = False     #: table base through memory -> unresolved


@dataclass
class Segment:
    kind: SegKind
    filler: int = 3                    #: straight-line instructions to emit
    callee: int | None = None          #: CALL target (function index)
    switch: SwitchSpec | None = None
    loop_trips: int = 4                #: cosmetic; bounds are static anyway


@dataclass
class FunctionSpec:
    """Declarative description of one function."""

    index: int
    name: str                         #: mangled symbol name
    segments: list[Segment] = field(default_factory=list)
    epilogue: Epilogue = Epilogue.RET
    has_frame: bool = True
    tail_target: int | None = None            #: for TAIL_CALL epilogues
    noreturn_callee: int | None = None        #: for NORETURN_CALL epilogues
    shared_error_group: int | None = None     #: FALL_SHARED group id
    cold_outline: bool = False                #: emit a .cold region
    hidden: bool = False                      #: omit from symtab/eh_frame
    eh_only: bool = False                     #: unwind-info entry only
    secondary_entry: bool = False             #: multi-entry (linear body)
    listing1_shared_jmp: int | None = None    #: Listing 1: raw-jmp target id
    inline_depth: int = 0                     #: DWARF inline tree depth
    cu: str = "src_0.c"
    decl_line: int = 1

    @property
    def is_known_noreturn(self) -> bool:
        return self.name in KNOWN_NORETURN_NAMES

    @property
    def approx_size(self) -> int:
        """Rough size metric used for load-balance sorting in tests."""
        return sum(s.filler + (s.switch.n_cases * 2 if s.switch else 0)
                   for s in self.segments) + 4


@dataclass
class ProgramSpec:
    """A whole synthetic program."""

    seed: int
    functions: list[FunctionSpec] = field(default_factory=list)
    n_shared_error_groups: int = 0
    name: str = "synthetic"
    #: knobs forwarded to DWARF generation.
    type_dies_per_cu: int = 0
    lines_per_function: int = 4
    #: hostile-layout knobs forwarded to codegen (see GenParams).
    strip_symtab: bool = False
    pct_junk_padding: float = 0.15
    junk_max_bytes: int = 8
    #: indices of functions that can never return (a real compiler never
    #: emits code after calls to these, so the generator avoids making them
    #: ordinary call targets).
    noreturn_indices: set[int] = field(default_factory=set)

    def function_named(self, name: str) -> FunctionSpec:
        for f in self.functions:
            if f.name == name:
                return f
        raise SynthesisError(f"no function named {name!r}")


@dataclass
class GenParams:
    """Statistical profile of a generated binary (workload knobs)."""

    n_functions: int = 100
    #: lognormal body-size distribution (segments per function).
    size_mu: float = 1.3
    size_sigma: float = 0.7
    max_segments: int = 120
    #: construct frequencies (probabilities per function, except counts).
    pct_switch: float = 0.10
    pct_obscured_switch: float = 0.10     # of switches
    pct_stack_spill_switch: float = 0.05  # of switches
    max_switch_cases: int = 12
    pct_tail_call: float = 0.06
    pct_cold_outline: float = 0.04
    pct_hidden: float = 0.05
    pct_call_segment: float = 0.25        # chance a segment is a call
    pct_error_call: float = 0.04          # conditionally-noreturn callers
    pct_multi_entry: float = 0.01
    #: hostile-binary knobs (all off / benign by default; the hostile
    #: presets in :mod:`repro.synth.hostile` crank them up).
    pct_eh_only: float = 0.0              # unwind-entry-only functions
    strip_symtab: bool = False            # drop .symtab from the image
    pct_junk_padding: float = 0.15        # junk bytes between functions
    junk_max_bytes: int = 8               # max junk run length
    n_shared_error_groups: int = 2
    shared_group_size: int = 4
    noreturn_chain_len: int = 3
    n_noreturn_cycles: int = 1
    n_listing1_pairs: int = 1
    functions_per_cu: int = 12
    #: DWARF weight (drives DWARF-vs-CFG cost ratios per binary).
    type_dies_per_cu: int = 40
    lines_per_function: int = 4
    max_inline_depth: int = 2


def generate_program(seed: int, params: GenParams,
                     name: str = "synthetic") -> ProgramSpec:
    """Draw a program spec from the given seed and statistical profile."""
    rng = random.Random(seed)
    p = params
    n = p.n_functions
    if n < 8:
        raise SynthesisError("need at least 8 functions for the fixed cast")

    spec = ProgramSpec(seed=seed, name=name,
                       n_shared_error_groups=p.n_shared_error_groups,
                       type_dies_per_cu=p.type_dies_per_cu,
                       lines_per_function=p.lines_per_function,
                       strip_symtab=p.strip_symtab,
                       pct_junk_padding=p.pct_junk_padding,
                       junk_max_bytes=p.junk_max_bytes)

    # --- fixed cast -------------------------------------------------------
    # Index 0: the known-noreturn primitive.
    spec.functions.append(FunctionSpec(
        index=0, name="exit", epilogue=Epilogue.HALT, has_frame=False,
        segments=[Segment(SegKind.LINEAR, filler=2)]))
    # Index 1: error_report — returns iff first argument is zero.
    spec.functions.append(FunctionSpec(
        index=1, name=ERROR_FUNC_NAME, epilogue=Epilogue.RET,
        has_frame=False, segments=[]))

    next_index = 2

    def add(fn: FunctionSpec) -> FunctionSpec:
        nonlocal next_index
        fn.index = next_index
        next_index += 1
        spec.functions.append(fn)
        return fn

    # Non-returning wrapper chain: w0 -> w1 -> ... -> exit.
    chain: list[FunctionSpec] = []
    for i in range(p.noreturn_chain_len):
        chain.append(add(FunctionSpec(
            index=-1, name=f"_Z12fatal_step_{i}v",
            segments=[Segment(SegKind.LINEAR, filler=rng.randint(2, 5))],
            epilogue=Epilogue.NORETURN_CALL, has_frame=True)))
    for i, fn in enumerate(chain):
        fn.noreturn_callee = chain[i + 1].index if i + 1 < len(chain) else 0

    # Mutually-recursive non-returning cycles.
    for c in range(p.n_noreturn_cycles):
        a = add(FunctionSpec(
            index=-1, name=f"_Z9cycle_a_{c}v", has_frame=False,
            segments=[Segment(SegKind.LINEAR, filler=2)],
            epilogue=Epilogue.NORETURN_CALL))
        b = add(FunctionSpec(
            index=-1, name=f"_Z9cycle_b_{c}v", has_frame=False,
            segments=[Segment(SegKind.LINEAR, filler=2)],
            epilogue=Epilogue.NORETURN_CALL))
        a.noreturn_callee = b.index
        b.noreturn_callee = a.index

    # Listing 1 pairs: A (frame + teardown) and B (frameless) both jump to
    # one shared raw target.
    for j in range(p.n_listing1_pairs):
        a = add(FunctionSpec(
            index=-1, name=f"_Z11l1_frame_{j}v", has_frame=True,
            segments=[Segment(SegKind.LINEAR, filler=3)],
            epilogue=Epilogue.TAIL_CALL))
        b = add(FunctionSpec(
            index=-1, name=f"_Z14l1_frameless_{j}v", has_frame=False,
            segments=[Segment(SegKind.LINEAR, filler=2)],
            epilogue=Epilogue.TAIL_CALL))
        a.listing1_shared_jmp = j
        b.listing1_shared_jmp = j

    # --- the general population ------------------------------------------------
    while next_index < n:
        idx = next_index
        n_segs = min(p.max_segments,
                     max(1, int(rng.lognormvariate(p.size_mu, p.size_sigma))))
        fn = FunctionSpec(index=-1, name=_mangle(rng, idx))
        fn.cu = f"src_{idx // max(1, p.functions_per_cu)}.c"
        fn.decl_line = rng.randint(1, 500)
        fn.inline_depth = rng.randint(0, p.max_inline_depth)
        add(fn)

        for _ in range(n_segs):
            fn.segments.append(_draw_segment(rng, p, n, idx))

        if rng.random() < p.pct_switch:
            fn.segments.append(Segment(
                SegKind.SWITCH, filler=2, switch=_draw_switch(rng, p)))

        # Epilogue: mutually exclusive specials, else plain RET.
        roll = rng.random()
        if roll < p.pct_tail_call:
            fn.epilogue = Epilogue.TAIL_CALL
            fn.tail_target = rng.randrange(2, n)
        elif roll < p.pct_tail_call + p.pct_error_call:
            fn.epilogue = Epilogue.ERROR_CALL
        fn.has_frame = rng.random() < 0.8
        fn.cold_outline = rng.random() < p.pct_cold_outline
        fn.hidden = rng.random() < p.pct_hidden
        # Unwind-info-only entry (exception-handler style): visible to
        # eh_frame but absent from both symbol tables.  The guard keeps
        # the RNG stream bit-identical for benign presets (no draw when
        # the knob is off).
        fn.eh_only = (not fn.hidden and p.pct_eh_only > 0
                      and rng.random() < p.pct_eh_only)
        if (not fn.hidden and fn.epilogue is Epilogue.RET
                and rng.random() < p.pct_multi_entry):
            # Multi-entry functions get simple linear bodies so their
            # secondary-entry ground truth is exact (a suffix range).
            fn.secondary_entry = True
            fn.segments = [Segment(SegKind.LINEAR, filler=4),
                           Segment(SegKind.LINEAR, filler=4)]

    # Shared error-handling groups (functions sharing code).
    members = [f for f in spec.functions
               if f.epilogue is Epilogue.RET and not f.secondary_entry
               and f.index >= 2]
    rng.shuffle(members)
    gi = 0
    for g in range(p.n_shared_error_groups):
        took = 0
        while took < p.shared_group_size and gi < len(members):
            members[gi].shared_error_group = g
            gi += 1
            took += 1

    spec.noreturn_indices = {0} | {f.index for f in chain}
    spec.noreturn_indices.update(
        f.index for f in spec.functions
        if f.epilogue is Epilogue.NORETURN_CALL
    )
    _fix_call_targets(rng, spec)
    return spec


def _mangle(rng: random.Random, idx: int) -> str:
    base = f"fn{idx:05d}"
    args = "".join(rng.choice("ildps") for _ in range(rng.randint(0, 3)))
    return f"_Z{len(base)}{base}{args or 'v'}"


def _draw_switch(rng: random.Random, p: GenParams) -> SwitchSpec:
    n_cases = rng.randint(3, p.max_switch_cases)
    roll = rng.random()
    if roll < p.pct_stack_spill_switch:
        return SwitchSpec(n_cases, stack_spill=True)
    if roll < p.pct_stack_spill_switch + p.pct_obscured_switch:
        return SwitchSpec(n_cases, obscured_bound=True)
    return SwitchSpec(n_cases)


def _draw_segment(rng: random.Random, p: GenParams, n_functions: int,
                  self_idx: int) -> Segment:
    filler = rng.randint(1, 6)
    roll = rng.random()
    if roll < p.pct_call_segment:
        return Segment(SegKind.CALL, filler=filler,
                       callee=rng.randrange(2, n_functions))
    if roll < p.pct_call_segment + 0.18:
        return Segment(SegKind.DIAMOND, filler=filler)
    if roll < p.pct_call_segment + 0.30:
        return Segment(SegKind.LOOP, filler=filler,
                       loop_trips=rng.randint(2, 9))
    if roll < p.pct_call_segment + 0.36:
        return Segment(SegKind.EARLY_RET, filler=filler)
    return Segment(SegKind.LINEAR, filler=filler)


def _fix_call_targets(rng: random.Random, spec: ProgramSpec) -> None:
    """Make the call graph well-formed.

    - call/tail targets must exist, not be self, and not be non-returning
      (a compiler never emits code after a call to a noreturn function);
    - every hidden function needs at least one caller, or it could never be
      discovered and would pollute the checker with false missing-function
      reports.
    """
    n = len(spec.functions)
    bad = set(spec.noreturn_indices) | {1}  # error_report called specially

    def fix(t: int, self_idx: int) -> int:
        t %= n
        while t in bad or t == self_idx or t < 2:
            t = (t + 1) % n
        return t

    called: set[int] = set()
    for fn in spec.functions:
        if fn.tail_target is not None:
            fn.tail_target = fix(fn.tail_target, fn.index)
            called.add(fn.tail_target)
        for seg in fn.segments:
            if seg.kind is SegKind.CALL and seg.callee is not None:
                seg.callee = fix(seg.callee, fn.index)
                called.add(seg.callee)

    callers = [f for f in spec.functions
               if f.index >= 2 and not f.hidden
               and f.index not in spec.noreturn_indices
               and not f.secondary_entry]
    # Guarantee discoverability of hidden functions: insert one call at
    # the *front* of a *distinct* visible caller each.  Call sites later
    # in a body can be killed by noreturn cascades (including a cascade
    # started by an earlier hidden callee), and a hidden function whose
    # only call site is dead code could never be discovered — a compiler
    # would have eliminated such a function entirely.
    host_order = list(callers)
    rng.shuffle(host_order)
    next_host = 0
    for fn in spec.functions:
        if fn.hidden:
            host = host_order[next_host % len(host_order)]
            next_host += 1
            host.segments.insert(
                0, Segment(SegKind.CALL, filler=1, callee=fn.index))
