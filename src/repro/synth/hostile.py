"""Hostile-binary presets: the inputs real-world corpora throw at CFA.

BCFA-scale analyses (PAPERS.md) run over millions of binaries where
stripped symbols, overlapping functions and data in ``.text`` are the
norm.  The benign presets in :mod:`repro.synth.corpus` mirror the
paper's well-behaved evaluation binaries; these presets deliberately
manufacture the pathologies, each still carrying exact ground truth so
parser behaviour can be pinned per preset
(``tests/synth/test_adversarial.py``) and fuzzed differentially
(:mod:`repro.fuzz`).

Preset axes
-----------

- ``stripped``      — no ``.symtab``: F0 comes from dynsym + eh_frame
  only, everything else must be discovered through calls;
- ``overlap-entry`` — dense multi-entry functions plus many functions
  sharing error-handling code (overlapping ranges);
- ``jt-overapprox`` — every switch bound is obscured through memory, so
  union-mode analysis scans the contiguous ``.rodata`` tables and
  over-approximates into the *neighboring* function's table until
  finalization trims the overlap;
- ``data-in-text``  — long undecodable junk runs interleaved between
  functions in ``.text``;
- ``oob-entry``     — exception-handler-style out-of-band entries:
  functions known only to the unwind information;
- ``hostile-all``   — all of the above at once.

Every preset is a pure function of ``(preset, seed, n_functions)``;
the fuzz driver derives per-case seeds by splitting one master seed
(:mod:`repro.seeds`).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import SynthesisError
from repro.synth.codegen import SynthesizedBinary, synthesize
from repro.synth.program import GenParams, generate_program

#: Challenging-construct floor every hostile preset keeps: the point is
#: hostile *layout* on top of — not instead of — the paper's hard cases.
_HOSTILE_BASE = GenParams(
    n_functions=28,
    size_mu=1.3, size_sigma=0.8,
    pct_switch=0.18, max_switch_cases=12,
    pct_tail_call=0.10, pct_error_call=0.10,
    pct_cold_outline=0.06, pct_hidden=0.06,
    n_shared_error_groups=2, shared_group_size=4,
    noreturn_chain_len=3, n_noreturn_cycles=1, n_listing1_pairs=1,
    functions_per_cu=6, type_dies_per_cu=6, lines_per_function=3,
)

#: preset name -> GenParams overrides applied to ``_HOSTILE_BASE``.
_PRESET_OVERRIDES: dict[str, dict] = {
    "stripped": dict(strip_symtab=True, pct_hidden=0.12),
    "overlap-entry": dict(pct_multi_entry=0.30,
                          n_shared_error_groups=4, shared_group_size=6),
    "jt-overapprox": dict(pct_switch=0.50, pct_obscured_switch=1.0,
                          pct_stack_spill_switch=0.0,
                          max_switch_cases=8),
    "data-in-text": dict(pct_junk_padding=0.70, junk_max_bytes=24),
    "oob-entry": dict(pct_eh_only=0.35, pct_hidden=0.10),
    "hostile-all": dict(strip_symtab=True, pct_hidden=0.12,
                        pct_multi_entry=0.20,
                        n_shared_error_groups=3, shared_group_size=5,
                        pct_switch=0.40, pct_obscured_switch=0.8,
                        pct_stack_spill_switch=0.1, max_switch_cases=8,
                        pct_junk_padding=0.60, junk_max_bytes=24,
                        pct_eh_only=0.25),
}

#: Stable preset order (the fuzz driver round-robins through this).
HOSTILE_PRESETS: tuple[str, ...] = tuple(sorted(_PRESET_OVERRIDES))


def hostile_params(preset: str, n_functions: int | None = None) -> GenParams:
    """The :class:`GenParams` profile of one hostile preset."""
    try:
        overrides = dict(_PRESET_OVERRIDES[preset])
    except KeyError:
        raise SynthesisError(
            f"unknown hostile preset {preset!r}; "
            f"choose from {', '.join(HOSTILE_PRESETS)}") from None
    if n_functions is not None:
        overrides["n_functions"] = n_functions
    return replace(_HOSTILE_BASE, **overrides)


def hostile_binary(preset: str, seed: int = 1337,
                   n_functions: int | None = None) -> SynthesizedBinary:
    """Synthesize one hostile binary with ground truth."""
    params = hostile_params(preset, n_functions)
    name = f"hostile-{preset}-{seed}"
    return synthesize(generate_program(seed, params, name=name))


def hostile_corpus(seed: int = 1337, n_per_preset: int = 1,
                   presets: tuple[str, ...] | None = None
                   ) -> list[SynthesizedBinary]:
    """One deterministic corpus slice across the hostile preset axes."""
    out = []
    for preset in presets if presets is not None else HOSTILE_PRESETS:
        for i in range(n_per_preset):
            out.append(hostile_binary(preset, seed=seed + i))
    return out
