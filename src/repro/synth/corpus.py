"""Corpus presets mirroring the paper's evaluation binaries.

The paper's binaries are multi-gigabyte; simulated analysis makes their
*structure* the thing to preserve, not their absolute size.  Presets are
scaled down ~1000x but keep the proportions that drive the results:

- **LLNL1/LLNL2-like**: large scientific codes, debug info a few times
  bigger than text, many mid-sized functions.
- **Camellia-like**: smaller binary, similar proportions.
- **TensorFlow-like**: .debug dwarfs .text (template-heavy C++); very many
  small functions; deep inline trees.  DWARF parsing dominates at one
  thread, exactly as in Table 2.
- **Forensic corpus**: many small binaries (Apache/Redis/Nginx-style
  server code scaled down), where per-binary parallelism is scarce — the
  regime where BinFeat's CFG stage scales poorly (Table 3).
- **coreutils-like corpus**: many tiny binaries with ground truth, used by
  the correctness evaluation (Section 8.1).
"""

from __future__ import annotations

from dataclasses import replace

from repro.synth.codegen import SynthesizedBinary, synthesize
# Hostile preset axes live in repro.synth.hostile; re-exported here so
# corpus consumers (fuzz driver, CLI) see one preset namespace.
from repro.synth.hostile import (  # noqa: F401
    HOSTILE_PRESETS,
    hostile_binary,
    hostile_corpus,
)
from repro.synth.program import GenParams, generate_program


def _build(seed: int, params: GenParams, name: str) -> SynthesizedBinary:
    return synthesize(generate_program(seed, params, name=name))


def tiny_binary(seed: int = 7, n_functions: int = 24,
                name: str = "tiny.bin", **overrides) -> SynthesizedBinary:
    """A small binary for tests and the quickstart example."""
    params = replace(GenParams(n_functions=n_functions,
                               n_shared_error_groups=1,
                               shared_group_size=2,
                               n_listing1_pairs=1,
                               n_noreturn_cycles=1,
                               noreturn_chain_len=2,
                               functions_per_cu=6,
                               type_dies_per_cu=4),
                     **overrides)
    return _build(seed, params, name)


def llnl1_like(seed: int = 101, scale: float = 1.0) -> SynthesizedBinary:
    """LLNL1-like: Power scientific code, 363 MiB total (scaled)."""
    params = GenParams(
        n_functions=max(8, int(900 * scale)),
        size_mu=1.6, size_sigma=0.8,
        pct_switch=0.12, functions_per_cu=4,
        type_dies_per_cu=55, lines_per_function=6,
        n_shared_error_groups=6, shared_group_size=5,
        noreturn_chain_len=4, n_noreturn_cycles=2, n_listing1_pairs=2,
    )
    return _build(seed, params, "LLNL1-like")


def llnl2_like(seed: int = 102, scale: float = 1.0) -> SynthesizedBinary:
    """LLNL2-like: 1.9 GiB binary, debug info ~10x text (scaled)."""
    params = GenParams(
        n_functions=max(8, int(1400 * scale)),
        size_mu=1.5, size_sigma=0.85,
        pct_switch=0.10, functions_per_cu=5,
        type_dies_per_cu=120, lines_per_function=7,
        n_shared_error_groups=8, shared_group_size=5,
        noreturn_chain_len=4, n_noreturn_cycles=2, n_listing1_pairs=2,
    )
    return _build(seed, params, "LLNL2-like")


def camellia_like(seed: int = 103, scale: float = 1.0) -> SynthesizedBinary:
    """Camellia-like: 300 MiB discontinuous-Galerkin framework (scaled)."""
    params = GenParams(
        n_functions=max(8, int(650 * scale)),
        size_mu=1.7, size_sigma=0.7,
        pct_switch=0.08, functions_per_cu=4,
        type_dies_per_cu=95, lines_per_function=6,
        n_shared_error_groups=4, shared_group_size=4,
        noreturn_chain_len=3, n_noreturn_cycles=1, n_listing1_pairs=1,
    )
    return _build(seed, params, "Camellia-like")


def tensorflow_like(seed: int = 104, scale: float = 1.0) -> SynthesizedBinary:
    """TensorFlow-like: 7.7 GiB shared library, .debug ~68x .text (scaled).

    Very many small template-instantiation functions; the DWARF side
    dominates single-threaded time (Table 2: 703 s DWARF vs 113 s CFG).
    """
    params = GenParams(
        n_functions=max(8, int(2200 * scale)),
        size_mu=1.1, size_sigma=0.6,   # many small functions
        pct_switch=0.07, functions_per_cu=8,
        type_dies_per_cu=420, lines_per_function=10,
        max_inline_depth=3,
        n_shared_error_groups=10, shared_group_size=6,
        noreturn_chain_len=5, n_noreturn_cycles=2, n_listing1_pairs=3,
    )
    return _build(seed, params, "TensorFlow-like")


def hpcstruct_binaries(scale: float = 1.0) -> list[SynthesizedBinary]:
    """The four binaries of Table 1 / Table 2 / Figure 3."""
    return [llnl1_like(scale=scale), llnl2_like(scale=scale),
            camellia_like(scale=scale), tensorflow_like(scale=scale)]


def forensics_corpus(n_binaries: int = 40, seed: int = 500,
                     scale: float = 1.0) -> list[SynthesizedBinary]:
    """BinFeat's training-set corpus (504 real binaries, scaled to 40).

    Server-code profile: small binaries, handful of large parser functions
    with big switch statements (the jump-table-heavy imbalance source the
    paper identifies for the CFG stage of Table 3).
    """
    out = []
    for i in range(n_binaries):
        params = GenParams(
            n_functions=max(8, int((40 + (i * 13) % 50) * scale)),
            size_mu=1.4, size_sigma=1.0,   # heavy tail: few big functions
            pct_switch=0.22, max_switch_cases=24,
            functions_per_cu=8, type_dies_per_cu=10, lines_per_function=3,
            n_shared_error_groups=1, shared_group_size=3,
            noreturn_chain_len=3, n_noreturn_cycles=1, n_listing1_pairs=1,
        )
        out.append(_build(seed + i, params, f"forensic_{i:03d}.bin"))
    return out


def coreutils_like_corpus(n_binaries: int = 113, seed: int = 8000
                          ) -> list[SynthesizedBinary]:
    """The correctness corpus (113 coreutils/tar binaries, Section 8.1)."""
    out = []
    for i in range(n_binaries):
        params = GenParams(
            n_functions=10 + (i * 7) % 30,
            size_mu=1.2, size_sigma=0.8,
            pct_switch=0.15,
            pct_obscured_switch=0.15, pct_stack_spill_switch=0.10,
            pct_error_call=0.08, pct_cold_outline=0.08,
            functions_per_cu=6, type_dies_per_cu=5,
            n_shared_error_groups=1, shared_group_size=3,
            noreturn_chain_len=2, n_noreturn_cycles=1, n_listing1_pairs=1,
        )
        out.append(_build(seed + i, params, f"coreutil_{i:03d}"))
    return out


def corpus_stats(binaries: list[SynthesizedBinary]) -> dict[str, dict]:
    """Per-binary section statistics (Table 1 rows)."""
    stats = {}
    for sb in binaries:
        img = sb.binary.image
        stats[sb.name] = {
            "total": img.total_size,
            "text": img.text_size,
            "debug": img.debug_size,
            "functions": len(sb.spec.functions),
            "symbols": len(sb.binary.symtab),
        }
    return stats
