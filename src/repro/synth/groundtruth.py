"""Ground truth emitted alongside synthesized binaries.

Plays the role of the paper's DWARF + RTL-derived ground truth
(Section 8.1): function address ranges (supporting non-contiguous
functions and ranges shared by several functions), jump-table locations
and sizes, and the addresses of call instructions whose callee never
returns.  The correctness checker (:mod:`repro.apps.checker`) compares
parsed CFGs against this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Range = tuple[int, int]


def merge_ranges(ranges: list[Range]) -> list[Range]:
    """Normalize: sort and coalesce adjacent/overlapping address ranges."""
    out: list[Range] = []
    for lo, hi in sorted(r for r in ranges if r[0] < r[1]):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


@dataclass
class GroundTruth:
    """Everything the checker verifies, for one binary."""

    #: function name -> merged, sorted list of [lo, hi) address ranges,
    #: as a DWARF .debug_info section would encode them.
    function_ranges: dict[str, list[Range]] = field(default_factory=dict)

    #: jump table address in .rodata -> number of entries, as RTL dumps
    #: would encode them.
    jump_tables: dict[int, int] = field(default_factory=dict)

    #: addresses of CALL instructions whose callee does not return
    #: (REG_NORETURN in RTL terms).
    noreturn_calls: set[int] = field(default_factory=set)

    #: function entry address -> name (layout bookkeeping for reports).
    entry_names: dict[int, str] = field(default_factory=dict)

    def add_function_range(self, name: str, lo: int, hi: int) -> None:
        self.function_ranges.setdefault(name, []).append((lo, hi))

    def normalize(self) -> None:
        """Merge and sort all recorded ranges (call once after building)."""
        for name, ranges in self.function_ranges.items():
            self.function_ranges[name] = merge_ranges(ranges)

    def range_of(self, name: str) -> list[Range]:
        return self.function_ranges.get(name, [])
