"""A small two-pass assembler for the synthetic ISA.

Used by the code generator and — importantly — by tests that need precise
control over machine-code layout (the Listing 1 tail-call scenario, shared
blocks, overlapping parses).  Instructions may reference labels wherever an
``i32`` immediate is expected; label addresses are resolved in a second
pass (all opcodes have fixed lengths, so one sizing pass suffices).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.isa.encoding import encode, instruction_length
from repro.isa.instructions import Cond, Instruction, Opcode
from repro.isa.registers import Reg


@dataclass(frozen=True, slots=True)
class Label:
    """Symbolic reference to a position in the assembled stream."""

    name: str


@dataclass(slots=True)
class _Item:
    opcode: Opcode | None   # None for raw data bytes
    operands: tuple
    raw: bytes = b""


class Assembler:
    """Two-pass assembler emitting machine code at a base address."""

    def __init__(self, base: int):
        self.base = base
        self._items: list[_Item] = []
        self._labels: dict[str, int] = {}   # label -> item index

    # -- building ---------------------------------------------------------

    def label(self, name: str) -> None:
        """Define a label at the current position."""
        if name in self._labels:
            raise SynthesisError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)

    def insn(self, opcode: Opcode, *operands: int | Reg | Cond | Label) -> None:
        """Append an instruction; operands may include :class:`Label`."""
        self._items.append(_Item(opcode, tuple(operands)))

    def raw(self, data: bytes) -> None:
        """Append raw bytes (padding / junk to exercise decode failure)."""
        self._items.append(_Item(None, (), data))

    # Convenience mnemonics used heavily by tests and codegen.

    def nop(self) -> None:
        self.insn(Opcode.NOP)

    def mov_ri(self, rd: Reg, imm: int) -> None:
        self.insn(Opcode.MOV_RI, rd, imm)

    def enter(self, frame: int = 16) -> None:
        self.insn(Opcode.ENTER, frame)

    def leave(self) -> None:
        self.insn(Opcode.LEAVE)

    def jmp(self, target: Label | int) -> None:
        self.insn(Opcode.JMP, target)

    def jcc(self, cond: Cond, target: Label | int) -> None:
        self.insn(Opcode.JCC, cond, target)

    def call(self, target: Label | int) -> None:
        self.insn(Opcode.CALL, target)

    def ret(self) -> None:
        self.insn(Opcode.RET)

    def halt(self) -> None:
        self.insn(Opcode.HALT)

    def cmp_ri(self, rs: Reg, imm: int) -> None:
        self.insn(Opcode.CMP_RI, rs, imm)

    # -- resolution -----------------------------------------------------------

    def _item_length(self, item: _Item) -> int:
        if item.opcode is None:
            return len(item.raw)
        return instruction_length(item.opcode)

    def address_of(self, name: str) -> int:
        """Resolved address of a label (available after layout)."""
        addr = self.base
        target_idx = self._labels.get(name)
        if target_idx is None:
            raise SynthesisError(f"undefined label {name!r}")
        for item in self._items[:target_idx]:
            addr += self._item_length(item)
        return addr

    def assemble(self) -> tuple[bytes, dict[str, int]]:
        """Emit machine code; returns (code, label addresses)."""
        # Pass 1: lay out addresses.
        addrs: list[int] = []
        addr = self.base
        for item in self._items:
            addrs.append(addr)
            addr += self._item_length(item)
        label_addrs = {name: addrs[idx] if idx < len(addrs) else addr
                       for name, idx in self._labels.items()}
        # Pass 2: emit with labels resolved.
        out = bytearray()
        for item, iaddr in zip(self._items, addrs):
            if item.opcode is None:
                out += item.raw
                continue
            ops = []
            for op in item.operands:
                if isinstance(op, Label):
                    if op.name not in label_addrs:
                        raise SynthesisError(f"undefined label {op.name!r}")
                    ops.append(label_addrs[op.name])
                else:
                    ops.append(int(op))
            out += encode(Instruction(iaddr, item.opcode, tuple(ops),
                                      instruction_length(item.opcode)))
        return bytes(out), label_addrs

    @property
    def size(self) -> int:
        """Current size in bytes of the assembled stream."""
        return sum(self._item_length(i) for i in self._items)

    @property
    def current_address(self) -> int:
        return self.base + self.size


def L(name: str) -> Label:
    """Shorthand label reference."""
    return Label(name)
