"""Deterministic seed splitting: one master seed, many independent RNGs.

Every stochastic subsystem (the fuzz driver, the race-sweep scheduler,
per-case program generation) must be a pure function of one
user-supplied master seed.  Deriving child seeds by *arithmetic* on the
master (``base + i``) is a footgun: two sweeps whose ranges overlap
share schedules, and any module-level ``random`` use silently couples
unrelated subsystems through global state.

This module provides the one sanctioned derivation: a child seed is
drawn from a :class:`random.Random` instance seeded with a string that
encodes the master seed plus a label path.  String seeding hashes the
bytes (SHA-512 under seed version 2), so

- distinct labels give statistically independent streams even for
  adjacent master seeds, and
- the mapping is stable across platforms and Python versions.

No function here touches the module-level ``random`` state.
"""

from __future__ import annotations

import random

#: Child seeds are drawn in this many bits (fits comfortably in the
#: 64-bit range every consumer accepts, and stays exact in JSON).
SEED_BITS = 48


def spawn_rng(master: int, *path: int | str) -> random.Random:
    """A fresh RNG for the subsystem identified by ``path``.

    The same ``(master, path)`` always yields an identically-seeded
    generator; different paths yield independent streams.
    """
    label = ":".join(str(p) for p in (master, *path))
    return random.Random("repro-seed:" + label)


def derive_seed(master: int, *path: int | str) -> int:
    """One child seed for ``path`` (see :func:`spawn_rng`)."""
    return spawn_rng(master, *path).getrandbits(SEED_BITS)


def derive_seeds(master: int, n: int, *path: int | str) -> list[int]:
    """``n`` independent child seeds for ``path``, in a stable order."""
    rng = spawn_rng(master, *path)
    return [rng.getrandbits(SEED_BITS) for _ in range(n)]
