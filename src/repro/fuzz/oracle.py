"""The differential oracle: one binary, every backend, one verdict.

An axis is one way of running the parser end to end — a backend
(serial / vtime / threads / procs), a procs resilience configuration
(fault plan, shm transport fallback), or a sanity analysis (cfgsan
invariants, race-detection sweep, findings-sidecar byte determinism
of the interprocedural checkers).  The oracle runs a binary through
every axis and compares :meth:`ParsedCFG.signature` digests
byte-for-byte against the first (serial) axis; signature axes must
match exactly, check axes must report zero findings.

Axes are plain ``(name, kind, fn)`` records so tests can add ablation
axes — :func:`strict_jt_axis` wires up the pre-fix strict jump-table
mode, the one configuration that *genuinely* diverges on obscured-bound
switches, which the reducer tests and the seed corpus use as a real
divergence source.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.binary.loader import LoadedBinary
from repro.core import parse_binary
from repro.core.jump_table import JumpTableOptions
from repro.core.parallel_parser import ParseOptions
from repro.errors import SanityCheckError


def signature_digest(sig: tuple) -> str:
    """Stable hex digest of a :meth:`ParsedCFG.signature` tuple."""
    return hashlib.sha256(repr(sig).encode()).hexdigest()


@dataclass(frozen=True)
class OracleAxis:
    """One way of running the parser over a binary.

    ``kind`` is ``"signature"`` (``fn`` returns a signature tuple to
    compare against the reference axis) or ``"check"`` (``fn`` returns
    a list of finding dicts; any finding fails the axis).
    """

    name: str
    kind: str
    fn: Callable[[LoadedBinary], Any]


@dataclass
class OracleResult:
    """Verdict for one binary across every axis."""

    binary_name: str
    reference: str                 #: name of the reference axis
    reference_digest: str
    digests: dict[str, str] = field(default_factory=dict)
    findings: dict[str, list[dict]] = field(default_factory=dict)
    failing: list[str] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return bool(self.failing)

    def to_row(self) -> dict:
        """Flat JSON row for the fuzz report."""
        return {
            "binary": self.binary_name,
            "reference": self.reference,
            "reference_digest": self.reference_digest,
            "digests": dict(sorted(self.digests.items())),
            "failing": list(self.failing),
            "findings": {k: list(v)
                         for k, v in sorted(self.findings.items())},
        }


# ------------------------------------------------------------------- axes

def _parse_sig(rt_factory: Callable[[], Any],
               options: ParseOptions | None = None
               ) -> Callable[[LoadedBinary], tuple]:
    def run(binary: LoadedBinary) -> tuple:
        return parse_binary(binary, rt_factory(), options).signature()
    return run


def _cfgsan_check(binary: LoadedBinary) -> list[dict]:
    from repro.runtime.serial import SerialRuntime

    try:
        parse_binary(binary, SerialRuntime(), ParseOptions(sanitize=True))
    except SanityCheckError as e:
        return [{"check": "cfgsan", "where": e.where, "finding": str(f)}
                for f in e.findings]
    return []


def _races_check(seed: int, schedules: int, n_workers: int
                 ) -> Callable[[LoadedBinary], list[dict]]:
    from repro.sanity.races import run_race_sweep

    def run(binary: LoadedBinary) -> list[dict]:
        rep = run_race_sweep(
            lambda rt: parse_binary(binary, rt),
            n_workers=n_workers, schedules=schedules, base_seed=seed,
            workload_name="fuzz-case")
        return [{"check": "races", **f} if isinstance(f, dict)
                else {"check": "races", "finding": str(f)}
                for f in rep["findings"]]
    return run


def _checkers_check(workers: int, procs_workers: int, procs_inline: bool
                    ) -> Callable[[LoadedBinary], list[dict]]:
    """Findings-sidecar determinism axis: the full analyze pipeline
    (parse + interprocedural checkers) must produce byte-identical
    ``repro.findings/1`` canonical bytes on every backend."""
    from repro.analyses.checkers import ALL_CHECKS
    from repro.analyses.findings import canonical_bytes, findings_document
    from repro.analyses.interproc import run_checkers
    from repro.runtime import ProcsRuntime, SerialRuntime, ThreadRuntime

    def one(binary: LoadedBinary, make_rt: Callable[[], Any]) -> bytes:
        cfg = parse_binary(binary, make_rt())
        res = run_checkers(cfg, "all", rt=make_rt(),
                           binary=getattr(binary, "name", None))
        doc = findings_document("checkers", list(ALL_CHECKS),
                                res.findings)
        return canonical_bytes(doc)

    def run(binary: LoadedBinary) -> list[dict]:
        ref = one(binary, SerialRuntime)
        out: list[dict] = []
        for name, make_rt in (
                ("threads", lambda: ThreadRuntime(workers)),
                ("procs", lambda: ProcsRuntime(
                    procs_workers, in_process=procs_inline))):
            got = one(binary, make_rt)
            if got != ref:
                out.append({"check": "checkers", "backend": name,
                            "detail": "findings sidecar diverged from "
                                      "the serial reference bytes"})
        return out
    return run


def default_axes(*, workers: int = 4, procs_workers: int = 2,
                 procs_inline: bool = True, include_faults: bool = True,
                 include_shm: bool = False, race_seed: int = 0,
                 race_schedules: int = 2, race_workers: int = 4,
                 include_checkers: bool = True
                 ) -> list[OracleAxis]:
    """The standard axis battery.  The first axis is the reference.

    ``procs_inline`` keeps the sharded pipeline in-process (no pool) so
    the oracle runs anywhere; ``include_shm`` adds the shm-transport
    fallback axis, which only exists on the pool path, so it forces
    ``in_process=False`` for that axis.
    """
    from repro.runtime import (
        ProcsRuntime,
        SerialRuntime,
        ThreadRuntime,
        VirtualTimeRuntime,
    )
    from repro.runtime.faults import FaultPlan

    axes = [
        OracleAxis("serial", "signature", _parse_sig(SerialRuntime)),
        OracleAxis("vtime", "signature",
                   _parse_sig(lambda: VirtualTimeRuntime(workers))),
        OracleAxis("threads", "signature",
                   _parse_sig(lambda: ThreadRuntime(workers))),
        OracleAxis("procs", "signature",
                   _parse_sig(lambda: ProcsRuntime(
                       procs_workers, in_process=procs_inline))),
        # The coordinator-tail degraded rung: worker partial-finalize
        # hints off, everything recomputed coordinator-side (the same
        # configuration ``REPRO_NO_PARTIAL_FINALIZE=1`` forces).
        OracleAxis("procs-no-partial", "signature",
                   _parse_sig(lambda: ProcsRuntime(
                       procs_workers, in_process=procs_inline),
                       ParseOptions(partial_finalize=False))),
    ]
    if include_faults:
        axes.append(OracleAxis(
            "procs-fault", "signature",
            _parse_sig(lambda: ProcsRuntime(
                procs_workers, in_process=procs_inline,
                fault_plan=FaultPlan.from_spec("exc@0x1"),
                shard_deadline=30.0))))
    if include_shm:
        axes.append(OracleAxis(
            "procs-shm", "signature",
            _parse_sig(lambda: ProcsRuntime(
                procs_workers, in_process=False,
                fault_plan=FaultPlan.from_spec("shm"),
                shard_deadline=30.0))))
    axes.append(OracleAxis("cfgsan", "check", _cfgsan_check))
    axes.append(OracleAxis(
        "races", "check",
        _races_check(race_seed, race_schedules, race_workers)))
    if include_checkers:
        axes.append(OracleAxis(
            "checkers", "check",
            _checkers_check(workers, procs_workers, procs_inline)))
    return axes


def strict_jt_axis(name: str = "serial-strict-jt") -> OracleAxis:
    """Pre-fix ablation: strict jump-table mode (no union-semantics
    scan).  Diverges from the reference on obscured-bound switches —
    the real divergence source the reducer tests and seed corpus use.
    """
    from repro.runtime.serial import SerialRuntime

    opts = ParseOptions(jt_options=JumpTableOptions(union_mode=False))
    return OracleAxis(name, "signature", _parse_sig(SerialRuntime, opts))


# ----------------------------------------------------------------- oracle

def run_oracle(binary: LoadedBinary, axes: list[OracleAxis] | None = None,
               *, metrics: Any = None, name: str | None = None
               ) -> OracleResult:
    """Run ``binary`` through every axis; compare against the first.

    The first axis must be a signature axis — it is the reference all
    other signature axes are compared to.  An axis that raises is
    recorded as ``error:<ExceptionType>`` and fails (a backend crashing
    on a hostile binary is as much a divergence as a wrong CFG).
    """
    if axes is None:
        axes = default_axes()
    if not axes or axes[0].kind != "signature":
        raise ValueError("first oracle axis must be a signature axis")

    result = OracleResult(
        binary_name=name if name is not None else getattr(
            binary, "name", "<binary>"),
        reference=axes[0].name, reference_digest="")

    for axis in axes:
        if metrics is not None:
            metrics.inc("fuzz.axes.runs")
        if axis.kind == "signature":
            try:
                digest = signature_digest(axis.fn(binary))
            except Exception as e:  # crash == divergence, keep fuzzing
                digest = f"error:{type(e).__name__}"
                result.findings.setdefault(axis.name, []).append(
                    {"check": axis.name, "error": type(e).__name__,
                     "detail": str(e)})
            result.digests[axis.name] = digest
            if not result.reference_digest:
                result.reference_digest = digest
            elif digest != result.reference_digest:
                result.failing.append(axis.name)
        else:
            try:
                findings = axis.fn(binary)
            except Exception as e:
                findings = [{"check": axis.name,
                             "error": type(e).__name__, "detail": str(e)}]
            if findings:
                result.findings[axis.name] = findings
                result.failing.append(axis.name)

    if metrics is not None and result.diverged:
        metrics.inc("fuzz.divergences")
    return result
