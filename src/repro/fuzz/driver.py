"""The fuzzing campaign driver behind ``repro fuzz``.

One master seed fans out — via :mod:`repro.seeds` splitting, never
arithmetic — into per-case generation seeds and per-case race-sweep
seeds, so a campaign is a pure function of ``(runs, seed, presets,
options)``: the same invocation regenerates the same binaries, the
same schedules, and a byte-identical ``repro.fuzz-report/1`` document.

Each case round-robins the hostile preset axes
(:mod:`repro.synth.hostile`), synthesizes one binary, and hands it to
the differential oracle.  Divergent cases are (optionally) delta-
reduced to minimal spec-level repros, which the report embeds as
``repro.fuzz-case/1`` documents ready to pin into
``tests/fuzz/corpus/``.
"""

from __future__ import annotations

from typing import Any

from repro.fuzz.oracle import OracleAxis, default_axes, run_oracle
from repro.fuzz.reduce import divergence_predicate, reduce
from repro.fuzz.specio import case_to_json
from repro.seeds import derive_seed
from repro.synth.hostile import HOSTILE_PRESETS, hostile_binary

#: Version identifier of the fuzz campaign report (validated in
#: :mod:`repro.runtime.tracefmt`).
FUZZ_REPORT_SCHEMA = "repro.fuzz-report/1"


def fuzz_run(runs: int, seed: int, *, presets: tuple[str, ...] | None = None,
             minimize: bool = False, n_functions: int | None = None,
             axes: list[OracleAxis] | None = None,
             workers: int = 4, procs_workers: int = 2,
             procs_inline: bool = True, include_shm: bool = False,
             race_schedules: int = 2, metrics: Any = None) -> dict:
    """Run a seeded differential-fuzzing campaign; return the report.

    ``axes`` overrides the whole axis battery (tests use this to inject
    the strict-jt ablation as a real divergence source); by default the
    battery is :func:`~repro.fuzz.oracle.default_axes` with a per-case
    race-sweep seed split off the master seed.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    chosen = tuple(presets) if presets else HOSTILE_PRESETS
    unknown = [p for p in chosen if p not in HOSTILE_PRESETS]
    if unknown:
        raise ValueError(f"unknown preset(s): {', '.join(unknown)}")

    cases: list[dict] = []
    divergences: list[dict] = []
    axis_names: list[str] = []
    for i in range(runs):
        preset = chosen[i % len(chosen)]
        case_seed = derive_seed(seed, "fuzz-case", i)
        sb = hostile_binary(preset, seed=case_seed,
                            n_functions=n_functions)
        if metrics is not None:
            metrics.inc("fuzz.cases")
            metrics.inc(f"fuzz.preset.{preset}")
        case_axes = axes if axes is not None else default_axes(
            workers=workers, procs_workers=procs_workers,
            procs_inline=procs_inline, include_shm=include_shm,
            race_seed=derive_seed(seed, "fuzz-race", i),
            race_schedules=race_schedules)
        if not axis_names:
            axis_names = [a.name for a in case_axes]
        res = run_oracle(sb.binary, case_axes, metrics=metrics,
                         name=sb.name)
        n_findings = sum(len(v) for v in res.findings.values())
        if metrics is not None and n_findings:
            metrics.inc("fuzz.sanity.findings", n_findings)
        cases.append({"index": i, "preset": preset,
                      "case_seed": case_seed, **res.to_row()})
        if not res.diverged:
            continue

        div: dict = {"index": i, "preset": preset, "case_seed": case_seed,
                     "binary": sb.name, "failing": list(res.failing),
                     "minimized": None, "reduce": None}
        if minimize:
            rr = reduce(sb.spec,
                        divergence_predicate(case_axes, metrics=metrics),
                        seed=derive_seed(seed, "fuzz-reduce", i),
                        metrics=metrics)
            min_res = run_oracle(_resynth(rr.spec), case_axes,
                                 name=rr.spec.name)
            div["minimized"] = case_to_json(
                rr.spec, signature_sha256=min_res.reference_digest,
                origin=f"repro fuzz --seed {seed} (case {i})",
                preset=preset, failing_axes=min_res.failing)
            div["reduce"] = {
                "attempts": rr.attempts, "accepted": rr.accepted,
                "size_before": list(rr.size_before),
                "size_after": list(rr.size_after),
            }
        divergences.append(div)

    return {
        "schema": FUZZ_REPORT_SCHEMA,
        "seed": seed,
        "runs": runs,
        "presets": list(chosen),
        "axes": axis_names,
        "minimize": bool(minimize),
        "cases": cases,
        "divergences": divergences,
        "summary": {
            "cases": len(cases),
            "diverged": len(divergences),
            "failing_axes": sorted({a for d in divergences
                                    for a in d["failing"]}),
            "sanity_findings": sum(
                len(v) for c in cases for v in c["findings"].values()),
        },
    }


def _resynth(spec):
    from repro.synth.codegen import synthesize

    return synthesize(spec).binary
