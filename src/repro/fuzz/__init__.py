"""Differential fuzzing: adversarial synthesis, oracle, delta reduction.

The paper's correctness claim — every parallel schedule reaches the same
CFG fixed point as the serial parser — deserves an adversary.  This
package closes the generator → oracle → reducer loop:

- :mod:`repro.synth.hostile` manufactures hostile binaries (stripped
  symbols, overlapping functions, over-approximating jump tables,
  data-in-text, out-of-band entries), each with ground truth;
- :mod:`repro.fuzz.oracle` parses each binary on every backend axis
  (serial / vtime / threads / procs, including fault-plan and
  shm-fallback axes) plus the cfgsan and race sanity checks, and
  compares result signatures byte-for-byte;
- :mod:`repro.fuzz.reduce` delta-reduces any diverging binary to a
  minimal repro at the program-spec level (drop function, drop block,
  straighten branch, shrink jump table), deterministically;
- :mod:`repro.fuzz.driver` runs the seeded sweep (``repro fuzz``) and
  emits the versioned ``repro.fuzz-report/1`` sidecar;
- :mod:`repro.fuzz.specio` pins minimized cases as JSON so they land in
  ``tests/fuzz/corpus/`` and replay forever as regression tests.

Everything is a pure function of one master seed (:mod:`repro.seeds`):
the same ``repro fuzz --runs N --seed S`` invocation reproduces the
same binaries, schedules and report bytes.
"""

from repro.fuzz.oracle import (
    OracleAxis,
    OracleResult,
    default_axes,
    run_oracle,
    signature_digest,
)
from repro.fuzz.reduce import ReduceResult, divergence_predicate, reduce
from repro.fuzz.driver import fuzz_run
from repro.fuzz.specio import (
    CASE_SCHEMA,
    case_from_json,
    case_to_json,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "OracleAxis",
    "OracleResult",
    "default_axes",
    "run_oracle",
    "signature_digest",
    "ReduceResult",
    "divergence_predicate",
    "reduce",
    "fuzz_run",
    "CASE_SCHEMA",
    "case_to_json",
    "case_from_json",
    "spec_to_json",
    "spec_from_json",
]
