"""Program-spec (de)serialization: fuzz cases as reviewable JSON.

A minimized repro is a :class:`~repro.synth.program.ProgramSpec` — the
declarative description codegen lowers deterministically — so pinning
the *spec* pins the binary bit-for-bit.  Corpus entries
(``tests/fuzz/corpus/*.json``) wrap a spec with the expected serial
signature digest and provenance metadata; the replay test re-synthesizes
each entry and re-parses it on every backend.

The JSON form is intentionally flat and diff-friendly: one object per
function, one per segment, enum values spelled out.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SynthesisError
from repro.synth.program import (
    Epilogue,
    FunctionSpec,
    ProgramSpec,
    SegKind,
    Segment,
    SwitchSpec,
)

#: Version identifier of a pinned fuzz-corpus case document.
CASE_SCHEMA = "repro.fuzz-case/1"


# ----------------------------------------------------------------- spec

def _switch_to_json(sw: SwitchSpec | None) -> dict | None:
    if sw is None:
        return None
    return {"n_cases": sw.n_cases, "obscured_bound": sw.obscured_bound,
            "stack_spill": sw.stack_spill}


def _segment_to_json(seg: Segment) -> dict:
    return {
        "kind": seg.kind.value,
        "filler": seg.filler,
        "callee": seg.callee,
        "switch": _switch_to_json(seg.switch),
        "loop_trips": seg.loop_trips,
    }


def _function_to_json(fn: FunctionSpec) -> dict:
    return {
        "index": fn.index,
        "name": fn.name,
        "segments": [_segment_to_json(s) for s in fn.segments],
        "epilogue": fn.epilogue.value,
        "has_frame": fn.has_frame,
        "tail_target": fn.tail_target,
        "noreturn_callee": fn.noreturn_callee,
        "shared_error_group": fn.shared_error_group,
        "cold_outline": fn.cold_outline,
        "hidden": fn.hidden,
        "eh_only": fn.eh_only,
        "secondary_entry": fn.secondary_entry,
        "listing1_shared_jmp": fn.listing1_shared_jmp,
        "inline_depth": fn.inline_depth,
        "cu": fn.cu,
        "decl_line": fn.decl_line,
    }


def spec_to_json(spec: ProgramSpec) -> dict:
    """JSON-ready dict capturing a spec exactly (codegen determinism
    then pins the binary)."""
    return {
        "seed": spec.seed,
        "name": spec.name,
        "n_shared_error_groups": spec.n_shared_error_groups,
        "type_dies_per_cu": spec.type_dies_per_cu,
        "lines_per_function": spec.lines_per_function,
        "strip_symtab": spec.strip_symtab,
        "pct_junk_padding": spec.pct_junk_padding,
        "junk_max_bytes": spec.junk_max_bytes,
        "noreturn_indices": sorted(spec.noreturn_indices),
        "functions": [_function_to_json(f) for f in spec.functions],
    }


def _segment_from_json(obj: dict) -> Segment:
    sw = obj.get("switch")
    return Segment(
        kind=SegKind(obj["kind"]),
        filler=obj["filler"],
        callee=obj.get("callee"),
        switch=(SwitchSpec(sw["n_cases"], sw["obscured_bound"],
                           sw["stack_spill"]) if sw else None),
        loop_trips=obj.get("loop_trips", 4),
    )


def _function_from_json(obj: dict) -> FunctionSpec:
    return FunctionSpec(
        index=obj["index"],
        name=obj["name"],
        segments=[_segment_from_json(s) for s in obj["segments"]],
        epilogue=Epilogue(obj["epilogue"]),
        has_frame=obj["has_frame"],
        tail_target=obj.get("tail_target"),
        noreturn_callee=obj.get("noreturn_callee"),
        shared_error_group=obj.get("shared_error_group"),
        cold_outline=obj.get("cold_outline", False),
        hidden=obj.get("hidden", False),
        eh_only=obj.get("eh_only", False),
        secondary_entry=obj.get("secondary_entry", False),
        listing1_shared_jmp=obj.get("listing1_shared_jmp"),
        inline_depth=obj.get("inline_depth", 0),
        cu=obj.get("cu", "src_0.c"),
        decl_line=obj.get("decl_line", 1),
    )


def spec_from_json(obj: dict) -> ProgramSpec:
    """Rebuild a :class:`ProgramSpec` from :func:`spec_to_json` output."""
    try:
        return ProgramSpec(
            seed=obj["seed"],
            name=obj["name"],
            n_shared_error_groups=obj["n_shared_error_groups"],
            type_dies_per_cu=obj.get("type_dies_per_cu", 0),
            lines_per_function=obj.get("lines_per_function", 4),
            strip_symtab=obj.get("strip_symtab", False),
            pct_junk_padding=obj.get("pct_junk_padding", 0.15),
            junk_max_bytes=obj.get("junk_max_bytes", 8),
            noreturn_indices=set(obj.get("noreturn_indices", ())),
            functions=[_function_from_json(f) for f in obj["functions"]],
        )
    except (KeyError, ValueError) as e:
        raise SynthesisError(f"malformed spec document: {e!r}") from e


def clone_spec(spec: ProgramSpec) -> ProgramSpec:
    """Deep, independent copy (via the JSON round-trip, which doubles
    as a serializability guarantee for every spec the reducer touches)."""
    return spec_from_json(spec_to_json(spec))


# ----------------------------------------------------------------- case

def case_to_json(spec: ProgramSpec, *, signature_sha256: str,
                 origin: str, preset: str | None = None,
                 failing_axes: list[str] | None = None) -> dict:
    """A pinned corpus entry: spec + expected behaviour + provenance."""
    return {
        "schema": CASE_SCHEMA,
        "name": spec.name,
        "origin": origin,
        "preset": preset,
        "failing_axes": list(failing_axes or []),
        "expect": {"signature_sha256": signature_sha256},
        "spec": spec_to_json(spec),
    }


def case_from_json(obj: dict) -> tuple[ProgramSpec, dict]:
    """Rebuild ``(spec, case_document)``; validates the schema tag."""
    if obj.get("schema") != CASE_SCHEMA:
        raise SynthesisError(
            f"not a {CASE_SCHEMA} document: {obj.get('schema')!r}")
    return spec_from_json(obj["spec"]), obj


def load_case(path: str) -> tuple[ProgramSpec, dict]:
    """Load one pinned corpus entry from disk."""
    with open(path) as f:
        return case_from_json(json.load(f))


def save_case(path: str, case: dict) -> None:
    """Write a corpus entry with stable formatting (reviewable diffs)."""
    with open(path, "w") as f:
        json.dump(case, f, indent=2, sort_keys=True)
        f.write("\n")
