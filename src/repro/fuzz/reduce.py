"""Delta reduction: shrink a diverging binary to a minimal repro.

Works at the :class:`~repro.synth.program.ProgramSpec` level — the
declarative program description — not on raw bytes, so every candidate
is a *well-formed* binary (csmith/creduce-style program reduction
rather than bit truncation) and the minimized result lands in the
corpus as a reviewable spec.

Four passes, applied greedily:

- **drop-function**: remove one function (never the fixed cast at
  indices 0/1), repairing dangling references — calls to the dropped
  function straighten to linear code, tail calls become returns,
  noreturn chains re-target ``exit``;
- **drop-segment**: remove one body segment;
- **straighten**: replace one control-flow construct with straight-line
  code — a non-linear segment becomes LINEAR, a special epilogue
  becomes RET, a shared-error-block membership is dropped;
- **shrink-switch**: halve one jump table's case count (keeping its
  obscured/stack-spill flags, since those are usually the point).

Each accepted candidate strictly decreases a scalar weight (functions,
segments, constructs, switch cases), so reduction terminates; after a
full sweep in which no candidate is accepted the spec is a fixed point,
which makes :func:`reduce` idempotent.  Candidate order within a sweep
is a pure function of ``(seed, sweep index)`` via :mod:`repro.seeds` —
deterministic, never module-level ``random``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.fuzz.specio import clone_spec
from repro.seeds import spawn_rng
from repro.synth.program import Epilogue, ProgramSpec, SegKind

#: Function indices the reducer never drops: 0 is ``exit`` (the known
#: noreturn primitive) and 1 is ``error_report`` — codegen's fixed cast.
_FIXED_CAST = (0, 1)


@dataclass
class ReduceResult:
    """Outcome of one reduction run."""

    spec: ProgramSpec
    attempts: int              #: candidates tested against the predicate
    accepted: int              #: candidates that kept the divergence
    size_before: tuple[int, int]   #: (functions, segments) going in
    size_after: tuple[int, int]    #: (functions, segments) coming out


def spec_size(spec: ProgramSpec) -> tuple[int, int]:
    """(function count, total segment count) — the reported size."""
    return (len(spec.functions),
            sum(len(f.segments) for f in spec.functions))


def _weight(spec: ProgramSpec) -> int:
    """Scalar the passes strictly decrease (termination measure)."""
    w = 1000 * len(spec.functions)
    for fn in spec.functions:
        w += 10 * len(fn.segments)
        w += sum(1 for s in fn.segments if s.kind is not SegKind.LINEAR)
        w += sum(s.switch.n_cases for s in fn.segments if s.switch)
        if fn.epilogue not in (Epilogue.RET, Epilogue.HALT):
            w += 1
        if fn.shared_error_group is not None:
            w += 1
    return w


# ------------------------------------------------------------------ passes

def _drop_function(spec: ProgramSpec, index: int) -> ProgramSpec:
    """Remove function ``index``; repair every dangling reference."""
    out = clone_spec(spec)
    out.functions = [f for f in out.functions if f.index != index]
    out.noreturn_indices.discard(index)
    for fn in out.functions:
        if fn.tail_target == index:
            fn.tail_target = None
            fn.epilogue = Epilogue.RET
        if fn.noreturn_callee == index:
            fn.noreturn_callee = 0  # exit: always present, always noreturn
        for seg in fn.segments:
            if seg.kind is SegKind.CALL and seg.callee == index:
                seg.kind = SegKind.LINEAR
                seg.callee = None
    return out


def _drop_segment(spec: ProgramSpec, index: int, seg_i: int) -> ProgramSpec:
    out = clone_spec(spec)
    fn = next(f for f in out.functions if f.index == index)
    del fn.segments[seg_i]
    return out


def _straighten(spec: ProgramSpec, index: int, what: Any) -> ProgramSpec:
    """Replace one control-flow construct with straight-line code."""
    out = clone_spec(spec)
    fn = next(f for f in out.functions if f.index == index)
    if what == "epilogue":
        fn.epilogue = Epilogue.RET
        fn.tail_target = None
        fn.noreturn_callee = None
        fn.listing1_shared_jmp = None
        out.noreturn_indices.discard(index)
    elif what == "shared":
        fn.shared_error_group = None
    else:  # segment index
        seg = fn.segments[what]
        seg.kind = SegKind.LINEAR
        seg.callee = None
        seg.switch = None
    return out


def _shrink_switch(spec: ProgramSpec, index: int, seg_i: int) -> ProgramSpec:
    out = clone_spec(spec)
    fn = next(f for f in out.functions if f.index == index)
    sw = fn.segments[seg_i].switch
    sw.n_cases = max(1, sw.n_cases // 2)
    return out


def _candidates(spec: ProgramSpec) -> list[tuple[str, Callable[[], ProgramSpec]]]:
    """Every single-step shrink of ``spec``, as (label, thunk) pairs."""
    out: list[tuple[str, Callable[[], ProgramSpec]]] = []
    for fn in spec.functions:
        i = fn.index
        if i in _FIXED_CAST:
            continue
        out.append((f"drop-function:{i}", lambda i=i: _drop_function(spec, i)))
        keep_floor = 1 if fn.secondary_entry else 0
        for s in range(len(fn.segments) - 1, keep_floor - 1, -1):
            out.append((f"drop-segment:{i}.{s}",
                        lambda i=i, s=s: _drop_segment(spec, i, s)))
        for s, seg in enumerate(fn.segments):
            if seg.kind is not SegKind.LINEAR:
                out.append((f"straighten:{i}.{s}",
                            lambda i=i, s=s: _straighten(spec, i, s)))
            if seg.switch is not None and seg.switch.n_cases > 1:
                out.append((f"shrink-switch:{i}.{s}",
                            lambda i=i, s=s: _shrink_switch(spec, i, s)))
        if fn.epilogue not in (Epilogue.RET, Epilogue.HALT):
            out.append((f"straighten-epilogue:{i}",
                        lambda i=i: _straighten(spec, i, "epilogue")))
        if fn.shared_error_group is not None:
            out.append((f"straighten-shared:{i}",
                        lambda i=i: _straighten(spec, i, "shared")))
    return out


# ------------------------------------------------------------------ driver

def reduce(spec: ProgramSpec,
           is_interesting: Callable[[ProgramSpec], bool],
           *, seed: int = 0, max_attempts: int = 2000,
           metrics: Any = None) -> ReduceResult:
    """Greedily shrink ``spec`` while ``is_interesting`` stays true.

    ``is_interesting`` receives a candidate spec and must return True
    iff the behaviour being chased (usually an oracle divergence) is
    still present; exceptions it raises count as "not interesting" so
    one crashing candidate cannot abort a reduction.  The input spec
    itself is never mutated.  Deterministic in ``(spec, seed)``; the
    fixed point is idempotent — reducing the result again returns it
    unchanged.
    """
    current = clone_spec(spec)
    size_before = spec_size(current)
    attempts = accepted = sweep = 0

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        cands = _candidates(current)
        # Dropping big things first converges faster; the shuffle only
        # breaks ties among same-kind candidates, deterministically.
        spawn_rng(seed, "reduce", sweep).shuffle(cands)
        cands.sort(key=lambda c: 0 if c[0].startswith("drop-function") else 1)
        sweep += 1
        for _label, thunk in cands:
            if attempts >= max_attempts:
                break
            candidate = thunk()
            if _weight(candidate) >= _weight(current):
                continue  # not a strict shrink; skip to guarantee progress
            attempts += 1
            if metrics is not None:
                metrics.inc("fuzz.reduce.attempts")
            try:
                keep = is_interesting(candidate)
            except Exception:
                keep = False
            if keep:
                current = candidate
                accepted += 1
                if metrics is not None:
                    metrics.inc("fuzz.reduce.accepted")
                progress = True
                break  # restart the sweep on the smaller spec

    return ReduceResult(spec=current, attempts=attempts, accepted=accepted,
                        size_before=size_before,
                        size_after=spec_size(current))


def divergence_predicate(axes: list | None = None, *, metrics: Any = None
                         ) -> Callable[[ProgramSpec], bool]:
    """An ``is_interesting`` that re-synthesizes and re-runs the oracle.

    A candidate is interesting iff it still synthesizes to a binary on
    which :func:`repro.fuzz.oracle.run_oracle` reports a divergence on
    the given axes.
    """
    from repro.errors import SynthesisError
    from repro.fuzz.oracle import run_oracle
    from repro.synth.codegen import synthesize

    def interesting(candidate: ProgramSpec) -> bool:
        try:
            sb = synthesize(candidate)
        except SynthesisError:
            return False
        return run_oracle(sb.binary, axes, metrics=metrics,
                          name=candidate.name).diverged

    return interesting
