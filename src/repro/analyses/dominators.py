"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Dominators over a function's intra-procedural CFG underpin natural-loop
detection (AC2).  Blocks unreachable from the entry (possible for shared
code that only *other* functions reach) are excluded.
"""

from __future__ import annotations

from repro.analyses.common import (
    intra_predecessors,
    intra_successors,
    member_set,
)
from repro.core.cfg import Block, Function
from repro.runtime.api import Runtime


def _reverse_postorder(func: Function, member: set[int]) -> list[Block]:
    order: list[Block] = []
    seen: set[int] = set()

    def dfs(b: Block) -> None:
        stack = [(b, iter(intra_successors(b, member)))]
        seen.add(b.start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for s in it:
                if s.start not in seen:
                    seen.add(s.start)
                    stack.append((s, iter(intra_successors(s, member))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    dfs(func.entry)
    order.reverse()
    return order


def immediate_dominators(func: Function,
                         rt: Runtime | None = None) -> dict[int, int]:
    """Map block start -> immediate dominator start (entry maps to itself).

    Only blocks reachable from the function entry appear.
    """
    member = member_set(func)
    rpo = _reverse_postorder(func, member)
    index = {b.start: i for i, b in enumerate(rpo)}
    idom: dict[int, int] = {func.entry.start: func.entry.start}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for b in rpo:
            if b.start == func.entry.start:
                continue
            if rt is not None:
                rt.charge(rt.cost.loop_per_edge)
            new_idom: int | None = None
            for p in intra_predecessors(b, member):
                if p.start not in idom or p.start not in index:
                    continue
                new_idom = (p.start if new_idom is None
                            else intersect(p.start, new_idom))
            if new_idom is not None and idom.get(b.start) != new_idom:
                idom[b.start] = new_idom
                changed = True
    return idom


def dominator_tree(func: Function,
                   rt: Runtime | None = None) -> dict[int, list[int]]:
    """Children lists of the dominator tree, keyed by block start."""
    idom = immediate_dominators(func, rt)
    tree: dict[int, list[int]] = {s: [] for s in idom}
    for node, parent in idom.items():
        if node != parent:
            tree[parent].append(node)
    for children in tree.values():
        children.sort()
    return tree


def dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True if block ``a`` dominates block ``b`` (both starts)."""
    cur = b
    while True:
        if cur == a:
            return True
        parent = idom.get(cur)
        if parent is None or parent == cur:
            return a == cur
        cur = parent
