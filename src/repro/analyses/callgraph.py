"""Whole-program call graph and its SCC condensation.

Built from the parsed CFG's ``CALL``/``TAILCALL`` edges: nodes are
function entry addresses, a directed edge ``caller -> callee`` exists
when any block of the caller calls (or tail-calls) the callee's entry.
Indirect calls (``ICALL``) and calls whose target is not a recognized
function entry have no callee node; they are counted per caller so
clients can fall back to conservative ABI summaries.

The condensation drives the interprocedural scheduler
(:mod:`repro.analyses.interproc`): SCCs are computed with an iterative
Tarjan over address-sorted nodes and neighbors, then grouped into
bottom-up waves (every callee SCC lands in an earlier wave than its
callers), so all orders exposed here are canonical — independent of
how the CFG was constructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cfg import EdgeType, ParsedCFG
from repro.isa.instructions import Opcode


@dataclass(frozen=True)
class CallSite:
    """One resolved call/tail-call from a caller block to a callee."""

    caller: int   #: caller function entry
    site: int     #: address of the call/branch instruction
    callee: int   #: callee function entry
    kind: str     #: "call" | "tailcall"


@dataclass
class CallGraph:
    """Call graph over function entries, with canonical orders."""

    entries: tuple[int, ...]                 #: sorted function entries
    names: dict[int, str]
    callees: dict[int, tuple[int, ...]]      #: sorted, de-duplicated
    callers: dict[int, tuple[int, ...]]      #: sorted, de-duplicated
    sites: tuple[CallSite, ...]              #: sorted by (caller, site)
    #: per-entry count of call sites with no resolvable callee entry
    #: (indirect calls, calls into the middle of a function).
    unresolved: dict[int, int] = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self.callees.values())


def build_call_graph(cfg: ParsedCFG) -> CallGraph:
    """Extract the call graph from a parsed CFG."""
    entries = tuple(f.addr for f in cfg.functions())
    entry_set = set(entries)
    names = {f.addr: f.name for f in cfg.functions()}
    callees: dict[int, set[int]] = {e: set() for e in entries}
    callers: dict[int, set[int]] = {e: set() for e in entries}
    sites: list[CallSite] = []
    unresolved: dict[int, int] = {e: 0 for e in entries}

    for func in cfg.functions():
        seen_sites: set[tuple[int, int, str]] = set()
        for block in func.blocks:
            if block.is_empty:
                continue
            last = block.insns[-1] if block.insns else None
            for e in block.out_edges:
                if e.etype is EdgeType.CALL:
                    kind = "call"
                elif e.etype is EdgeType.TAILCALL:
                    kind = "tailcall"
                else:
                    continue
                target = e.dst.start
                site = last.address if last is not None else block.start
                if target in entry_set:
                    key = (site, target, kind)
                    if key in seen_sites:
                        continue  # block shared between functions
                    seen_sites.add(key)
                    callees[func.addr].add(target)
                    callers[target].add(func.addr)
                    sites.append(CallSite(func.addr, site, target, kind))
                else:
                    unresolved[func.addr] += 1
            if (last is not None and last.opcode is Opcode.ICALL):
                unresolved[func.addr] += 1

    return CallGraph(
        entries=entries,
        names=names,
        callees={e: tuple(sorted(v)) for e, v in callees.items()},
        callers={e: tuple(sorted(v)) for e, v in callers.items()},
        sites=tuple(sorted(sites,
                           key=lambda s: (s.caller, s.site, s.callee))),
        unresolved=unresolved,
    )


def tarjan_sccs(graph: CallGraph) -> list[tuple[int, ...]]:
    """Strongly connected components, iteratively (no recursion limit).

    Nodes and neighbors are visited in sorted address order and each
    SCC's members are returned sorted, so the output is a pure function
    of the graph.  The list is ordered by smallest member address.
    """
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[tuple[int, ...]] = []
    counter = 0

    for root in graph.entries:
        if root in index:
            continue
        # Each frame: (node, iterator position into its callee tuple).
        work: list[list[int]] = [[root, 0]]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbors = graph.callees.get(node, ())
            while pos < len(neighbors):
                nxt = neighbors[pos]
                pos += 1
                work[-1][1] = pos
                if nxt not in index:
                    work.append([nxt, 0])
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                comp: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(tuple(sorted(comp)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sorted(sccs, key=lambda c: c[0])


def condensation_waves(graph: CallGraph,
                       sccs: list[tuple[int, ...]] | None = None
                       ) -> tuple[list[tuple[int, ...]], list[list[int]]]:
    """Bottom-up waves over the SCC condensation.

    Returns ``(sccs, waves)`` where each wave is a list of SCC indices
    whose callee SCCs all live in strictly earlier waves (Kahn levels on
    the reversed condensation).  SCCs inside one wave are mutually
    independent — the unit of parallel fan-out — and each wave is
    sorted by smallest member address for determinism.
    """
    if sccs is None:
        sccs = tarjan_sccs(graph)
    scc_of: dict[int, int] = {}
    for i, comp in enumerate(sccs):
        for e in comp:
            scc_of[e] = i

    # Condensation edges caller-SCC -> callee-SCC (no self loops).
    out_deps: list[set[int]] = [set() for _ in sccs]   # callee SCCs
    rev: list[set[int]] = [set() for _ in sccs]        # caller SCCs
    for i, comp in enumerate(sccs):
        for e in comp:
            for c in graph.callees.get(e, ()):
                j = scc_of[c]
                if j != i:
                    out_deps[i].add(j)
                    rev[j].add(i)

    pending = [len(d) for d in out_deps]
    frontier = sorted(i for i, n in enumerate(pending) if n == 0)
    waves: list[list[int]] = []
    done = 0
    while frontier:
        waves.append(frontier)
        done += len(frontier)
        nxt: set[int] = set()
        for i in frontier:
            for caller in rev[i]:
                pending[caller] -= 1
                if pending[caller] == 0:
                    nxt.add(caller)
        frontier = sorted(nxt)
    assert done == len(sccs), "condensation must be acyclic"
    return sccs, waves
