"""Natural-loop detection and loop nesting (the paper's AC2).

Back edges are intra-procedural edges whose target dominates their source;
each back edge's natural loop is the set of blocks that reach the source
without passing through the header.  Loops sharing a header are merged
(as in LLVM/Dyninst loop analysis); nesting is containment of block sets.

hpcstruct uses the nesting forest to attribute instructions to loop
constructs; BinFeat uses loop depth counts as control-flow features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyses.common import (
    intra_predecessors,
    intra_successors,
    member_set,
)
from repro.analyses.dominators import dominates, immediate_dominators
from repro.core.cfg import Function
from repro.runtime.api import Runtime


@dataclass
class Loop:
    """One natural loop."""

    header: int                      #: header block start
    blocks: set[int] = field(default_factory=set)
    children: list["Loop"] = field(default_factory=list)
    parent: "Loop | None" = None
    depth: int = 1                   #: 1 = outermost

    @property
    def size(self) -> int:
        return len(self.blocks)


@dataclass
class LoopForest:
    """All loops of one function, with nesting."""

    roots: list[Loop] = field(default_factory=list)
    by_header: dict[int, Loop] = field(default_factory=dict)

    @property
    def n_loops(self) -> int:
        return len(self.by_header)

    @property
    def max_depth(self) -> int:
        return max((l.depth for l in self.by_header.values()), default=0)

    def loop_of(self, block_start: int) -> Loop | None:
        """The innermost loop containing a block, if any."""
        best: Loop | None = None
        for loop in self.by_header.values():
            if block_start in loop.blocks:
                if best is None or loop.depth > best.depth:
                    best = loop
        return best


def find_loops(func: Function, rt: Runtime | None = None) -> LoopForest:
    """Detect natural loops and build the nesting forest."""
    member = member_set(func)
    idom = immediate_dominators(func, rt)
    blocks = {b.start: b for b in func.blocks if not b.is_empty}

    # Back edges: target dominates source.
    loops: dict[int, Loop] = {}
    for start, b in sorted(blocks.items()):
        if start not in idom:
            continue  # unreachable from this function's entry
        if rt is not None:
            rt.charge(rt.cost.loop_per_edge * max(1, len(b.out_edges)))
        for succ in intra_successors(b, member):
            if succ.start not in idom:
                continue
            if dominates(idom, succ.start, start):
                loop = loops.setdefault(succ.start, Loop(header=succ.start))
                loop.blocks.add(succ.start)
                _collect_body(loop, start, blocks, member)

    forest = LoopForest(by_header=loops)
    _build_nesting(forest)
    return forest


def _collect_body(loop: Loop, latch_start: int, blocks, member) -> None:
    """Blocks reaching the latch without passing the header (backwards)."""
    stack = [latch_start]
    while stack:
        s = stack.pop()
        if s in loop.blocks:
            continue
        loop.blocks.add(s)
        b = blocks.get(s)
        if b is None:
            continue
        for p in intra_predecessors(b, member):
            if p.start not in loop.blocks:
                stack.append(p.start)


def _build_nesting(forest: LoopForest) -> None:
    loops = sorted(forest.by_header.values(), key=lambda l: (-len(l.blocks),
                                                             l.header))
    for i, inner in enumerate(loops):
        # Smallest enclosing loop = the last (smallest) strict superset.
        best: Loop | None = None
        for outer in loops:
            if outer is inner:
                continue
            if inner.header in outer.blocks and \
                    inner.blocks <= outer.blocks and \
                    (len(outer.blocks) > len(inner.blocks)
                     or outer.header < inner.header):
                if best is None or len(outer.blocks) < len(best.blocks):
                    best = outer
        if best is not None:
            inner.parent = best
            best.children.append(inner)
    for loop in loops:
        if loop.parent is None:
            forest.roots.append(loop)
        d = 1
        p = loop.parent
        while p is not None:
            d += 1
            p = p.parent
        loop.depth = d
    forest.roots.sort(key=lambda l: l.header)
    for loop in loops:
        loop.children.sort(key=lambda l: l.header)
