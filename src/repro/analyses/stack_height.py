"""Stack-height analysis: abstract interpretation of SP adjustments.

Tracks the net stack-pointer displacement (bytes, negative = grown) at
block boundaries.  ``LEAVE`` restores the frame (height returns to the
value at frame setup); conflicting heights meet to ``TOP`` (unknown).
This is the analysis behind tail-call heuristic (3): a branch taken at
height 0 after a teardown is a tail call.  (The parser itself uses the
cheaper block-local teardown flag, as Dyninst does; this analysis is the
"DataflowAPI StackAnalysis" counterpart used by applications.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyses.dataflow import (
    DataflowProblem,
    Direction,
    solve_dataflow,
)
from repro.core.cfg import Block, Function
from repro.isa.instructions import Opcode
from repro.runtime.api import Runtime

#: Unknown / conflicting height.
TOP = "top"


def _meet(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    return TOP


def _transfer(block: Block, height):
    if height is TOP:
        # LEAVE re-anchors the height even from unknown state.
        if any(i.opcode is Opcode.LEAVE for i in block.insns):
            h = None
            for insn in block.insns:
                if insn.opcode is Opcode.LEAVE:
                    h = 0
                elif h is not None:
                    d = insn.sp_delta()
                    h = TOP if d is None else (h + d
                                               if h is not TOP else TOP)
            return h if h is not None else TOP
        return TOP
    h = height
    for insn in block.insns:
        if insn.opcode is Opcode.LEAVE:
            h = 0  # frame restored to call-time height
            continue
        d = insn.sp_delta()
        if d is None:
            return TOP
        h += d
    return h


@dataclass
class StackHeightResult:
    """Stack heights at block boundaries (None = unreachable)."""

    height_in: dict[int, int | str | None]
    height_out: dict[int, int | str | None]

    def teardown_before(self, block_start: int) -> bool:
        """True if the block ends at call-time stack height (teardown
        happened): the tail-call heuristic's data-flow form."""
        h = self.height_out.get(block_start)
        return h == 0


def stack_heights(func: Function,
                  rt: Runtime | None = None) -> StackHeightResult:
    """Solve stack heights over one function (entry height 0)."""
    problem = DataflowProblem(
        direction=Direction.FORWARD,
        boundary=0,
        init=None,          # unreached
        meet=_meet,
        transfer=lambda b, h: None if h is None else _transfer(b, h),
        cost_per_transfer=(rt.cost.liveness_per_insn if rt else 0),
    )
    res = solve_dataflow(func, problem, rt)
    return StackHeightResult(height_in=res.in_facts,
                             height_out=res.out_facts)
