"""Backward slicing over registers.

Given a use of a register at some instruction, collect the instructions
that contribute to its value, following def-use chains within the block
and across intra-procedural predecessors (depth-limited, as in Dyninst's
jump-table slices — Section 2.2 notes only slice-reachable instructions
are lifted, which is why slicing is cheap relative to whole-binary
lifting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyses.common import intra_predecessors, member_set
from repro.core.cfg import Block, Function
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.runtime.api import Runtime


@dataclass
class SliceResult:
    """Instructions on the backward slice, in discovery order."""

    instructions: list[Instruction] = field(default_factory=list)
    #: registers whose definitions left the slice region (unresolved).
    escaped: set[Reg] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.instructions)


def backward_slice(func: Function, block: Block, insn_index: int,
                   regs: set[Reg], max_depth: int = 6,
                   rt: Runtime | None = None) -> SliceResult:
    """Slice backwards from ``block.insns[insn_index]`` for ``regs``."""
    member = member_set(func)
    result = SliceResult()
    seen_frames: set[tuple[int, int, frozenset[int]]] = set()

    def wanted_bits(regs_set: set[Reg]) -> frozenset[int]:
        return frozenset(int(r) for r in regs_set)

    def walk(b: Block, upto: int, want: set[Reg], depth: int) -> None:
        frame = (b.start, upto, wanted_bits(want))
        if frame in seen_frames or not want:
            return
        seen_frames.add(frame)
        remaining = set(want)
        for i in range(upto - 1, -1, -1):
            insn = b.insns[i]
            written = insn.regs_written() & remaining
            if written:
                if rt is not None:
                    rt.charge(rt.cost.lift_insn)
                result.instructions.append(insn)
                remaining -= written
                remaining |= insn.regs_read()
            if not remaining:
                return
        if depth >= max_depth:
            result.escaped |= remaining
            return
        preds = intra_predecessors(b, member)
        if not preds:
            result.escaped |= remaining
            return
        for p in sorted(preds, key=lambda x: x.start):
            walk(p, len(p.insns), set(remaining), depth + 1)

    walk(block, insn_index, set(regs), 0)
    return result
