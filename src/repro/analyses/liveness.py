"""Register liveness analysis (the paper's AC6).

Classic backward may-analysis over the register file, with Python ints as
bit vectors.  BinFeat's data-flow features are live-register counts; the
paper notes this analysis has higher complexity than instruction or
control-flow feature extraction, which is why the DF stage of Table 3
plateaus on load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyses.dataflow import (
    DataflowProblem,
    Direction,
    solve_dataflow,
)
from repro.core.cfg import Block, Function
from repro.isa.registers import NUM_REGS, Reg
from repro.runtime.api import Runtime


def _regs_to_bits(regs) -> int:
    bits = 0
    for r in regs:
        bits |= 1 << int(r)
    return bits


def _popcount(v: int) -> int:
    return bin(v).count("1")


@dataclass
class LivenessResult:
    """Live-register bit vectors at block boundaries."""

    live_in: dict[int, int]    #: block start -> bit vector
    live_out: dict[int, int]
    iterations: int

    def live_in_regs(self, block_start: int) -> set[Reg]:
        bits = self.live_in.get(block_start, 0)
        return {Reg(i) for i in range(NUM_REGS) if bits >> i & 1}

    def max_live(self) -> int:
        """Maximum simultaneously-live register count (a DF feature)."""
        return max((_popcount(v) for v in self.live_in.values()), default=0)

    def avg_live(self) -> float:
        if not self.live_in:
            return 0.0
        return sum(_popcount(v) for v in self.live_in.values()) \
            / len(self.live_in)


def block_transfer(block: Block, live_out: int) -> int:
    """Backward transfer: live_in = gen ∪ (live_out − kill), per insn."""
    live = live_out
    for insn in reversed(block.insns):
        live &= ~_regs_to_bits(insn.regs_written())
        live |= _regs_to_bits(insn.regs_read())
    return live


def liveness(func: Function, rt: Runtime | None = None,
             order_key=None) -> LivenessResult:
    """Solve liveness over one function.

    ``order_key`` reorders the initial worklist (the worklist-order
    property battery uses seeded shuffles; the fixpoint is identical).
    """
    # At function exits the ABI return register and SP are live.
    boundary = _regs_to_bits({Reg.R0, Reg.SP})
    cost = rt.cost.liveness_per_insn if rt is not None else 0
    problem = DataflowProblem(
        direction=Direction.BACKWARD,
        boundary=boundary,
        init=0,
        meet=lambda a, b: a | b,
        transfer=block_transfer,
        cost_per_transfer=cost,
    )
    res = solve_dataflow(func, problem, rt, order_key=order_key)
    # For a backward problem the solver's "in" facts are what flows into
    # the transfer — i.e. live-out — and its "out" facts are live-in.
    return LivenessResult(live_in=res.out_facts, live_out=res.in_facts,
                          iterations=res.iterations)
