"""Bottom-up interprocedural scheduler: SCC waves, summaries, findings.

The driver behind ``repro analyze``.  Given a parsed (read-only) CFG it

1. builds the whole-program call graph and its SCC condensation
   (:mod:`repro.analyses.callgraph`);
2. walks the condensation bottom-up in *waves* — every callee SCC is
   finished before any of its callers starts — running the registered
   checkers (:mod:`repro.analyses.checkers`) over each SCC;
3. inside an SCC, iterates the member functions' summaries to a
   fixpoint (finite join-semilattices; cycles converge), then runs one
   reporting pass that collects findings.

SCCs within one wave are mutually independent, so they fan out in
parallel: via ``rt.parallel_for`` on the in-process backends, or over
the shared worker pool on the procs backend.  Each SCC is shipped as a
picklable, self-contained :class:`SCCUnit` and analyzed by the pure
top-level function :func:`analyze_unit` — the *same* function on every
path — so the result is schedule-independent by construction and the
findings sidecar is byte-identical across backends and worker counts
(the differential battery pins this).

Work charged to the runtime uses the liveness cost model, so the vtime
backend produces meaningful utilization traces for analysis runs too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analyses.callgraph import build_call_graph, condensation_waves
from repro.analyses.checkers import (
    FuncView,
    make_checker,
    resolve_checks,
)
from repro.analyses.common import INTRA_EDGES
from repro.analyses.findings import finding, sort_findings
from repro.core.cfg import (
    Block,
    Edge,
    EdgeType,
    Function,
    JumpTableInfo,
    ParsedCFG,
)
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class FuncUnit:
    """Picklable snapshot of one function's intra-procedural CFG.

    Stores only plain tuples (plus immutable :class:`Instruction` and
    :class:`JumpTableInfo` records), so shipping an SCC to a pool
    worker never drags the rest of the program graph along.
    """

    entry: int
    name: str
    #: (start, end, insns) per non-empty block, address-sorted.
    blocks: tuple[tuple[int, int, tuple[Instruction, ...]], ...]
    #: intra-procedural edges (src_start, dst_start, etype value).
    edges: tuple[tuple[int, int, str], ...]
    #: (block_start, callee_entry_or_None) per tail-call exit.
    tailcalls: tuple[tuple[int, int | None], ...]
    jump_tables: tuple[JumpTableInfo, ...]

    def materialize(self) -> FuncView:
        """Rebuild a real Function/Block/Edge graph for the solvers."""
        blocks: dict[int, Block] = {}
        for start, end, insns in self.blocks:
            b = Block(start)
            b.end = end
            b.insns = list(insns)
            blocks[start] = b
        for src, dst, etype in self.edges:
            e = Edge(blocks[src], blocks[dst], EdgeType(etype))
            blocks[src].out_edges.append(e)
            blocks[dst].in_edges.append(e)
        entry_block = blocks.get(self.entry) or Block(self.entry)
        if entry_block.end is None:
            entry_block.end = self.entry
        func = Function(self.entry, self.name, entry_block,
                        from_symtab=False, discovered_via="analysis")
        func.blocks = [blocks[s] for s in sorted(blocks)]
        return FuncView(func=func, entry=self.entry, name=self.name,
                        jump_tables=self.jump_tables,
                        tailcalls=dict(self.tailcalls))


@dataclass
class SCCUnit:
    """One SCC of the call graph, ready to analyze anywhere.

    Self-contained: member function snapshots, the checks to run, and
    the summaries of every external callee the SCC references.  Targets
    missing from ``external`` resolve to the checker's conservative
    ``unknown()`` summary.
    """

    index: int
    funcs: tuple[FuncUnit, ...]
    checks: tuple[str, ...]
    external: dict[str, dict[int, Any]]


def snapshot_function(func: Function, entry_set: set[int],
                      jt_by_block: dict[int, list[JumpTableInfo]]
                      ) -> FuncUnit:
    """Snapshot one parsed function into a picklable unit."""
    live = sorted((b for b in func.blocks if not b.is_empty),
                  key=lambda b: b.start)
    member = {b.start for b in live}
    blocks = tuple((b.start, b.end, tuple(b.insns)) for b in live)
    edges: list[tuple[int, int, str]] = []
    tailcalls: list[tuple[int, int | None]] = []
    tables: list[JumpTableInfo] = []
    for b in live:
        for e in b.out_edges:
            if e.etype in INTRA_EDGES and e.dst.start in member:
                edges.append((b.start, e.dst.start, e.etype.value))
            elif e.etype is EdgeType.TAILCALL:
                target = (e.dst.start if e.dst.start in entry_set
                          else None)
                tailcalls.append((b.start, target))
        tables.extend(jt_by_block.get(b.start, ()))
    return FuncUnit(
        entry=func.addr, name=func.name, blocks=blocks,
        edges=tuple(sorted(set(edges))),
        tailcalls=tuple(sorted(set(tailcalls),
                               key=lambda t: (t[0], t[1] or -1))),
        jump_tables=tuple(sorted(tables, key=lambda j: j.block_start)))


def analyze_unit(unit: SCCUnit) -> dict:
    """Analyze one SCC to summary fixpoint; pure and deterministic.

    Every dispatch path — inline, ``rt.parallel_for`` task, pool
    worker — calls exactly this function, which is what makes the
    findings independent of backend and schedule.  Returns
    ``{"index", "summaries", "findings", "rounds"}``; findings carry
    function attribution but not yet the binary name.
    """
    checkers = [make_checker(n) for n in unit.checks]
    views = {u.entry: u.materialize() for u in unit.funcs}
    entries = sorted(views)
    local: dict[str, dict[int, Any]] = {
        c.name: {e: c.bottom() for e in entries} for c in checkers}

    def lookup(checker, loc):
        ext = unit.external.get(checker.name, {})

        def getsumm(target: int | None):
            if target is None:
                return checker.unknown()
            if target in loc:
                return loc[target]
            if target in ext:
                return ext[target]
            return checker.unknown()
        return getsumm

    rounds = 0
    changed = True
    # Finite lattices converge; the cap is a deterministic safety valve.
    max_rounds = 4 * len(entries) + 16
    while changed and rounds < max_rounds:
        rounds += 1
        changed = False
        for c in checkers:
            loc = local[c.name]
            getsumm = lookup(c, loc)
            for e in entries:
                new, _ = c.analyze(views[e], getsumm)
                if new != loc[e]:
                    loc[e] = new
                    changed = True

    findings: list[dict] = []
    for c in checkers:
        getsumm = lookup(c, local[c.name])
        for e in entries:
            _, raw = c.analyze(views[e], getsumm)
            for f in raw:
                findings.append({**f, "function": views[e].name})
    return {"index": unit.index, "summaries": local,
            "findings": findings, "rounds": rounds}


@dataclass
class AnalysisResult:
    """Everything one interprocedural run produced."""

    findings: list[dict]                     #: normalized, sorted
    summaries: dict[str, dict[int, Any]]     #: per check, per entry
    stats: dict[str, int] = field(default_factory=dict)


def _unit_cost(unit: SCCUnit) -> int:
    return sum(len(insns) for u in unit.funcs
               for _, _, insns in u.blocks)


def run_checkers(cfg: ParsedCFG, checks: Any = "all",
                 rt: Any = None, binary: str | None = None
                 ) -> AnalysisResult:
    """Run the interprocedural checkers over one parsed CFG.

    ``rt`` is an optional *fresh* runtime (``Runtime.run`` is
    single-use, so the runtime that parsed the binary cannot be
    reused).  ``None`` runs inline.  On the procs backend with a real
    pool, wave units are dispatched with ``pool.map``; any pool
    failure falls back to inline analysis of the remaining units —
    same :func:`analyze_unit`, same bytes.
    """
    names = resolve_checks(checks)
    graph = build_call_graph(cfg)
    sccs, waves = condensation_waves(graph)
    jt_by_block: dict[int, list[JumpTableInfo]] = {}
    for jt in cfg.jump_tables:
        jt_by_block.setdefault(jt.block_start, []).append(jt)
    entry_set = set(graph.entries)
    units = {f.addr: snapshot_function(f, entry_set, jt_by_block)
             for f in cfg.functions()}

    summaries: dict[str, dict[int, Any]] = {n: {} for n in names}
    findings: list[dict] = []
    stats = {
        "functions": len(graph.entries),
        "call_edges": graph.n_edges,
        "unresolved_calls": sum(graph.unresolved.values()),
        "sccs": len(sccs),
        "waves": len(waves),
        "rounds": 0,
        "pool_units": 0,
        "pool_fallback": 0,
    }

    def build_wave(wave: list[int]) -> list[SCCUnit]:
        out = []
        for i in wave:
            members = sccs[i]
            need: set[int] = set()
            for e in members:
                need.update(graph.callees.get(e, ()))
            need -= set(members)
            external = {
                n: {t: summaries[n][t] for t in sorted(need)
                    if t in summaries[n]}
                for n in names}
            out.append(SCCUnit(index=i,
                               funcs=tuple(units[e] for e in members),
                               checks=names, external=external))
        return out

    def absorb(results: list[dict]) -> None:
        for res in sorted(results, key=lambda r: r["index"]):
            stats["rounds"] += res["rounds"]
            for n in names:
                summaries[n].update(res["summaries"][n])
            for f in res["findings"]:
                findings.append(finding(
                    f["rule"], f["detail"], binary=binary,
                    function=f.get("function"),
                    address=f.get("address")))

    pool = None
    if rt is not None and type(rt).__name__ == "ProcsRuntime" \
            and not getattr(rt, "in_process", True):
        import multiprocessing as mp

        from repro.runtime.procs import _shared_pool
        try:
            ctx = mp.get_context(rt.start_method)
            pool = _shared_pool(ctx, rt.num_workers)
        except Exception:
            pool = None  # sandboxes without semaphores: run inline

    def drain(wave_units: list[SCCUnit]) -> list[dict]:
        if pool is not None:
            stats["pool_units"] += len(wave_units)
            try:
                return pool.map(analyze_unit, wave_units)
            except Exception:
                stats["pool_fallback"] += len(wave_units)
                return [analyze_unit(u) for u in wave_units]
        if rt is not None:
            results: dict[int, dict] = {}
            lock = rt.make_lock()

            def work(u: SCCUnit) -> None:
                rt.charge(rt.cost.liveness_per_insn * len(u.checks)
                          * max(1, _unit_cost(u)))
                res = analyze_unit(u)
                with lock:
                    results[res["index"]] = res
            rt.parallel_for(wave_units, work, sort_key=_unit_cost,
                            reverse=True)
            return [results[u.index] for u in wave_units]
        return [analyze_unit(u) for u in wave_units]

    def run_waves() -> None:
        for wave in waves:
            drained = drain(build_wave(wave))
            absorb(drained)

    def main() -> None:
        with rt.phase("interproc"):
            run_waves()

    if rt is not None:
        rt.run(main)
    else:
        run_waves()

    result = AnalysisResult(findings=sort_findings(findings),
                            summaries=summaries, stats=stats)
    stats["findings"] = len(result.findings)

    if rt is not None and rt.metrics.enabled:
        m = rt.metrics
        m.inc("analysis.functions", stats["functions"])
        m.inc("analysis.call_edges", stats["call_edges"])
        m.inc("analysis.unresolved_calls", stats["unresolved_calls"])
        m.inc("analysis.sccs", stats["sccs"])
        m.inc("analysis.waves", stats["waves"])
        m.inc("analysis.scc_rounds", stats["rounds"])
        m.inc("analysis.findings", stats["findings"])
        m.inc("analysis.pool_units", stats["pool_units"])
        m.inc("analysis.pool_fallback", stats["pool_fallback"])
        for f in result.findings:
            m.inc(f"analysis.findings.{f['rule']}")
    return result
