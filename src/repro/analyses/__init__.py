"""Read-only intra-procedural analyses (the paper's AC2–AC6).

These run *after* CFG construction, when the CFG is read-only and
different workers can analyze different functions independently without
synchronization — the application parallelization pattern of Listing 7:

- :mod:`repro.analyses.dataflow` — generic worklist solver;
- :mod:`repro.analyses.dominators` — iterative dominator trees;
- :mod:`repro.analyses.loops` — natural-loop detection and nesting (AC2);
- :mod:`repro.analyses.liveness` — register liveness (AC6);
- :mod:`repro.analyses.stack_height` — stack-pointer height analysis;
- :mod:`repro.analyses.slicing` — backward slicing over registers.

Plus the *interprocedural* layer (docs/ANALYSES.md):

- :mod:`repro.analyses.callgraph` — call graph + SCC condensation;
- :mod:`repro.analyses.interproc` — bottom-up summary fixpoint
  scheduler over SCC waves (parallel across backends);
- :mod:`repro.analyses.checkers` — the checker clients;
- :mod:`repro.analyses.findings` — the ``repro.findings/1`` sidecar.
"""

from repro.analyses.callgraph import (
    CallGraph,
    build_call_graph,
    condensation_waves,
    tarjan_sccs,
)
from repro.analyses.checkers import ALL_CHECKS, make_checker, resolve_checks
from repro.analyses.dataflow import DataflowProblem, solve_dataflow
from repro.analyses.findings import (
    FINDINGS_SCHEMA,
    canonical_bytes,
    findings_document,
    sort_findings,
)
from repro.analyses.interproc import AnalysisResult, run_checkers
from repro.analyses.dominators import dominator_tree, immediate_dominators
from repro.analyses.loops import Loop, LoopForest, find_loops
from repro.analyses.liveness import LivenessResult, liveness
from repro.analyses.stack_height import StackHeightResult, stack_heights, TOP
from repro.analyses.slicing import backward_slice

__all__ = [
    "ALL_CHECKS",
    "AnalysisResult",
    "CallGraph",
    "FINDINGS_SCHEMA",
    "build_call_graph",
    "canonical_bytes",
    "condensation_waves",
    "findings_document",
    "make_checker",
    "resolve_checks",
    "run_checkers",
    "sort_findings",
    "tarjan_sccs",
    "DataflowProblem",
    "solve_dataflow",
    "immediate_dominators",
    "dominator_tree",
    "Loop",
    "LoopForest",
    "find_loops",
    "LivenessResult",
    "liveness",
    "StackHeightResult",
    "stack_heights",
    "TOP",
    "backward_slice",
]
