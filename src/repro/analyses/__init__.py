"""Read-only intra-procedural analyses (the paper's AC2–AC6).

These run *after* CFG construction, when the CFG is read-only and
different workers can analyze different functions independently without
synchronization — the application parallelization pattern of Listing 7:

- :mod:`repro.analyses.dataflow` — generic worklist solver;
- :mod:`repro.analyses.dominators` — iterative dominator trees;
- :mod:`repro.analyses.loops` — natural-loop detection and nesting (AC2);
- :mod:`repro.analyses.liveness` — register liveness (AC6);
- :mod:`repro.analyses.stack_height` — stack-pointer height analysis;
- :mod:`repro.analyses.slicing` — backward slicing over registers.
"""

from repro.analyses.dataflow import DataflowProblem, solve_dataflow
from repro.analyses.dominators import dominator_tree, immediate_dominators
from repro.analyses.loops import Loop, LoopForest, find_loops
from repro.analyses.liveness import LivenessResult, liveness
from repro.analyses.stack_height import StackHeightResult, stack_heights, TOP
from repro.analyses.slicing import backward_slice

__all__ = [
    "DataflowProblem",
    "solve_dataflow",
    "immediate_dominators",
    "dominator_tree",
    "Loop",
    "LoopForest",
    "find_loops",
    "LivenessResult",
    "liveness",
    "StackHeightResult",
    "stack_heights",
    "TOP",
    "backward_slice",
]
