"""Generic iterative dataflow solver over a function's blocks.

Facts are arbitrary values combined with a caller-supplied meet; transfer
functions map a block's input fact to its output fact.  The solver runs a
standard worklist to a fixed point.  Register-set problems use Python
integers as bit vectors (bit i = register i), which makes meet/transfer
cheap and hashable.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.analyses.common import (
    function_blocks,
    intra_predecessors,
    intra_successors,
    member_set,
)
from repro.core.cfg import Block, Function
from repro.runtime.api import Runtime


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass
class DataflowProblem:
    """Specification of an intra-procedural dataflow problem."""

    direction: Direction
    #: fact at the boundary (entry for forward, exits for backward).
    boundary: Any
    #: fact for blocks not yet visited.
    init: Any
    #: meet(a, b) -> combined fact.
    meet: Callable[[Any, Any], Any]
    #: transfer(block, in_fact) -> out_fact.
    transfer: Callable[[Block, Any], Any]
    #: cost charged per transfer application (virtual time).
    cost_per_transfer: int = 0


@dataclass
class DataflowResult:
    """Facts at block boundaries, keyed by block start address."""

    in_facts: dict[int, Any]
    out_facts: dict[int, Any]
    iterations: int


def solve_dataflow(func: Function, problem: DataflowProblem,
                   rt: Runtime | None = None,
                   order_key: Callable[[Block], Any] | None = None
                   ) -> DataflowResult:
    """Solve ``problem`` over ``func``'s intra-procedural CFG.

    ``order_key`` reorders the *initial* worklist (default: address
    order, reversed for backward problems).  For a monotone framework
    over a lattice of finite height the worklist converges to the same
    unique least fixpoint whatever the visit order — only
    ``iterations`` may differ — which the worklist-order property
    battery pins by solving under seeded shuffles.
    """
    blocks = function_blocks(func)
    member = member_set(func)
    forward = problem.direction is Direction.FORWARD

    if forward:
        def preds(b):
            return intra_predecessors(b, member)

        def succs(b):
            return intra_successors(b, member)
    else:
        def preds(b):
            return intra_successors(b, member)

        def succs(b):
            return intra_predecessors(b, member)

    is_boundary: Callable[[Block], bool]
    if forward:
        def is_boundary(b):
            return b.start == func.addr
    else:
        def is_boundary(b):
            return not intra_successors(b, member)

    in_facts: dict[int, Any] = {b.start: problem.init for b in blocks}
    out_facts: dict[int, Any] = {b.start: problem.init for b in blocks}

    if order_key is not None:
        seed_order: list[Block] = sorted(blocks, key=order_key)
    else:
        seed_order = list(blocks if forward else reversed(blocks))
    work = deque(seed_order)
    queued = {b.start for b in blocks}
    iterations = 0
    while work:
        b = work.popleft()
        queued.discard(b.start)
        iterations += 1
        incoming = [out_facts[p.start] for p in preds(b)]
        if is_boundary(b):
            incoming.append(problem.boundary)
        fact = problem.init
        for pf in incoming:
            fact = problem.meet(fact, pf)
        in_facts[b.start] = fact
        if rt is not None and problem.cost_per_transfer:
            rt.charge(problem.cost_per_transfer * max(1, len(b.insns)))
        new_out = problem.transfer(b, fact)
        if new_out != out_facts[b.start]:
            out_facts[b.start] = new_out
            for s in succs(b):
                if s.start not in queued:
                    queued.add(s.start)
                    work.append(s)
    return DataflowResult(in_facts=in_facts, out_facts=out_facts,
                          iterations=iterations)
