"""Symbolic expressions over lifted instruction slices (ROSE IR analog).

The paper's jump-table analysis lifts the backward slice of an indirect
jump to an IR and "constructs a symbolic expression of the jump target"
(Section 2.1).  This module provides the same machinery: a tiny
expression language, a lifter that forward-evaluates a slice into a
register environment of expressions, and pattern extraction for the
bounded-table idiom ``Load(base + idx * 8)``.

Expressions:

- :class:`Const` — a known constant (e.g. a ``LEA``/``MOV_RI`` result);
- :class:`RegInit` — the unknown input value of a register;
- :class:`Load` — a memory read (its *value* is opaque, its address is a
  sub-expression — a table base that round-trips through a Load is how
  stack spills defeat the analysis);
- :class:`BinOp` — arithmetic over sub-expressions, constant-folded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Reg


class Expr:
    """Base class for symbolic expressions."""

    __slots__ = ()

    @property
    def const_value(self) -> int | None:
        """The expression's value if fully constant, else None."""
        return None


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: int

    @property
    def const_value(self) -> int | None:
        return self.value

    def __str__(self) -> str:
        return f"{self.value:#x}"


@dataclass(frozen=True, slots=True)
class RegInit(Expr):
    """Unknown initial value of a register at the slice boundary."""

    reg: Reg

    def __str__(self) -> str:
        return f"{self.reg.name}@in"


@dataclass(frozen=True, slots=True)
class Load(Expr):
    """A memory read; the value is opaque, the address symbolic."""

    addr: Expr

    def __str__(self) -> str:
        return f"mem[{self.addr}]"


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


def binop(op: str, lhs: Expr, rhs: Expr) -> Expr:
    """Build a BinOp with constant folding."""
    lv, rv = lhs.const_value, rhs.const_value
    if lv is not None and rv is not None:
        if op == "+":
            return Const((lv + rv) & 0xFFFF_FFFF_FFFF_FFFF)
        if op == "-":
            return Const((lv - rv) & 0xFFFF_FFFF_FFFF_FFFF)
        if op == "*":
            return Const((lv * rv) & 0xFFFF_FFFF_FFFF_FFFF)
        if op == "^":
            return Const(lv ^ rv)
        if op == "&":
            return Const(lv & rv)
        if op == "|":
            return Const(lv | rv)
    return BinOp(op, lhs, rhs)


_ARITH = {
    Opcode.ADD: "+", Opcode.SUB: "-", Opcode.MUL: "*",
    Opcode.XOR: "^", Opcode.AND: "&", Opcode.OR: "|",
}


class SymEnv:
    """Register environment mapping registers to expressions."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: dict[Reg, Expr] = {}

    def get(self, reg: Reg) -> Expr:
        e = self._regs.get(reg)
        if e is None:
            e = RegInit(reg)
            self._regs[reg] = e
        return e

    def set(self, reg: Reg, expr: Expr) -> None:
        self._regs[reg] = expr

    def step(self, insn: Instruction) -> None:
        """Evaluate one instruction's register effects symbolically."""
        op = insn.opcode
        o = insn.operands
        if op is Opcode.MOV_RI or op is Opcode.LEA:
            self.set(Reg(o[0]), Const(o[1]))
        elif op is Opcode.MOV_RR:
            self.set(Reg(o[0]), self.get(Reg(o[1])))
        elif op in _ARITH:
            self.set(Reg(o[0]), binop(_ARITH[op], self.get(Reg(o[0])),
                                      self.get(Reg(o[1]))))
        elif op is Opcode.ADDI:
            imm = o[1] - (1 << 32) if o[1] >= (1 << 31) else o[1]
            self.set(Reg(o[0]), binop("+", self.get(Reg(o[0])),
                                      Const(imm)))
        elif op is Opcode.LOAD:
            addr = binop("+", self.get(Reg(o[1])), Const(o[2]))
            self.set(Reg(o[0]), Load(addr))
        elif op is Opcode.LOADIDX:
            addr = binop("+", self.get(Reg(o[1])),
                         binop("*", self.get(Reg(o[2])), Const(8)))
            self.set(Reg(o[0]), Load(addr))
        elif op is Opcode.POP:
            self.set(Reg(o[0]), Load(self.get(Reg.SP)))
        else:
            # Anything else that writes registers produces opaque values.
            for r in insn.regs_written():
                if r is not Reg.FLAGS:
                    self.set(r, RegInit(r))


def lift_slice(insns: list[Instruction], target: Reg) -> Expr:
    """Lift a slice (execution order) and return the target expression."""
    env = SymEnv()
    for insn in insns:
        env.step(insn)
    return env.get(target)


@dataclass(frozen=True)
class TablePattern:
    """Extracted ``Load(base + idx*scale)`` jump-table pattern."""

    base: int           #: constant table base address
    scale: int
    index: Expr         #: the (non-constant) index expression


def match_table_pattern(expr: Expr) -> TablePattern | Const | None:
    """Recognize the jump-target shapes the analysis can act on.

    Returns a :class:`TablePattern` for table loads, a :class:`Const` for
    statically-known single targets (constant-folded indirect jumps), or
    None when the expression is unresolvable (e.g. the base itself came
    out of memory — a stack spill).
    """
    cv = expr.const_value
    if cv is not None:
        return Const(cv)
    if not isinstance(expr, Load):
        return None
    addr = expr.addr
    if isinstance(addr, Const):
        # Constant address, constant-index table of one entry.
        return TablePattern(base=addr.value, scale=1, index=Const(0))
    if isinstance(addr, BinOp) and addr.op == "+":
        for base_e, idx_e in ((addr.lhs, addr.rhs), (addr.rhs, addr.lhs)):
            base = base_e.const_value
            if base is None:
                continue
            if isinstance(idx_e, BinOp) and idx_e.op == "*":
                scale = idx_e.rhs.const_value or idx_e.lhs.const_value
                if scale in (1, 2, 4, 8):
                    index = (idx_e.lhs
                             if idx_e.rhs.const_value is not None
                             else idx_e.rhs)
                    return TablePattern(base=base, scale=scale,
                                        index=index)
            # Unscaled index (byte tables).
            return TablePattern(base=base, scale=1, index=idx_e)
    return None
