"""The ``repro.findings/1`` sidecar: one deterministic findings format.

Every findings producer — the interprocedural checkers
(:mod:`repro.analyses.interproc`), the ground-truth corpus checker
(:mod:`repro.apps.checker`) and the static lint
(:mod:`repro.sanity.lint`) — emits the same versioned document so CI
artifacts share one validator (``repro.runtime.tracefmt
.validate_findings``) and one byte-level determinism contract:

- a finding is a flat record ``{rule, detail, binary, function,
  address, path, line}`` with ``None`` for fields that do not apply;
- findings are sorted by :func:`finding_sort_key` (binary, path,
  address, line, function, rule, detail) — independent of discovery
  order, hence of backend, worker count and schedule;
- the canonical byte form is :func:`canonical_bytes`:
  ``json.dumps(doc, indent=2, sort_keys=True)`` plus a trailing
  newline.  The document carries **no** backend or worker-count
  fields, so two runs that agree on the findings agree on the bytes —
  the property the differential battery and the ``analysis-
  differential`` CI job pin.
"""

from __future__ import annotations

import json
from typing import Any

#: Version identifier of the findings sidecar.
FINDINGS_SCHEMA = "repro.findings/1"

#: Known producers of findings documents.
FINDINGS_GENERATORS = ("checkers", "groundtruth", "lint")

#: The per-finding fields, all always present (``None`` = not
#: applicable).  ``rule`` and ``detail`` are never ``None``.
FINDING_FIELDS = ("rule", "detail", "binary", "function", "address",
                  "path", "line")


def finding(rule: str, detail: str, *, binary: str | None = None,
            function: str | None = None, address: int | None = None,
            path: str | None = None, line: int | None = None) -> dict:
    """One normalized finding record (every field present)."""
    return {"rule": rule, "detail": detail, "binary": binary,
            "function": function, "address": address, "path": path,
            "line": line}


def finding_sort_key(f: dict) -> tuple:
    """Canonical order: location first, then rule, then text."""
    return (f.get("binary") or "", f.get("path") or "",
            -1 if f.get("address") is None else f["address"],
            -1 if f.get("line") is None else f["line"],
            f.get("function") or "", f["rule"], f["detail"])


def sort_findings(findings: list[dict]) -> list[dict]:
    """Findings in canonical order (stable under any discovery order)."""
    return sorted(findings, key=finding_sort_key)


def findings_document(generator: str, checks: list[str],
                      findings: list[dict],
                      subject: dict | None = None) -> dict:
    """Assemble a complete ``repro.findings/1`` document.

    ``subject`` describes *what was analyzed* (workload name, corpus
    seed/count/presets) — never *how* (no backend, no worker count):
    the sidecar must be byte-identical across execution backends.
    """
    normalized = sort_findings(
        [finding(**{k: f.get(k) for k in FINDING_FIELDS})
         for f in findings])
    by_rule: dict[str, int] = {}
    for f in normalized:
        by_rule[f["rule"]] = by_rule.get(f["rule"], 0) + 1
    return {
        "schema": FINDINGS_SCHEMA,
        "generator": generator,
        "checks": sorted(checks),
        "subject": subject if subject is not None else {},
        "findings": normalized,
        "summary": {"findings": len(normalized), "by_rule": by_rule},
    }


def canonical_bytes(doc: dict) -> bytes:
    """The canonical byte form every producer must write."""
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()


def write_findings(path: Any, doc: dict) -> None:
    """Write ``doc`` in canonical byte form to ``path``."""
    with open(path, "wb") as fh:
        fh.write(canonical_bytes(doc))
