"""Shared helpers for intra-procedural analyses."""

from __future__ import annotations

from repro.core.cfg import Block, EdgeType, Function

#: Edge types traversed inside a function (same set finalization uses for
#: boundary assignment).
INTRA_EDGES = (EdgeType.DIRECT, EdgeType.COND_TAKEN,
               EdgeType.COND_FALLTHROUGH, EdgeType.FALLTHROUGH,
               EdgeType.CALL_FT, EdgeType.INDIRECT)


def function_blocks(func: Function) -> list[Block]:
    """The function's blocks in address order (assigned at finalization)."""
    return sorted((b for b in func.blocks if not b.is_empty),
                  key=lambda b: b.start)


def intra_successors(block: Block, member: set[int]) -> list[Block]:
    """Intra-procedural successors restricted to the function's blocks."""
    return [e.dst for e in block.out_edges
            if e.etype in INTRA_EDGES and e.dst.start in member]


def intra_predecessors(block: Block, member: set[int]) -> list[Block]:
    """Intra-procedural predecessors restricted to the function's blocks."""
    return [e.src for e in block.in_edges
            if e.etype in INTRA_EDGES and e.src.start in member]


def member_set(func: Function) -> set[int]:
    return {b.start for b in func.blocks if not b.is_empty}
