"""Interprocedural checkers: summary-based clients of the dataflow core.

Each checker is a small bottom-up interprocedural analysis driven by
:mod:`repro.analyses.interproc`: it computes a per-function *summary*
(what a caller needs to know about a callee) and, once summaries have
reached a fixpoint, a reporting pass collects findings.  Summaries form
a join-semilattice with a commutative, associative, idempotent
:meth:`Checker.join`, so the fixpoint — and therefore the findings —
is independent of evaluation schedule: the property the differential
battery pins byte-for-byte across backends.

The synthetic ABI the checkers assume (documented in
``docs/ANALYSES.md``):

- ``R0`` is the return value, ``R1``–``R3`` are arguments (defined at
  entry);
- ``R0``–``R7`` are caller-saved (``CALL``/``ICALL`` clobber them —
  the ISA's ``regs_written`` says so);
- ``R8``–``R15`` are scratch (no cross-call contract);
- ``FP`` is callee-saved, preserved via ``ENTER``/``LEAVE``;
- functions return with zero net stack displacement.

Four checkers:

- ``callee-saved`` — forward may-analysis of callee-saved registers
  clobbered without a save/restore pair, with transitive may-clobber
  call summaries;
- ``uninit-reg``   — forward must-defined analysis; a read of
  ``R0``–``R7`` that is not definitely assigned (entry args, local
  writes, or the callee's must-defined-at-return summary) is flagged;
- ``stack-balance`` — interprocedural stack-height analysis (callee
  net-delta summaries); a return at definite nonzero height is flagged;
- ``jt-bounds``    — verification of decoded jump tables: unresolved
  bases, unrecoverable bound checks, out-of-function targets, entries
  trimmed by overlap finalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analyses.dataflow import (
    DataflowProblem,
    DataflowResult,
    Direction,
    solve_dataflow,
)
from repro.core.cfg import Block, Function, JumpTableInfo
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg

#: Unknown / conflicting stack height (shared with stack_height.TOP).
TOP = "top"

_GP_MASK = (1 << 16) - 1                       # R0..R15
_CALLER_SAVED = (1 << 8) - 1                   # R0..R7
_ARG_MASK = (1 << Reg.R1) | (1 << Reg.R2) | (1 << Reg.R3)
_R0_BIT = 1 << Reg.R0
_FP_BIT = 1 << Reg.FP


def _mask_of(regs) -> int:
    m = 0
    for r in regs:
        m |= 1 << int(r)
    return m


def _regs_in(mask: int) -> list[Reg]:
    return [Reg(i) for i in range(19) if mask & (1 << i)]


@dataclass(frozen=True)
class FuncView:
    """What a checker sees of one function (schedule-independent)."""

    func: Function
    entry: int
    name: str
    jump_tables: tuple[JumpTableInfo, ...]
    #: block start -> tail-call target entry (None if unresolvable).
    tailcalls: dict[int, int | None]


#: ``getsumm(callee_entry_or_None) -> summary`` — resolves a call
#: target to the current summary, falling back to the checker's
#: conservative ABI default for unknown targets.
SummaryLookup = Callable[[int | None], Any]


class Checker:
    """One interprocedural analysis client."""

    #: stable identifier; also the finding rule name.
    name: str = "?"

    def bottom(self) -> Any:
        """Optimistic initial summary for the SCC fixpoint."""
        raise NotImplementedError

    def unknown(self) -> Any:
        """Conservative summary for an unresolvable callee (ABI)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        """Order-independent summary join (commutative, associative)."""
        raise NotImplementedError

    def analyze(self, view: FuncView, getsumm: SummaryLookup
                ) -> tuple[Any, list[dict]]:
        """Analyze one function; return (summary, raw findings).

        Raw findings are ``{"rule", "address", "detail"}`` — the
        scheduler adds binary/function attribution.
        """
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def _call_target(block: Block) -> int | None:
        """Direct-call target of the block's final CALL, else None."""
        last = block.insns[-1] if block.insns else None
        if last is not None and last.opcode is Opcode.CALL:
            return last.direct_target
        return None

    @staticmethod
    def _exit_kind(view: FuncView, block: Block) -> str | None:
        """"ret" / "tailcall" when the block leaves the function."""
        if block.insns and block.insns[-1].is_ret:
            return "ret"
        if block.start in view.tailcalls:
            return "tailcall"
        return None


class CalleeSavedChecker(Checker):
    """Callee-saved-register discipline (default set: ``{FP}``).

    Forward analysis of the *dirty* set — checked registers written
    without a prior save on some path — paired with the *saved* set
    (must-saved on all paths).  ``ENTER`` saves FP, ``LEAVE`` restores
    it; ``PUSH r``/``POP r`` save/restore any checked register.  A call
    adds the callee's may-clobber summary minus the saved set; the
    summary is the union of dirty sets over all exits, so clobbers
    propagate transitively up the call graph.
    """

    name = "callee-saved"

    def __init__(self, checked=(Reg.FP,)):
        self.checked = _mask_of(checked)

    def bottom(self) -> int:
        return 0

    def unknown(self) -> int:
        return 0  # ABI: unknown callees preserve callee-saved registers

    def join(self, a: int, b: int) -> int:
        return a | b

    def _meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (a[0] | b[0], a[1] & b[1])

    def _transfer(self, block: Block, fact, getsumm: SummaryLookup):
        if fact is None:
            return None
        dirty, saved = fact
        for insn in block.insns:
            op = insn.opcode
            if op is Opcode.ENTER:
                saved |= _FP_BIT
            elif op is Opcode.LEAVE:
                dirty &= ~_FP_BIT
            elif op is Opcode.PUSH:
                saved |= (1 << insn.operands[0]) & self.checked
            elif op is Opcode.POP:
                dirty &= ~((1 << insn.operands[0]) & self.checked)
            elif op is Opcode.CALL:
                clobber = getsumm(insn.direct_target) & self.checked
                dirty |= clobber & ~saved
            elif op is Opcode.ICALL:
                clobber = self.unknown() & self.checked
                dirty |= clobber & ~saved
            else:
                w = _mask_of(insn.regs_written()) & self.checked
                dirty |= w & ~saved
        return (dirty, saved)

    def _solve(self, view: FuncView,
               getsumm: SummaryLookup) -> DataflowResult:
        problem = DataflowProblem(
            direction=Direction.FORWARD, boundary=(0, 0), init=None,
            meet=self._meet,
            transfer=lambda b, f: self._transfer(b, f, getsumm))
        return solve_dataflow(view.func, problem)

    def _exit_dirty(self, view: FuncView, block: Block, fact,
                    getsumm: SummaryLookup) -> int:
        dirty, saved = fact
        target = view.tailcalls.get(block.start)
        if self._exit_kind(view, block) == "tailcall":
            clobber = getsumm(target) & self.checked
            dirty |= clobber & ~saved
        return dirty

    def analyze(self, view: FuncView, getsumm: SummaryLookup
                ) -> tuple[int, list[dict]]:
        res = self._solve(view, getsumm)
        summary = 0
        findings: list[dict] = []
        for block in view.func.blocks:
            if block.is_empty:
                continue
            kind = self._exit_kind(view, block)
            if kind is None:
                continue
            fact = res.out_facts.get(block.start)
            if fact is None:
                continue  # unreachable exit
            dirty = self._exit_dirty(view, block, fact, getsumm)
            summary |= dirty
            addr = block.insns[-1].address if block.insns else block.start
            for reg in _regs_in(dirty):
                findings.append({
                    "rule": self.name, "address": addr,
                    "detail": f"callee-saved {reg.name} clobbered "
                              f"without restore on a {kind} path"})
        return summary, findings


class UninitRegChecker(Checker):
    """Use of a maybe-uninitialized register (``R0``–``R7``).

    Forward must-defined analysis over bit vectors: entry defines the
    argument registers ``R1``–``R3``; a call replaces the caller-saved
    half with the callee's must-defined-at-return summary (unknown
    callees define only ``R0``); scratch registers ``R8``–``R15``
    survive calls but are never assumed defined at entry — reads of
    them are not checked (no ABI contract).  A read of a checked
    register outside the must-defined set is flagged.
    """

    name = "uninit-reg"

    _FULL = _GP_MASK
    _CHECKED_READS = _CALLER_SAVED

    def bottom(self) -> int:
        return self._FULL  # optimistic top of the must-lattice

    def unknown(self) -> int:
        return _R0_BIT  # ABI: an unknown callee defines its return value

    def join(self, a: int, b: int) -> int:
        return a & b

    def _step(self, insn, defined: int, getsumm: SummaryLookup) -> int:
        op = insn.opcode
        if op is Opcode.CALL:
            summ = getsumm(insn.direct_target)
            return (defined & ~_CALLER_SAVED) | (summ & _CALLER_SAVED)
        if op is Opcode.ICALL:
            return (defined & ~_CALLER_SAVED) | _R0_BIT
        return defined | (_mask_of(insn.regs_written()) & _GP_MASK)

    def _transfer(self, block: Block, fact, getsumm: SummaryLookup):
        if fact is None:
            return None
        defined = fact
        for insn in block.insns:
            defined = self._step(insn, defined, getsumm)
        return defined

    def analyze(self, view: FuncView, getsumm: SummaryLookup
                ) -> tuple[int, list[dict]]:
        problem = DataflowProblem(
            direction=Direction.FORWARD, boundary=_ARG_MASK, init=None,
            meet=lambda a, b: b if a is None else (
                a if b is None else a & b),
            transfer=lambda b, f: self._transfer(b, f, getsumm))
        res = solve_dataflow(view.func, problem)

        summary = self._FULL
        have_ret = False
        findings: list[dict] = []
        for block in view.func.blocks:
            if block.is_empty:
                continue
            defined = res.in_facts.get(block.start)
            if defined is None:
                continue  # unreachable
            for insn in block.insns:
                if not insn.is_ret:  # RET's R0/SP reads are ABI formalities
                    reads = _mask_of(insn.regs_read())
                    undef = reads & self._CHECKED_READS & ~defined
                    for reg in _regs_in(undef):
                        findings.append({
                            "rule": self.name, "address": insn.address,
                            "detail": f"read of maybe-uninitialized "
                                      f"{reg.name}"})
                defined = self._step(insn, defined, getsumm)
            if block.insns and block.insns[-1].is_ret:
                summary &= defined
                have_ret = True
        if not have_ret:
            summary = self.bottom()  # no returns: summary never consumed
        return summary, findings


class StackBalanceChecker(Checker):
    """Interprocedural stack-height balance.

    Forward height analysis (entry height 0) where a call site adds the
    callee's net stack delta summary; ``LEAVE`` re-anchors the height
    to 0 (frame restore), conflicting heights meet to ``TOP``.  A
    return — or a tail call — at a *definite* nonzero height is
    flagged; ``TOP`` heights stay silent (unknown is not a finding).
    The summary is the join of heights at return exits.
    """

    name = "stack-balance"

    def bottom(self):
        return None  # join identity: no return path seen yet

    def unknown(self):
        return 0  # ABI: unknown callees are balanced

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a if a == b else TOP

    def _transfer(self, block: Block, h, getsumm: SummaryLookup):
        if h is None:
            return None
        for insn in block.insns:
            op = insn.opcode
            if op is Opcode.LEAVE:
                h = 0  # frame restored to call-time height
                continue
            if h == TOP:
                continue
            if op is Opcode.CALL:
                # Equality, not identity: callee summaries may have
                # crossed a process boundary, so the TOP sentinel can
                # be an unpickled copy of the module constant.
                d = getsumm(insn.direct_target)
                h = TOP if d == TOP else (h if d is None else h + d)
                continue
            if op is Opcode.ICALL:
                d = self.unknown()
                h = TOP if d == TOP else h + d
                continue
            d = insn.sp_delta()
            h = TOP if d is None else h + d
        return h

    def analyze(self, view: FuncView, getsumm: SummaryLookup
                ) -> tuple[Any, list[dict]]:
        problem = DataflowProblem(
            direction=Direction.FORWARD, boundary=0, init=None,
            meet=lambda a, b: b if a is None else (
                a if b is None else (a if a == b else TOP)),
            transfer=lambda b, f: self._transfer(b, f, getsumm))
        res = solve_dataflow(view.func, problem)

        summary = self.bottom()
        findings: list[dict] = []
        for block in view.func.blocks:
            if block.is_empty:
                continue
            kind = self._exit_kind(view, block)
            if kind is None:
                continue
            h = res.out_facts.get(block.start)
            if h is None:
                continue  # unreachable exit
            if kind == "ret":
                summary = self.join(summary, h)
            if h != TOP and h != 0:
                addr = (block.insns[-1].address if block.insns
                        else block.start)
                what = ("returns" if kind == "ret" else "tail-calls")
                findings.append({
                    "rule": self.name, "address": addr,
                    "detail": f"{what} at stack height {h:+d} "
                              f"(expected 0)"})
        return summary, findings


class JumpTableBoundsChecker(Checker):
    """Verification of decoded jump tables against the function body.

    No dataflow: the parser already attached a
    :class:`~repro.core.cfg.JumpTableInfo` per indirect jump.  Flags
    unresolved table bases, dispatches with no recoverable bound check
    (the over-approximation trap), targets that land outside the
    owning function, and entries trimmed by overlap finalization.
    """

    name = "jt-bounds"

    def bottom(self):
        return None

    def unknown(self):
        return None

    def join(self, a, b):
        return None

    def analyze(self, view: FuncView, getsumm: SummaryLookup
                ) -> tuple[None, list[dict]]:
        member = {b.start for b in view.func.blocks if not b.is_empty}
        findings: list[dict] = []
        for jt in view.jump_tables:
            if jt.table_addr is None:
                findings.append({
                    "rule": self.name, "address": jt.block_start,
                    "detail": "indirect jump with unresolved table "
                              "base"})
                continue
            where = f"table@{jt.table_addr:#x}"
            if not jt.bounded:
                findings.append({
                    "rule": self.name, "address": jt.block_start,
                    "detail": f"{where}: no recoverable bound check "
                              f"({jt.n_entries} entries scanned)"})
            outside = sorted(t for t in jt.targets if t not in member)
            if outside:
                findings.append({
                    "rule": self.name, "address": jt.block_start,
                    "detail": f"{where}: {len(outside)} target(s) "
                              f"outside the function (first "
                              f"{outside[0]:#x})"})
            if jt.trimmed:
                findings.append({
                    "rule": self.name, "address": jt.block_start,
                    "detail": f"{where}: {jt.trimmed} entries trimmed "
                              f"by overlap finalization"})
        return None, findings


#: Checker registry (sorted names = canonical check order).
_CHECKER_FACTORIES: dict[str, Callable[[], Checker]] = {
    CalleeSavedChecker.name: CalleeSavedChecker,
    JumpTableBoundsChecker.name: JumpTableBoundsChecker,
    StackBalanceChecker.name: StackBalanceChecker,
    UninitRegChecker.name: UninitRegChecker,
}

ALL_CHECKS: tuple[str, ...] = tuple(sorted(_CHECKER_FACTORIES))


def make_checker(name: str) -> Checker:
    """Instantiate a registered checker by name."""
    try:
        return _CHECKER_FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown check {name!r}; choose from "
            f"{', '.join(ALL_CHECKS)}") from None


def resolve_checks(spec: str | list[str] | tuple[str, ...] | None
                   ) -> tuple[str, ...]:
    """Normalize a check selection ('all', comma list, or sequence)."""
    if spec is None or spec == "all":
        return ALL_CHECKS
    names = ([s.strip() for s in spec.split(",") if s.strip()]
             if isinstance(spec, str) else list(spec))
    for n in names:
        if n not in _CHECKER_FACTORIES:
            raise ValueError(
                f"unknown check {n!r}; choose from "
                f"{', '.join(ALL_CHECKS)}")
    return tuple(sorted(set(names)))
