#!/usr/bin/env python3
"""The Listing 1 scenario: why parallel CFG construction needs a
correction phase.

Two functions branch to the same address.  A tears down its stack frame
first (tail-call heuristic 3 fires); B is frameless (no heuristic fires).
The legacy serial parser's answer depends on which function it analyzes
first; the parallel parser's finalization applies the paper's three
correction rules and always converges to "A and B both tail call".

Run:  python examples/shared_code_and_tail_calls.py
"""

from repro import VirtualTimeRuntime, parse_binary
from repro.binary import format as fmt
from repro.binary.format import BinaryImage, Section, SectionFlags
from repro.binary.loader import LoadedBinary, encode_eh_frame
from repro.binary.symtab import Symbol, SymbolTable
from repro.core.serial_parser import LegacySerialParser
from repro.isa import Opcode, Reg
from repro.synth.asm import Assembler, L


def build_binary():
    a = Assembler(0x1000)
    a.label("A")
    a.enter(16)
    a.nop()
    a.leave()                    # stack teardown ...
    a.jmp(L("shared"))           # ... so this is a tail call (rule 3)
    a.label("B")
    a.insn(Opcode.MOV_RI, Reg.R6, 1)
    a.jmp(L("shared"))           # frameless: ambiguous at parse time
    a.label("shared")
    a.nop()
    a.ret()
    code, labels = a.assemble()

    img = BinaryImage(name="listing1.bin")
    img.add_section(Section(fmt.TEXT, 0x1000, code, SectionFlags.EXEC))
    symtab = SymbolTable([Symbol("A", labels["A"], 0),
                          Symbol("B", labels["B"], 0)])
    img.add_section(Section(fmt.SYMTAB, 0, symtab.to_bytes(),
                            SectionFlags.DEBUG_INFO))
    img.add_section(Section(fmt.EH_FRAME, 0,
                            encode_eh_frame([labels["A"], labels["B"]]),
                            SectionFlags.DEBUG_INFO))
    return LoadedBinary(img), labels


def describe(cfg, labels, title):
    print(f"\n{title}")
    fb = cfg.function_at(labels["B"])
    shared_in_b = any(b.start == labels["shared"] for b in fb.blocks)
    shared_fn = cfg.function_at(labels["shared"])
    print(f"  function at shared target: "
          f"{'yes' if shared_fn is not None else 'no'}")
    print(f"  shared block inside B's boundary: "
          f"{'yes' if shared_in_b else 'no'}")


def main() -> None:
    binary, labels = build_binary()
    print("Listing 1 from the paper:")
    print("  A: enter; ...; leave; jmp 0x400   (teardown -> tail call)")
    print("  B: mov r6,1;       jmp 0x400      (ambiguous)")

    # Legacy serial parser: the answer depends on analysis order.
    cfg_ab = LegacySerialParser(
        binary, order=[labels["A"], labels["B"]]).parse()
    describe(cfg_ab, labels, "legacy serial, analyzing A first:")
    cfg_ba = LegacySerialParser(
        binary, order=[labels["B"], labels["A"]]).parse()
    describe(cfg_ba, labels, "legacy serial, analyzing B first:")
    print(f"\nlegacy results identical? "
          f"{cfg_ab.signature() == cfg_ba.signature()}  "
          f"<- the Section 4.2 inconsistency")

    # Parallel parser with finalization: one stable answer, any schedule.
    sigs = set()
    for workers in (1, 2, 4, 8):
        cfg = parse_binary(binary, VirtualTimeRuntime(workers))
        sigs.add(cfg.signature())
    describe(cfg, labels, "parallel parser (any worker count):")
    print(f"\nparallel results identical across 1/2/4/8 workers? "
          f"{len(sigs) == 1}")
    print("finalization rule 1 flipped B's branch to a tail call: "
          "'A and B both tail call' is the consistent answer.")


if __name__ == "__main__":
    main()
