#!/usr/bin/env python3
"""Quickstart: synthesize a binary, parse it in parallel, inspect the CFG.

Run:  python examples/quickstart.py
"""

from repro import VirtualTimeRuntime, parse_binary, tiny_binary
from repro.analyses import find_loops, liveness


def main() -> None:
    # 1. Synthesize a small binary (with ground truth riding along).
    sb = tiny_binary(seed=7)
    binary = sb.binary
    print(f"binary: {binary.name}")
    print(f"  .text   {binary.image.text_size:>7} bytes")
    print(f"  .debug  {binary.image.debug_size:>7} bytes")
    print(f"  symbols {len(binary.symtab):>7}")

    # 2. Parallel CFG construction on 8 simulated workers.
    rt = VirtualTimeRuntime(8)
    cfg = parse_binary(binary, rt)
    s = cfg.stats
    print("\nparallel CFG construction (8 workers):")
    print(f"  functions {s.n_functions}, blocks {s.n_blocks}, "
          f"edges {s.n_edges}")
    print(f"  block splits {s.n_splits}, traversal waves {s.n_waves}")
    print(f"  jump tables: {s.n_jt_resolved} bounded, "
          f"{s.n_jt_unresolved} unresolved")
    print(f"  simulated makespan: {rt.makespan} cycles "
          f"(utilization {rt.utilization():.0%})")

    # 3. Walk the result: functions, their ranges and statuses.
    print("\nlargest functions:")
    funcs = sorted(cfg.functions(), key=lambda f: -len(f.blocks))[:5]
    for f in funcs:
        ranges = ", ".join(f"[{lo:#x},{hi:#x})" for lo, hi in f.ranges())
        print(f"  {f.name:24s} {f.status.value:9s} "
              f"{len(f.blocks):3d} blocks  {ranges}")

    # 4. Post-construction analyses are read-only and per-function.
    f = funcs[0]
    forest = find_loops(f)
    live = liveness(f)
    print(f"\nanalyses on {f.name}:")
    print(f"  loops: {forest.n_loops} (max nesting {forest.max_depth})")
    print(f"  max live registers: {live.max_live()}")

    # 5. The headline property: the same parse on 1 worker gives the
    #    identical CFG, only a longer simulated makespan.
    rt1 = VirtualTimeRuntime(1)
    cfg1 = parse_binary(binary, rt1)
    assert cfg1.signature() == cfg.signature()
    print(f"\n1-worker makespan {rt1.makespan} vs 8-worker {rt.makespan} "
          f"(speedup {rt1.makespan / rt.makespan:.2f}x); identical CFG.")


if __name__ == "__main__":
    main()
