#!/usr/bin/env python3
"""Software-forensics workflow: BinFeat over a corpus of binaries.

The paper's second use case (Section 1): machine-learning forensics needs
features extracted from hundreds of binaries, and serial extraction can
take longer than model training.  This example extracts instruction,
control-flow and data-flow features from a small corpus and shows the
per-stage scaling signature of Table 3: feature stages scale well, the
CFG stage (small binaries, jump-table imbalance) scales worst.

Run:  python examples/software_forensics.py
"""

from repro import VirtualTimeRuntime
from repro.apps.binfeat import binfeat
from repro.synth import forensics_corpus


def main() -> None:
    corpus = [sb.binary for sb in
              forensics_corpus(n_binaries=6, scale=0.5)]
    print(f"corpus: {len(corpus)} binaries")

    results = {}
    for workers in (1, 4, 16):
        rt = VirtualTimeRuntime(workers)
        results[workers] = binfeat(corpus, rt)

    r1 = results[1]
    print(f"\n{'stage':<24} {'1w':>11} {'4w':>11} {'16w':>11} "
          f"{'speedup@16':>10}")
    for stage in r1.stage_durations:
        row = [results[w].stage_durations[stage] for w in (1, 4, 16)]
        sp = row[0] / row[2] if row[2] else float("inf")
        print(f"{stage:<24} {row[0]:>11,} {row[1]:>11,} {row[2]:>11,} "
              f"{sp:>9.1f}x")
    tot = [results[w].makespan for w in (1, 4, 16)]
    print(f"{'TOTAL':<24} {tot[0]:>11,} {tot[1]:>11,} {tot[2]:>11,} "
          f"{tot[0] / tot[2]:>9.1f}x")

    # The feature index a downstream classifier would consume.
    r = results[16]
    print(f"\nextracted {len(r.feature_index)} distinct features from "
          f"{r.n_functions} functions")
    print("most common features:")
    for feat, count in r.feature_index.most_common(6):
        print(f"  {count:>6}  {feat}")


if __name__ == "__main__":
    main()
