#!/usr/bin/env python3
"""Vulnerability-style clone search across binaries (Section 9).

The paper's discussion notes that binary code similarity — used to match
known-vulnerable functions across software — builds on the same analysis
capabilities the paper parallelized (instructions, control flow, data
flow).  This example fingerprints every function of a small corpus in
parallel, then finds cross-binary clones of a "known vulnerable"
function.

Run:  python examples/clone_search.py
"""

from repro import VirtualTimeRuntime
from repro.apps.similarity import build_index
from repro.synth import tiny_binary


def main() -> None:
    # libB is a rebuild of libA (same seed): every function has a clone.
    corpus = [
        tiny_binary(seed=31, n_functions=20, name="libA-1.0.so").binary,
        tiny_binary(seed=31, n_functions=20, name="libB-fork.so").binary,
        tiny_binary(seed=90, n_functions=20, name="unrelated.so").binary,
    ]

    rt = VirtualTimeRuntime(8)
    built = build_index(corpus, rt)
    print(f"indexed {built.n_functions} functions from "
          f"{len(corpus)} binaries "
          f"({built.makespan:,} simulated cycles on 8 workers)")

    # Pretend this libA function is known-vulnerable; hunt its clones.
    needle = max((fp for fp in built.index.fingerprints
                  if fp.binary == "libA-1.0.so"),
                 key=lambda fp: len(fp.features))
    print(f"\nsearching for clones of {needle.name} "
          f"({needle.binary} @{needle.entry:#x})")

    rt2 = VirtualTimeRuntime(8)
    matches = rt2.run(lambda: built.index.query(needle, rt2, top_k=5))
    print(f"{'score':>7}  {'binary':<16} {'function':<24} entry")
    for m in matches:
        fp = m.fingerprint
        print(f"{m.score:>7.3f}  {fp.binary:<16} {fp.name:<24} "
              f"{fp.entry:#x}")

    best = matches[0]
    assert best.score > 0.999 and best.fingerprint.binary == "libB-fork.so"
    print("\ntop match is the fork's identical clone — found via the "
          "parallel instruction/control-flow/data-flow fingerprints.")


if __name__ == "__main__":
    main()
