#!/usr/bin/env python3
"""Performance-analysis workflow: hpcstruct on a large binary.

The paper's motivating use case (Section 1): developers iterate
compile -> measure -> attribute -> optimize, and slow binary analysis in
the attribution step throttles the whole loop.  This example runs the
hpcstruct pipeline on a TensorFlow-like binary at 1 and 16 workers and
prints the Figure 2-style phase breakdown.

Run:  python examples/performance_analysis.py
"""

from repro import VirtualTimeRuntime
from repro.apps.hpcstruct import hpcstruct
from repro.synth import tensorflow_like


def main() -> None:
    # Scale 0.05 keeps the example quick; benchmarks use larger scales.
    sb = tensorflow_like(scale=0.05)
    binary = sb.binary
    print(f"binary: {binary.name}")
    print(f"  .text  {binary.image.text_size / 1024:8.1f} KiB")
    print(f"  .debug {binary.image.debug_size / 1024:8.1f} KiB "
          f"(debug/text ratio "
          f"{binary.image.debug_size / max(1, binary.image.text_size):.1f}x)")

    results = {}
    for workers in (1, 16):
        rt = VirtualTimeRuntime(workers)
        results[workers] = hpcstruct(binary, rt)

    r1, r16 = results[1], results[16]
    print(f"\n{'phase':<14} {'1 worker':>12} {'16 workers':>12} "
          f"{'speedup':>8}")
    for phase in r1.phase_durations:
        a = r1.phase_durations[phase]
        b = r16.phase_durations[phase]
        sp = a / b if b else float("inf")
        print(f"{phase:<14} {a:>12,} {b:>12,} {sp:>7.1f}x")
    print(f"{'TOTAL':<14} {r1.makespan:>12,} {r16.makespan:>12,} "
          f"{r1.makespan / r16.makespan:>7.1f}x")

    print("\nNote the Amdahl pattern of the paper's Figure 2: the parallel "
          "phases (dwarf_types, cfg, queries)\nscale, while read/line_map/"
          "skeleton stay serial and bound the end-to-end speedup.")

    # The structure file itself: functions -> loops -> inlines.
    with_loops = [fs for fs in r16.structure if fs.loops]
    fs = max(with_loops, key=lambda fs: len(fs.loops), default=None)
    if fs is not None:
        print(f"\nsample structure entry: {fs.name} ({fs.source_file})")
        for loop in fs.loops[:3]:
            print(f"  loop @{loop.header:#x}: {loop.n_blocks} blocks, "
                  f"depth {loop.depth}, {len(loop.children)} children")
        for inl in fs.inlines[:3]:
            print(f"  inlined {inl.callee} at {inl.call_file}:"
                  f"{inl.call_line}")


if __name__ == "__main__":
    main()
