"""Legacy setup shim.

``pip install -e .`` requires the ``wheel`` package (PEP 660 editable
builds); on offline machines without it, ``python setup.py develop`` installs
an equivalent editable egg-link using nothing but setuptools.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
