"""Tests for the binary image container."""

import pytest
from hypothesis import given, strategies as st

from repro.binary import BinaryImage, Section, SectionFlags
from repro.binary import format as fmt
from repro.errors import ImageFormatError, SectionNotFoundError


def make_image():
    img = BinaryImage(name="test.bin")
    img.add_section(Section(fmt.TEXT, 0x1000, b"\x01" * 64,
                            SectionFlags.EXEC))
    img.add_section(Section(fmt.RODATA, 0x5000,
                            (0x1234).to_bytes(8, "little") * 4,
                            SectionFlags.DATA))
    return img


class TestSections:
    def test_section_lookup(self):
        img = make_image()
        assert img.section(fmt.TEXT).addr == 0x1000
        assert img.text.size == 64
        assert img.has_section(fmt.RODATA)
        assert not img.has_section(fmt.DEBUG)

    def test_missing_section_raises(self):
        img = make_image()
        with pytest.raises(SectionNotFoundError):
            img.section(".nope")

    def test_duplicate_section_rejected(self):
        img = make_image()
        with pytest.raises(ImageFormatError):
            img.add_section(Section(fmt.TEXT, 0x9000, b""))

    def test_section_containing(self):
        img = make_image()
        assert img.section_containing(0x1000).name == fmt.TEXT
        assert img.section_containing(0x103F).name == fmt.TEXT
        assert img.section_containing(0x1040) is None
        assert img.section_containing(0x5008).name == fmt.RODATA

    def test_section_bounds(self):
        s = Section(".x", 0x100, b"abcd")
        assert s.end == 0x104
        assert s.contains(0x100) and s.contains(0x103)
        assert not s.contains(0x104) and not s.contains(0xFF)


class TestWordReads:
    def test_read_word(self):
        img = make_image()
        assert img.read_word(0x5000) == 0x1234
        assert img.read_word(0x5008) == 0x1234

    def test_read_word_unmapped(self):
        img = make_image()
        with pytest.raises(ImageFormatError):
            img.read_word(0x9000)

    def test_read_word_straddling_end(self):
        img = make_image()
        with pytest.raises(ImageFormatError):
            img.read_word(0x5000 + 32 - 4)


class TestStats:
    def test_sizes(self):
        img = make_image()
        assert img.text_size == 64
        assert img.debug_size == 0
        assert img.total_size == 64 + 32


class TestSerialization:
    def test_roundtrip(self):
        img = make_image()
        back = BinaryImage.from_bytes(img.to_bytes())
        assert back.name == img.name
        assert set(back.sections) == set(img.sections)
        for name in img.sections:
            a, b = img.section(name), back.section(name)
            assert (a.addr, a.data, a.flags) == (b.addr, b.data, b.flags)

    def test_bad_magic(self):
        with pytest.raises(ImageFormatError):
            BinaryImage.from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated(self):
        raw = make_image().to_bytes()
        with pytest.raises(ImageFormatError):
            BinaryImage.from_bytes(raw[: len(raw) // 2])

    def test_file_roundtrip(self, tmp_path):
        img = make_image()
        p = tmp_path / "x.sbin"
        img.save(str(p))
        back = BinaryImage.load(str(p))
        assert back.name == img.name
        assert back.text.data == img.text.data

    @given(st.binary(max_size=128), st.integers(0, 2**63))
    def test_arbitrary_section_roundtrip(self, data, addr):
        img = BinaryImage(name="h")
        img.add_section(Section(".blob", addr, data))
        back = BinaryImage.from_bytes(img.to_bytes())
        assert back.section(".blob").data == data
        assert back.section(".blob").addr == addr
