"""Tests for symbol tables and name demangling."""

from repro.binary import (
    IndexedSymbols,
    Symbol,
    SymbolBinding,
    SymbolKind,
    SymbolTable,
    demangle_pretty,
    demangle_typed,
)
from repro.runtime import SerialRuntime, ThreadRuntime, VirtualTimeRuntime


class TestDemangle:
    def test_plain_names_pass_through(self):
        assert demangle_pretty("main") == "main"
        assert demangle_typed("main") == "main"

    def test_mangled_pretty(self):
        assert demangle_pretty("_Z3fooii") == "foo"

    def test_mangled_typed(self):
        assert demangle_typed("_Z3fooii") == "foo(int, int)"
        assert demangle_typed("_Z3barv") == "bar(void)"
        assert demangle_typed("_Z1fdp") == "f(double, void*)"

    def test_malformed_mangled(self):
        assert demangle_pretty("_Z") == "_Z"
        assert demangle_typed("_Z99x") == "_Z99x"

    def test_unknown_arg_code(self):
        assert demangle_typed("_Z1fq") == "f(?)"


class TestSymbolTable:
    def syms(self):
        return [
            Symbol("_Z3fooii", 0x1000, 32),
            Symbol("_Z3fooid", 0x2000, 16),  # overload: same pretty name
            Symbol("bar", 0x3000, 8),
            Symbol("data_obj", 0x9000, 64, SymbolKind.OBJECT),
            Symbol("local_fn", 0x4000, 8, SymbolKind.FUNC,
                   SymbolBinding.LOCAL),
        ]

    def test_lookup_by_offset(self):
        t = SymbolTable(self.syms())
        assert t.by_offset(0x1000)[0].name == "_Z3fooii"
        assert t.by_offset(0xDEAD) == []

    def test_lookup_by_mangled(self):
        t = SymbolTable(self.syms())
        assert len(t.by_mangled_name("_Z3fooii")) == 1

    def test_lookup_by_pretty_finds_overloads(self):
        t = SymbolTable(self.syms())
        assert len(t.by_pretty_name("foo")) == 2

    def test_lookup_by_typed_distinguishes_overloads(self):
        t = SymbolTable(self.syms())
        assert len(t.by_typed_name("foo(int, int)")) == 1
        assert len(t.by_typed_name("foo(int, double)")) == 1

    def test_functions_sorted_and_filtered(self):
        t = SymbolTable(self.syms())
        fns = t.functions()
        assert [s.offset for s in fns] == [0x1000, 0x2000, 0x3000, 0x4000]

    def test_roundtrip(self):
        t = SymbolTable(self.syms())
        back = SymbolTable.from_bytes(t.to_bytes())
        assert len(back) == len(t)
        assert back.by_offset(0x9000)[0].kind is SymbolKind.OBJECT
        assert back.by_offset(0x4000)[0].binding is SymbolBinding.LOCAL

    def test_len_and_iter(self):
        t = SymbolTable(self.syms())
        assert len(t) == 5
        assert {s.name for s in t} == {s.name for s in self.syms()}


class TestIndexedSymbols:
    def test_insert_and_lookup_serial(self):
        rt = SerialRuntime()

        def body():
            idx = IndexedSymbols(rt)
            s = Symbol("_Z3fooii", 0x1000, 32)
            assert idx.insert(s)
            assert not idx.insert(s)  # duplicate rejected via master map
            assert idx.lookup_offset(0x1000) == [s]
            assert idx.lookup_pretty("foo") == [s]
            assert idx.lookup_mangled("_Z3fooii") == [s]
            assert idx.lookup_typed("foo(int, int)") == [s]
            assert len(idx) == 1

        rt.run(body)

    def test_parallel_build_vtime(self):
        rt = VirtualTimeRuntime(8)
        box = {}
        syms = [Symbol(f"_Z4fn{i:02d}v", 0x1000 + i * 16, 16)
                for i in range(40)]

        def body():
            box["idx"] = IndexedSymbols(rt)
            rt.parallel_for(syms, box["idx"].insert)

        rt.run(body)
        idx = box["idx"]
        assert len(idx) == 40
        for s in syms:
            assert idx.lookup_offset(s.offset) == [s]

    def test_concurrent_duplicate_inserts_threads(self):
        """Each symbol inserted from many threads lands exactly once."""
        rt = ThreadRuntime(8)
        box = {}
        syms = [Symbol(f"fn{i}", 0x1000 + i * 16, 16) for i in range(25)]

        def hammer():
            for s in syms:
                box["idx"].insert(s)

        def body():
            box["idx"] = IndexedSymbols(rt)
            g = rt.task_group()
            for _ in range(8):
                g.spawn(hammer)
            g.wait()

        rt.run(body)
        idx = box["idx"]
        assert len(idx) == 25
        for s in syms:
            assert idx.lookup_offset(s.offset) == [s]

    def test_shared_pretty_name_collects_overloads(self):
        rt = SerialRuntime()

        def body():
            idx = IndexedSymbols(rt)
            a = Symbol("_Z3fooi", 0x1000, 8)
            b = Symbol("_Z3food", 0x2000, 8)
            idx.insert(a)
            idx.insert(b)
            assert sorted(s.offset for s in idx.lookup_pretty("foo")) == \
                [0x1000, 0x2000]

        rt.run(body)
