"""Tests for image loading and metadata views."""

import pytest

from repro.binary import BinaryImage, Section, SectionFlags, Symbol, SymbolTable
from repro.binary import format as fmt
from repro.binary.dwarf import CompilationUnit, DebugInfo, FunctionDIE
from repro.binary.loader import encode_eh_frame, load_image, save_image
from repro.errors import ImageFormatError
from repro.isa import Instruction, Opcode, encode
from repro.isa.encoding import instruction_length


def build_test_binary():
    code = b""
    addr = 0x1000
    for op, operands in [(Opcode.NOP, ()), (Opcode.RET, ())]:
        i = Instruction(addr, op, operands, instruction_length(op))
        code += encode(i)
        addr = i.end

    img = BinaryImage(name="mini.bin")
    img.add_section(Section(fmt.TEXT, 0x1000, code, SectionFlags.EXEC))
    symtab = SymbolTable([Symbol("main", 0x1000, len(code))])
    img.add_section(Section(fmt.SYMTAB, 0, symtab.to_bytes(),
                            SectionFlags.DEBUG_INFO))
    dynsym = SymbolTable([Symbol("exported", 0x1001, 1)])
    img.add_section(Section(fmt.DYNSYM, 0, dynsym.to_bytes(),
                            SectionFlags.DEBUG_INFO))
    di = DebugInfo(cus=[CompilationUnit(
        "mini.c", functions=[FunctionDIE("main", ranges=[(0x1000, 0x1002)])])])
    img.add_section(Section(fmt.DEBUG, 0, di.to_bytes(),
                            SectionFlags.DEBUG_INFO))
    img.add_section(Section(fmt.EH_FRAME, 0, encode_eh_frame([0x1000]),
                            SectionFlags.DEBUG_INFO))
    return img


class TestLoadedBinary:
    def test_views(self):
        lb = load_image(build_test_binary())
        assert lb.name == "mini.bin"
        assert lb.decoder.decode_at(0x1000).opcode is Opcode.NOP
        assert lb.symtab.by_offset(0x1000)[0].name == "main"
        assert lb.dynsym.by_offset(0x1001)[0].name == "exported"
        assert lb.debug_info.all_functions()[0].name == "main"
        assert lb.eh_frame_starts == [0x1000]

    def test_entry_addresses_merges_sources(self):
        lb = load_image(build_test_binary())
        assert lb.entry_addresses() == [0x1000, 0x1001]

    def test_load_from_bytes(self):
        raw = build_test_binary().to_bytes()
        lb = load_image(raw)
        assert lb.name == "mini.bin"

    def test_load_from_path(self, tmp_path):
        p = tmp_path / "mini.sbin"
        save_image(build_test_binary(), str(p))
        lb = load_image(str(p))
        assert lb.symtab.by_offset(0x1000)[0].name == "main"

    def test_missing_metadata_sections(self):
        img = BinaryImage(name="bare")
        img.add_section(Section(fmt.TEXT, 0x1000, b"\x01",
                                SectionFlags.EXEC))
        lb = load_image(img)
        assert len(lb.symtab) == 0
        assert lb.debug_info.die_count() == 0
        assert lb.eh_frame_starts == []
        assert lb.entry_addresses() == []

    def test_stripped_keeps_dynsym_and_ehframe(self):
        lb = load_image(build_test_binary()).stripped()
        assert len(lb.symtab) == 0
        assert len(lb.dynsym) == 1
        assert lb.eh_frame_starts == [0x1000]
        # Entries still discoverable without .symtab (Section 9).
        assert 0x1000 in lb.entry_addresses()


class TestMalformedImages:
    """`load_image` must reject broken images, not misparse them.

    The procs workers rebuild binaries from bytes shipped in pool
    payloads, so any corruption in transit has to surface as a loud
    :class:`ImageFormatError` at the load boundary."""

    def test_truncated_section_payload(self):
        raw = build_test_binary().to_bytes()
        with pytest.raises(ImageFormatError, match="truncated stream"):
            load_image(raw[:-10])

    def test_truncated_header(self):
        raw = build_test_binary().to_bytes()
        with pytest.raises(ImageFormatError, match="truncated stream"):
            load_image(raw[:5])

    def test_bad_magic(self):
        with pytest.raises(ImageFormatError, match="bad magic"):
            load_image(b"ELF?" + b"\x00" * 64)

    def test_trailing_garbage(self):
        raw = build_test_binary().to_bytes()
        with pytest.raises(ImageFormatError, match="trailing bytes"):
            load_image(raw + b"\xde\xad")

    def test_overlapping_loadable_sections(self):
        img = BinaryImage(name="overlap")
        img.add_section(Section(fmt.TEXT, 0x1000, b"\x01" * 0x20,
                                SectionFlags.EXEC))
        img.add_section(Section(fmt.RODATA, 0x1010, b"\x02" * 0x20,
                                SectionFlags.DATA))
        with pytest.raises(ImageFormatError, match="overlapping sections"):
            load_image(img)

    def test_overlap_detected_through_serialization(self):
        img = BinaryImage(name="overlap")
        img.add_section(Section(fmt.TEXT, 0x1000, b"\x01" * 0x20,
                                SectionFlags.EXEC))
        img.add_section(Section(fmt.RODATA, 0x101f, b"\x02" * 8,
                                SectionFlags.DATA))
        with pytest.raises(ImageFormatError, match="overlapping sections"):
            load_image(img.to_bytes())

    def test_zero_length_loadable_section(self):
        img = BinaryImage(name="empty-text")
        img.add_section(Section(fmt.TEXT, 0x1000, b"",
                                SectionFlags.EXEC))
        with pytest.raises(ImageFormatError, match="zero-length"):
            load_image(img)

    def test_adjacent_loadable_sections_are_fine(self):
        img = BinaryImage(name="adjacent")
        img.add_section(Section(fmt.TEXT, 0x1000, b"\x01" * 0x20,
                                SectionFlags.EXEC))
        img.add_section(Section(fmt.RODATA, 0x1020, b"\x02" * 8,
                                SectionFlags.DATA))
        assert load_image(img).name == "adjacent"

    def test_metadata_sections_exempt_from_layout_checks(self):
        # Metadata conventionally lives at address 0 (all "overlapping")
        # and may be empty; it is keyed by name, never by address.
        img = BinaryImage(name="meta")
        img.add_section(Section(fmt.TEXT, 0x1000, b"\x01",
                                SectionFlags.EXEC))
        img.add_section(Section(fmt.DEBUG, 0, b"",
                                SectionFlags.DEBUG_INFO))
        img.add_section(Section(fmt.EH_FRAME, 0, encode_eh_frame([]),
                                SectionFlags.DEBUG_INFO))
        assert load_image(img).eh_frame_starts == []
