"""Tests for the DWARF-like debug information model."""

from repro.binary import (
    CompilationUnit,
    DebugInfo,
    FunctionDIE,
    InlinedCall,
    LineRow,
)


def sample_debug_info():
    inline_leaf = InlinedCall("min", "util.h", 10, ranges=[(0x1010, 0x1020)])
    inline = InlinedCall("clamp", "util.h", 42,
                         ranges=[(0x1008, 0x1030)], children=[inline_leaf])
    f1 = FunctionDIE("main", ranges=[(0x1000, 0x1080)],
                     decl_file="main.c", decl_line=5, inlines=[inline])
    # Non-contiguous function: hot part + outlined cold part.
    f2 = FunctionDIE("handler", ranges=[(0x2000, 0x2040), (0x8000, 0x8010)],
                     decl_file="main.c", decl_line=90)
    cu1 = CompilationUnit(
        "main.c", functions=[f1, f2],
        line_rows=[LineRow(0x1000, "main.c", 5), LineRow(0x1008, "main.c", 6)],
    )
    # Shared-range case: two functions listing the same range.
    shared = [(0x3000, 0x3010)]
    cu2 = CompilationUnit(
        "err.c",
        functions=[FunctionDIE("err_a", ranges=[(0x2900, 0x2920)] + shared),
                   FunctionDIE("err_b", ranges=[(0x2950, 0x2970)] + shared)],
        line_rows=[LineRow(0x2900, "err.c", 3)],
    )
    return DebugInfo(cus=[cu1, cu2])


class TestModel:
    def test_die_count(self):
        di = sample_debug_info()
        # cu1: 1 + (main:1+2 inlines) + (handler:1) = 5; cu2: 1 + 1 + 1 = 3
        assert di.die_count() == 8

    def test_line_count(self):
        assert sample_debug_info().line_count() == 3

    def test_all_functions(self):
        names = {f.name for f in sample_debug_info().all_functions()}
        assert names == {"main", "handler", "err_a", "err_b"}

    def test_low_pc(self):
        f = FunctionDIE("x", ranges=[(0x500, 0x520), (0x100, 0x110)])
        assert f.low_pc == 0x100
        assert FunctionDIE("empty").low_pc == 0

    def test_inline_die_count(self):
        di = sample_debug_info()
        main = next(f for f in di.all_functions() if f.name == "main")
        assert main.die_count() == 3


class TestSerialization:
    def test_roundtrip(self):
        di = sample_debug_info()
        back = DebugInfo.from_bytes(di.to_bytes())
        assert back.die_count() == di.die_count()
        assert back.line_count() == di.line_count()
        assert [cu.name for cu in back.cus] == ["main.c", "err.c"]
        main = back.cus[0].functions[0]
        assert main.name == "main"
        assert main.ranges == [(0x1000, 0x1080)]
        assert main.inlines[0].callee == "clamp"
        assert main.inlines[0].children[0].callee == "min"
        assert main.inlines[0].children[0].ranges == [(0x1010, 0x1020)]

    def test_noncontiguous_ranges_preserved(self):
        back = DebugInfo.from_bytes(sample_debug_info().to_bytes())
        handler = next(f for f in back.all_functions() if f.name == "handler")
        assert handler.ranges == [(0x2000, 0x2040), (0x8000, 0x8010)]

    def test_shared_ranges_preserved(self):
        back = DebugInfo.from_bytes(sample_debug_info().to_bytes())
        fa = next(f for f in back.all_functions() if f.name == "err_a")
        fb = next(f for f in back.all_functions() if f.name == "err_b")
        assert (0x3000, 0x3010) in fa.ranges
        assert (0x3000, 0x3010) in fb.ranges

    def test_empty_debug_info(self):
        back = DebugInfo.from_bytes(DebugInfo().to_bytes())
        assert back.die_count() == 0
        assert back.cus == []

    def test_line_rows_roundtrip(self):
        back = DebugInfo.from_bytes(sample_debug_info().to_bytes())
        assert back.cus[0].line_rows[1] == LineRow(0x1008, "main.c", 6)
