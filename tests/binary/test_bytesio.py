"""Tests for the byte-stream serialization helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.binary.bytesio import ByteReader, ByteWriter
from repro.errors import ImageFormatError


class TestRoundTrip:
    def test_scalar_fields(self):
        w = ByteWriter()
        w.u8(200).u16(60000).u32(4_000_000_000).u64(1 << 60)
        r = ByteReader(w.getvalue())
        assert r.u8() == 200
        assert r.u16() == 60000
        assert r.u32() == 4_000_000_000
        assert r.u64() == 1 << 60
        assert r.exhausted

    def test_string_and_blob(self):
        w = ByteWriter()
        w.string("héllo wörld").blob(b"\x00\x01\x02")
        r = ByteReader(w.getvalue())
        assert r.string() == "héllo wörld"
        assert r.blob() == b"\x00\x01\x02"

    def test_empty_string_and_blob(self):
        w = ByteWriter()
        w.string("").blob(b"")
        r = ByteReader(w.getvalue())
        assert r.string() == ""
        assert r.blob() == b""

    @given(st.lists(st.tuples(
        st.sampled_from(["u8", "u16", "u32", "u64", "string", "blob"]),
        st.integers(0, 255), st.text(max_size=20),
        st.binary(max_size=20)), max_size=20))
    def test_arbitrary_sequences(self, fields):
        w = ByteWriter()
        expected = []
        for kind, num, txt, blob in fields:
            if kind == "string":
                w.string(txt)
                expected.append(txt)
            elif kind == "blob":
                w.blob(blob)
                expected.append(blob)
            else:
                getattr(w, kind)(num)
                expected.append(num)
        r = ByteReader(w.getvalue())
        for (kind, *_), want in zip(fields, expected):
            assert getattr(r, kind)() == want
        assert r.exhausted


class TestErrors:
    def test_truncated_read_raises(self):
        r = ByteReader(b"\x01")
        with pytest.raises(ImageFormatError):
            r.u32()

    def test_truncated_string_raises(self):
        w = ByteWriter()
        w.string("hello")
        r = ByteReader(w.getvalue()[:-2])
        with pytest.raises(ImageFormatError):
            r.string()

    def test_len_tracks_writer(self):
        w = ByteWriter()
        assert len(w) == 0
        w.u32(1)
        assert len(w) == 4
