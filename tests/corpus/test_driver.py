"""Corpus driver supervision: ladder, quarantine, resume, report shape.

Everything here runs in-process (``in_process=True`` keeps the procs
backend inline — deterministic and pool-free on one-core CI runners)
and under the fake latency clock, so assertions about latencies and
report bytes are exact.  The process-killing chaos (``journal-torn``,
``coordinator-kill``, ``kill -9`` + ``--resume``) lives in
``test_chaos.py`` because those sites ``os._exit`` the interpreter.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus import (
    CORPUS_PRESETS,
    CorpusConfig,
    corpus_program,
    run_corpus,
)
from repro.corpus.driver import CorpusDriver
from repro.corpus.journal import JOURNAL_NAME, iter_journal
from repro.corpus.report import REPORT_NAME
from repro.errors import CorpusError
from repro.fuzz.specio import spec_from_json, spec_to_json
from repro.runtime.faults import FaultPlan
from repro.runtime.tracefmt import validate_corpus_report
from repro.synth.codegen import synthesize


@pytest.fixture(autouse=True)
def fake_clock(monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_FAKE_CLOCK", "1")


def _config(**kw) -> CorpusConfig:
    base = dict(count=4, seed=11, n_functions=10, attempts=2, window=2,
                journal_batch=2)
    base.update(kw)
    return CorpusConfig(**base)


def _run(tmp_path, *, plan=None, resume=False, **kw):
    return run_corpus(tmp_path / "run",
                      None if resume else _config(**kw),
                      resume=resume, in_process=True, fault_plan=plan)


def _report(tmp_path) -> dict:
    return json.loads((tmp_path / "run" / REPORT_NAME).read_text())


class TestHappyPath:
    def test_all_binaries_complete_and_verify(self, tmp_path):
        summary = _run(tmp_path)
        assert summary["completed"] == 4
        assert summary["quarantined"] == 0
        assert summary["analyzed_this_run"] == 4
        report = _report(tmp_path)
        assert validate_corpus_report(report) == []
        for row in report["binaries"]:
            assert row["status"] == "ok"
            assert row["digest"] == row["serial_digest"]
            assert row["attempt"] == 1 and row["failures"] == []
        # round-robin over the default preset mix, benign first
        assert report["binaries"][0]["preset"] == "benign"
        assert report["binaries"][1]["preset"] == CORPUS_PRESETS[1]

    def test_fake_clock_latencies_are_positional(self, tmp_path):
        _run(tmp_path)
        for row in _report(tmp_path)["binaries"]:
            want = round(((row["index"] * 37 + 11) % 89 + 1) / 1000.0, 6)
            assert row["latency_s"] == want

    def test_reruns_are_byte_identical(self, tmp_path):
        _run(tmp_path)
        a = (tmp_path / "run" / REPORT_NAME).read_bytes()
        run_corpus(tmp_path / "other", _config(), in_process=True)
        b = (tmp_path / "other" / REPORT_NAME).read_bytes()
        assert a == b


class TestQuarantine:
    def test_crash_quarantines_only_the_faulted_binary(self, tmp_path):
        summary = _run(tmp_path,
                       plan=FaultPlan.from_spec("binary-crash@1x99"))
        assert summary["completed"] == 3
        assert summary["quarantined"] == 1
        report = _report(tmp_path)
        assert validate_corpus_report(report) == []
        assert report["quarantine"]["reasons"] == {"crash": 1}
        rows = {r["index"]: r for r in report["binaries"]}
        assert rows[1]["status"] == "quarantined"
        assert rows[1]["reason"] == "crash"
        # the full attempt budget was spent on the procs backend plus
        # the serial rung before giving up
        assert [f["backend"] for f in rows[1]["failures"]] == \
            ["procs", "serial"]
        for i in (0, 2, 3):  # healthy binaries still match serial
            assert rows[i]["status"] == "ok"
            assert rows[i]["digest"] == rows[i]["serial_digest"]

    def test_triage_bundle_reproduces_the_binary(self, tmp_path):
        _run(tmp_path, plan=FaultPlan.from_spec("binary-crash@1x99"))
        bundle = tmp_path / "run" / "quarantine" / "0001-data-in-text"
        assert (bundle / "error.txt").read_text().startswith(
            "reason: crash\n")
        attempts = json.loads((bundle / "attempts.json").read_text())
        assert [a["outcome"] for a in attempts] == ["crash", "crash"]
        spec = spec_from_json(json.loads((bundle / "spec.json")
                                         .read_text()))
        want = corpus_program(1, 11, CORPUS_PRESETS, 10)
        assert spec_to_json(spec) == spec_to_json(want)
        # the bundle alone reproduces the binary bit-for-bit
        assert synthesize(spec).binary.image.text.data == \
            synthesize(want).binary.image.text.data

    def test_quarantine_record_is_flushed_immediately(self, tmp_path):
        # journal_batch is huge, yet the quarantine record must be on
        # disk the moment the run ends even without the closing flush
        _run(tmp_path, plan=FaultPlan.from_spec("binary-crash@0x99"),
             count=1, journal_batch=1000)
        kinds = [r["kind"]
                 for r in iter_journal(tmp_path / "run" / JOURNAL_NAME)]
        assert "quarantined" in kinds


class TestLadder:
    def test_serial_rung_rescues_a_crashing_binary(self, tmp_path):
        # crash only on attempt 1: attempt 2 takes the serial rung and
        # completes there
        summary = _run(tmp_path,
                       plan=FaultPlan.from_spec("binary-crash@1x1"))
        assert summary["quarantined"] == 0
        rows = {r["index"]: r for r in _report(tmp_path)["binaries"]}
        assert rows[1]["status"] == "ok"
        assert rows[1]["backend"] == "serial"
        assert rows[1]["attempt"] == 2
        assert [f["outcome"] for f in rows[1]["failures"]] == ["crash"]
        assert rows[0]["backend"] == "procs"

    def test_timeout_shrinks_window_and_quarantines(self, tmp_path):
        summary = _run(
            tmp_path, count=2, attempts=1, binary_deadline=0.3,
            plan=FaultPlan.from_spec("binary-hang@1x99=30"))
        assert summary["final_window"] == 1
        report = _report(tmp_path)
        assert validate_corpus_report(report) == []
        assert report["degradation"]["window_shrinks"] == 1
        assert report["degradation"]["final_window"] == 1
        assert report["quarantine"]["reasons"] == {"timeout": 1}
        rows = {r["index"]: r for r in report["binaries"]}
        assert rows[0]["status"] == "ok"
        failure = rows[1]["failures"][0]
        assert failure["outcome"] == "timeout"
        assert failure["latency_s"] == round(0.3, 6)

    def test_divergence_never_takes_the_serial_rung(self, tmp_path,
                                                    monkeypatch):
        # a procs parse that disagrees with the serial reference must
        # retry on procs (or quarantine) — rerunning it serially would
        # trivially match the reference and mask the divergence
        def fake_parse(self, binary, backend):
            digest = binary.name
            if backend != "serial" and "0001" in binary.name:
                digest = "bogus-" + binary.name
            return digest, (1, 1, 1, "none")

        monkeypatch.setattr(CorpusDriver, "_parse", fake_parse)
        summary = _run(tmp_path, count=2, attempts=3)
        assert summary["quarantined"] == 1
        report = _report(tmp_path)
        rows = {r["index"]: r for r in report["binaries"]}
        assert rows[1]["reason"] == "divergence"
        assert [f["backend"] for f in rows[1]["failures"]] == \
            ["procs", "procs", "procs"]
        assert rows[0]["status"] == "ok"


class TestResume:
    def test_resume_of_a_finished_run_reanalyzes_nothing(self, tmp_path):
        _run(tmp_path)
        before = (tmp_path / "run" / REPORT_NAME).read_bytes()
        summary = _run(tmp_path, resume=True)
        assert summary["resumed"] is True
        assert summary["analyzed_this_run"] == 0
        assert summary["skipped_completed"] == 4
        assert (tmp_path / "run" / REPORT_NAME).read_bytes() == before
        # exactly one outcome record per binary, ever
        recs = list(iter_journal(tmp_path / "run" / JOURNAL_NAME))
        outcomes = [r["index"] for r in recs
                    if r["kind"] in ("completed", "quarantined")]
        assert sorted(outcomes) == [0, 1, 2, 3]
        assert sum(1 for r in recs if r["kind"] == "resume") == 1

    def test_fresh_run_refuses_an_existing_run_dir(self, tmp_path):
        _run(tmp_path)
        with pytest.raises(CorpusError, match="use --resume"):
            _run(tmp_path)

    def test_resume_rejects_an_explicit_config(self, tmp_path):
        with pytest.raises(CorpusError, match="journal header"):
            run_corpus(tmp_path / "run", _config(), resume=True)

    def test_resume_without_a_journal_is_fatal(self, tmp_path):
        with pytest.raises(CorpusError, match="no journal"):
            _run(tmp_path, resume=True)


class TestConfig:
    @pytest.mark.parametrize("kw,msg", [
        (dict(count=0), "count"),
        (dict(attempts=0), "attempts"),
        (dict(window=0), "window"),
        (dict(binary_deadline=0.0), "deadline"),
        (dict(backend="gpu"), "backend"),
        (dict(journal_batch=0), "journal batch"),
        (dict(presets=()), "preset"),
        (dict(presets=("benign", "nope")), "unknown preset"),
    ])
    def test_validate_rejects(self, kw, msg):
        with pytest.raises(CorpusError, match=msg):
            _config(**kw).validate()

    def test_header_round_trips(self):
        cfg = _config(presets=("benign", "jt-overapprox"))
        assert CorpusConfig.from_header(cfg.header()) == cfg

    def test_from_header_missing_field_is_fatal(self):
        header = _config().header()
        del header["attempts"]
        with pytest.raises(CorpusError, match="missing field"):
            CorpusConfig.from_header(header)

    def test_corpus_program_is_pure(self):
        a = corpus_program(3, 11, CORPUS_PRESETS, 10)
        b = corpus_program(3, 11, CORPUS_PRESETS, 10)
        assert spec_to_json(a) == spec_to_json(b)
        c = corpus_program(4, 11, CORPUS_PRESETS, 10)
        assert spec_to_json(a) != spec_to_json(c)


class TestFaultGrammar:
    def test_corpus_sites_round_trip(self):
        text = ("binary-crash@3x2,binary-hang@1x99=0.5,"
                "journal-torn@2,coordinator-kill@5")
        plan = FaultPlan.from_spec(text)
        assert plan.to_spec() == text
        assert plan.fires("binary-crash", 3, 2) is not None
        assert plan.fires("binary-crash", 3, 3) is None
        assert plan.fires("binary-crash", 4, 1) is None
        assert plan.fires("binary-hang", 1, 50).value == 0.5
        assert plan.fires("journal-torn", 2, 1) is not None
        assert plan.fires("journal-torn", 1, 1) is None
        assert plan.fires("coordinator-kill", 5, 1) is not None
