"""Journal unit behavior: batching, torn-tail replay, idempotent folds.

The crash story (kill -9 mid-run, resume, byte-identical report) rests
on three journal properties pinned here: appends become durable in
batches and only full batches are ever lost; replay tolerates exactly
one torn *final* line (truncating it away) while mid-file damage is a
hard error; and folding the record stream is idempotent per binary, so
a re-analyzed outcome overwrites itself.  The process-killing behavior
of the ``journal-torn`` fault site itself is exercised end-to-end in
``test_chaos.py`` (it ``os._exit``\\ s, so it cannot run in-process
under pytest).
"""

from __future__ import annotations

import json

import pytest

from repro.corpus.journal import (
    JOURNAL_SCHEMA,
    Journal,
    iter_journal,
    summarize_records,
)
from repro.errors import CorpusError

HEADER = {"count": 3, "seed": 7}


def _completed(index: int, digest: str = "d") -> dict:
    return {"kind": "completed", "index": index, "digest": digest}


class TestAppendFlush:
    def test_header_is_durable_immediately(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        Journal.create(path, HEADER, batch=100)
        recs = list(iter_journal(path))
        assert len(recs) == 1
        assert recs[0]["kind"] == "header"
        assert recs[0]["schema"] == JOURNAL_SCHEMA
        assert recs[0]["count"] == 3

    def test_appends_batch_before_hitting_disk(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = Journal.create(path, HEADER, batch=3)
        j.append(_completed(0))
        j.append(_completed(1))
        assert j.pending == 2
        assert len(list(iter_journal(path))) == 1  # header only
        j.append(_completed(2))  # third append fills the batch
        assert j.pending == 0
        assert len(list(iter_journal(path))) == 4

    def test_close_flushes_the_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = Journal.create(path, HEADER, batch=100)
        j.append(_completed(0))
        j.close()
        assert [r["kind"] for r in iter_journal(path)] == [
            "header", "completed"]

    def test_create_refuses_existing_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        Journal.create(path, HEADER)
        with pytest.raises(CorpusError, match="already exists"):
            Journal.create(path, HEADER)


class TestResume:
    def _write(self, path, lines: list[bytes]) -> None:
        path.write_bytes(b"".join(lines))

    def _line(self, rec: dict) -> bytes:
        return (json.dumps(rec) + "\n").encode()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = Journal.create(path, HEADER, batch=1)
        j.append(_completed(0))
        j.append(_completed(1))
        j.close()
        j2, header, records, torn = Journal.resume(path)
        assert not torn
        assert header["count"] == 3
        assert [r["index"] for r in records] == [0, 1]
        j2.append(_completed(2))
        j2.close()
        assert len(list(iter_journal(path))) == 4

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        hdr = dict(HEADER, kind="header", schema=JOURNAL_SCHEMA)
        full = self._line(hdr) + self._line(_completed(0))
        # a torn write: half of record 1's bytes, no newline
        torn_line = self._line(_completed(1))
        self._write(path, [full, torn_line[:len(torn_line) // 2]])
        _, _, records, torn = Journal.resume(path)
        assert torn
        assert [r["index"] for r in records] == [0]
        # the file itself was truncated back to the record boundary,
        # so appending resumes cleanly
        assert path.read_bytes() == full

    def test_mid_file_damage_is_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        hdr = dict(HEADER, kind="header", schema=JOURNAL_SCHEMA)
        self._write(path, [self._line(hdr), b"garbage not json\n",
                           self._line(_completed(0))])
        with pytest.raises(CorpusError, match="corrupt journal"):
            Journal.resume(path)

    def test_missing_journal_is_fatal(self, tmp_path):
        with pytest.raises(CorpusError, match="no journal"):
            Journal.resume(tmp_path / "nope.jsonl")

    def test_missing_header_is_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self._write(path, [self._line(_completed(0))])
        with pytest.raises(CorpusError, match="no header"):
            Journal.resume(path)

    def test_wrong_schema_is_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        hdr = dict(HEADER, kind="header", schema="repro.corpus-journal/99")
        self._write(path, [self._line(hdr)])
        with pytest.raises(CorpusError, match="schema"):
            Journal.resume(path)


class TestSummarize:
    def test_later_records_win_per_index(self):
        state = summarize_records([
            _completed(0, "a"),
            {"kind": "quarantined", "index": 1, "reason": "crash"},
            _completed(0, "b"),          # re-analyzed after a lost flush
            _completed(1, "c"),          # quarantine overturned on re-run
            {"kind": "resume"},
        ])
        assert state["completed"][0]["digest"] == "b"
        assert state["completed"][1]["digest"] == "c"
        assert state["quarantined"] == {}
        assert state["resumes"] == 1
