"""Kill -9 chaos: torn journals, dead coordinators, byte-identical resume.

These tests drive the real CLI in subprocesses because the chaos sites
(``journal-torn``, ``coordinator-kill``) kill the interpreter with
``os._exit(86)`` — exactly what they model — and so cannot run inside
pytest.  The contract pinned here is the issue's acceptance bar:

- a run killed at any seeded chaos point, resumed with ``--resume``,
  produces a final ``corpus_report.json`` **byte-identical** to an
  uninterrupted run's;
- no binary whose outcome reached the journal is ever analyzed twice;
- ``/dev/shm`` ends empty, including orphans a killed coordinator
  leaked (``os._exit`` skips the atexit sweep).

All runs use the fake latency clock and ``--in-process`` (inline procs
backend: deterministic and pool-free on one-core CI runners).  The two
process-killing sites fire per *invocation*, so the resume is given a
plan with only the ``binary-*`` sites — see docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus.journal import JOURNAL_NAME, iter_journal
from repro.corpus.report import REPORT_NAME

_SRC = Path(__file__).resolve().parents[2] / "src"

#: One corpus shape for every test: small enough to be fast, large
#: enough that a mid-run kill leaves real work on both sides.
_SHAPE = ("--count", "6", "--n-functions", "10", "--seed", "11",
          "--window", "2", "--journal-batch", "2", "--attempts", "2")

#: os._exit status used by both process-killing fault sites.
_KILLED = 86


def _cli(run_dir: Path, *args: str, fault: str | None = None,
         resume: bool = False) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CORPUS_FAKE_CLOCK"] = "1"
    env.pop("REPRO_FAULT_PLAN", None)
    cmd = [sys.executable, "-m", "repro.cli", "corpus", str(run_dir),
           "--in-process", "--no-metrics"]
    cmd += ["--resume"] if resume else list(_SHAPE)
    if fault:
        cmd += ["--fault-plan", fault]
    cmd += list(args)
    return subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=300)


def _summary(proc: subprocess.CompletedProcess) -> dict:
    return json.loads(proc.stdout)


def _report_bytes(run_dir: Path) -> bytes:
    return (run_dir / REPORT_NAME).read_bytes()


def _outcome_indexes(run_dir: Path) -> list[int]:
    return [r["index"] for r in iter_journal(run_dir / JOURNAL_NAME)
            if r.get("kind") in ("completed", "quarantined")]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> bytes:
    """Report bytes of an uninterrupted, fault-free run."""
    run_dir = tmp_path_factory.mktemp("baseline") / "run"
    proc = _cli(run_dir)
    assert proc.returncode == 0, proc.stderr
    return _report_bytes(run_dir)


class TestCoordinatorKill:
    def test_kill_resume_is_byte_identical(self, tmp_path, baseline):
        run_dir = tmp_path / "run"
        proc = _cli(run_dir, fault="coordinator-kill@3")
        assert proc.returncode == _KILLED
        assert not (run_dir / REPORT_NAME).exists()  # died mid-run
        # journal batching means the kill lost buffered outcomes: some
        # work is journaled, the rest is not
        durable = _outcome_indexes(run_dir)
        assert 0 < len(durable) < 6

        proc = _cli(run_dir, resume=True)
        assert proc.returncode == 0, proc.stderr
        assert _report_bytes(run_dir) == baseline
        summary = _summary(proc)
        assert summary["resumed"] is True
        # journaled binaries are never re-analyzed; the rest are
        assert summary["skipped_completed"] == len(durable)
        assert summary["analyzed_this_run"] == 6 - len(durable)
        # exactly one durable outcome per binary, ever
        assert sorted(_outcome_indexes(run_dir)) == list(range(6))

    def test_kill_leaves_no_shm_segments_after_resume(self, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm mount")
        run_dir = tmp_path / "run"
        proc = _cli(run_dir, fault="coordinator-kill@2")
        assert proc.returncode == _KILLED
        # model the killed coordinator having leaked a published
        # segment (os._exit skips the atexit sweep); the dead pid is
        # baked into the name, so the resume's startup sweep reaps it
        dead_pid = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True).stdout.strip()
        orphan = Path("/dev/shm") / f"repro-img-{dead_pid}-1"
        orphan.write_bytes(b"leaked segment")

        proc = _cli(run_dir, resume=True)
        assert proc.returncode == 0, proc.stderr
        assert _summary(proc)["orphans_reaped"] >= 1
        assert not orphan.exists()
        assert glob.glob("/dev/shm/repro-img-*") == []


class TestTornJournal:
    def test_torn_flush_resume_is_byte_identical(self, tmp_path,
                                                 baseline):
        run_dir = tmp_path / "run"
        # flush 1 is the header; flush 2 is the first outcome batch —
        # it is torn mid-record, fsync'd, and the coordinator dies
        proc = _cli(run_dir, fault="journal-torn@2")
        assert proc.returncode == _KILLED
        raw = (run_dir / JOURNAL_NAME).read_bytes()
        assert not raw.endswith(b"\n")  # the tail really is torn

        proc = _cli(run_dir, resume=True)
        assert proc.returncode == 0, proc.stderr
        assert _report_bytes(run_dir) == baseline
        # the resume saw (and truncated) the torn tail
        resumes = [r for r in iter_journal(run_dir / JOURNAL_NAME)
                   if r.get("kind") == "resume"]
        assert len(resumes) == 1 and resumes[0]["torn_tail"] is True
        assert sorted(_outcome_indexes(run_dir)) == list(range(6))


class TestBinaryFaultsAcrossResume:
    def test_binary_faults_replay_identically(self, tmp_path):
        # binary-* sites key on (index, attempt), which a journal
        # replay reconstructs — the resume keeps them in its plan and a
        # re-analyzed binary walks the identical retry sequence
        faults = "binary-crash@2x1,binary-crash@4x99"
        ref_dir = tmp_path / "ref"
        proc = _cli(ref_dir, fault=faults)
        assert proc.returncode == 1, proc.stderr  # binary 4 quarantines
        ref = _summary(proc)
        assert ref["completed"] == 5 and ref["quarantined"] == 1

        run_dir = tmp_path / "run"
        proc = _cli(run_dir, fault=faults + ",coordinator-kill@4")
        assert proc.returncode == _KILLED
        proc = _cli(run_dir, resume=True, fault=faults)
        assert proc.returncode == 1, proc.stderr
        assert _report_bytes(run_dir) == _report_bytes(ref_dir)
        report = json.loads(_report_bytes(run_dir))
        rows = {r["index"]: r for r in report["binaries"]}
        # binary 2 recovered on the serial rung, binary 4 quarantined
        assert rows[2]["status"] == "ok"
        assert rows[2]["backend"] == "serial"
        assert rows[4]["status"] == "quarantined"
        # its ladder ended on the serial rung before giving up
        assert [f["backend"] for f in rows[4]["failures"]] == \
            ["procs", "serial"]
        assert (run_dir / "quarantine" / "0004-oob-entry").is_dir()
