"""Documentation checks: links resolve, metrics catalog is complete."""

import re
from pathlib import Path

import pytest

from repro.apps.hpcstruct import hpcstruct
from repro.runtime import VirtualTimeRuntime
from repro.synth import tiny_binary

REPO = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [REPO / "README.md"] + list((REPO / "docs").glob("*.md")))

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative links: {broken}"


class TestMetricsCatalog:
    """docs/OBSERVABILITY.md must list every metric the library emits."""

    @pytest.fixture(scope="class")
    def emitted_names(self):
        # One instrumented end-to-end run covers the parser, finalizer,
        # noreturn machinery, symbol table, maps, locks, and phases.
        sb = tiny_binary()
        rt = VirtualTimeRuntime(8, enable_trace=True)
        hpcstruct(sb.binary, rt)
        return set(rt.metrics.names())

    @pytest.fixture(scope="class")
    def catalog_text(self):
        return (REPO / "docs" / "OBSERVABILITY.md").read_text()

    @staticmethod
    def _normalize(name):
        """Fold per-instance names onto their catalog placeholder."""
        m = re.match(r"^map\.(.+)\.([a-z_]+)$", name)
        if m:
            return f"map.<name>.{m.group(2)}", m.group(1)
        if name.startswith("phase."):
            return "phase.<name>", None
        return name, None

    def test_every_emitted_metric_is_documented(self, emitted_names,
                                                catalog_text):
        missing = []
        for name in sorted(emitted_names):
            normalized, _ = self._normalize(name)
            if f"`{normalized}`" not in catalog_text:
                missing.append(name)
        assert not missing, (
            "metrics emitted but not in docs/OBSERVABILITY.md catalog: "
            f"{missing}")

    def test_map_names_in_use_are_documented(self, emitted_names,
                                             catalog_text):
        map_names = {self._normalize(n)[1] for n in emitted_names
                     if n.startswith("map.")} - {None}
        undocumented = [n for n in sorted(map_names)
                        if f"`{n}`" not in catalog_text]
        assert not undocumented, (
            "map names not listed in the catalog: "
            f"{undocumented}")

    def test_run_exercises_the_main_catalog_sections(self, emitted_names):
        # Guard against the fixture silently degrading into a run that
        # emits nothing: the workload must touch each subsystem.
        for expected in ("rt.tasks_spawned", "lock.acquires",
                         "parser.blocks_created",
                         "finalize.tailcall_rounds",
                         "map.blocks.acquires"):
            assert expected in emitted_names
