"""Tests for the streaming decoder (linear parsing primitive)."""

import pytest

from repro.errors import InvalidInstructionError
from repro.isa import Decoder, Instruction, Opcode, Reg, encode
from repro.isa.encoding import instruction_length


def assemble(base, ops):
    """Assemble a list of (opcode, *operands) into (bytes, [Instruction])."""
    blob = b""
    insns = []
    addr = base
    for op, *operands in ops:
        i = Instruction(address=addr, opcode=op, operands=tuple(operands),
                        length=instruction_length(op))
        insns.append(i)
        blob += encode(i)
        addr = i.end
    return blob, insns


BASE = 0x4000


@pytest.fixture
def simple_block():
    """mov; add; cmp; jcc — one basic block ending in conditional branch."""
    return assemble(BASE, [
        (Opcode.MOV_RI, Reg.R1, 5),
        (Opcode.ADD, Reg.R1, Reg.R2),
        (Opcode.CMP_RI, Reg.R1, 10),
        (Opcode.JCC, 0, 0x5000),
        (Opcode.NOP,),
        (Opcode.RET,),
    ])


class TestDecodeAt:
    def test_decode_each_address(self, simple_block):
        blob, insns = simple_block
        d = Decoder(blob, BASE)
        for expect in insns:
            assert d.decode_at(expect.address) == expect

    def test_outside_region_raises(self, simple_block):
        blob, _ = simple_block
        d = Decoder(blob, BASE)
        with pytest.raises(InvalidInstructionError):
            d.decode_at(BASE - 1)
        with pytest.raises(InvalidInstructionError):
            d.decode_at(BASE + len(blob))

    def test_contains(self, simple_block):
        blob, _ = simple_block
        d = Decoder(blob, BASE)
        assert d.contains(BASE)
        assert d.contains(BASE + len(blob) - 1)
        assert not d.contains(BASE + len(blob))
        assert d.base == BASE
        assert d.limit == BASE + len(blob)

    def test_misaligned_decode_gives_different_stream(self, simple_block):
        """Decoding from the middle of an instruction either fails or
        produces a different instruction — variable-length realism."""
        blob, insns = simple_block
        d = Decoder(blob, BASE)
        mid = insns[0].address + 1
        try:
            got = d.decode_at(mid)
            assert got != insns[0]
        except InvalidInstructionError:
            pass


class TestLinearScan:
    def test_scan_stops_at_control_flow(self, simple_block):
        blob, insns = simple_block
        d = Decoder(blob, BASE)
        got, ended_cf = d.linear_scan(BASE)
        assert ended_cf
        assert [i.opcode for i in got] == [Opcode.MOV_RI, Opcode.ADD,
                                           Opcode.CMP_RI, Opcode.JCC]

    def test_scan_from_middle(self, simple_block):
        blob, insns = simple_block
        d = Decoder(blob, BASE)
        got, ended_cf = d.linear_scan(insns[4].address)  # NOP; RET
        assert ended_cf
        assert [i.opcode for i in got] == [Opcode.NOP, Opcode.RET]

    def test_scan_into_garbage(self):
        blob, _ = assemble(BASE, [(Opcode.NOP,), (Opcode.NOP,)])
        blob += b"\x00\xff"  # undecodable
        d = Decoder(blob, BASE)
        got, ended_cf = d.linear_scan(BASE)
        assert not ended_cf
        assert len(got) == 2

    def test_scan_to_region_end(self):
        blob, _ = assemble(BASE, [(Opcode.NOP,), (Opcode.NOP,)])
        d = Decoder(blob, BASE)
        got, ended_cf = d.linear_scan(BASE)
        assert not ended_cf
        assert len(got) == 2

    def test_stop_before(self, simple_block):
        blob, insns = simple_block
        d = Decoder(blob, BASE)
        got, ended_cf = d.linear_scan(BASE, stop_before=insns[2].address)
        assert not ended_cf
        assert len(got) == 2

    def test_iter_from(self, simple_block):
        blob, insns = simple_block
        d = Decoder(blob, BASE)
        assert list(d.iter_from(BASE)) == insns

    def test_iter_from_stops_on_garbage(self):
        blob, _ = assemble(BASE, [(Opcode.NOP,)])
        blob += b"\x00"
        d = Decoder(blob, BASE)
        assert len(list(d.iter_from(BASE))) == 1
