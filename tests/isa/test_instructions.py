"""Unit tests for instruction classification and def/use sets."""

import pytest

from repro.isa import Cond, ControlFlowKind, Instruction, Opcode, Reg
from repro.isa.encoding import instruction_length


def make(op, *operands, address=0x1000):
    return Instruction(address=address, opcode=op, operands=tuple(operands),
                       length=instruction_length(op))


class TestClassification:
    def test_nop_is_not_control_flow(self):
        i = make(Opcode.NOP)
        assert not i.is_control_flow
        assert i.cf_kind is ControlFlowKind.NONE
        assert i.falls_through

    def test_jmp_is_direct_jump(self):
        i = make(Opcode.JMP, 0x2000)
        assert i.is_control_flow
        assert i.cf_kind is ControlFlowKind.DIRECT_JUMP
        assert i.is_branch and not i.is_call and not i.is_cond
        assert not i.falls_through
        assert i.direct_target == 0x2000

    def test_jcc_falls_through_and_targets(self):
        i = make(Opcode.JCC, Cond.EQ, 0x2000)
        assert i.cf_kind is ControlFlowKind.COND_JUMP
        assert i.falls_through
        assert i.is_cond
        assert i.direct_target == 0x2000
        assert i.cond is Cond.EQ

    def test_call_classification(self):
        i = make(Opcode.CALL, 0x3000)
        assert i.is_call
        assert i.cf_kind is ControlFlowKind.CALL
        assert i.falls_through  # architectural fall-through
        assert i.direct_target == 0x3000

    def test_icall_has_no_direct_target(self):
        i = make(Opcode.ICALL, Reg.R3)
        assert i.is_call
        assert i.direct_target is None
        assert i.cf_kind is ControlFlowKind.INDIRECT_CALL

    def test_ijmp(self):
        i = make(Opcode.IJMP, Reg.R5)
        assert i.cf_kind is ControlFlowKind.INDIRECT_JUMP
        assert not i.falls_through
        assert i.direct_target is None

    def test_ret(self):
        i = make(Opcode.RET)
        assert i.is_ret
        assert not i.falls_through

    def test_halt(self):
        i = make(Opcode.HALT)
        assert i.is_control_flow
        assert not i.falls_through
        assert i.cf_kind is ControlFlowKind.HALT

    def test_end_address(self):
        i = make(Opcode.MOV_RI, Reg.R1, 42, address=0x100)
        assert i.end == 0x100 + instruction_length(Opcode.MOV_RI)

    @pytest.mark.parametrize("op", [Opcode.NOP, Opcode.ADD, Opcode.LOAD,
                                    Opcode.PUSH, Opcode.LEAVE])
    def test_non_cf_opcodes(self, op):
        operands = {
            Opcode.NOP: (), Opcode.ADD: (Reg.R1, Reg.R2),
            Opcode.LOAD: (Reg.R1, Reg.R2, 8), Opcode.PUSH: (Reg.R1,),
            Opcode.LEAVE: (),
        }[op]
        assert not make(op, *operands).is_control_flow


class TestDefUse:
    def test_mov_ri_defs(self):
        i = make(Opcode.MOV_RI, Reg.R4, 7)
        assert i.regs_written() == {Reg.R4}
        assert i.regs_read() == frozenset()

    def test_add_reads_both(self):
        i = make(Opcode.ADD, Reg.R1, Reg.R2)
        assert i.regs_read() == {Reg.R1, Reg.R2}
        assert i.regs_written() == {Reg.R1}

    def test_cmp_writes_flags(self):
        i = make(Opcode.CMP_RI, Reg.R1, 10)
        assert Reg.FLAGS in i.regs_written()
        assert i.regs_read() == {Reg.R1}

    def test_jcc_reads_flags(self):
        i = make(Opcode.JCC, Cond.A, 0x2000)
        assert Reg.FLAGS in i.regs_read()

    def test_loadidx_reads_base_and_index(self):
        i = make(Opcode.LOADIDX, Reg.R1, Reg.R2, Reg.R3)
        assert i.regs_read() == {Reg.R2, Reg.R3}
        assert i.regs_written() == {Reg.R1}

    def test_store_reads_base_and_value(self):
        i = make(Opcode.STORE, Reg.R2, 16, Reg.R1)
        assert i.regs_read() == {Reg.R1, Reg.R2}
        assert i.regs_written() == frozenset()

    def test_call_clobbers_caller_saved(self):
        i = make(Opcode.CALL, 0x1000)
        written = i.regs_written()
        assert Reg.R0 in written and Reg.R7 in written
        assert Reg.R8 not in written  # callee-saved preserved

    def test_push_pop_touch_sp(self):
        push = make(Opcode.PUSH, Reg.R1)
        pop = make(Opcode.POP, Reg.R1)
        assert Reg.SP in push.regs_written() and Reg.SP in push.regs_read()
        assert Reg.SP in pop.regs_written()
        assert Reg.R1 in pop.regs_written()


class TestStackEffects:
    def test_push_delta(self):
        assert make(Opcode.PUSH, Reg.R1).sp_delta() == -8

    def test_pop_delta(self):
        assert make(Opcode.POP, Reg.R1).sp_delta() == 8

    def test_enter_delta(self):
        assert make(Opcode.ENTER, 32).sp_delta() == -40  # push fp + frame

    def test_leave_delta_unknown(self):
        assert make(Opcode.LEAVE).sp_delta() is None

    def test_addi_sp_signed(self):
        neg16 = (1 << 32) - 16
        assert make(Opcode.ADDI, Reg.SP, neg16).sp_delta() == -16
        assert make(Opcode.ADDI, Reg.SP, 16).sp_delta() == 16

    def test_addi_non_sp_is_neutral(self):
        assert make(Opcode.ADDI, Reg.R1, 16).sp_delta() == 0


class TestRegisters:
    def test_gp_classification(self):
        assert Reg.R0.is_gp and Reg.R15.is_gp
        assert not Reg.SP.is_gp and not Reg.FLAGS.is_gp

    def test_named_accessors_raise_on_mismatch(self):
        with pytest.raises(AttributeError):
            _ = make(Opcode.NOP).dst
        with pytest.raises(AttributeError):
            _ = make(Opcode.RET).imm
        with pytest.raises(AttributeError):
            _ = make(Opcode.JMP, 0x10).cond
