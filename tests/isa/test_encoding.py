"""Encode/decode unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, InvalidInstructionError
from repro.isa import Cond, Instruction, Opcode, Reg, decode, encode
from repro.isa.encoding import _LAYOUT, instruction_length


def make(op, *operands, address=0):
    return Instruction(address=address, opcode=op, operands=tuple(operands),
                       length=instruction_length(op))


# Strategy: a random valid instruction of any opcode.
def _operand_strategy(kind):
    if kind == "r":
        return st.integers(0, len(Reg) - 1)
    if kind == "c":
        return st.integers(0, len(Cond) - 1)
    if kind == "i32":
        return st.integers(0, (1 << 32) - 1)
    return st.integers(0, (1 << 16) - 1)


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(sorted(_LAYOUT.keys())))
    operands = tuple(draw(_operand_strategy(k)) for k in _LAYOUT[op])
    address = draw(st.integers(0, (1 << 32) - 1))
    return Instruction(address=address, opcode=op, operands=operands,
                       length=instruction_length(op))


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_roundtrip(self, insn):
        raw = encode(insn)
        assert len(raw) == insn.length
        back = decode(raw, 0, insn.address)
        assert back == insn

    @given(st.lists(instructions(), min_size=1, max_size=20))
    def test_stream_roundtrip(self, insns):
        """A concatenated stream decodes back instruction by instruction."""
        blob = b""
        placed = []
        addr = 0x1000
        for i in insns:
            i2 = Instruction(address=addr, opcode=i.opcode,
                             operands=i.operands, length=i.length)
            placed.append(i2)
            blob += encode(i2)
            addr = i2.end
        pos = 0
        for expect in placed:
            got = decode(blob, pos, expect.address)
            assert got == expect
            pos += got.length


class TestLengths:
    def test_lengths_cover_all_opcodes(self):
        for op in Opcode:
            assert instruction_length(op) >= 1

    def test_variable_lengths_exist(self):
        lengths = {instruction_length(op) for op in Opcode}
        assert len(lengths) > 3  # genuinely variable-length ISA

    def test_specific_lengths(self):
        assert instruction_length(Opcode.NOP) == 1
        assert instruction_length(Opcode.RET) == 1
        assert instruction_length(Opcode.JMP) == 5
        assert instruction_length(Opcode.JCC) == 6
        assert instruction_length(Opcode.LOAD) == 7


class TestEncodeErrors:
    def test_wrong_operand_count(self):
        bad = Instruction(address=0, opcode=Opcode.JMP, operands=(),
                          length=5)
        with pytest.raises(EncodingError):
            encode(bad)

    def test_register_out_of_range(self):
        bad = Instruction(address=0, opcode=Opcode.PUSH, operands=(99,),
                          length=2)
        with pytest.raises(EncodingError):
            encode(bad)

    def test_imm32_out_of_range(self):
        bad = Instruction(address=0, opcode=Opcode.JMP,
                          operands=(1 << 33,), length=5)
        with pytest.raises(EncodingError):
            encode(bad)

    def test_imm16_out_of_range(self):
        bad = Instruction(address=0, opcode=Opcode.ENTER,
                          operands=(1 << 17,), length=3)
        with pytest.raises(EncodingError):
            encode(bad)


class TestDecodeErrors:
    def test_invalid_opcode(self):
        with pytest.raises(InvalidInstructionError) as ei:
            decode(b"\x00\x00\x00", 0, 0x400)
        assert ei.value.address == 0x400

    def test_truncated_instruction(self):
        raw = encode(make(Opcode.JMP, 0x1234))
        with pytest.raises(InvalidInstructionError):
            decode(raw[:3], 0, 0)

    def test_offset_past_end(self):
        with pytest.raises(InvalidInstructionError):
            decode(b"\x01", 5, 0)

    def test_bad_register_byte(self):
        raw = bytes([int(Opcode.PUSH), 200])
        with pytest.raises(InvalidInstructionError):
            decode(raw, 0, 0)

    @given(st.binary(min_size=1, max_size=16))
    def test_decode_never_crashes_on_garbage(self, blob):
        """Arbitrary bytes either decode or raise InvalidInstructionError."""
        try:
            insn = decode(blob, 0, 0)
            assert insn.length <= len(blob)
        except InvalidInstructionError:
            pass
