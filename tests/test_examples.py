"""Every example script must stay runnable end-to-end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples are __main__-style scripts; run them in-process so
    # assertions inside them fail loudly.
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 4
