"""Model-based testing of the concurrent hash map against a plain dict."""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.runtime import ConcurrentHashMap, SerialRuntime


class ConcHashMachine(RuleBasedStateMachine):
    """Drive the map with arbitrary operation sequences; a dict is the
    reference model (sequential semantics — the concurrent semantics are
    covered by the thread/vtime tests)."""

    keys = Bundle("keys")

    def __init__(self):
        super().__init__()
        self.rt = SerialRuntime()
        self.rt._ran = True  # allow API use without run()
        self.rt._clock = 0
        # charge()/checkpoint() work fine outside run() on SerialRuntime.
        self.map: ConcurrentHashMap = ConcurrentHashMap(self.rt,
                                                        n_shards=4)
        self.model: dict = {}

    @rule(target=keys, k=st.integers(0, 40))
    def make_key(self, k):
        return k

    @rule(k=keys, v=st.integers())
    def insert(self, k, v):
        created = self.map.insert(k, v)
        assert created == (k not in self.model)
        if created:
            self.model[k] = v

    @rule(k=keys, v=st.integers())
    def accessor_set(self, k, v):
        with self.map.accessor(k) as acc:
            assert acc.created == (k not in self.model)
            acc.value = v
        self.model[k] = v

    @rule(k=keys)
    def accessor_read_only(self, k):
        with self.map.accessor(k, create=False) as acc:
            if k in self.model:
                assert acc is not None
                assert acc.value == self.model[k]
            else:
                assert acc is None

    @rule(k=keys)
    def remove(self, k):
        existed = self.map.remove(k)
        assert existed == (k in self.model)
        self.model.pop(k, None)

    @rule(k=keys)
    def get(self, k):
        assert self.map.get(k, "missing") == self.model.get(k, "missing")

    @invariant()
    def contents_match(self):
        assert len(self.map) == len(self.model)
        assert dict(self.map.items()) == self.model
        assert self.map.sorted_items() == sorted(self.model.items())


ConcHashMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None)
TestConcHashStateful = ConcHashMachine.TestCase
