"""Tests for the concurrent hash map (Listings 4–6 semantics)."""

import sys
import threading

import pytest

from repro.runtime import (
    ConcurrentHashMap,
    SerialRuntime,
    ThreadRuntime,
    VirtualTimeRuntime,
)
from repro.runtime.cost import CostModel

FREE = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)


class TestBasicOperations:
    def test_insert_if_absent(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            assert m.insert("a", 1)
            assert not m.insert("a", 2)
            assert m.get("a") == 1

        rt.run(body)

    def test_get_default(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            assert m.get("missing") is None
            assert m.get("missing", 7) == 7

        rt.run(body)

    def test_contains_and_len(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            m.insert(1, "x")
            m.insert(2, "y")
            assert 1 in m and 2 in m and 3 not in m
            assert len(m) == 2

        rt.run(body)

    def test_remove(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            m.insert("k", 1)
            assert m.remove("k")
            assert not m.remove("k")
            assert "k" not in m

        rt.run(body)

    def test_sorted_items_deterministic(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            for k in (5, 3, 9, 1):
                m.insert(k, k * 10)
            assert m.sorted_items() == [(1, 10), (3, 30), (5, 50), (9, 90)]
            assert m.sorted_items(key=lambda k: -k)[0] == (9, 90)

        rt.run(body)

    def test_iteration(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            for k in range(10):
                m.insert(k, k)
            assert sorted(m.keys()) == list(range(10))
            assert sorted(m.values()) == list(range(10))

        rt.run(body)


class TestAccessor:
    def test_created_flag(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            with m.accessor("k") as acc:
                assert acc.created
                assert not acc.has_value
                acc.value = 10
            with m.accessor("k") as acc:
                assert not acc.created
                assert acc.value == 10

        rt.run(body)

    def test_read_before_set_raises(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            with m.accessor("k") as acc:
                with pytest.raises(KeyError):
                    _ = acc.value

        rt.run(body)

    def test_accessor_no_create_on_missing(self):
        rt = SerialRuntime()

        def body():
            m = ConcurrentHashMap(rt)
            with m.accessor("nope", create=False) as acc:
                assert acc is None
            assert "nope" not in m

        rt.run(body)

    def test_accessor_mutual_exclusion_vtime(self):
        """Two workers mutating one entry serialize in virtual time."""
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        box = {}

        def bump():
            m = box["m"]
            with m.accessor("ctr") as acc:
                v = acc.value if acc.has_value else 0
                rt.charge(100)  # long critical section
                acc.value = v + 1

        def body():
            box["m"] = ConcurrentHashMap(rt)
            g = rt.task_group()
            g.spawn(bump)
            g.spawn(bump)
            g.wait()
            return box["m"].get("ctr")

        assert rt.run(body) == 2
        assert rt.makespan == 200  # serialized, not 100


class TestInvariantUnderVirtualTime:
    def test_exactly_one_insert_wins(self):
        """Invariant 1: concurrent block creation at one address."""
        rt = VirtualTimeRuntime(8, cost_model=FREE)
        winners = []
        box = {}

        def attempt(i):
            rt.charge(i)  # desynchronize clocks
            if box["m"].insert(0x400, f"block-by-{i}"):
                winners.append(i)

        def body():
            box["m"] = ConcurrentHashMap(rt)
            g = rt.task_group()
            for i in range(8):
                g.spawn(attempt, i)
            g.wait()

        rt.run(body)
        assert len(winners) == 1

    def test_deterministic_winner(self):
        def go():
            rt = VirtualTimeRuntime(4, cost_model=FREE)
            box = {}
            won = []

            def attempt(i):
                rt.charge(10 - i)
                if box["m"].insert("k", i):
                    won.append(i)

            def body():
                box["m"] = ConcurrentHashMap(rt)
                g = rt.task_group()
                for i in range(4):
                    g.spawn(attempt, i)
                g.wait()

            rt.run(body)
            return won

        assert go() == go()


class TestThreadBackendStress:
    """Real threads hammering the map under a tiny switch interval."""

    @pytest.fixture(autouse=True)
    def fast_switching(self):
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        yield
        sys.setswitchinterval(old)

    def test_insert_uniqueness_under_preemption(self):
        rt = ThreadRuntime(8)
        box = {}
        wins = []
        wins_lock = threading.Lock()

        def attempt(i):
            for k in range(50):
                if box["m"].insert(k, i):
                    with wins_lock:
                        wins.append(k)

        def body():
            box["m"] = ConcurrentHashMap(rt)
            g = rt.task_group()
            for i in range(8):
                g.spawn(attempt, i)
            g.wait()

        rt.run(body)
        assert sorted(wins) == list(range(50))  # each key created once

    def test_accessor_counter_no_lost_updates(self):
        rt = ThreadRuntime(8)
        box = {}

        def bump():
            m = box["m"]
            for _ in range(200):
                with m.accessor("ctr") as acc:
                    acc.value = (acc.value if acc.has_value else 0) + 1

        def body():
            box["m"] = ConcurrentHashMap(rt)
            g = rt.task_group()
            for _ in range(8):
                g.spawn(bump)
            g.wait()

        rt.run(body)
        assert box["m"].get("ctr") == 8 * 200

    def test_accessor_creation_publishes_value_atomically(self):
        """Regression (found by ``repro fuzz``): the creating accessor
        must hold the entry lock *at publication*.  Before the fix, the
        entry landed in the shard before the creator acquired its lock,
        so a losing accessor could acquire first and hit ``KeyError``
        reading the not-yet-assigned value — a schedule-dependent crash
        on the threads backend."""
        rt = ThreadRuntime(8)
        box = {}
        errors = []

        def racer(i):
            m = box["m"]
            try:
                for k in range(300):
                    with m.accessor(k) as acc:
                        if acc.created:
                            acc.value = ("v", k)
                        else:
                            # Losers must always see the creator's value.
                            assert acc.value == ("v", k)
            except Exception as e:  # pragma: no cover - the regression
                errors.append(e)

        def body():
            box["m"] = ConcurrentHashMap(rt)
            g = rt.task_group()
            for i in range(8):
                g.spawn(racer, i)
            g.wait()

        rt.run(body)
        assert not errors, errors


class TestThreadRuntime:
    def test_runs_tasks_and_returns(self):
        rt = ThreadRuntime(4)
        seen = []
        lock = threading.Lock()

        def task(i):
            with lock:
                seen.append(i)

        def body():
            g = rt.task_group()
            for i in range(20):
                g.spawn(task, i)
            g.wait()
            return "ok"

        assert rt.run(body) == "ok"
        assert sorted(seen) == list(range(20))
        assert rt.makespan > 0

    def test_exception_propagates(self):
        rt = ThreadRuntime(2)

        def body():
            g = rt.task_group()
            g.spawn(lambda: 1 / 0)
            g.wait()

        with pytest.raises((ZeroDivisionError, Exception)):
            rt.run(body)

    def test_charge_accumulates(self):
        rt = ThreadRuntime(2)

        def body():
            rt.charge(10)
            rt.charge(5)
            return rt.now()

        assert rt.run(body) >= 15
        assert rt.total_busy >= 15

    def test_worker_ids_in_range(self):
        rt = ThreadRuntime(4)
        ids = set()
        lock = threading.Lock()

        def task():
            with lock:
                ids.add(rt.worker_id())

        def body():
            g = rt.task_group()
            for _ in range(100):
                g.spawn(task)
            g.wait()

        rt.run(body)
        assert ids <= set(range(4))


class TestFactory:
    def test_make_runtime(self):
        from repro.runtime import make_runtime

        assert make_runtime("serial", 1).num_workers == 1
        assert make_runtime("vtime", 4).num_workers == 4
        assert make_runtime("threads", 2).num_workers == 2
        with pytest.raises(ValueError):
            make_runtime("bogus", 1)
        with pytest.raises(ValueError):
            make_runtime("serial", 2)
