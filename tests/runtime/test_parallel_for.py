"""Tests for parallel_for semantics (tree spawning, grain, sorting)."""

import pytest

from repro.runtime import SerialRuntime, VirtualTimeRuntime
from repro.runtime.cost import CostModel

FREE = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)


class TestParallelFor:
    @pytest.mark.parametrize("n_items", [0, 1, 2, 7, 64, 257])
    def test_every_item_processed_once(self, n_items):
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        seen = []
        rt.run(lambda: rt.parallel_for(range(n_items), seen.append))
        assert sorted(seen) == list(range(n_items))

    @pytest.mark.parametrize("grain", [1, 2, 8, 100])
    def test_grain_preserves_coverage(self, grain):
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        seen = []
        rt.run(lambda: rt.parallel_for(range(50), seen.append,
                                       grain=grain))
        assert sorted(seen) == list(range(50))

    def test_sort_key_with_reverse(self):
        rt = SerialRuntime()
        order = []
        rt.run(lambda: rt.parallel_for(
            [3, 1, 4, 1, 5], order.append, sort_key=lambda x: x,
            reverse=True))
        # Serial runtime: tree spawning still visits in a deterministic
        # order; every element must appear.
        assert sorted(order) == [1, 1, 3, 4, 5]

    def test_tree_spawn_distributes_work(self):
        """The splitting tree actually uses multiple workers: with N
        equal items on N workers the makespan is ~1 item, not N."""
        cm = CostModel(spawn=1, task_pop=1, lock_handoff=0, map_op=0)
        rt = VirtualTimeRuntime(8, cost_model=cm)
        rt.run(lambda: rt.parallel_for(range(8),
                                       lambda i: rt.charge(1000)))
        # Serial would be 8000+; tree-parallel is ~1000 + log overhead.
        assert rt.makespan < 2500

    def test_spawn_cost_is_logarithmic_on_critical_path(self):
        cm = CostModel(spawn=100, task_pop=0, lock_handoff=0, map_op=0)
        rt = VirtualTimeRuntime(64, cost_model=cm)
        rt.run(lambda: rt.parallel_for(range(256), lambda i: None))
        # A serial spawn loop would cost 256*100 = 25,600 on the driver;
        # the tree costs O(log2(256)) * 100 per path.
        assert rt.makespan < 25_600 / 4

    def test_nested_parallel_for(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        seen = []

        def outer(i):
            rt.parallel_for(range(3), lambda j: seen.append((i, j)))

        rt.run(lambda: rt.parallel_for(range(3), outer))
        assert sorted(seen) == [(i, j) for i in range(3)
                                for j in range(3)]

    def test_exceptions_propagate(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)

        def bad(i):
            if i == 3:
                raise ValueError("item 3")

        with pytest.raises(Exception):
            rt.run(lambda: rt.parallel_for(range(5), bad))


class TestTraceInvariants:
    def test_worker_intervals_do_not_overlap(self):
        """A worker runs one task at a time: its trace intervals are
        disjoint and inside [0, makespan]."""
        rt = VirtualTimeRuntime(4, enable_trace=True)

        def body():
            g = rt.task_group()
            for i in range(40):
                g.spawn(rt.charge, 10 * (i % 5) + 1)
            g.wait()

        rt.run(body)
        by_worker: dict[int, list] = {}
        for iv in rt.trace.intervals:
            assert 0 <= iv.start <= iv.end <= rt.makespan
            by_worker.setdefault(iv.worker, []).append(iv)
        for ivs in by_worker.values():
            ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end <= b.start, (a, b)

    def test_phase_spans_ordered_and_bounded(self):
        rt = VirtualTimeRuntime(2, enable_trace=True)

        def body():
            with rt.phase("a"):
                rt.charge(10)
            with rt.phase("b"):
                rt.charge(20)

        rt.run(body)
        phases = rt.trace.phases
        assert [p.name for p in phases] == ["a", "b"]
        assert phases[0].end <= phases[1].start
        assert phases[1].end <= rt.makespan
