"""Tests for the single-worker serial runtime."""

import pytest

from repro.errors import RuntimeConfigError
from repro.runtime import SerialRuntime
from repro.runtime.cost import CostModel


def test_charge_advances_clock():
    rt = SerialRuntime()

    def body():
        rt.charge(100)
        assert rt.now() == 100
        rt.charge(50)

    rt.run(body)
    assert rt.makespan == 150


def test_worker_identity():
    rt = SerialRuntime()
    rt.run(lambda: None)
    assert rt.num_workers == 1
    assert rt.worker_id() == 0


def test_task_group_runs_all_tasks():
    rt = SerialRuntime()
    seen = []

    def body():
        g = rt.task_group()
        for i in range(5):
            g.spawn(seen.append, i)
        g.wait()

    rt.run(body)
    assert sorted(seen) == [0, 1, 2, 3, 4]


def test_nested_spawn_during_task():
    rt = SerialRuntime()
    seen = []

    def body():
        g = rt.task_group()

        def outer(i):
            seen.append(("outer", i))
            if i < 2:
                g.spawn(outer, i + 1)

        g.spawn(outer, 0)
        g.wait()

    rt.run(body)
    assert ("outer", 2) in seen


def test_spawn_and_pop_costs_accrue():
    cm = CostModel(spawn=7, task_pop=3)
    rt = SerialRuntime(cost_model=cm)

    def body():
        g = rt.task_group()
        g.spawn(lambda: rt.charge(10))
        g.wait()

    rt.run(body)
    assert rt.makespan == 7 + 3 + 10


def test_detached_spawns_drained_by_run():
    rt = SerialRuntime()
    seen = []

    def body():
        g = rt.task_group()
        g.spawn(seen.append, 1)
        # No wait: run() must still drain it.

    rt.run(body)
    assert seen == [1]


def test_parallel_for_sorted_descending():
    rt = SerialRuntime()
    order = []
    rt.run(lambda: rt.parallel_for([3, 1, 2], order.append,
                                   sort_key=lambda x: x, reverse=True))
    assert order == [3, 2, 1]


def test_lock_is_nonreentrant():
    rt = SerialRuntime()

    def body():
        lock = rt.make_lock()
        with lock:
            with pytest.raises(RuntimeConfigError):
                lock.acquire()

    rt.run(body)


def test_lock_release_unheld_raises():
    rt = SerialRuntime()

    def body():
        with pytest.raises(RuntimeConfigError):
            rt.make_lock().release()

    rt.run(body)


def test_single_use():
    rt = SerialRuntime()
    rt.run(lambda: None)
    with pytest.raises(RuntimeConfigError):
        rt.run(lambda: None)


def test_run_returns_result():
    rt = SerialRuntime()
    assert rt.run(lambda: 42) == 42
