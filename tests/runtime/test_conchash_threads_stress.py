"""ConcurrentHashMap accessor semantics under real preemption.

The paper's invariants depend on the map's two promises: ``insert`` is
an atomic insert-if-absent, and an accessor is an exclusive entry-level
lock for the whole compound operation.  This stress drives many writer
tasks through interleaved insert / find / accessor-increment / erase
traffic on the thread backend (with the interpreter switch interval
shrunk so preemption lands *inside* compound operations), then runs the
byte-identical workload on the deterministic virtual-time backend and
asserts the final map contents match exactly.

The workload is schedule-independent by construction: wave 1 tasks only
insert and increment (commutative), a task-group wait acts as the
barrier, and wave 2 erases a key subset fixed in advance — so any
divergence is a lost update, a torn entry, or a broken accessor, not an
ordering artifact.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.runtime import ConcurrentHashMap, ThreadRuntime, VirtualTimeRuntime

N_KEYS = 37          # intentionally ugly: keys collide across shards
N_TASKS = 24
OPS_PER_TASK = 60


@pytest.fixture(autouse=True)
def fast_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(old)


def _task_ops(task_id: int, seed: int) -> list[tuple[str, int]]:
    """The (op, key) sequence for one task — pure function of ids."""
    rng = random.Random((seed << 8) | task_id)
    ops = []
    for _ in range(OPS_PER_TASK):
        op = rng.choice(("insert", "find", "bump", "bump", "bump"))
        ops.append((op, rng.randrange(N_KEYS)))
    return ops


def _erase_set(seed: int) -> list[int]:
    """Keys wave 2 erases — fixed before any task runs."""
    return sorted(random.Random(seed ^ 0xE0A5E).sample(range(N_KEYS), 9))


def _run_workload(rt, seed: int, n_shards: int) -> list[tuple[int, int]]:
    """Two waves of map traffic; returns the final sorted contents."""
    result = []

    def body():
        m = ConcurrentHashMap(rt, n_shards=n_shards, name="stress")

        def writer(task_id: int):
            for op, key in _task_ops(task_id, seed):
                if op == "insert":
                    m.insert(key, 0)
                elif op == "find":
                    with m.accessor(key, create=False) as acc:
                        if acc is not None:
                            assert acc.value >= 0
                else:  # bump: the compound read-modify-write
                    with m.accessor(key) as acc:
                        acc.value = (0 if not acc.has_value
                                     else acc.value) + 1

        g = rt.task_group()
        for t in range(N_TASKS):
            g.spawn(writer, t)
        g.wait()  # barrier: wave 2 must see every wave-1 write

        def eraser(key: int):
            m.remove(key)

        g2 = rt.task_group()
        for key in _erase_set(seed):
            g2.spawn(eraser, key)
        g2.wait()

        result.extend(m.sorted_items())

    rt.run(body)
    return result


def _expected(seed: int) -> list[tuple[int, int]]:
    """Single-threaded oracle: bump-counts per key, minus the erase set."""
    counts: dict[int, int] = {}
    for t in range(N_TASKS):
        for op, key in _task_ops(t, seed):
            if op == "insert":
                counts.setdefault(key, 0)
            elif op == "bump":
                counts[key] = counts.get(key, 0) + 1
    for key in _erase_set(seed):
        counts.pop(key, None)
    return sorted(counts.items())


@pytest.mark.parametrize("seed", [1, 8, 17])
def test_threads_match_vtime_twin(seed):
    want = _run_workload(VirtualTimeRuntime(8), seed, n_shards=8)
    assert want == _expected(seed)  # the vtime twin agrees with the oracle
    got = _run_workload(ThreadRuntime(8), seed, n_shards=8)
    assert got == want


def test_threads_repeated_runs_agree():
    """Re-running the same racy workload can't produce different maps."""
    runs = {tuple(_run_workload(ThreadRuntime(12), 5, n_shards=4))
            for _ in range(4)}
    assert len(runs) == 1


def test_single_shard_maximum_contention():
    """n_shards=1 funnels every op through one shard lock — the worst
    case for both the shard critical section and entry-lock handoff."""
    want = _expected(3)
    got = _run_workload(ThreadRuntime(8), 3, n_shards=1)
    assert got == want
