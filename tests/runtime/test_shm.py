"""Shared-memory transport lifecycle: no segment outlives its parse.

The zero-copy transport (``repro.runtime.shm``) trades per-task pickled
image copies for one named POSIX segment per run, which makes *cleanup*
the correctness property: a leaked ``/dev/shm/repro-img-*`` name is a
resource leak that survives the process.  This matrix pins the
guarantee ISSUE 6 demands — the coordinator unlinks the segment on
normal exit, on every rung of the degradation ladder, under a killed
worker and across a pool respawn — plus the unit behavior of
:class:`ImageSegment` itself (payload slicing over the page-rounded
mapping, idempotent unlink, the atexit sweep and the worker-side
graveyard for still-aliased mappings).

Leak checks look at both the coordinator registry
(:func:`live_segments`) and the kernel's view (``/dev/shm`` globbing,
where the mount exists) so a registry bug can't hide a real leak.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import parse_binary
from repro.runtime import ProcsRuntime, SerialRuntime
from repro.runtime.faults import FaultPlan
from repro.runtime.shm import (
    ImageSegment,
    SEGMENT_PREFIX,
    attach_view,
    live_segments,
    release_view,
    sweep,
    sweep_orphans,
)
from repro.synth import tiny_binary

_SRC = Path(__file__).resolve().parents[2] / "src"


def _pool_works() -> bool:
    try:
        with multiprocessing.get_context().Pool(1) as p:
            return p.apply(int, ("1",)) == 1
    except Exception:
        return False


needs_pool = pytest.mark.skipif(not _pool_works(),
                                reason="multiprocessing pool unavailable")


def _kernel_segments() -> list[str]:
    """``repro-img-*`` names the kernel still knows about (best effort:
    only meaningful where shared memory is backed by a /dev/shm mount).
    """
    return sorted(os.path.basename(p)
                  for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(scope="module")
def workload():
    sb = tiny_binary(seed=5, n_functions=24)
    want = parse_binary(sb.binary, SerialRuntime()).signature()
    return sb, want


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test starts and ends with zero live segments."""
    sweep()
    before = _kernel_segments()
    yield
    assert live_segments() == []
    assert _kernel_segments() == before


class TestImageSegment:
    def test_create_attach_roundtrip(self):
        # 5000 bytes is deliberately not page-aligned: the mapping is
        # page-rounded, so the attach must slice to the payload length.
        payload = bytes(range(256)) * 20 + b"tail"
        seg = ImageSegment.create(payload)
        try:
            assert seg.name.startswith(SEGMENT_PREFIX)
            assert seg.size == len(payload)
            assert seg.name in live_segments()
            view, handle = attach_view(seg.name, seg.size)
            assert len(view) == len(payload)
            assert bytes(view) == payload
            assert view.readonly
            release_view(handle)
        finally:
            seg.unlink()
        assert seg.name not in live_segments()

    def test_unlink_is_idempotent(self):
        seg = ImageSegment.create(b"x")
        seg.unlink()
        seg.unlink()  # second call is a no-op, not an error
        assert live_segments() == []

    def test_attach_after_unlink_fails_cleanly(self):
        seg = ImageSegment.create(b"payload")
        seg.unlink()
        with pytest.raises(FileNotFoundError):
            attach_view(seg.name, seg.size)

    def test_sweep_reclaims_leftovers(self):
        a = ImageSegment.create(b"a")
        b = ImageSegment.create(b"b")
        assert live_segments() == sorted([a.name, b.name])
        sweep()
        assert live_segments() == []

    def test_release_view_parks_aliased_mapping(self):
        # A mapping whose view still has exported buffers cannot close;
        # release_view must park it in the graveyard instead of raising.
        from repro.runtime import shm as shm_mod

        seg = ImageSegment.create(b"aliased-payload")
        try:
            view, handle = attach_view(seg.name, seg.size)
            alias = view[2:9]  # keeps the mapping's buffer exported
            depth = len(shm_mod._GRAVEYARD)
            release_view(handle)
            assert len(shm_mod._GRAVEYARD) == depth + 1
            assert bytes(alias) == b"iased-p"  # still readable
            alias.release()
        finally:
            seg.unlink()


@needs_pool
class TestParseLifecycle:
    """The coordinator unlinks its segment on every exit path."""

    def _run(self, workload, plan=None, **kw):
        sb, want = workload
        fp = FaultPlan.from_spec(plan) if plan else None
        rt = ProcsRuntime(2, fault_plan=fp, shard_deadline=30.0, **kw)
        assert parse_binary(sb.binary, rt).signature() == want
        return rt

    def test_normal_exit_unlinks(self, workload):
        rt = self._run(workload)
        assert rt.metrics.counter("procs.shm.segments") >= 1
        assert rt.metrics.counter("procs.shm.bytes") > 0

    def test_shard_retry_rung_unlinks(self, workload):
        rt = self._run(workload, plan="exc@0x1")
        assert rt.degradation["level"] == "none"

    def test_killed_worker_unlinks(self, workload):
        rt = self._run(workload, plan="kill@0x1")
        # A killed worker surfaces as a pool-level fault on the ladder.
        assert any(e["kind"] in ("pool_error", "pool_broken",
                                 "shard_timeout")
                   for e in rt.fault_events)

    def test_pool_respawn_unlinks(self, workload):
        # health-check failure forces a pool respawn mid-ladder; each
        # dispatch attempt publishes and unlinks its own segment.
        rt = self._run(workload, plan="health,exc@0x1")
        assert rt.metrics.counter("procs.shm.segments") >= 1

    def test_pool_broken_inline_rung_unlinks(self, workload):
        rt = self._run(workload, plan="pool")
        assert rt.degradation["level"] in ("shard_inline", "inline")

    def test_serial_rung_unlinks(self, workload):
        rt = self._run(workload, plan="excx99")
        assert rt.degradation["level"] == "serial"

    def test_shm_fault_publishes_nothing(self, workload):
        rt = self._run(workload, plan="shm")
        assert rt.metrics.counter("procs.shm.segments") == 0
        assert rt.metrics.counter("procs.shm.fallback") == 1


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm mount")
class TestOrphanSweep:
    """Dead-owner segments are reaped; live owners are never touched.

    A coordinator that dies via SIGKILL or ``os._exit`` (the
    ``coordinator-kill`` fault site) skips atexit entirely, so its
    segments outlive it — the scenario the corpus driver's startup
    sweep exists for.
    """

    def _leak_orphan(self) -> str:
        """A child process publishes a segment and dies hard; returns
        the leaked segment's name (which embeds the now-dead pid).

        The child unregisters the segment from its resource tracker
        first: a surviving tracker would unlink it at child death,
        whereas the scenario being modeled — kill -9 of the whole
        process group, an OOM-killed container — takes the tracker
        down with the coordinator and leaks the name for real.
        """
        code = ("import os\n"
                "from multiprocessing import resource_tracker\n"
                "from repro.runtime.shm import ImageSegment\n"
                "seg = ImageSegment.create(b'orphaned payload')\n"
                "resource_tracker.unregister(seg._shm._name,"
                " 'shared_memory')\n"
                "print(seg.name, flush=True)\n"
                "os._exit(0)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_SRC) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True,
                             timeout=60)
        return out.stdout.strip()

    def test_dead_owner_segment_is_reaped(self):
        name = self._leak_orphan()
        assert name in _kernel_segments()  # it really leaked
        assert name in sweep_orphans()
        assert name not in _kernel_segments()

    def test_live_owner_segment_survives(self):
        orphan = self._leak_orphan()
        mine = ImageSegment.create(b"still owned")
        try:
            reaped = sweep_orphans()
            assert orphan in reaped
            assert mine.name not in reaped
            assert mine.name in _kernel_segments()
        finally:
            mine.unlink()

    def test_unparseable_names_are_left_alone(self):
        # prefix matches but no pid is embedded: not ours to judge
        path = Path("/dev/shm") / f"{SEGMENT_PREFIX}bogus-name"
        path.write_bytes(b"")
        try:
            assert path.name not in sweep_orphans()
            assert path.exists()
        finally:
            path.unlink()


def test_in_process_mode_publishes_nothing(workload):
    sb, want = workload
    rt = ProcsRuntime(2, in_process=True)
    assert parse_binary(sb.binary, rt).signature() == want
    assert rt.metrics.counter("procs.shm.segments") == 0
