"""Tests for the deterministic virtual-time runtime.

These tests pin down the semantics everything else depends on: parallel
makespans, determinism, lock contention in virtual time, fork-join
synchronization, idle accounting, deadlock detection and tracing.
"""

import pytest

from repro.errors import RuntimeConfigError, SimDeadlockError
from repro.runtime import SerialRuntime, VirtualTimeRuntime
from repro.runtime.cost import CostModel

# A cost model with zero overheads isolates the scheduling semantics.
FREE = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)


def run_tasks(rt, costs):
    """Spawn one charge(c) task per cost and wait."""

    def body():
        g = rt.task_group()
        for c in costs:
            g.spawn(rt.charge, c)
        g.wait()

    rt.run(body)
    return rt.makespan


class TestMakespan:
    def test_perfectly_parallel(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        assert run_tasks(rt, [100] * 4) == 100

    def test_serialized_on_one_worker(self):
        rt = VirtualTimeRuntime(1, cost_model=FREE)
        assert run_tasks(rt, [100] * 4) == 400

    def test_imbalance_dominates(self):
        """One long task bounds the makespan regardless of workers."""
        rt = VirtualTimeRuntime(8, cost_model=FREE)
        assert run_tasks(rt, [1000] + [10] * 7) == 1000

    def test_more_tasks_than_workers(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        # 6 tasks of 10 on 2 workers -> 30 each.
        assert run_tasks(rt, [10] * 6) == 30

    def test_spawn_cost_serializes(self):
        """Task spawning is serial work on the spawner (Amdahl term)."""
        cm = CostModel(spawn=50, task_pop=0, lock_handoff=0, map_op=0)
        rt = VirtualTimeRuntime(4, cost_model=cm)
        makespan = run_tasks(rt, [10] * 4)
        # Last task is spawned at 200, runs 10.
        assert makespan == 210

    def test_driver_serial_work_adds(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE)

        def body():
            rt.charge(500)  # serial phase
            g = rt.task_group()
            for _ in range(4):
                g.spawn(rt.charge, 100)
            g.wait()

        rt.run(body)
        assert rt.makespan == 600


class TestDeterminism:
    def _workload(self, rt):
        results = []

        def task(i):
            rt.charge(10 * (i % 7) + 1)
            results.append((rt.worker_id(), i, rt.now()))

        def body():
            g = rt.task_group()
            for i in range(50):
                g.spawn(task, i)
            g.wait()

        rt.run(body)
        return rt.makespan, results

    def test_identical_runs(self):
        a = self._workload(VirtualTimeRuntime(8))
        b = self._workload(VirtualTimeRuntime(8))
        assert a == b

    def test_worker_count_changes_makespan_not_results(self):
        m4, r4 = self._workload(VirtualTimeRuntime(4))
        m8, r8 = self._workload(VirtualTimeRuntime(8))
        assert m8 <= m4
        assert sorted(i for _, i, _ in r4) == sorted(i for _, i, _ in r8)

    def test_one_worker_matches_serial_runtime(self):
        """VT with one worker and SerialRuntime account identically."""

        def program(rt):
            rt.charge(25)
            g = rt.task_group()
            for i in range(10):
                g.spawn(rt.charge, i * 3)
            g.wait()
            rt.charge(7)

        vt = VirtualTimeRuntime(1)
        vt.run(program, vt)
        sr = SerialRuntime()
        sr.run(program, sr)
        assert vt.makespan == sr.makespan


class TestLocks:
    def test_uncontended_lock_is_free(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)

        def body():
            lock = rt.make_lock()
            with lock:
                rt.charge(10)

        rt.run(body)
        assert rt.makespan == 10

    def test_contention_serializes_critical_sections(self):
        cm = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)
        rt = VirtualTimeRuntime(4, cost_model=cm)
        lock_box = {}

        def task():
            with lock_box["lock"]:
                rt.charge(100)

        def body():
            lock_box["lock"] = rt.make_lock()
            g = rt.task_group()
            for _ in range(4):
                g.spawn(task)
            g.wait()

        rt.run(body)
        assert rt.makespan == 400  # fully serialized by the lock

    def test_lock_handoff_cost(self):
        cm = CostModel(spawn=0, task_pop=0, lock_handoff=9, map_op=0)
        rt = VirtualTimeRuntime(2, cost_model=cm)
        lock_box = {}

        def task():
            with lock_box["lock"]:
                rt.charge(100)

        def body():
            lock_box["lock"] = rt.make_lock()
            g = rt.task_group()
            g.spawn(task)
            g.spawn(task)
            g.wait()

        rt.run(body)
        assert rt.makespan == 209  # 100 + handoff + 100

    def test_recursive_acquire_rejected(self):
        rt = VirtualTimeRuntime(1, cost_model=FREE)

        def body():
            lock = rt.make_lock()
            lock.acquire()
            with pytest.raises(RuntimeConfigError):
                lock.acquire()
            lock.release()

        rt.run(body)

    def test_release_by_non_owner_rejected(self):
        rt = VirtualTimeRuntime(1, cost_model=FREE)

        def body():
            with pytest.raises(RuntimeConfigError):
                rt.make_lock().release()

        rt.run(body)

    def test_independent_locks_do_not_interact(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        locks = {}

        def task(name):
            with locks[name]:
                rt.charge(100)

        def body():
            locks["a"] = rt.make_lock()
            locks["b"] = rt.make_lock()
            g = rt.task_group()
            g.spawn(task, "a")
            g.spawn(task, "b")
            g.wait()

        rt.run(body)
        assert rt.makespan == 100


class TestGroups:
    def test_wait_jumps_clock_to_completion(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        observed = {}

        def body():
            g = rt.task_group()
            g.spawn(rt.charge, 500)
            g.wait()
            observed["after"] = rt.now()

        rt.run(body)
        assert observed["after"] == 500

    def test_waiter_helps_run_tasks(self):
        """A group wait on a single worker executes the tasks itself."""
        rt = VirtualTimeRuntime(1, cost_model=FREE)
        seen = []

        def body():
            g = rt.task_group()
            for i in range(3):
                g.spawn(seen.append, i)
            g.wait()

        rt.run(body)
        assert seen == [0, 1, 2]

    def test_nested_groups(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        seen = []

        def outer(i):
            g = rt.task_group()
            for j in range(3):
                g.spawn(seen.append, (i, j))
            g.wait()

        def body():
            g = rt.task_group()
            for i in range(3):
                g.spawn(outer, i)
            g.wait()

        rt.run(body)
        assert len(seen) == 9

    def test_spawn_on_discovery(self):
        """Tasks spawning tasks into their own group (Section 6.3)."""
        rt = VirtualTimeRuntime(4, cost_model=FREE)
        seen = []
        box = {}

        def visit(depth):
            seen.append(depth)
            rt.charge(5)
            if depth < 4:
                box["g"].spawn(visit, depth + 1)
                box["g"].spawn(visit, depth + 1)

        def body():
            box["g"] = rt.task_group()
            box["g"].spawn(visit, 0)
            box["g"].wait()

        rt.run(body)
        assert len(seen) == 2 ** 5 - 1


class TestErrors:
    def test_task_exception_propagates(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)

        def bad():
            raise ValueError("boom")

        def body():
            g = rt.task_group()
            g.spawn(bad)
            g.wait()

        with pytest.raises((ValueError, RuntimeConfigError)):
            rt.run(body)

    def test_root_exception_propagates(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        with pytest.raises(ZeroDivisionError):
            rt.run(lambda: 1 / 0)

    def test_deadlock_detected(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)

        def body():
            lock = rt.make_lock()
            lock.acquire()

            def task():
                lock.acquire()  # never released by owner

            g = rt.task_group()
            g.spawn(task)
            g.wait()

        with pytest.raises((SimDeadlockError, RuntimeConfigError)):
            rt.run(body)

    def test_single_use(self):
        rt = VirtualTimeRuntime(1, cost_model=FREE)
        rt.run(lambda: None)
        with pytest.raises(RuntimeConfigError):
            rt.run(lambda: None)

    def test_api_outside_run_rejected(self):
        rt = VirtualTimeRuntime(1)
        with pytest.raises(RuntimeConfigError):
            rt.charge(1)


class TestTraceAndStats:
    def test_phase_spans_recorded(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE, enable_trace=True)

        def body():
            with rt.phase("alpha"):
                rt.charge(100)
            with rt.phase("beta"):
                g = rt.task_group()
                g.spawn(rt.charge, 50)
                g.wait()

        rt.run(body)
        alpha = rt.trace.phase_span("alpha")
        beta = rt.trace.phase_span("beta")
        assert alpha.duration == 100
        assert beta.start == 100
        assert beta.duration == 50

    def test_task_intervals_recorded(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE, enable_trace=True)

        def work():
            rt.charge(30)

        def body():
            g = rt.task_group()
            g.spawn(work)
            g.wait()

        rt.run(body)
        ivs = [iv for iv in rt.trace.intervals if iv.tag == "work"]
        assert len(ivs) == 1
        assert ivs[0].end - ivs[0].start == 30

    def test_utilization(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        run_tasks(rt, [100, 100])
        assert rt.utilization() == pytest.approx(1.0)

        rt2 = VirtualTimeRuntime(2, cost_model=FREE)
        run_tasks(rt2, [200])  # one worker idle throughout
        assert rt2.utilization() == pytest.approx(0.5)

    def test_makespan_before_run_rejected(self):
        rt = VirtualTimeRuntime(1)
        with pytest.raises(RuntimeConfigError):
            _ = rt.makespan

    def test_result_returned(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        assert rt.run(lambda: "done") == "done"


class TestScaling:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8, 16, 32, 64])
    def test_speedup_curve_embarrassingly_parallel(self, workers):
        rt = VirtualTimeRuntime(workers, cost_model=FREE)
        makespan = run_tasks(rt, [64] * 64)
        assert makespan == 64 * 64 // workers

    def test_monotone_speedup(self):
        spans = []
        for n in (1, 2, 4, 8):
            rt = VirtualTimeRuntime(n)
            spans.append(run_tasks(rt, [97] * 100))
        assert spans == sorted(spans, reverse=True)
