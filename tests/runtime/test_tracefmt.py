"""Tests for the ASCII trace renderer."""

from repro.runtime import VirtualTimeRuntime
from repro.runtime.api import PhaseSpan, Trace, TraceInterval
from repro.runtime.cost import CostModel
from repro.runtime.tracefmt import render_trace

FREE = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)


class TestRenderTrace:
    def test_empty_trace(self):
        assert render_trace(Trace(4)) == "(empty trace)"

    def test_hand_built_trace(self):
        tr = Trace(2)
        tr.intervals.append(TraceInterval(0, 0, 100, "a"))
        tr.intervals.append(TraceInterval(1, 50, 100, "b"))
        tr.phases.append(PhaseSpan("setup", 0, 50))
        tr.phases.append(PhaseSpan("work", 50, 100))
        out = render_trace(tr, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("phases")
        assert any(line.startswith("w00") for line in lines)
        assert "1=setup" in lines[-1] and "2=work" in lines[-1]

    def test_busy_density_visible(self):
        tr = Trace(1)
        tr.intervals.append(TraceInterval(0, 0, 50, "x"))
        tr.phases.append(PhaseSpan("all", 0, 100))  # idle second half
        out = render_trace(tr, width=10, worker_rows=1)
        row = next(l for l in out.splitlines() if l.startswith("w00"))
        cells = row.split(" ", 1)[1]
        assert cells[0] != " "
        assert cells[-1] == " "

    def test_real_runtime_trace(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE, enable_trace=True)

        def body():
            with rt.phase("p1"):
                g = rt.task_group()
                for _ in range(8):
                    g.spawn(rt.charge, 100)
                g.wait()

        rt.run(body)
        out = render_trace(rt.trace, width=40)
        assert "1=p1" in out
        assert len(out.splitlines()) >= 3

    def test_many_workers_bucketed_into_rows(self):
        tr = Trace(64)
        for w in range(64):
            tr.intervals.append(TraceInterval(w, 0, 10, "t"))
        out = render_trace(tr, width=10, worker_rows=8)
        worker_rows = [l for l in out.splitlines() if l.startswith("w")]
        assert len(worker_rows) == 8
        assert worker_rows[0].startswith("w00-07")
        assert worker_rows[-1].startswith("w56-63")
