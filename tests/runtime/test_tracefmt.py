"""Tests for the ASCII trace renderer and the run-report JSON export."""

import json

from repro.runtime import SerialRuntime, VirtualTimeRuntime
from repro.runtime.api import PhaseSpan, Trace, TraceInterval
from repro.runtime.cost import CostModel
from repro.runtime.tracefmt import (
    BENCH_PROCS_SCHEMA,
    RACES_SCHEMA,
    render_metrics,
    render_phase_table,
    render_trace,
    run_report,
    trace_from_json,
    trace_to_json,
    validate_bench_procs,
    validate_races,
    validate_report,
)

FREE = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)


class TestRenderTrace:
    def test_empty_trace(self):
        assert render_trace(Trace(4)) == "(empty trace)"

    def test_hand_built_trace(self):
        tr = Trace(2)
        tr.intervals.append(TraceInterval(0, 0, 100, "a"))
        tr.intervals.append(TraceInterval(1, 50, 100, "b"))
        tr.phases.append(PhaseSpan("setup", 0, 50))
        tr.phases.append(PhaseSpan("work", 50, 100))
        out = render_trace(tr, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("phases")
        assert any(line.startswith("w00") for line in lines)
        assert "1=setup" in lines[-1] and "2=work" in lines[-1]

    def test_busy_density_visible(self):
        tr = Trace(1)
        tr.intervals.append(TraceInterval(0, 0, 50, "x"))
        tr.phases.append(PhaseSpan("all", 0, 100))  # idle second half
        out = render_trace(tr, width=10, worker_rows=1)
        row = next(l for l in out.splitlines() if l.startswith("w00"))
        cells = row.split(" ", 1)[1]
        assert cells[0] != " "
        assert cells[-1] == " "

    def test_real_runtime_trace(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE, enable_trace=True)

        def body():
            with rt.phase("p1"):
                g = rt.task_group()
                for _ in range(8):
                    g.spawn(rt.charge, 100)
                g.wait()

        rt.run(body)
        out = render_trace(rt.trace, width=40)
        assert "1=p1" in out
        assert len(out.splitlines()) >= 3

    def test_many_workers_bucketed_into_rows(self):
        tr = Trace(64)
        for w in range(64):
            tr.intervals.append(TraceInterval(w, 0, 10, "t"))
        out = render_trace(tr, width=10, worker_rows=8)
        worker_rows = [l for l in out.splitlines() if l.startswith("w")]
        assert len(worker_rows) == 8
        assert worker_rows[0].startswith("w00-07")
        assert worker_rows[-1].startswith("w56-63")

    def test_phases_without_intervals(self):
        # A traced run that spawned no tasks still renders its phase rail.
        tr = Trace(4)
        tr.phases.append(PhaseSpan("only", 0, 80))
        out = render_trace(tr, width=16)
        lines = out.splitlines()
        assert lines[0].startswith("phases")
        assert "1=only" in lines[-1]
        # All worker cells are idle glyphs.
        for row in lines[1:-1]:
            assert set(row.split(" ", 1)[1]) == {" "}

    def test_more_worker_rows_than_workers(self):
        # worker_rows caps at n_workers rather than emitting empty rows.
        tr = Trace(2)
        tr.intervals.append(TraceInterval(0, 0, 10, "t"))
        tr.intervals.append(TraceInterval(1, 0, 10, "t"))
        out = render_trace(tr, width=10, worker_rows=8)
        worker_rows = [l for l in out.splitlines() if l.startswith("w")]
        assert len(worker_rows) == 2
        assert worker_rows[0].startswith("w00-00")
        assert worker_rows[1].startswith("w01-01")

    def test_width_larger_than_span(self):
        # Span of 5 cycles, 100 requested columns: buckets clamp to 1
        # cycle and the rendered row must not exceed the span.
        tr = Trace(1)
        tr.intervals.append(TraceInterval(0, 0, 5, "t"))
        tr.phases.append(PhaseSpan("p", 0, 5))
        out = render_trace(tr, width=100, worker_rows=1)
        row = next(l for l in out.splitlines() if l.startswith("w00"))
        cells = row.split(" ", 1)[1]
        assert len(cells) == 5
        assert set(cells) == {"@"}  # fully busy throughout

    def test_width_smaller_than_span(self):
        # 1000-cycle span squeezed into 4 columns still covers the run.
        tr = Trace(1)
        tr.intervals.append(TraceInterval(0, 0, 1000, "t"))
        out = render_trace(tr, width=4, worker_rows=1)
        row = next(l for l in out.splitlines() if l.startswith("w00"))
        cells = row.split(" ", 1)[1]
        assert len(cells) == 4
        assert set(cells) == {"@"}

    def test_phase_table_and_empty_phase_table(self):
        tr = Trace(1)
        assert render_phase_table(tr) == "(no phases)"
        tr.intervals.append(TraceInterval(0, 0, 10, "t"))
        tr.phases.append(PhaseSpan("setup", 0, 10))
        table = render_phase_table(tr)
        assert "setup" in table and "util" in table


class TestJsonExport:
    def _traced_run(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE, enable_trace=True)

        def body():
            with rt.phase("p1"):
                g = rt.task_group()
                for _ in range(8):
                    g.spawn(rt.charge, 100)
                g.wait()

        rt.run(body)
        return rt

    def test_trace_round_trip(self):
        rt = self._traced_run()
        blob = trace_to_json(rt.trace)
        json.dumps(blob)  # serializable as-is
        rebuilt = trace_from_json(blob)
        assert rebuilt.n_workers == rt.trace.n_workers
        assert trace_to_json(rebuilt) == blob
        assert [p.name for p in rebuilt.phases] == ["p1"]

    def test_run_report_validates(self):
        rt = self._traced_run()
        report = run_report(rt, workload="unit")
        assert validate_report(report) == []
        assert report["schema"] == "repro.run-report/1"
        assert report["backend"] == "vtime"
        assert report["time_unit"] == "cycles"
        assert report["makespan"] == rt.makespan
        assert report["metrics"]["counters"]["rt.tasks_spawned"] == 8
        # Full JSON round trip preserves validity.
        again = json.loads(json.dumps(report))
        assert validate_report(again) == []

    def test_run_report_without_trace_or_metrics(self):
        rt = SerialRuntime(enable_metrics=False)
        rt.run(lambda: rt.charge(7))
        report = run_report(rt)
        assert validate_report(report) == []
        assert report["backend"] == "serial"
        assert report["metrics"] is None
        assert report["trace"] is None
        assert report["workload"] is None

    def test_validator_flags_corruption(self):
        rt = self._traced_run()
        report = run_report(rt)

        bad = json.loads(json.dumps(report))
        bad["schema"] = "repro.run-report/999"
        assert validate_report(bad)

        bad = json.loads(json.dumps(report))
        bad["trace"]["intervals"][0]["worker"] = 99
        assert validate_report(bad)

        bad = json.loads(json.dumps(report))
        first = next(iter(bad["metrics"]["histograms"]))
        bad["metrics"]["histograms"][first]["count"] = -1
        assert validate_report(bad)

        assert validate_report("not a dict")
        assert validate_report({})

    def test_render_metrics_table(self):
        rt = self._traced_run()
        out = render_metrics(rt.metrics.snapshot())
        assert "rt.tasks_spawned" in out
        assert "histogram (cycles)" in out
        assert render_metrics({"counters": {}, "histograms": {}}) == \
            "(no metrics)"


class TestBenchProcsValidator:
    _REV4_PHASE_COLS = ("install_wall_s", "frontier_wall_s",
                        "wave_wall_s", "finalize_wall_s")

    @staticmethod
    def _sidecar(schema=BENCH_PROCS_SCHEMA):
        return {
            "schema": schema,
            "scale": 0.15,
            "workers": 4,
            "cores": 4,
            "rows": [{
                "binary": "LLNL1-like",
                "workers": 4,
                "serial_wall_s": 0.05,
                "procs_wall_s": 0.2,
                "speedup": 0.25,
                "fanout_wall_s": 0.15,
                "shards": 4,
                "pool_fallback": 0,
                "merged_cache_insns": 1000,
                "duplicate_insns": 12,
                "shm_bytes": 65536,
                "shm_fallback": 0,
                "overlap_fragments": 3,
                "overlap_install_wall_s": 0.01,
                "install_wall_s": 0.008,
                "frontier_wall_s": 0.004,
                "wave_wall_s": 0.002,
                "finalize_wall_s": 0.006,
            }],
        }

    def test_rev4_sidecar_validates(self):
        doc = self._sidecar()
        assert validate_bench_procs(doc) == []
        # Full JSON round trip preserves validity.
        assert validate_bench_procs(json.loads(json.dumps(doc))) == []

    def test_rev1_still_accepted_without_new_columns(self):
        doc = self._sidecar(schema="repro.bench-procs/1")
        del doc["cores"]
        for col in ("speedup", "duplicate_insns", "shm_bytes",
                    "shm_fallback", "overlap_fragments",
                    "overlap_install_wall_s") + self._REV4_PHASE_COLS:
            del doc["rows"][0][col]
        assert validate_bench_procs(doc) == []

    def test_rev2_accepted_without_rev3_columns(self):
        doc = self._sidecar(schema="repro.bench-procs/2")
        del doc["cores"]
        for col in ("shm_bytes", "shm_fallback", "overlap_fragments",
                    "overlap_install_wall_s") + self._REV4_PHASE_COLS:
            del doc["rows"][0][col]
        assert validate_bench_procs(doc) == []

    def test_rev3_accepted_without_rev4_columns(self):
        doc = self._sidecar(schema="repro.bench-procs/3")
        del doc["cores"]
        for col in self._REV4_PHASE_COLS:
            del doc["rows"][0][col]
        assert validate_bench_procs(doc) == []

    def test_rev2_requires_speedup_and_duplicates(self):
        doc = self._sidecar()
        del doc["rows"][0]["speedup"]
        assert any("speedup" in p for p in validate_bench_procs(doc))
        doc = self._sidecar()
        del doc["rows"][0]["duplicate_insns"]
        assert any("duplicate_insns" in p
                   for p in validate_bench_procs(doc))

    def test_rev3_requires_transport_and_overlap_columns(self):
        for col in ("shm_bytes", "shm_fallback", "overlap_fragments",
                    "overlap_install_wall_s"):
            doc = self._sidecar()
            del doc["rows"][0][col]
            assert any(col in p for p in validate_bench_procs(doc)), col
        doc = self._sidecar()
        doc["rows"][0]["shm_fallback"] = 0.5  # counters must be ints
        assert any("shm_fallback" in p for p in validate_bench_procs(doc))

    def test_rev4_requires_phase_columns_and_cores(self):
        for col in self._REV4_PHASE_COLS:
            doc = self._sidecar()
            del doc["rows"][0][col]
            assert any(col in p for p in validate_bench_procs(doc)), col
        doc = self._sidecar()
        del doc["cores"]
        assert any("cores" in p for p in validate_bench_procs(doc))
        doc = self._sidecar()
        doc["cores"] = 0
        assert any("cores" in p for p in validate_bench_procs(doc))

    def test_rev2_speedup_must_match_walls(self):
        doc = self._sidecar()
        doc["rows"][0]["speedup"] = 3.0  # serial/procs is actually 0.25
        assert any("inconsistent" in p for p in validate_bench_procs(doc))

    def test_speedup_rounding_tolerance_is_tight(self):
        # Within 4-decimal rounding of the wall columns: accepted.  The
        # true walls 0.05004/0.19996 round to the stored 0.05/0.2 while
        # their true ratio rounds to 0.2503.
        doc = self._sidecar()
        doc["rows"][0]["speedup"] = 0.2503
        assert validate_bench_procs(doc) == []
        # Just beyond what rounding can explain: rejected.  The old
        # validator's 1% relative slack let this through.
        doc = self._sidecar()
        doc["rows"][0]["speedup"] = 0.2515
        assert any("inconsistent" in p for p in validate_bench_procs(doc))

    def test_structural_corruption_flagged(self):
        assert validate_bench_procs("not a dict")
        assert validate_bench_procs({"schema": "repro.bench-procs/99"})
        doc = self._sidecar()
        doc["rows"] = []
        assert validate_bench_procs(doc)
        doc = self._sidecar()
        doc["rows"][0]["shards"] = -1
        assert any("shards" in p for p in validate_bench_procs(doc))
        doc = self._sidecar()
        doc["scale"] = 0
        assert any("scale" in p for p in validate_bench_procs(doc))


class TestRacesValidator:
    """The repro.races/1 schema and its run-report embedding."""

    @staticmethod
    def _swept_report(fixture="counter-racy", schedules=3):
        from repro.sanity.fixtures import fixture_workload
        from repro.sanity.races import run_race_sweep

        return run_race_sweep(fixture_workload(fixture), n_workers=4,
                              schedules=schedules, workload_name=fixture)

    def test_real_sweep_report_validates(self):
        rep = self._swept_report()
        assert rep["schema"] == RACES_SCHEMA
        assert validate_races(rep) == []
        assert rep["findings"], "racy fixture must produce findings"

    def test_clean_sweep_report_validates(self):
        rep = self._swept_report("counter-safe")
        assert validate_races(rep) == []
        assert rep["findings"] == []

    def test_embedded_races_section_validates(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        rt.run(lambda: rt.charge(3))
        doc = run_report(rt, workload="w", races=self._swept_report())
        assert validate_report(doc) == []
        assert doc["races"]["schema"] == RACES_SCHEMA
        # The embedded section must survive a JSON round-trip.
        assert validate_report(json.loads(json.dumps(doc))) == []

    def test_report_without_races_section_still_validates(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        rt.run(lambda: rt.charge(3))
        doc = run_report(rt, workload="w")
        assert "races" not in doc
        assert validate_report(doc) == []

    def test_corrupt_races_reports_are_flagged(self):
        assert validate_races("not a dict")
        assert any("schema" in e
                   for e in validate_races({"schema": "nope"}))
        rep = self._swept_report()
        bad = dict(rep, schedules=rep["schedules"] + 1)
        assert any("schedules" in e for e in validate_races(bad))
        bad = dict(rep)
        bad["findings"] = [dict(rep["findings"][0], kind="explosion")]
        assert any("kind" in e for e in validate_races(bad))
        bad = dict(rep)
        bad["findings"] = [dict(rep["findings"][0], sites=["only-one"])]
        assert any("sites" in e for e in validate_races(bad))
        bad = dict(rep)
        bad["findings"] = [dict(rep["findings"][0], count=0)]
        assert any("count" in e for e in validate_races(bad))

    def test_corrupt_embedded_section_fails_the_run_report(self):
        rt = VirtualTimeRuntime(2, cost_model=FREE)
        rt.run(lambda: rt.charge(3))
        doc = run_report(rt, workload="w", races=self._swept_report())
        doc["races"]["schema"] = "nope"
        assert any(e.startswith("races:") for e in validate_report(doc))


class TestFuzzReportSchema:
    """The repro.fuzz-report/1 schema: real reports validate, corrupt
    documents are flagged field-by-field."""

    @staticmethod
    def _campaign(minimize=False):
        from repro.fuzz.driver import fuzz_run
        from repro.fuzz.oracle import OracleAxis, _parse_sig, strict_jt_axis
        from repro.runtime.serial import SerialRuntime

        # The strict-jt ablation axis genuinely diverges on the
        # jt-overapprox preset, so a 2-case campaign exercises both the
        # clean and the divergent (and, with minimize, reduced) shapes.
        axes = [OracleAxis("serial", "signature", _parse_sig(SerialRuntime)),
                strict_jt_axis()]
        return fuzz_run(2, 9, presets=("jt-overapprox", "stripped"),
                        minimize=minimize, n_functions=10, axes=axes)

    def test_real_campaign_report_validates(self):
        from repro.fuzz.driver import FUZZ_REPORT_SCHEMA
        from repro.runtime.tracefmt import validate_fuzz_report

        rep = self._campaign()
        assert rep["schema"] == FUZZ_REPORT_SCHEMA
        assert validate_fuzz_report(rep) == []
        assert rep["summary"]["diverged"] >= 1
        # JSON round-trip preserves validity.
        assert validate_fuzz_report(json.loads(json.dumps(rep))) == []

    def test_minimized_campaign_report_validates(self):
        from repro.fuzz.specio import CASE_SCHEMA
        from repro.runtime.tracefmt import validate_fuzz_report

        rep = self._campaign(minimize=True)
        assert validate_fuzz_report(rep) == []
        div = rep["divergences"][0]
        assert div["minimized"]["schema"] == CASE_SCHEMA
        before, after = div["reduce"]["size_before"], div["reduce"]["size_after"]
        assert tuple(after) <= tuple(before)

    def test_structural_corruption_is_flagged(self):
        from repro.runtime.tracefmt import validate_fuzz_report

        rep = self._campaign()
        assert validate_fuzz_report("not a dict")
        assert any("schema" in e for e in
                   validate_fuzz_report(dict(rep, schema="nope")))
        assert any("runs" in e for e in
                   validate_fuzz_report(dict(rep, runs=0)))
        bad = dict(rep, cases=rep["cases"][:1])
        assert any("case rows" in e for e in validate_fuzz_report(bad))
        bad = dict(rep)
        bad["cases"] = [dict(rep["cases"][0], preset="bogus")] + rep["cases"][1:]
        assert any("preset" in e for e in validate_fuzz_report(bad))
        bad = dict(rep)
        bad["cases"] = [dict(rep["cases"][0], reference_digest="wrong")] \
            + rep["cases"][1:]
        assert any("reference_digest" in e for e in validate_fuzz_report(bad))
        bad = dict(rep)
        bad["summary"] = dict(rep["summary"], diverged=99)
        assert any("diverged" in e for e in validate_fuzz_report(bad))
        bad = dict(rep)
        bad["divergences"] = [dict(rep["divergences"][0], failing=[])]
        assert any("failing" in e for e in validate_fuzz_report(bad))
