"""Fault-injection matrix for the procs backend's tolerance ladder.

Every test injects a deterministic fault (``repro.runtime.faults``) into
the sharded parse and asserts the two properties ISSUE 4 demands: the
parse completes without hanging and reproduces the serial fixed-point
signature exactly, and the fault plus the degradation step taken are
recorded in the metrics, ``rt.fault_events`` and the run report.

Pool-backed tests are skipped where multiprocessing pools don't work
(sandboxes without semaphores); the inline-mode tests cover the same
ladder logic everywhere.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core import parse_binary
from repro.errors import (
    InjectedFaultError,
    PoolBrokenError,
    RuntimeConfigError,
    ShardFailedError,
    ShardTimeoutError,
)
from repro.runtime import ProcsRuntime, SerialRuntime
from repro.runtime.faults import (
    FaultPlan,
    FaultProbe,
    FaultSpec,
    delta_digest,
    delta_error,
)
from repro.runtime.procs import (
    _WORKER_BINARIES,
    _parse_shard,
    _run_shard,
    _worker_binary,
    ShardTask,
    shutdown_pool,
)
from repro.runtime.tracefmt import run_report, validate_report
from repro.synth import tiny_binary


def _pool_works() -> bool:
    try:
        with multiprocessing.get_context().Pool(1) as p:
            return p.apply(int, ("1",)) == 1
    except Exception:
        return False


needs_pool = pytest.mark.skipif(not _pool_works(),
                                reason="multiprocessing pool unavailable")


@pytest.fixture(scope="module")
def workload():
    sb = tiny_binary(seed=5, n_functions=24)
    want = parse_binary(sb.binary, SerialRuntime()).signature()
    return sb, want


def _parse_with(sb, want, plan, **kw):
    rt = ProcsRuntime(2, fault_plan=FaultPlan.from_spec(plan), **kw)
    assert parse_binary(sb.binary, rt).signature() == want
    return rt


class TestFaultPlanGrammar:
    def test_round_trip(self):
        text = "exc@1,delay@0x3=1.5,killx2,corrupt,pool@2"
        plan = FaultPlan.from_spec(text)
        assert plan.to_spec() == text
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_wildcard_shard(self):
        plan = FaultPlan.from_spec("exc@*")
        assert plan.fires("exc", 0) and plan.fires("exc", 7)
        assert plan.to_spec() == "exc"

    def test_attempt_window(self):
        plan = FaultPlan.from_spec("excx2")
        assert plan.fires("exc", 0, attempt=1)
        assert plan.fires("exc", 0, attempt=2)
        assert not plan.fires("exc", 0, attempt=3)

    def test_shard_scoping(self):
        plan = FaultPlan.from_spec("exc@1")
        assert plan.fires("exc", 1) and not plan.fires("exc", 0)
        # Site consulted without a shard id matches any scoped spec.
        assert plan.fires("exc", None)

    def test_value_parses(self):
        spec = FaultPlan.from_spec("delay@0=2.5").fires("delay", 0)
        assert spec is not None and spec.value == 2.5

    def test_bad_entry_rejected(self):
        for bad in ("exc@", "=3", "delay@0x", "exc@1x2=a", "@1"):
            with pytest.raises(RuntimeConfigError, match="bad fault spec"):
                FaultPlan.from_spec(bad)

    def test_unknown_site_rejected(self):
        with pytest.raises(RuntimeConfigError, match="unknown fault site"):
            FaultPlan.from_spec("explode@1")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({"REPRO_FAULT_PLAN": "exc@1"})
        assert plan == FaultPlan((FaultSpec("exc", shard=1),))

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.from_spec("")
        assert FaultPlan.from_spec("exc")

    def test_probe_raises_only_its_site(self):
        probe = FaultProbe(FaultPlan.from_spec("frag@1"), 1, 1)
        probe.raise_if("exc")  # different site: no-op
        with pytest.raises(InjectedFaultError) as ei:
            probe.raise_if("frag")
        assert (ei.value.site, ei.value.shard_id) == ("frag", 1)


class TestDeltaIntegrity:
    def _delta(self, sb):
        task = ShardTask(0, tuple(sb.binary.entry_addresses()))
        return _run_shard(sb.binary, _opts(), task, False)

    def test_digest_is_deterministic(self, workload):
        sb, _ = workload
        a, b = self._delta(sb), self._delta(sb)
        assert a.digest == b.digest == delta_digest(a)
        assert delta_error(a) is None

    def test_mutation_detected(self, workload):
        sb, _ = workload
        d = self._delta(sb)
        d.fragment.blocks = d.fragment.blocks[:-1]
        assert delta_error(d) == "corrupt delta: content digest mismatch"

    def test_missing_fragment_detected(self, workload):
        sb, _ = workload
        d = self._delta(sb)
        d.fragment = None
        assert "truncated" in delta_error(d)

    def test_missing_digest_detected(self, workload):
        sb, _ = workload
        d = self._delta(sb)
        d.digest = None
        assert "no integrity digest" in delta_error(d)

    def test_error_and_none_detected(self, workload):
        sb, _ = workload
        d = self._delta(sb)
        d.error = "Boom"
        assert "worker exception" in delta_error(d)
        assert delta_error(None) == "no delta returned"


class TestParseShardErrorAsData:
    """`_parse_shard` returns failures as data, never raises."""

    def test_injected_exception_returned_as_error_delta(self, workload):
        sb, _ = workload
        task = ShardTask(0, tuple(sb.binary.entry_addresses()))
        payload = (next(_tokens()),
                   ("bytes", sb.binary.image.to_bytes()), _opts(),
                   False, task, 1, FaultPlan.from_spec("exc@0"))
        delta = _parse_shard(payload)
        assert delta.error is not None
        assert "InjectedFaultError" in delta.error
        assert (delta.shard_id, delta.attempt) == (0, 1)

    def test_garbage_image_returned_as_error_delta(self, workload):
        sb, _ = workload
        task = ShardTask(0, tuple(sb.binary.entry_addresses()))
        payload = (next(_tokens()), ("bytes", b"not an image"), _opts(),
                   False, task, 1, None)
        delta = _parse_shard(payload)
        assert delta.error is not None and "ImageFormatError" in delta.error


class TestWorkerBinaryCache:
    """LRU eviction: one entry at a time, never the whole cache."""

    @pytest.fixture(autouse=True)
    def clean_cache(self):
        _WORKER_BINARIES.clear()
        yield
        _WORKER_BINARIES.clear()

    def test_evicts_one_oldest_not_all(self, workload):
        sb, _ = workload
        raw = ("bytes", sb.binary.image.to_bytes())
        for token in range(1, 9):  # fill to the cap of 8
            _worker_binary(token, raw)
        assert len(_WORKER_BINARIES) == 8
        _worker_binary(9, raw)  # one past the cap
        assert len(_WORKER_BINARIES) == 8  # still full, not cleared
        assert 1 not in _WORKER_BINARIES  # only the oldest went
        assert all(t in _WORKER_BINARIES for t in range(2, 10))

    def test_hit_refreshes_recency(self, workload):
        sb, _ = workload
        raw = ("bytes", sb.binary.image.to_bytes())
        for token in range(1, 9):
            _worker_binary(token, raw)
        _worker_binary(1, raw)  # hit: token 1 becomes most recent
        _worker_binary(10, raw)  # evicts token 2, not the just-used 1
        assert 1 in _WORKER_BINARIES and 2 not in _WORKER_BINARIES

    def test_hit_returns_cached_object(self, workload):
        sb, _ = workload
        raw = ("bytes", sb.binary.image.to_bytes())
        first = _worker_binary(42, raw)
        assert _worker_binary(42, raw) is first

    def test_shm_transport_attaches_and_releases(self, workload):
        from repro.runtime.shm import ImageSegment, live_segments

        sb, _ = workload
        seg = ImageSegment.create(sb.binary.image.to_bytes())
        try:
            binary = _worker_binary(60, ("shm", seg.name, seg.size))
            assert binary.image.name == sb.binary.image.name
            _binary, handle = _WORKER_BINARIES[60]
            assert handle is not None
            # Eviction must release the mapping handle, not leak it.
            raw = ("bytes", sb.binary.image.to_bytes())
            for token in range(61, 61 + 8):
                _worker_binary(token, raw)
            assert 60 not in _WORKER_BINARIES
        finally:
            seg.unlink()
        assert seg.name not in live_segments()


class TestInlineLadder:
    """Ladder behavior with in-process shard execution (no pool)."""

    def test_exc_retried_transparently(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@0x1", in_process=True)
        assert rt.degradation["level"] == "none"
        assert [e["kind"] for e in rt.fault_events] == ["shard_failed"]
        assert rt.metrics.counter("procs.retry.inline") == 1
        assert isinstance(rt.shard_errors[0], ShardFailedError)
        assert rt.shard_errors[0].shard_id == 0

    def test_frag_site_fires_mid_parse(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "frag@1x1", in_process=True)
        assert rt.degradation["level"] == "none"
        assert rt.fault_events[0]["shard"] == 1
        assert "InjectedFaultError" in str(rt.shard_errors[0])

    def test_corrupt_delta_detected_and_retried(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "corrupt@1x1", in_process=True)
        assert rt.degradation["level"] == "none"
        assert "digest mismatch" in str(rt.shard_errors[0])

    def test_truncated_delta_detected_and_retried(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "truncate@0x1", in_process=True)
        assert rt.degradation["level"] == "none"
        assert "truncated" in str(rt.shard_errors[0])

    def test_wave_site_fires_mid_round_and_retries(self, workload):
        """A worker dying inside its noreturn-wave iteration (after the
        shard's graph work, before export) must ride the same retry
        ladder as any mid-parse fault — and the retried shard plus the
        coordinator's own (sharded) wave still land on serial."""
        sb, want = workload
        rt = _parse_with(sb, want, "wave@0x1", in_process=True)
        assert rt.degradation["level"] == "none"
        assert [e["kind"] for e in rt.fault_events] == ["shard_failed"]
        assert "InjectedFaultError" in str(rt.shard_errors[0])
        assert rt.metrics.counter("procs.retry.inline") == 1

    def test_wave_exhausted_degrades_to_serial(self, workload):
        """Wave faults on every attempt push down the full ladder; the
        serial rung runs without a worker probe and completes."""
        sb, want = workload
        rt = _parse_with(sb, want, "wavex99", in_process=True)
        assert rt.degradation["level"] == "serial"
        assert rt.fault_events[-1]["kind"] == "sharded_parse_failed"

    def test_exhausted_retries_degrade_to_serial(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@0x99", in_process=True)
        assert rt.degradation["level"] == "serial"
        assert rt.metrics.counter("procs.degraded_to.serial") == 1
        assert rt.fault_events[-1]["kind"] == "sharded_parse_failed"
        # max_retries=2 -> three failed inline attempts before the rung.
        assert rt.metrics.counter("procs.shard_failed") == 3

    def test_metrics_off_still_recovers(self, workload):
        sb, want = workload
        rt = ProcsRuntime(2, in_process=True, enable_metrics=False,
                          fault_plan=FaultPlan.from_spec("exc@0x1"))
        assert parse_binary(sb.binary, rt).signature() == want
        assert rt.fault_events  # events recorded even without metrics

    def test_report_carries_fault_sections(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@0x99", in_process=True)
        report = run_report(rt, workload="tiny")
        assert validate_report(report) == []
        assert report["degradation"]["level"] == "serial"
        kinds = [ev["kind"] for ev in report["fault_events"]]
        assert "shard_failed" in kinds
        assert "sharded_parse_failed" in kinds

    def test_clean_run_reports_no_faults(self, workload):
        sb, want = workload
        rt = ProcsRuntime(2, in_process=True)
        assert parse_binary(sb.binary, rt).signature() == want
        report = run_report(rt)
        assert validate_report(report) == []
        assert report["fault_events"] == []
        assert report["degradation"] == {"level": "none", "steps": []}


@needs_pool
class TestPoolLadder:
    """The real-pool matrix: timeout, kill, corrupt, pool-broken."""

    def test_worker_exception_redispatched(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@1x1", shard_deadline=30.0)
        assert rt.degradation["level"] == "none"
        assert rt.metrics.counter("procs.retry.dispatch") == 1
        assert rt.fault_events[0] == {"kind": "shard_failed", "shard": 1,
                                      "attempt": 1, "action": "retry"}

    def test_hang_past_deadline_times_out_and_recovers(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "delay@0x1=1.2", shard_deadline=0.4)
        assert rt.degradation["level"] in ("none", "shard_inline")
        assert rt.metrics.counter("procs.shard_timeout") >= 1
        err = next(e for e in rt.shard_errors
                   if isinstance(e, ShardTimeoutError))
        assert (err.shard_id, err.deadline) == (0, 0.4)

    def test_worker_kill_recovers(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "kill@1x1", shard_deadline=1.0)
        # The kill manifests as a lost result: deadline timeout, then a
        # retry on the (self-healed or respawned) pool, or inline.
        assert rt.metrics.counter("procs.shard_timeout") >= 1
        assert any(e["kind"] == "shard_timeout" and e["shard"] == 1
                   for e in rt.fault_events)

    def test_corrupt_delta_redispatched(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "corrupt@0x1", shard_deadline=30.0)
        assert rt.degradation["level"] == "none"
        assert "digest mismatch" in str(rt.shard_errors[0])

    def test_pool_creation_failure_degrades_inline(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "poolx99", shard_deadline=30.0)
        assert rt.degradation["level"] == "inline"
        assert rt.metrics.counter("procs.pool_fallback") == 1
        assert isinstance(rt.shard_errors[0], PoolBrokenError)
        # Inline rung still runs the structural merge, not serial.
        assert rt.metrics.counter("procs.merge.blocks") > 0

    def test_health_check_respawns_pool(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@1x1,healthx1",
                         shard_deadline=30.0)
        assert rt.degradation["level"] == "none"
        assert rt.metrics.counter("procs.pool_respawn") == 1
        kinds = [e["kind"] for e in rt.fault_events]
        assert kinds == ["shard_failed", "pool_unhealthy", "pool_respawn"]

    def test_parse_budget_exhaustion_goes_inline(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "delay@*x99=0.4",
                         shard_deadline=30.0, parse_budget=0.2)
        assert rt.degradation["level"] == "inline"
        assert any(e["kind"] == "parse_budget_exceeded"
                   for e in rt.fault_events)

    def test_pool_exhausted_shard_runs_inline(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@0x3", shard_deadline=30.0,
                         max_retries=2)
        # Attempts 1-3 fail in the pool; the inline rung (attempt 4)
        # is past the plan's window and succeeds.
        assert rt.degradation["level"] == "shard_inline"
        assert rt.metrics.counter("procs.retry.dispatch") == 2
        assert rt.metrics.counter("procs.retry.inline") == 1
        assert rt.metrics.counter("procs.degraded_to.shard_inline") == 1

    def test_report_validates_after_pool_faults(self, workload):
        sb, want = workload
        rt = _parse_with(sb, want, "exc@1x1,healthx1",
                         shard_deadline=30.0)
        report = run_report(rt, workload="tiny")
        assert validate_report(report) == []
        assert report["degradation"]["level"] == "none"
        assert len(report["fault_events"]) == 3


class TestConfigValidation:
    def test_bad_knobs_rejected(self):
        for kw in ({"shard_deadline": 0}, {"shard_deadline": -1},
                   {"parse_budget": 0}, {"max_retries": -1},
                   {"max_pool_respawns": -1}):
            with pytest.raises(RuntimeConfigError):
                ProcsRuntime(2, **kw)

    def test_env_plan_picked_up(self, workload, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "exc@0x1")
        sb, want = workload
        rt = ProcsRuntime(2, in_process=True)
        assert rt.fault_plan is not None
        assert parse_binary(sb.binary, rt).signature() == want
        assert rt.fault_events

    def test_timeout_error_fields(self):
        err = ShardTimeoutError(3, 2, 1.5)
        assert (err.shard_id, err.attempt, err.deadline) == (3, 2, 1.5)
        assert "1.5s deadline" in str(err)


class TestReportValidatorRejections:
    def _base(self, workload):
        sb, want = workload
        rt = ProcsRuntime(2, in_process=True)
        parse_binary(sb.binary, rt)
        return run_report(rt)

    def test_bad_degradation_level(self, workload):
        report = self._base(workload)
        report["degradation"]["level"] = "sideways"
        assert any("degradation.level" in e
                   for e in validate_report(report))

    def test_bad_event_shape(self, workload):
        report = self._base(workload)
        report["fault_events"] = [{"kind": 7, "shard": "x",
                                   "attempt": -1, "action": None}]
        errs = validate_report(report)
        assert any("kind" in e for e in errs)
        assert any("shard" in e for e in errs)
        assert any("attempt" in e for e in errs)
        assert any("action" in e for e in errs)

    def test_bad_steps(self, workload):
        report = self._base(workload)
        report["degradation"]["steps"] = [1]
        assert any("steps[0]" in e for e in validate_report(report))


def _opts():
    from repro.core.parallel_parser import ParseOptions
    return ParseOptions()


def _tokens():
    from repro.runtime.procs import _PAYLOAD_TOKENS
    return _PAYLOAD_TOKENS


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()
