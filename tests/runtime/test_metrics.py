"""Tests for the structured metrics subsystem."""

import json

from repro.core.parallel_parser import parse_binary
from repro.runtime import (
    NULL_METRICS,
    MetricsRegistry,
    SerialRuntime,
    ThreadRuntime,
    VirtualTimeRuntime,
)
from repro.runtime.cost import CostModel
from repro.runtime.metrics import Histogram, bucket_bound
from repro.synth import tiny_binary

FREE = CostModel(spawn=0, task_pop=0, lock_handoff=0, map_op=0)


class TestPrimitives:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5
        assert m.counter("missing") == 0

    def test_bucket_bounds_are_powers_of_two(self):
        assert bucket_bound(0) == 0
        assert bucket_bound(-3) == 0
        assert bucket_bound(1) == 1
        assert bucket_bound(2) == 2
        assert bucket_bound(3) == 4
        assert bucket_bound(1024) == 1024
        assert bucket_bound(1025) == 2048

    def test_histogram_stats(self):
        h = Histogram()
        for v in (3, 5, 100):
            h.observe(v)
        assert h.count == 3
        assert h.total == 108
        assert (h.min, h.max) == (3, 100)
        assert h.mean == 36.0
        assert sum(h.buckets.values()) == 3

    def test_timer_uses_registry_clock(self):
        t = [0]
        m = MetricsRegistry("cycles", clock=lambda: t[0])
        with m.timer("dur"):
            t[0] = 42
        h = m.histogram("dur")
        assert h.count == 1 and h.total == 42

    def test_snapshot_shape_and_sorting(self):
        m = MetricsRegistry("cycles")
        m.inc("z")
        m.inc("a")
        m.observe("h", 7)
        snap = m.snapshot()
        assert snap["schema"] == "repro.metrics/1"
        assert snap["time_unit"] == "cycles"
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["histograms"]["h"]["buckets"] == {"8": 1}
        # The snapshot must be JSON-serializable as-is.
        json.dumps(snap)

    def test_null_metrics_is_inert(self):
        NULL_METRICS.inc("x", 5)
        NULL_METRICS.observe("y", 5)
        with NULL_METRICS.timer("z"):
            pass
        assert not NULL_METRICS.enabled
        snap = NULL_METRICS.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestVtimeIntegration:
    def test_task_counters_match_spawns(self):
        rt = VirtualTimeRuntime(4, cost_model=FREE)

        def body():
            g = rt.task_group()
            for _ in range(10):
                g.spawn(rt.charge, 5)
            g.wait()

        rt.run(body)
        assert rt.metrics.counter("rt.tasks_spawned") == 10
        assert rt.metrics.counter("rt.tasks_executed") == 10

    def test_lock_contention_recorded(self):
        rt = VirtualTimeRuntime(2)
        lock = rt.make_lock()

        def worker():
            with lock:
                rt.charge(500)

        def body():
            g = rt.task_group()
            g.spawn(worker)
            g.spawn(worker)
            g.wait()

        rt.run(body)
        m = rt.metrics
        assert m.counter("lock.acquires") == 2
        assert m.counter("lock.contended") == 1
        park = m.histogram("lock.park")
        # The loser parks until the owner's virtual release time.
        assert park.count == 1
        assert park.min > 0

    def test_map_contention_attributed_to_map_name(self):
        from repro.runtime.conchash import ConcurrentHashMap

        rt = VirtualTimeRuntime(2)
        cmap = ConcurrentHashMap(rt, name="testmap")

        def worker():
            with cmap.accessor(0xAA) as acc:
                acc.value = rt.worker_id()
                rt.charge(300)

        def body():
            g = rt.task_group()
            g.spawn(worker)
            g.spawn(worker)
            g.wait()

        rt.run(body)
        m = rt.metrics
        assert m.counter("map.testmap.ops") == 2
        assert m.counter("map.testmap.created") == 1
        assert m.counter("map.testmap.acquires") == 2
        assert m.counter("map.testmap.contended") == 1
        assert m.histogram("map.testmap.park").min > 0

    def test_metrics_do_not_perturb_vtime_determinism(self):
        """Acceptance: identical signature() and makespan with/without."""
        sb = tiny_binary()
        rt_on = VirtualTimeRuntime(8, enable_trace=True)
        cfg_on = parse_binary(sb.binary, rt_on)
        rt_off = VirtualTimeRuntime(8, enable_metrics=False)
        cfg_off = parse_binary(sb.binary, rt_off)
        assert cfg_on.signature() == cfg_off.signature()
        assert rt_on.makespan == rt_off.makespan
        assert rt_off.metrics is NULL_METRICS
        assert rt_on.metrics.counter("parser.blocks_created") > 0

    def test_parser_counters_match_stats(self):
        sb = tiny_binary()
        rt = VirtualTimeRuntime(4)
        cfg = parse_binary(sb.binary, rt)
        m = rt.metrics
        assert m.counter("parser.block_splits") == cfg.stats.n_splits
        assert m.counter("parser.noreturn_waves") == cfg.stats.n_waves
        # Every created function passed through invariant 5.
        assert m.counter("parser.functions_created") >= cfg.stats.n_functions
        assert m.counter("map.blocks.created") == \
            m.counter("parser.blocks_created")

    def test_identical_runs_produce_identical_metrics(self):
        sb = tiny_binary()
        snaps = []
        for _ in range(2):
            rt = VirtualTimeRuntime(8)
            parse_binary(sb.binary, rt)
            snaps.append(rt.metrics.snapshot())
        assert snaps[0] == snaps[1]


class TestOtherBackends:
    def test_serial_task_metrics(self):
        rt = SerialRuntime()

        def body():
            g = rt.task_group()
            for _ in range(5):
                g.spawn(rt.charge, 3)
            g.wait()

        rt.run(body)
        assert rt.metrics.counter("rt.tasks_spawned") == 5
        assert rt.metrics.counter("rt.tasks_executed") == 5
        assert rt.metrics.histogram("rt.task_queue_delay").count == 5
        assert rt.metrics.time_unit == "cycles"

    def test_threads_task_and_lock_metrics(self):
        rt = ThreadRuntime(2)
        lock = rt.make_lock()

        def worker():
            with lock:
                pass

        def body():
            g = rt.task_group()
            for _ in range(6):
                g.spawn(worker)
            g.wait()

        rt.run(body)
        m = rt.metrics
        assert m.counter("rt.tasks_spawned") == 6
        assert m.counter("rt.tasks_executed") == 6
        assert m.counter("lock.acquires") == 6
        assert m.time_unit == "ns"

    def test_threads_parse_delivers_same_cfg_with_metrics(self):
        sb = tiny_binary()
        vt_sig = parse_binary(sb.binary, VirtualTimeRuntime(4)).signature()
        rt = ThreadRuntime(4)
        cfg = parse_binary(sb.binary, rt)
        assert cfg.signature() == vt_sig
        assert rt.metrics.counter("parser.blocks_created") > 0

    def test_opt_out_on_every_backend(self):
        for rt in (VirtualTimeRuntime(2, enable_metrics=False),
                   ThreadRuntime(2, enable_metrics=False),
                   SerialRuntime(enable_metrics=False)):
            assert rt.metrics is NULL_METRICS
