"""Unit tests for the process-pool backend (sharding, merge, fallback)."""

import pytest

from repro.core import parse_binary
from repro.errors import RuntimeConfigError
from repro.runtime import ProcsRuntime, SerialRuntime
from repro.runtime.procs import (
    PoolAdmission,
    ShardDelta,
    ShardTask,
    shard_regions,
)
from repro.runtime.tracefmt import run_report, validate_report
from repro.synth import tiny_binary


class TestShardRegions:
    def test_partition_preserves_entries(self):
        entries = [40, 10, 30, 20, 50, 70, 60]
        shards = shard_regions(entries, 3)
        flat = [a for s in shards for a in s]
        assert flat == sorted(entries)  # nothing lost, order contiguous

    def test_balanced_sizes(self):
        shards = shard_regions(list(range(0, 1000, 8)), 8)
        sizes = [len(s) for s in shards]
        assert len(shards) == 8
        assert max(sizes) - min(sizes) <= 1

    def test_skewed_corpus_balances_byte_span_not_count(self):
        # 64 tiny stubs packed at the bottom, two huge functions above:
        # a count-split would hand one shard 33 stubs and the other 31
        # stubs plus both giants.  The byte-span split puts every stub
        # in shard 0 and both giants in shard 1, so each shard decodes
        # roughly half the address span.
        entries = list(range(64)) + [1000, 2000]
        shards = shard_regions(entries, 2)
        assert shards == [tuple(range(64)), (1000, 2000)]

    def test_skewed_corpus_leaves_one_entry_per_shard(self):
        # One giant at the bottom would swallow the whole span target;
        # the split must still leave a seed for every remaining shard.
        shards = shard_regions([0, 10_000, 10_001, 10_002], 4)
        assert shards == [(0,), (10_000,), (10_001,), (10_002,)]

    def test_more_shards_than_entries(self):
        shards = shard_regions([1, 2, 3], 16)
        assert shards == [(1,), (2,), (3,)]

    def test_contiguous_regions_do_not_interleave(self):
        shards = shard_regions(list(range(100)), 4)
        for a, b in zip(shards, shards[1:]):
            assert a[-1] < b[0]

    def test_empty(self):
        assert shard_regions([], 4) == []
        assert shard_regions([5], 1) == [(5,)]


class TestProcsRuntime:
    def test_rejects_zero_workers(self):
        with pytest.raises(RuntimeConfigError):
            ProcsRuntime(0)

    def test_makespan_requires_run(self):
        rt = ProcsRuntime(2)
        with pytest.raises(RuntimeConfigError):
            rt.makespan
        parse_binary(tiny_binary().binary, rt)
        assert rt.makespan > 0

    def test_inline_parse_matches_serial(self):
        sb = tiny_binary(seed=5, n_functions=24)
        want = parse_binary(sb.binary, SerialRuntime()).signature()
        rt = ProcsRuntime(3, in_process=True)
        assert parse_binary(sb.binary, rt).signature() == want
        # Inline mode never touches a pool.
        assert rt.metrics.counter("procs.pool_fallback") == 0

    def test_shard_deltas_recorded(self):
        sb = tiny_binary(seed=5, n_functions=24)
        rt = ProcsRuntime(3, in_process=True)
        parse_binary(sb.binary, rt)
        deltas = rt.shard_deltas
        assert deltas is not None and len(deltas) == 3
        n_entries = len(sb.binary.entry_addresses())
        assert sum(len(d.insns) > 0 for d in deltas) == 3
        assert rt.metrics.counter("procs.shards") == 3
        # Every shard parsed at least its own seeds into functions.
        assert (rt.metrics.counter("procs.shard_functions")
                >= n_entries)

    def test_worker_metrics_merged_under_prefix(self):
        sb = tiny_binary(seed=5, n_functions=24)
        rt = ProcsRuntime(2, in_process=True)
        parse_binary(sb.binary, rt)
        names = rt.metrics.names()
        assert any(n.startswith("workers.") for n in names)
        # Coordinator's own series stay unprefixed alongside.
        assert "procs.merged_cache_insns" in names

    def test_no_metrics_mode(self):
        sb = tiny_binary(seed=5, n_functions=24)
        rt = ProcsRuntime(2, in_process=True, enable_metrics=False)
        want = parse_binary(sb.binary, SerialRuntime()).signature()
        assert parse_binary(sb.binary, rt).signature() == want
        assert not rt.metrics.enabled

    def test_unrecoverable_shard_error_degrades_to_serial(self, monkeypatch):
        # A delta that survives the dispatch ladder with its error still
        # set (here: a rogue _map_shards, standing in for any
        # unrecoverable sharded-pipeline failure) must not abort the
        # parse — the ladder's last rung produces the serial fixed
        # point and records what happened.
        sb = tiny_binary(seed=5, n_functions=24)
        want = parse_binary(sb.binary, SerialRuntime()).signature()
        rt = ProcsRuntime(2, in_process=True)
        monkeypatch.setattr(
            ProcsRuntime, "_map_shards",
            lambda self, binary, opts, tasks:
                [ShardDelta(0, error="KaboomError: shard exploded")])
        assert rt.sharded_parse(sb.binary).signature() == want
        assert rt.degradation["level"] == "serial"
        assert rt.metrics.counter("procs.degraded_to.serial") == 1
        kinds = [ev["kind"] for ev in rt.fault_events]
        assert "sharded_parse_failed" in kinds
        assert any("KaboomError" in step
                   for step in rt.degradation["steps"])

    def test_pool_failure_falls_back_inline(self, monkeypatch):
        import multiprocessing

        def no_context(*a, **kw):
            raise OSError("no semaphores here")

        monkeypatch.setattr(multiprocessing, "get_context", no_context)
        sb = tiny_binary(seed=5, n_functions=24)
        want = parse_binary(sb.binary, SerialRuntime()).signature()
        rt = ProcsRuntime(4)
        assert parse_binary(sb.binary, rt).signature() == want
        assert rt.metrics.counter("procs.pool_fallback") == 1
        # The degraded path is still the structural fragment merge, not
        # a serial re-parse: fragments were imported and stitched.
        assert rt.metrics.counter("procs.merge.blocks") > 0
        assert rt.metrics.counter("procs.shards") == 4

    def test_run_report_backend_and_unit(self):
        rt = ProcsRuntime(2, in_process=True)
        parse_binary(tiny_binary().binary, rt)
        report = run_report(rt, workload="tiny")
        assert validate_report(report) == []
        assert report["backend"] == "procs"
        assert report["time_unit"] == "seconds"
        assert report["makespan"] > 0


class TestShardTask:
    def test_region_bounds(self):
        t = ShardTask(0, (10, 20, 30))
        assert (t.lo, t.hi) == (10, 30)


class TestPoolAdmission:
    """The resizable gate multi-binary drivers share across runtimes."""

    def test_rejects_zero_limit(self):
        with pytest.raises(RuntimeConfigError):
            PoolAdmission(0)
        with pytest.raises(RuntimeConfigError):
            PoolAdmission(2).resize(0)

    def test_uncontended_acquire_does_not_wait(self):
        gate = PoolAdmission(2)
        assert gate.acquire() == 0
        assert gate.acquire() == 0
        assert gate.active == 2
        gate.release()
        gate.release()
        assert gate.active == 0

    def test_full_gate_blocks_until_release(self):
        import threading

        gate = PoolAdmission(1)
        gate.acquire()
        waited = []
        entered = threading.Event()

        def contender():
            waited.append(gate.acquire())
            entered.set()
            gate.release()

        t = threading.Thread(target=contender, daemon=True)
        t.start()
        assert not entered.wait(0.1)  # gate is full: the acquire parks
        gate.release()
        assert entered.wait(5.0)
        t.join(5.0)
        assert waited[0] > 0  # the wait was measured

    def test_resize_admits_parked_waiters(self):
        import threading

        gate = PoolAdmission(1)
        gate.acquire()
        entered = threading.Event()

        def contender():
            gate.acquire()
            entered.set()

        t = threading.Thread(target=contender, daemon=True)
        t.start()
        assert not entered.wait(0.1)
        gate.resize(2)  # the corpus ladder resizes live, no preemption
        assert entered.wait(5.0)
        t.join(5.0)
        assert (gate.limit, gate.active) == (2, 2)

    def test_runtime_reports_admission_metrics(self):
        sb = tiny_binary(seed=5, n_functions=24)
        gate = PoolAdmission(1)
        rt = ProcsRuntime(2, in_process=True, admission=gate)
        want = parse_binary(sb.binary, SerialRuntime()).signature()
        assert parse_binary(sb.binary, rt).signature() == want
        assert rt.metrics.counter("procs.admission.acquires") == 1
        assert gate.active == 0  # released on the way out
