"""Reducer property battery: convergence, monotonicity, idempotence.

Mirrors the ``tests/core/test_operation_properties.py`` structure: the
properties run always over a seeded grid (zero external dependencies —
this is what the no-hypothesis CI job executes), and additionally under
Hypothesis when it is importable, with the seed as the fuzzed input.

Two predicate tiers keep the battery fast:

- a *spec-level* predicate ("contains an obscured-bound switch") drives
  the seeded grid — no synthesis or parsing per candidate;
- the *real* divergence predicate (synthesize + strict-jt oracle) runs
  once, end to end, to prove the reducer shrinks an actual divergence
  to a minimal still-diverging program.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.oracle import OracleAxis, _parse_sig, strict_jt_axis
from repro.fuzz.reduce import divergence_predicate, reduce, spec_size
from repro.fuzz.specio import clone_spec, spec_to_json
from repro.runtime import SerialRuntime
from repro.synth.hostile import hostile_params
from repro.synth.program import generate_program

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # minimal install: seeded grid only
    HAVE_HYPOTHESIS = False

GRID = range(8)


def _spec(seed: int, preset: str = "jt-overapprox"):
    return generate_program(seed, hostile_params(preset, n_functions=12),
                            name=f"reduce-{preset}-{seed}")


def has_obscured_switch(spec) -> bool:
    """Cheap spec-level stand-in for "still diverges"."""
    return any(seg.switch is not None and seg.switch.obscured_bound
               for f in spec.functions for seg in f.segments)


def check_reduction_properties(seed: int) -> None:
    """The three contract properties, for one seeded input spec."""
    spec = _spec(seed)
    if not has_obscured_switch(spec):
        return  # nothing to chase for this seed
    frozen = json.dumps(spec_to_json(spec), sort_keys=True)

    rr = reduce(spec, has_obscured_switch, seed=seed)
    # 1. the interesting behaviour survives reduction;
    assert has_obscured_switch(rr.spec)
    # 2. never larger than the input, in functions and in blocks;
    assert rr.size_after <= rr.size_before
    assert rr.size_before == spec_size(spec)
    # 3. the result is a fixed point: reducing again changes nothing.
    again = reduce(rr.spec, has_obscured_switch, seed=seed)
    assert again.accepted == 0
    assert spec_to_json(again.spec) == spec_to_json(rr.spec)
    # the input spec was never mutated.
    assert json.dumps(spec_to_json(spec), sort_keys=True) == frozen


class TestSeededGrid:
    @pytest.mark.parametrize("seed", GRID, ids=str)
    def test_reduction_properties(self, seed):
        check_reduction_properties(seed)

    def test_deterministic_in_spec_and_seed(self):
        a = reduce(_spec(3), has_obscured_switch, seed=5)
        b = reduce(_spec(3), has_obscured_switch, seed=5)
        assert spec_to_json(a.spec) == spec_to_json(b.spec)
        assert (a.attempts, a.accepted) == (b.attempts, b.accepted)

    def test_fixed_cast_survives(self):
        rr = reduce(_spec(3), has_obscured_switch, seed=0)
        indices = {f.index for f in rr.spec.functions}
        assert {0, 1} <= indices

    def test_converges_to_single_obscured_switch(self):
        """Greedy reduction drives a 12-function hostile program down to
        the fixed cast plus one switch-bearing function."""
        rr = reduce(_spec(3), has_obscured_switch, seed=0)
        assert len(rr.spec.functions) == 3
        switches = [seg.switch for f in rr.spec.functions
                    for seg in f.segments if seg.switch is not None]
        assert len(switches) == 1 and switches[0].obscured_bound
        assert switches[0].n_cases == 1

    def test_attempt_budget_is_respected(self):
        rr = reduce(_spec(3), has_obscured_switch, seed=0, max_attempts=4)
        assert rr.attempts <= 4

    def test_uninteresting_input_is_a_noop(self):
        spec = _spec(3, preset="stripped")
        rr = reduce(spec, lambda s: False, seed=0)
        assert rr.accepted == 0
        assert spec_to_json(rr.spec) == spec_to_json(spec)

    def test_crashing_predicate_counts_as_uninteresting(self):
        def fragile(s):
            raise RuntimeError("synthesis exploded")

        rr = reduce(_spec(3), fragile, seed=0)
        assert rr.accepted == 0

    def test_clone_spec_is_independent(self):
        spec = _spec(3)
        twin = clone_spec(spec)
        twin.functions[2].segments.clear()
        assert spec.functions[2].segments


class TestRealDivergence:
    def test_end_to_end_against_the_strict_jt_oracle(self):
        """The acceptance-shaped path: a genuinely diverging binary
        (union-mode vs strict jump tables) reduces to a minimal program
        that still diverges, and the fixed point is idempotent."""
        axes = [OracleAxis("serial", "signature", _parse_sig(SerialRuntime)),
                strict_jt_axis()]
        pred = divergence_predicate(axes)
        spec = _spec(5)
        assert pred(spec), "fixture must diverge before reduction"

        rr = reduce(spec, pred, seed=5)
        assert pred(rr.spec), "minimized spec must still diverge"
        assert rr.size_after < rr.size_before
        assert len(rr.spec.functions) <= 4
        again = reduce(rr.spec, pred, seed=5)
        assert again.accepted == 0
        assert spec_to_json(again.spec) == spec_to_json(rr.spec)


if HAVE_HYPOTHESIS:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_reduction_properties_fuzzed(seed):
        check_reduction_properties(seed)
else:
    def test_reduction_properties_fuzzed():
        """Placeholder keeping the node id stable on minimal installs."""
        assert not HAVE_HYPOTHESIS
