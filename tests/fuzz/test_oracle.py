"""Differential-oracle unit tests: axes, digests, verdicts, crashes."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.fuzz.oracle import (
    OracleAxis,
    _parse_sig,
    default_axes,
    run_oracle,
    signature_digest,
    strict_jt_axis,
)
from repro.runtime import SerialRuntime
from repro.runtime.metrics import MetricsRegistry
from repro.synth import hostile_binary, tiny_binary


@pytest.fixture(scope="module")
def tiny():
    return tiny_binary()


def _serial_axis() -> OracleAxis:
    return OracleAxis("serial", "signature", _parse_sig(SerialRuntime))


class TestDigest:
    def test_digest_is_sha256_of_repr(self, tiny):
        from repro.core import parse_binary

        sig = parse_binary(tiny.binary, SerialRuntime()).signature()
        assert signature_digest(sig) == \
            hashlib.sha256(repr(sig).encode()).hexdigest()

    def test_digest_distinguishes_signatures(self):
        assert signature_digest((1,)) != signature_digest((2,))


class TestDefaultAxes:
    def test_serial_is_the_reference(self):
        axes = default_axes()
        assert axes[0].name == "serial" and axes[0].kind == "signature"
        names = [a.name for a in axes]
        assert names == ["serial", "vtime", "threads", "procs",
                         "procs-no-partial", "procs-fault", "cfgsan",
                         "races", "checkers"]

    def test_checkers_axis_only_on_request(self):
        names = [a.name for a in default_axes(include_checkers=False)]
        assert "checkers" not in names

    def test_shm_axis_only_on_request(self):
        names = [a.name for a in default_axes(include_shm=True)]
        assert "procs-shm" in names

    def test_clean_binary_passes_every_axis(self, tiny):
        metrics = MetricsRegistry()
        res = run_oracle(tiny.binary,
                         default_axes(race_schedules=1, race_seed=3),
                         metrics=metrics, name="tiny")
        assert not res.diverged
        assert res.failing == [] and res.findings == {}
        assert set(res.digests.values()) == {res.reference_digest}
        assert metrics.counter("fuzz.axes.runs") == 9
        assert metrics.counter("fuzz.divergences") == 0


class TestVerdicts:
    def test_first_axis_must_be_signature(self, tiny):
        check = OracleAxis("c", "check", lambda b: [])
        with pytest.raises(ValueError, match="signature axis"):
            run_oracle(tiny.binary, [check])

    def test_strict_jt_ablation_diverges(self):
        sb = hostile_binary("jt-overapprox", seed=5, n_functions=12)
        metrics = MetricsRegistry()
        res = run_oracle(sb.binary, [_serial_axis(), strict_jt_axis()],
                         metrics=metrics, name=sb.name)
        assert res.diverged and res.failing == ["serial-strict-jt"]
        assert res.digests["serial-strict-jt"] != res.reference_digest
        assert metrics.counter("fuzz.divergences") == 1

    def test_crashing_axis_counts_as_divergence(self, tiny):
        def boom(binary):
            raise RuntimeError("backend fell over")

        res = run_oracle(tiny.binary,
                         [_serial_axis(),
                          OracleAxis("broken", "signature", boom)])
        assert res.failing == ["broken"]
        assert res.digests["broken"] == "error:RuntimeError"
        assert res.findings["broken"][0]["error"] == "RuntimeError"

    def test_check_axis_findings_fail_the_case(self, tiny):
        finding = {"check": "custom", "finding": "bad"}
        res = run_oracle(tiny.binary,
                         [_serial_axis(),
                          OracleAxis("custom", "check",
                                     lambda b: [finding])])
        assert res.failing == ["custom"]
        assert res.findings["custom"] == [finding]

    def test_crashing_check_axis_is_captured(self, tiny):
        def boom(binary):
            raise ValueError("sweep exploded")

        res = run_oracle(tiny.binary,
                         [_serial_axis(),
                          OracleAxis("races", "check", boom)])
        assert res.failing == ["races"]
        assert res.findings["races"][0]["error"] == "ValueError"

    def test_row_is_json_ready(self, tiny):
        res = run_oracle(tiny.binary,
                         [_serial_axis(), strict_jt_axis()], name="t")
        row = json.loads(json.dumps(res.to_row()))
        assert row["binary"] == "t"
        assert row["reference"] == "serial"
        assert row["digests"]["serial"] == row["reference_digest"]
