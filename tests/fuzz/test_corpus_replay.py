"""Regression corpus replay: every pinned case, every backend.

Each ``tests/fuzz/corpus/*.json`` file is a ``repro.fuzz-case/1``
sidecar: a serialized program spec plus the expected serial signature
digest.  The corpus holds minimized repros pinned by the delta-reducer
(strict-jt divergences shrunk to the fixed cast plus one obscured
switch) alongside small hostile layouts kept at full size for breadth.

Replay re-synthesizes every case from its spec and asserts the parse
signature matches the pinned digest byte-for-byte on all four
backends — serial, virtual-time, threads and the process pool.  A
digest mismatch means parser behaviour drifted on a case the fuzzer
once minimized; investigate before re-pinning.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.core import parse_binary
from repro.fuzz.oracle import signature_digest
from repro.fuzz.specio import CASE_SCHEMA, load_case
from repro.runtime import (
    ProcsRuntime,
    SerialRuntime,
    ThreadRuntime,
    VirtualTimeRuntime,
)
from repro.synth.codegen import synthesize

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CASES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

PROCS_WORKERS = int(os.environ.get("REPRO_PROCS_WORKERS", "2"))
PROCS_INLINE = os.environ.get("REPRO_PROCS_INLINE") == "1"

BACKENDS = {
    "serial": lambda: SerialRuntime(),
    "vtime": lambda: VirtualTimeRuntime(4),
    "threads": lambda: ThreadRuntime(4),
    "procs": lambda: ProcsRuntime(PROCS_WORKERS, in_process=PROCS_INLINE),
}


def _case_id(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def test_corpus_is_not_empty():
    assert len(CASES) >= 5, "the pinned regression corpus went missing"


@pytest.mark.parametrize("path", CASES, ids=_case_id)
class TestCorpusReplay:
    def test_case_is_well_formed(self, path):
        spec, case = load_case(path)
        assert case["schema"] == CASE_SCHEMA
        assert case["origin"]
        assert spec.functions
        digest = case["expect"]["signature_sha256"]
        assert len(digest) == 64 and int(digest, 16) >= 0

    @pytest.mark.parametrize("backend", sorted(BACKENDS), ids=str)
    def test_replays_byte_for_byte(self, path, backend):
        spec, case = load_case(path)
        sb = synthesize(spec)
        sig = parse_binary(sb.binary, BACKENDS[backend]()).signature()
        assert signature_digest(sig) == case["expect"]["signature_sha256"], \
            f"{_case_id(path)} drifted on the {backend} backend"

    def test_minimized_cases_still_diverge(self, path):
        """A minimized repro that stops diverging is stale: the bug it
        pinned is gone (or the ablation moved) — time to re-reduce."""
        spec, case = load_case(path)
        if not case.get("failing_axes"):
            pytest.skip("breadth case: pinned for layout, not divergence")
        from repro.core.jump_table import JumpTableOptions
        from repro.core.parallel_parser import ParseOptions

        sb = synthesize(spec)
        union = parse_binary(sb.binary, SerialRuntime()).signature()
        strict = parse_binary(
            sb.binary, SerialRuntime(),
            ParseOptions(jt_options=JumpTableOptions(union_mode=False)),
        ).signature()
        assert union != strict, f"{_case_id(path)} no longer diverges"
